#include "src/analysis/workloads.h"

#include "src/ebpf/helper.h"
#include "src/xbase/strfmt.h"

namespace analysis {

using namespace ebpf;  // NOLINT: assembler DSL (R0..R10, BPF_* opcodes)
using xbase::StrFormat;
using xbase::u32;

xbase::Result<Program> BuildSysBpfNullCrash() {
  ProgramBuilder b("sys_bpf_null_crash", ProgType::kSyscall);
  // A zeroed 24-byte attr union on the stack. For BPF_PROG_LOAD the qword
  // at offset 8 is the instruction-buffer pointer — left NULL.
  b.Ins(StMemImm(BPF_DW, R10, -24, 0))
      .Ins(StMemImm(BPF_DW, R10, -16, 0))  // attr+8: insns ptr = NULL
      .Ins(StMemImm(BPF_DW, R10, -8, 0))
      .Ins(Mov64Imm(R1, static_cast<s32>(kSysBpfProgLoad)))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -24))
      .Ins(Mov64Imm(R3, 24))
      .Ins(CallHelper(kHelperSysBpf))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildNestedLoopStall(int map_fd, u32 nesting,
                                            u32 iters) {
  if (nesting == 0) {
    return xbase::InvalidArgument("need at least one loop level");
  }
  ProgramBuilder b("nested_loop_stall", ProgType::kKprobe);

  // Main: kick off level 0.
  b.Ins(Mov64Imm(R1, static_cast<s32>(iters)))
      .LdFuncTo(R2, "level0")
      .Ins(Mov64Imm(R3, 0))
      .Ins(Mov64Imm(R4, 0))
      .Ins(CallHelper(kHelperLoop))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());

  // Intermediate levels: each iteration starts the next level's loop.
  for (u32 level = 0; level + 1 < nesting; ++level) {
    b.Bind(StrFormat("level%u", level))
        .Ins(Mov64Imm(R1, static_cast<s32>(iters)))
        .LdFuncTo(R2, StrFormat("level%u", level + 1))
        .Ins(Mov64Imm(R3, 0))
        .Ins(Mov64Imm(R4, 0))
        .Ins(CallHelper(kHelperLoop))
        .Ins(Mov64Imm(R0, 0))
        .Ins(Exit());
  }

  // Innermost body: a map update per iteration (the paper's "random reads
  // and writes on an eBPF map object").
  b.Bind(StrFormat("level%u", nesting - 1))
      .Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(StxMem(BPF_DW, R10, R1, -16))  // value = loop index
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(Mov64Reg(R3, R10))
      .Ins(Alu64Imm(BPF_ADD, R3, -16))
      .Ins(Mov64Imm(R4, 0))
      .Ins(CallHelper(kHelperMapUpdateElem))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildArbitraryReadExploit(int map_fd,
                                                 xbase::s32 stride) {
  ProgramBuilder b("arbitrary_read", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Alu64Imm(BPF_ADD, R0, stride))  // walk off the value
      .Ins(LdxMem(BPF_DW, R0, R0, 0))      // read foreign kernel memory
      .Ins(Exit())
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildJmp32BoundsExploit(int map_fd) {
  ProgramBuilder b("jmp32_bounds", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      // r7 = 2^32 + 8: the low 32 bits look like a small index.
      .Ins(LdImm64(R7, (1ULL << 32) + 8))
      // 32-bit compare: taken when (u32)r7 >= 16 — it is 8, so execution
      // falls through. The buggy verifier concludes r7 < 16 in 64 bits.
      .Ins(Jmp32Imm(BPF_JGE, R7, 16, 0))  // offset fixed below via label
      .Ins(Alu64Reg(BPF_ADD, R0, R7))
      .Ins(LdxMem(BPF_DW, R1, R0, 0))
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  // Fix the jmp32 target manually: jump to "out".
  auto prog = b.Build();
  if (!prog.ok()) {
    return prog;
  }
  Program fixed = std::move(prog).value();
  for (u32 pc = 0; pc < fixed.len(); ++pc) {
    Insn& insn = fixed.insns[pc];
    if (insn.Class() == BPF_JMP32 && insn.JmpOp() == BPF_JGE) {
      insn.off = static_cast<s16>(fixed.len() - 3 - pc);  // to "out"
    }
  }
  return fixed;
}

xbase::Result<Program> BuildAlu32TruncExploit(int map_fd) {
  ProgramBuilder b("alu32_trunc", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(LdxMem(BPF_DW, R6, R0, 0))
      // Bound r6 to [0, 2^32-1] (reg compare: a 64-bit JGT immediate
      // cannot express the u32 max).
      .Ins(LdImm64(R8, 0xffffffffULL))
      .JmpRegTo(BPF_JGT, R6, R8, "out")
      // w6 += 8: the 64-bit interval [8, 2^32+7] crosses 2^32. The buggy
      // epilogue truncates both ends mod 2^32, gets [8, 7], "fixes" the
      // inversion to [0, 7]; the sound recomputation gives [0, 2^32-1].
      .Ins(Alu32Imm(BPF_ADD, R6, 8))
      .Ins(Alu64Reg(BPF_ADD, R0, R6))
      .Ins(LdxMem(BPF_DW, R1, R0, 0))  // 8 bytes at value + [0, 2^32-1]
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildSignExtExploit(int map_fd) {
  ProgramBuilder b("sign_ext", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      // Runtime zero-extends: r6 = 0xffffffff. The buggy verifier records
      // the sign-extended constant 0xffffffffffffffff.
      .Ins(Mov32Imm(R6, -1))
      // Runtime: 0xffffffff + 1 = 2^32, >> 28 = 16. Buggy: -1 + 1 = 0.
      .Ins(Alu64Imm(BPF_ADD, R6, 1))
      .Ins(Alu64Imm(BPF_RSH, R6, 28))
      .Ins(Alu64Reg(BPF_ADD, R0, R6))
      .Ins(LdxMem(BPF_DW, R1, R0, 0))  // 8 bytes at value + 16: off the end
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildJgtOffByOneExploit(int map_fd) {
  ProgramBuilder b("jgt_off_by_one", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(LdxMem(BPF_DW, R6, R0, 0))
      // Fall-through means r6 <= 9; the buggy refinement concludes r6 <= 8,
      // so 8-byte access at value + 9 (needs 17 <= 16) slips through.
      .JmpTo(BPF_JGT, R6, 9, "out")
      .Ins(Alu64Reg(BPF_ADD, R0, R6))
      .Ins(LdxMem(BPF_DW, R1, R0, 0))
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildTnumMulExploit(int map_fd) {
  ProgramBuilder b("tnum_mul", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(LdxMem(BPF_DW, R6, R0, 0))
      .Ins(Alu64Imm(BPF_AND, R6, 1))
      // r6 in {0, 24}. The buggy tnum mul keeps value*value and or-ed
      // masks: {0 * 24, 1 | 0} = bits {0,1}, claiming r6 <= 1.
      .Ins(Alu64Imm(BPF_MUL, R6, 24))
      .Ins(Alu64Reg(BPF_ADD, R0, R6))
      .Ins(LdxMem(BPF_DW, R1, R0, 0))  // 8 bytes at value + 24 into 16
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildPtrLeakExploit(int map_fd) {
  ProgramBuilder b("ptr_leak", ProgType::kSocketFilter);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Exit())  // r0 is a kernel address: leaked to userspace
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildDoubleSpinLock(int map_fd) {
  ProgramBuilder b("double_spin_lock", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R6, R0))
      .Ins(Mov64Reg(R1, R6))
      .Ins(CallHelper(kHelperSpinLock))
      .Ins(Mov64Reg(R1, R6))
      .Ins(CallHelper(kHelperSpinLock))  // self-deadlock
      .Ins(Mov64Reg(R1, R6))
      .Ins(CallHelper(kHelperSpinUnlock))
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildSkLookupNoRelease() {
  ProgramBuilder b("sk_lookup_no_release", ProgType::kXdp);
  b.Ins(Mov64Reg(R6, R1))
      // bpf_sock_tuple{src=10.0.0.1:8080, dst=10.0.0.2:40000} on the stack.
      .Ins(StMemImm(BPF_W, R10, -12, 0x0a000001))
      .Ins(StMemImm(BPF_W, R10, -8, 0x0a000002))
      .Ins(StMemImm(BPF_H, R10, -4, 8080))
      .Ins(StMemImm(BPF_H, R10, -2, 40000))
      .Ins(Mov64Reg(R1, R6))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -12))
      .Ins(Mov64Imm(R3, 12))
      .Ins(Mov64Imm(R4, 0))
      .Ins(Mov64Imm(R5, 0))
      .Ins(CallHelper(kHelperSkLookupTcp))
      // No bpf_sk_release: the reference leaks.
      .Ins(Mov64Imm(R0, 2))  // XDP_PASS
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildSkLookupWithRelease() {
  ProgramBuilder b("sk_lookup_with_release", ProgType::kXdp);
  b.Ins(Mov64Reg(R6, R1))
      .Ins(StMemImm(BPF_W, R10, -12, 0x0a000001))
      .Ins(StMemImm(BPF_W, R10, -8, 0x0a000002))
      .Ins(StMemImm(BPF_H, R10, -4, 8080))
      .Ins(StMemImm(BPF_H, R10, -2, 40000))
      .Ins(Mov64Reg(R1, R6))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -12))
      .Ins(Mov64Imm(R3, 12))
      .Ins(Mov64Imm(R4, 0))
      .Ins(Mov64Imm(R5, 0))
      .Ins(CallHelper(kHelperSkLookupTcp))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R1, R0))
      .Ins(CallHelper(kHelperSkRelease))
      .Bind("out")
      .Ins(Mov64Imm(R0, 2))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildGetTaskStackErrorPath() {
  ProgramBuilder b("get_task_stack_err", ProgType::kKprobe);
  b.Ins(CallHelper(kHelperGetCurrentTask))
      .Ins(Mov64Reg(R1, R0))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -8))
      .Ins(Mov64Imm(R3, 4))  // undersized: forces the helper error path
      .Ins(Mov64Imm(R4, 0))
      .Ins(CallHelper(kHelperGetTaskStack))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildTaskStorageNullOwner(int storage_fd) {
  ProgramBuilder b("task_storage_null", ProgType::kKprobe);
  b.Ins(LdMapFd(R1, storage_fd))
      .Ins(Mov64Imm(R2, 0))  // NULL task pointer
      .Ins(Mov64Imm(R3, 0))
      .Ins(Mov64Imm(R4, 1))  // CREATE
      .Ins(CallHelper(kHelperTaskStorageGet))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildArrayOverflowExploit(int map_fd, u32 hi_index) {
  ProgramBuilder b("array_overflow", ProgType::kKprobe);
  // Write a marker to the high index (its wrapped offset aliases a low
  // element under the defect), then read element 0 back.
  b.Ins(StMemImm(BPF_W, R10, -4, static_cast<s32>(hi_index)))
      .Ins(StMemImm(BPF_DW, R10, -16, 0x41414141))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(Mov64Reg(R3, R10))
      .Ins(Alu64Imm(BPF_ADD, R3, -16))
      .Ins(Mov64Imm(R4, 0))
      .Ins(CallHelper(kHelperMapUpdateElem))
      .Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(LdxMem(BPF_DW, R0, R0, 0))  // corruption witness
      .Ins(Exit())
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildJitHijackVictim() {
  ProgramBuilder b("jit_hijack_victim", ProgType::kKprobe);
  b.Ins(Mov64Imm(R6, 1))
      .JmpTo(BPF_JNE, R6, 0, "done");  // always taken; off > 15
  // 16 filler instructions, then a load through R8 — which is never
  // initialized on the (only) verified path. The corrupted JIT lands the
  // branch here.
  for (int i = 0; i < 16; ++i) {
    b.Ins(Mov64Imm(R7, i));
  }
  b.Ins(LdxMem(BPF_DW, R0, R8, 0))
      .Bind("done")
      .Ins(Mov64Imm(R0, 42))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildRegRegOffByOneExploit(int map_fd) {
  ProgramBuilder b("reg_reg_off_by_one", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R9, R0))
      .Ins(LdxMem(BPF_W, R8, R9, 8))
      .JmpTo(BPF_JGT, R8, 8, "out")  // r8 <= 8
      .Ins(LdxMem(BPF_W, R7, R9, 0))
      // Fall-through proves r7 < r8, hence r7 <= 7; the buggy refinement
      // claims r7 <= 6, so the 8-byte read at value + r7 + 50 (needs
      // r7 + 58 <= 64) slips through and r7 == 7 reads past the value.
      .JmpRegTo(BPF_JGE, R7, R8, "out")
      .Ins(Alu64Reg(BPF_ADD, R9, R7))
      .Ins(LdxMem(BPF_DW, R0, R9, 50))
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildSpillWidthExploit(int map_fd) {
  ProgramBuilder b("spill_width", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R9, R0))
      .Ins(LdxMem(BPF_DW, R6, R9, 0))
      .JmpTo(BPF_JGT, R6, 7, "out")       // r6 in [0, 7]
      .Ins(StxMem(BPF_DW, R10, R6, -8))   // full spill: slot tracks [0, 7]
      .Ins(StMemImm(BPF_B, R10, -8, 0x7f))  // narrow overwrite
      // A sound analysis demotes the slot and rejects the indexed access;
      // under the defect the fill restores [0, 7] although the runtime
      // value is now (r6 & ~0xff) | 0x7f.
      .Ins(LdxMem(BPF_DW, R7, R10, -8))
      .Ins(Alu64Reg(BPF_ADD, R9, R7))
      .Ins(LdxMem(BPF_B, R0, R9, 56))  // needs r7 <= 7 in a 64-byte value
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildPktRangeStaleExploit() {
  ProgramBuilder b("pkt_range_stale", ProgType::kSocketFilter);
  b.Ins(Mov64Reg(R6, R1))
      .Ins(LdxMem(BPF_DW, R7, R1, 8))   // data
      .Ins(LdxMem(BPF_DW, R3, R1, 16))  // data_end
      .Ins(Mov64Reg(R4, R7))
      .Ins(Alu64Imm(BPF_ADD, R4, 14))
      .JmpRegTo(BPF_JGT, R4, R3, "out")  // fall-through proves 14 bytes
      .Ins(LdxMem(BPF_B, R5, R7, 13))    // fine: inside the proven range
      .Ins(Mov64Reg(R1, R6))
      .Ins(Mov64Imm(R2, 0x8100))  // vlan proto
      .Ins(Mov64Imm(R3, 2))       // vlan tci
      .Ins(CallHelper(kHelperSkbVlanPush))  // reallocates packet data
      .Ins(LdxMem(BPF_B, R5, R7, 13))       // stale pointer: must reject
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildRelGuard(int map_fd) {
  ProgramBuilder b("rel_guard", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R9, R0))
      .Ins(LdxMem(BPF_W, R7, R9, 0))
      .Ins(LdxMem(BPF_W, R8, R9, 8))
      // The compare order is the point: r7 < r8 is learned while r8 is
      // still unbounded, and only afterwards does r8 <= 32 arrive. An
      // interval domain refines r7 against r8's endpoints *now* (useless:
      // r7 <= 2^32 - 2) and cannot revisit; the zone keeps r7 - r8 <= -1
      // and closes it with r8 <= 32 into r7 <= 31.
      .JmpRegTo(BPF_JGE, R7, R8, "out")
      .JmpTo(BPF_JGT, R8, 32, "out")
      .Ins(Alu64Reg(BPF_ADD, R9, R7))
      .Ins(LdxMem(BPF_B, R0, R9, 0))  // 1 byte at value + r7, r7 <= 31 < 64
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildSpillHeavy(u32 rounds, int map_fd) {
  ProgramBuilder b("spill_heavy", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R9, R0))
      .Ins(LdxMem(BPF_DW, R6, R9, 0))
      .JmpTo(BPF_JGT, R6, 7, "out");  // r6 in [0, 7]
  for (u32 i = 0; i < rounds; ++i) {
    const s16 off = static_cast<s16>(-8 * static_cast<s32>(i % 4 + 1));
    b.Ins(StxMem(BPF_DW, R10, R6, off))
        .Ins(LdxMem(BPF_DW, R7, R10, off))
        .Ins(Mov64Reg(R6, R7));  // the bound must survive every round trip
  }
  b.Ins(Alu64Reg(BPF_ADD, R9, R6))
      .Ins(LdxMem(BPF_B, R0, R9, 56))  // needs r6 <= 7 in a 64-byte value
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildRegRegDiamonds(u32 branches, int map_fd) {
  ProgramBuilder b("reg_reg_diamonds", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R9, R0))
      .Ins(LdxMem(BPF_DW, R6, R9, 0))
      .Ins(LdxMem(BPF_DW, R7, R9, 8))
      .Ins(Mov64Imm(R0, 0));
  // Each diamond refines r6/r7 against each other differently per edge, so
  // the joined-at-diamond-exit states rarely prune: verifier state count
  // grows with 2^branches while the dataflow fixpoint stays linear.
  for (u32 i = 0; i < branches; ++i) {
    const std::string lt = StrFormat("lt%u", i);
    const std::string join = StrFormat("join%u", i);
    b.JmpRegTo(BPF_JLT, R6, R7, lt)
        .Ins(Alu64Imm(BPF_ADD, R0, 1))
        .JaTo(join)
        .Bind(lt)
        .Ins(Alu64Imm(BPF_ADD, R0, 2))
        .Bind(join);
  }
  b.Bind("out").Ins(Mov64Imm(R0, 0)).Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildStraightLine(u32 len) {
  if (len < 2) {
    return xbase::InvalidArgument("need room for mov+exit");
  }
  ProgramBuilder b("straight_line", ProgType::kKprobe);
  b.Ins(Mov64Imm(R0, 0));
  for (u32 i = 0; i + 2 < len; ++i) {
    b.Ins(Alu64Imm(BPF_ADD, R0, 1));
  }
  b.Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildBranchDiamonds(u32 branches) {
  ProgramBuilder b("branch_diamonds", ProgType::kXdp);
  // r6 = packet length: an unknown scalar the verifier cannot fold, so
  // every diamond doubles the live path count.
  b.Ins(LdxMem(BPF_W, R6, R1, 0)).Ins(Mov64Imm(R0, 0));
  for (u32 i = 0; i < branches; ++i) {
    const std::string set = StrFormat("set%u", i);
    const std::string join = StrFormat("join%u", i);
    b.JmpTo(BPF_JSET, R6, static_cast<s32>(1u << (i % 16)), set)
        .Ins(Alu64Imm(BPF_ADD, R0, 1))
        .JaTo(join)
        .Bind(set)
        .Ins(Alu64Imm(BPF_ADD, R0, 2))
        .Bind(join);
  }
  b.Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildCountedLoop(u32 trip_count) {
  ProgramBuilder b("counted_loop", ProgType::kKprobe);
  b.Ins(Mov64Imm(R6, 0))
      .Ins(Mov64Imm(R0, 0))
      .Bind("top")
      .JmpTo(BPF_JGE, R6, static_cast<s32>(trip_count), "done")
      .Ins(Alu64Reg(BPF_ADD, R0, R6))
      .Ins(Alu64Imm(BPF_ADD, R6, 1))
      .JaTo("top")
      .Bind("done")
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildPacketCounter(int map_fd) {
  ProgramBuilder b("packet_counter", ProgType::kXdp);
  b.Ins(Mov64Reg(R6, R1))
      .Ins(LdxMem(BPF_DW, R2, R1, 8))   // data
      .Ins(LdxMem(BPF_DW, R3, R1, 16))  // data_end
      .Ins(Mov64Reg(R4, R2))
      .Ins(Alu64Imm(BPF_ADD, R4, 14))
      .JmpRegTo(BPF_JGT, R4, R3, "drop")  // runt frame: drop
      .Ins(LdxMem(BPF_B, R5, R2, 12))     // "protocol" byte
      .Ins(Alu64Imm(BPF_AND, R5, 3))
      .Ins(Mov64Reg(R7, R5))              // survive the helper call
      .Ins(StxMem(BPF_W, R10, R5, -4))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "verdict")
      .Ins(LdxMem(BPF_DW, R1, R0, 0))
      .Ins(Alu64Imm(BPF_ADD, R1, 1))
      .Ins(StxMem(BPF_DW, R0, R1, 0))
      .Bind("verdict")
      .JmpTo(BPF_JEQ, R7, 3, "drop")  // denylisted class
      .Ins(Mov64Imm(R0, 2))           // XDP_PASS
      .Ins(Exit())
      .Bind("drop")
      .Ins(Mov64Imm(R0, 1))  // XDP_DROP
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildSchedPickFirst() {
  ProgramBuilder b("sched_pick_first", ProgType::kSchedExt);
  b.Ins(Mov64Imm(R1, 0))
      .Ins(CallHelper(kHelperSchedPeekPid))
      .JmpTo(BPF_JEQ, R0, -1, "yield")  // empty visible set
      .Ins(Exit())
      .Bind("yield")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildSchedPickViaDefault() {
  ProgramBuilder b("sched_pick_via_default", ProgType::kSchedExt);
  b.Ins(CallHelper(kHelperSchedPickDefault))
      .JmpTo(BPF_JEQ, R0, -1, "yield")
      .Ins(Exit())
      .Bind("yield")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildSchedPickLongestWaiting() {
  ProgramBuilder b("sched_pick_longest_waiting", ProgType::kSchedExt);
  // r6 = index, r7 = visible count (capped at 16), r8 = best pid,
  // r9 = best wait. Helper calls clobber r1-r5, so the candidate pid is
  // spilled to fp-8 across the bpf_sched_wait_ns call.
  b.Ins(CallHelper(kHelperSchedNrRunnable))
      .Ins(Mov64Reg(R7, R0))
      .JmpTo(BPF_JEQ, R7, 0, "yield")
      .JmpTo(BPF_JLE, R7, 16, "cap_ok")
      .Ins(Mov64Imm(R7, 16))
      .Bind("cap_ok")
      .Ins(Mov64Imm(R6, 0))
      .Ins(Mov64Imm(R8, 0))
      .Ins(Mov64Imm(R9, 0))
      .Bind("loop")
      .JmpRegTo(BPF_JGE, R6, R7, "done")
      .Ins(Mov64Reg(R1, R6))
      .Ins(CallHelper(kHelperSchedPeekPid))
      .JmpTo(BPF_JEQ, R0, -1, "next")
      .Ins(StxMem(BPF_DW, R10, R0, -8))
      .Ins(Mov64Reg(R1, R0))
      .Ins(CallHelper(kHelperSchedWaitNs))
      .JmpTo(BPF_JEQ, R0, -1, "next")
      .JmpRegTo(BPF_JLT, R0, R9, "next")  // wait < best: keep current
      .Ins(Mov64Reg(R9, R0))
      .Ins(LdxMem(BPF_DW, R8, R10, -8))
      .Bind("next")
      .Ins(Alu64Imm(BPF_ADD, R6, 1))
      .JaTo("loop")
      .Bind("done")
      .JmpTo(BPF_JEQ, R8, 0, "yield")
      .Ins(Mov64Reg(R0, R8))
      .Ins(Exit())
      .Bind("yield")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildSchedDoublePick() {
  ProgramBuilder b("sched_double_pick", ProgType::kSchedExt);
  b.Ins(Mov64Imm(R1, 0))
      .Ins(CallHelper(kHelperSchedPeekPid))
      .JmpTo(BPF_JEQ, R0, -1, "yield")
      .Ins(Mov64Reg(R6, R0))
      .Ins(Mov64Reg(R1, R0))
      .Ins(CallHelper(kHelperSchedDequeue))  // the pick is gone by dispatch
      .Ins(Mov64Reg(R0, R6))
      .Ins(Exit())
      .Bind("yield")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildSchedPickConstant(u32 pid) {
  ProgramBuilder b(StrFormat("sched_pick_const_%u", pid),
                   ProgType::kSchedExt);
  b.Ins(Mov64Imm(R0, static_cast<s32>(pid))).Ins(Exit());
  return b.Build();
}

xbase::Result<Program> BuildSchedYield() {
  ProgramBuilder b("sched_yield", ProgType::kSchedExt);
  b.Ins(CallHelper(kHelperSchedYield))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build();
}

}  // namespace analysis

// Deterministic concurrency storm for the admission pipeline: a driver
// thread pumps rounds of asynchronous submissions — duplicate programs (to
// force coalescing), distinct programs, verifier-rejected programs, signed
// and rogue safex artifacts — at a live AdmissionService while toggling
// fault-registry defects mid-flight, then drains and checks the pipeline
// invariants after every round:
//
//   - every ticket resolved, admitted ids unique and findable;
//   - loader population matches the storm's own accounting;
//   - metrics conserve: submitted == completed == admitted + rejected,
//     cache hits + misses == program submissions, every miss published;
//   - at a settled fault epoch the (possibly cached) service verdict for a
//     corpus program is identical to a direct single-threaded Prepare —
//     status and verification stats both;
//   - unload of unattached programs always succeeds; the kernel is alive.
//
// The submission schedule is a pure function of the seed, so a failed CI
// run replays with `tools/admitstorm --seed N`. Worker interleavings are
// not reproducible — the invariants are chosen to hold under all of them
// (TSan owns the data-race half of the argument).
#pragma once

#include <string>

#include "src/ebpf/interp.h"
#include "src/xbase/types.h"

namespace analysis {

struct AdmitStormConfig {
  xbase::u64 seed = 1;
  xbase::u64 rounds = 16;
  xbase::u64 ops_per_round = 96;
  xbase::usize workers = 4;
  // Deliberately smaller than ops_per_round so the bounded queue's blocking
  // backpressure is exercised every round.
  xbase::usize queue_capacity = 32;
  bool cache_enabled = true;
  bool toggle_faults = true;
  // Engine for the post-drain execution probes. kThreaded additionally
  // cross-checks every probe against the legacy interpreter (r0 and insn
  // counts must agree).
  ebpf::ExecEngine engine = ebpf::ExecEngine::kThreaded;
};

struct AdmitStormStats {
  xbase::u64 rounds_executed = 0;
  xbase::u64 submissions = 0;       // bpf + ext, async storm only
  xbase::u64 bpf_submissions = 0;   // includes consistency probes
  xbase::u64 ext_submissions = 0;
  xbase::u64 admitted = 0;
  xbase::u64 rejected = 0;
  xbase::u64 unloads = 0;
  xbase::u64 fault_toggles = 0;
  xbase::u64 consistency_probes = 0;
  xbase::u64 exec_probes = 0;
  // Final pipeline metrics (from AdmissionService::Metrics()).
  xbase::u64 cache_hits = 0;
  xbase::u64 cache_misses = 0;
  xbase::u64 coalesced_waits = 0;
  xbase::u64 uncacheable = 0;
  xbase::u64 verify_runs = 0;
  xbase::u64 queue_depth_peak = 0;
};

struct AdmitStormReport {
  bool ok = false;
  xbase::u64 seed = 0;
  // On failure: which invariant broke, after which round's drain.
  std::string failure;
  xbase::u64 failed_at_round = 0;
  AdmitStormStats stats;
};

AdmitStormReport RunAdmitStorm(const AdmitStormConfig& config);

}  // namespace analysis

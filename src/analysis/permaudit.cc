#include "src/analysis/permaudit.h"

#include <memory>
#include <set>
#include <string>

#include "src/ebpf/asm.h"
#include "src/ebpf/jit.h"
#include "src/ebpf/loader.h"
#include "src/ebpf/verifier.h"
#include "src/xbase/strfmt.h"

namespace analysis {

using ebpf::ProgType;
using simkern::KernelVersion;
using staticcheck::AdmissionCell;
using staticcheck::ExpectedAdmission;
using staticcheck::PermLayer;
using staticcheck::PermReason;
using xbase::StrFormat;
using xbase::usize;

namespace {

// The minimal witness: call the helper, then exit. Verifier gate checks
// run before argument checks, so the witness never needs valid arguments —
// a gate denial and an argument denial are textually distinct.
ebpf::Program MakeWitness(xbase::u32 helper_id, ProgType type) {
  ebpf::Program prog;
  prog.name = StrFormat("perm-witness-%u", helper_id);
  prog.type = type;
  prog.insns = {ebpf::CallHelper(static_cast<xbase::s32>(helper_id)),
                ebpf::Exit()};
  return prog;
}

PermReason VerifierReasonFor(const ebpf::HelperSpec& spec,
                             KernelVersion version) {
  // The verifier checks version before family; attribute the dropped gate
  // in the same order.
  if (spec.introduced > version) {
    return PermReason::kVersion;
  }
  return PermReason::kFamily;
}

}  // namespace

std::string_view GateObservationName(GateObservation obs) {
  switch (obs) {
    case GateObservation::kAdmitted:
      return "admitted";
    case GateObservation::kVersionDenied:
      return "version-denied";
    case GateObservation::kFamilyDenied:
      return "family-denied";
  }
  return "unknown";
}

GateObservation ProbeVerifierGate(ebpf::Bpf& bpf, xbase::u32 helper_id,
                                  ProgType type, KernelVersion version) {
  const ebpf::Program witness = MakeWitness(helper_id, type);
  ebpf::VerifyOptions opts;
  opts.version = version;
  opts.privileged = true;  // isolate the gates from the privilege axis
  opts.faults = &bpf.faults();
  opts.kfuncs = &bpf.kfuncs();
  auto result = ebpf::Verify(witness, bpf.maps(), bpf.helpers(), opts);
  if (result.ok()) {
    return GateObservation::kAdmitted;
  }
  const std::string& message = result.status().message();
  if (message.find("(introduced in ") != std::string::npos) {
    return GateObservation::kVersionDenied;
  }
  if (message.find(" is restricted to ") != std::string::npos ||
      message.find(" is not available to ") != std::string::npos) {
    return GateObservation::kFamilyDenied;
  }
  return GateObservation::kAdmitted;  // rejected past the gates
}

bool ProbeRuntimeGateDenies(ebpf::Bpf& bpf, xbase::u32 helper_id,
                            ProgType type, KernelVersion version) {
  const ebpf::Program witness = MakeWitness(helper_id, type);
  ebpf::JitStats stats;
  const ebpf::DecodedImage image =
      ebpf::DecodeProgram(witness, &bpf.helpers(), &bpf.kfuncs(), &stats,
                          &version, &bpf.faults());
  return !image.calls.empty() && image.calls.front().gate_denied;
}

bool ProbeLoaderPrivilegeDenies(ebpf::Bpf& bpf, ProgType type,
                                bool privileged) {
  ebpf::Program prog;
  prog.name = "perm-priv-witness";
  prog.type = type;
  prog.insns = {ebpf::Mov64Imm(ebpf::R0, 0), ebpf::Exit()};
  ebpf::Loader loader(bpf);
  ebpf::LoadOptions opts;
  opts.privileged = privileged;
  opts.version_override = simkern::kV6_12;
  auto result = loader.Prepare(prog, opts);
  if (result.ok()) {
    return false;
  }
  return result.status().message().find("require a privileged loader") !=
         std::string::npos;
}

std::vector<KernelVersion> ProbeVersionsFor(const ebpf::HelperSpec& spec) {
  std::set<KernelVersion> versions(std::begin(simkern::kPlottedVersions),
                                   std::end(simkern::kPlottedVersions));
  versions.insert(spec.introduced);
  // The minor release immediately before introduction: the exact cell the
  // version-gate off-by-one defect wrongly admits.
  if (spec.introduced.minor > 0) {
    versions.insert(KernelVersion{spec.introduced.major,
                                  static_cast<xbase::u16>(
                                      spec.introduced.minor - 1)});
  } else if (spec.introduced.major > 0) {
    versions.insert(KernelVersion{
        static_cast<xbase::u16>(spec.introduced.major - 1), 99});
  }
  return {versions.begin(), versions.end()};
}

PermCensusReport RunPermCensus(ebpf::Bpf& bpf) {
  PermCensusReport report;
  const std::vector<const ebpf::HelperSpec*> specs = bpf.helpers().AllSpecs();
  report.stats.helpers = specs.size();
  report.stats.prog_types = ebpf::kProgTypeCount;

  // Loader layer: the privilege gate depends only on (type, privilege), so
  // probe each pair once and record at most one gap per pair.
  for (ProgType type : ebpf::kAllProgTypes) {
    for (bool privileged : {true, false}) {
      ++report.stats.loader_probes;
      const bool expected_denies =
          ebpf::ProgTypeRequiresPrivilege(type) && !privileged;
      const bool observed_denies =
          ProbeLoaderPrivilegeDenies(bpf, type, privileged);
      if (expected_denies == observed_denies) {
        continue;
      }
      PermGap gap;
      gap.cell = AdmissionCell{0, type, privileged, simkern::kV6_12};
      gap.layer = PermLayer::kLoader;
      gap.reason = PermReason::kPrivilege;
      gap.detail = StrFormat(
          "loader privilege gate: expected %s, observed %s for %s x %s",
          expected_denies ? "deny" : "allow",
          observed_denies ? "deny" : "allow",
          ebpf::ProgTypeName(type).data(), privileged ? "priv" : "unpriv");
      (expected_denies ? report.gaps : report.overblocks)
          .push_back(std::move(gap));
    }
  }

  // Verifier and runtime layers: the gates depend on (helper, type,
  // version) only, so probe each triple once; the cell counter still walks
  // the full cross product including the privilege axis.
  for (const ebpf::HelperSpec* spec : specs) {
    const std::vector<KernelVersion> versions = ProbeVersionsFor(*spec);
    for (ProgType type : ebpf::kAllProgTypes) {
      for (KernelVersion version : versions) {
        ++report.stats.verifier_probes;
        ++report.stats.runtime_probes;
        const GateObservation verifier_observed =
            ProbeVerifierGate(bpf, spec->id, type, version);
        const bool runtime_denies =
            ProbeRuntimeGateDenies(bpf, spec->id, type, version);
        for (bool privileged : {true, false}) {
          ++report.stats.cells;
          const ExpectedAdmission expected =
              staticcheck::ExpectedAdmissionFor(*spec, type, privileged,
                                                version);
          switch (expected.reason) {
            case PermReason::kAllowed:
              ++report.stats.expected_allows;
              break;
            case PermReason::kPrivilege:
              ++report.stats.expected_privilege_denials;
              break;
            case PermReason::kVersion:
              ++report.stats.expected_version_denials;
              break;
            case PermReason::kFamily:
              ++report.stats.expected_family_denials;
              break;
          }
          if (!privileged) {
            continue;  // gate comparison below is privilege-independent
          }
          const AdmissionCell cell{spec->id, type, privileged, version};
          if (expected.verifier_denies &&
              verifier_observed == GateObservation::kAdmitted) {
            PermGap gap;
            gap.cell = cell;
            gap.layer = PermLayer::kVerifier;
            gap.reason = VerifierReasonFor(*spec, version);
            gap.writes_state = spec->writes_state;
            gap.detail = StrFormat(
                "%s: contract denies (%s) but the verifier gate admitted "
                "%s%s",
                cell.ToString().c_str(),
                staticcheck::PermReasonName(gap.reason).data(),
                spec->name.c_str(), spec->writes_state
                    ? " [writes kernel state]" : "");
            report.gaps.push_back(std::move(gap));
          } else if (!expected.verifier_denies &&
                     verifier_observed != GateObservation::kAdmitted) {
            PermGap gap;
            gap.cell = cell;
            gap.layer = PermLayer::kVerifier;
            gap.reason = PermReason::kAllowed;
            gap.writes_state = spec->writes_state;
            gap.detail = StrFormat(
                "%s: contract allows but the verifier gate said %s",
                cell.ToString().c_str(),
                GateObservationName(verifier_observed).data());
            report.overblocks.push_back(std::move(gap));
          }
          if (expected.runtime_denies && !runtime_denies) {
            PermGap gap;
            gap.cell = cell;
            gap.layer = PermLayer::kRuntime;
            gap.reason = VerifierReasonFor(*spec, version);
            gap.writes_state = spec->writes_state;
            gap.detail = StrFormat(
                "%s: contract denies (%s) but dispatch would bind %s%s",
                cell.ToString().c_str(),
                staticcheck::PermReasonName(gap.reason).data(),
                spec->name.c_str(), spec->writes_state
                    ? " [writes kernel state]" : "");
            report.gaps.push_back(std::move(gap));
          } else if (!expected.runtime_denies && runtime_denies) {
            PermGap gap;
            gap.cell = cell;
            gap.layer = PermLayer::kRuntime;
            gap.reason = PermReason::kAllowed;
            gap.writes_state = spec->writes_state;
            gap.detail = StrFormat(
                "%s: contract allows but dispatch gate-denied the call",
                cell.ToString().c_str());
            report.overblocks.push_back(std::move(gap));
          }
        }
      }
    }
  }
  return report;
}

namespace {

struct PermRig {
  PermRig() {
    simkern::KernelConfig config;
    config.version = simkern::kV6_12;
    // The blanket unprivileged-bpf sysctl fires before the per-type
    // privilege gate; disable it so the probes observe the gate under
    // audit rather than the sysctl shadowing it.
    config.unprivileged_bpf_disabled = false;
    kernel = std::make_unique<simkern::Kernel>(config);
    bpf = std::make_unique<ebpf::Bpf>(*kernel);
  }

  std::unique_ptr<simkern::Kernel> kernel;
  std::unique_ptr<ebpf::Bpf> bpf;
};

std::string GapSummary(const PermCensusReport& report) {
  usize verifier = 0, runtime = 0, loader = 0;
  for (const PermGap& gap : report.gaps) {
    switch (gap.layer) {
      case PermLayer::kVerifier:
        ++verifier;
        break;
      case PermLayer::kRuntime:
        ++runtime;
        break;
      case PermLayer::kLoader:
        ++loader;
        break;
    }
  }
  return StrFormat("%zu gaps (verifier %zu, runtime %zu, loader %zu), "
                   "%zu overblocks over %zu cells",
                   report.gaps.size(), verifier, runtime, loader,
                   report.overblocks.size(), report.stats.cells);
}

// One fault leg of the matrix: inject `fault`, census, and require every
// gap to land in `layer` with `reason` (kAllowed = any reason); then clear
// the fault and require the rig to census clean again.
PermFaultCheck CheckFaultLeg(std::string_view fault, PermLayer layer,
                             PermReason reason) {
  PermFaultCheck check;
  check.name = std::string(fault);
  PermRig rig;
  rig.bpf->faults().Inject(fault);
  const PermCensusReport faulty = RunPermCensus(*rig.bpf);
  rig.bpf->faults().Clear(fault);
  if (faulty.gaps.empty()) {
    check.detail = "injected fault produced no census gap";
    return check;
  }
  for (const PermGap& gap : faulty.gaps) {
    if (gap.layer != layer) {
      check.detail = StrFormat(
          "gap misattributed to layer %s (expected %s): %s",
          staticcheck::PermLayerName(gap.layer).data(),
          staticcheck::PermLayerName(layer).data(), gap.detail.c_str());
      return check;
    }
    if (reason != PermReason::kAllowed && gap.reason != reason) {
      check.detail = StrFormat(
          "gap charged to the wrong gate %s (expected %s): %s",
          staticcheck::PermReasonName(gap.reason).data(),
          staticcheck::PermReasonName(reason).data(), gap.detail.c_str());
      return check;
    }
  }
  if (!faulty.overblocks.empty()) {
    check.detail = StrFormat("fault produced %zu spurious overblocks",
                             faulty.overblocks.size());
    return check;
  }
  const PermCensusReport after = RunPermCensus(*rig.bpf);
  if (!after.clean()) {
    check.detail =
        StrFormat("census still dirty after clearing the fault: %s",
                  GapSummary(after).c_str());
    return check;
  }
  check.passed = true;
  check.detail = GapSummary(faulty);
  return check;
}

}  // namespace

std::vector<PermFaultCheck> RunPermFaultChecks() {
  std::vector<PermFaultCheck> checks;

  {
    // Clean baseline: zero gaps, zero overblocks, full coverage.
    PermFaultCheck check;
    check.name = "clean.census";
    PermRig rig;
    const PermCensusReport report = RunPermCensus(*rig.bpf);
    check.passed = report.clean() &&
                   report.stats.helpers ==
                       rig.bpf->helpers().AllSpecs().size() &&
                   report.stats.cells > 0;
    check.detail = GapSummary(report);
    checks.push_back(std::move(check));
  }

  checks.push_back(CheckFaultLeg(ebpf::kFaultVerifierFamilyGateSkip,
                                 PermLayer::kVerifier, PermReason::kFamily));
  checks.push_back(CheckFaultLeg(ebpf::kFaultVerifierVersionGateOffByOne,
                                 PermLayer::kVerifier, PermReason::kVersion));
  checks.push_back(CheckFaultLeg(ebpf::kFaultRuntimeDispatchUnverified,
                                 PermLayer::kRuntime, PermReason::kAllowed));

  {
    // Closing baseline on a fresh rig: the matrix must not leave state
    // behind that poisons later censuses.
    PermFaultCheck check;
    check.name = "clean.recheck";
    PermRig rig;
    const PermCensusReport report = RunPermCensus(*rig.bpf);
    check.passed = report.clean();
    check.detail = GapSummary(report);
    checks.push_back(std::move(check));
  }
  return checks;
}

}  // namespace analysis

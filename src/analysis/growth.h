// Figures 2 and 4: growth of the verifier and of the helper interface over
// kernel versions/years. Both series are computed from the registries built
// in this repository — the verifier's version-gated feature table and the
// helper registry's introduction tags.
#pragma once

#include <vector>

#include "src/ebpf/helper.h"
#include "src/ebpf/verifier_features.h"
#include "src/simkern/version.h"

namespace analysis {

struct GrowthPoint {
  simkern::KernelVersion version;
  int year = 0;
  xbase::u64 value = 0;
};

// Figure 2: verifier LoC (Linux-attributed) by plotted version.
std::vector<GrowthPoint> VerifierLocSeries();
// Companion series: number of active verifier features/passes.
std::vector<GrowthPoint> VerifierFeatureSeries();

// Figure 4: number of helpers available by plotted version.
std::vector<GrowthPoint> HelperCountSeries(const ebpf::HelperRegistry& helpers);

// Average helpers added per two-year window over the series (the paper:
// "roughly 50 helper functions are added every two years").
double HelpersPerTwoYears(const std::vector<GrowthPoint>& series);

}  // namespace analysis

#include "src/analysis/growth.h"

namespace analysis {

using simkern::kPlottedVersions;
using simkern::KernelVersion;
using simkern::ReleaseYear;

std::vector<GrowthPoint> VerifierLocSeries() {
  std::vector<GrowthPoint> series;
  for (KernelVersion version : kPlottedVersions) {
    series.push_back(GrowthPoint{version, ReleaseYear(version),
                                 ebpf::VerifierLocAtVersion(version)});
  }
  return series;
}

std::vector<GrowthPoint> VerifierFeatureSeries() {
  std::vector<GrowthPoint> series;
  for (KernelVersion version : kPlottedVersions) {
    series.push_back(
        GrowthPoint{version, ReleaseYear(version),
                    ebpf::VerifierFeatureCountAtVersion(version)});
  }
  return series;
}

std::vector<GrowthPoint> HelperCountSeries(
    const ebpf::HelperRegistry& helpers) {
  std::vector<GrowthPoint> series;
  for (KernelVersion version : kPlottedVersions) {
    series.push_back(GrowthPoint{version, ReleaseYear(version),
                                 helpers.CountAtVersion(version)});
  }
  return series;
}

double HelpersPerTwoYears(const std::vector<GrowthPoint>& series) {
  if (series.size() < 2) {
    return 0;
  }
  const GrowthPoint& first = series.front();
  const GrowthPoint& last = series.back();
  const int years = last.year - first.year;
  if (years <= 0) {
    return 0;
  }
  return static_cast<double>(last.value - first.value) * 2.0 /
         static_cast<double>(years);
}

}  // namespace analysis

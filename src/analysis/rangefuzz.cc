#include "src/analysis/rangefuzz.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <set>
#include <span>
#include <string_view>
#include <utility>

#include "src/analysis/diffcheck.h"
#include "src/analysis/workloads.h"
#include "src/ebpf/asm.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/disasm.h"
#include "src/ebpf/interp.h"
#include "src/ebpf/loader.h"
#include "src/ebpf/verifier.h"
#include "src/staticcheck/check.h"
#include "src/xbase/strfmt.h"

namespace analysis {
namespace {

using namespace ebpf;  // NOLINT: assembler DSL (R0..R10, BPF_* opcodes)
using xbase::StrFormat;
using xbase::s16;
using xbase::s32;
using xbase::u32;
using xbase::u64;
using xbase::u8;
using xbase::usize;

// splitmix64: tiny, seedable, and identical everywhere — findings replay
// from the printed program seed alone.
struct Rng {
  u64 state;
  explicit Rng(u64 seed) : state(seed) {}
  u64 Next() {
    u64 z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  u64 Below(u64 n) { return n == 0 ? 0 : Next() % n; }
  bool Chance(u32 percent) { return Below(100) < percent; }
  template <typename T, usize N>
  T Pick(const T (&arr)[N]) {
    return arr[Below(N)];
  }
};

// Immediates biased toward the boundaries where range-analysis bugs live
// (powers of two, sign boundaries, 32/64-bit edges).
s32 BiasedImm(Rng& rng) {
  static const s32 kBoundary[] = {
      0,    1,    -1,   2,          7,
      8,    15,   16,   31,         32,
      63,   64,   255,  256,        4095,
      4096, -256, -255, 0x7ffffffe, 0x7fffffff,
      static_cast<s32>(0x80000000u), static_cast<s32>(0xffff0000u)};
  if (rng.Chance(60)) {
    return rng.Pick(kBoundary);
  }
  return static_cast<s32>(rng.Next());
}

u64 BiasedU64(Rng& rng) {
  static const u64 kBoundary[] = {0,
                                  1,
                                  2,
                                  7,
                                  255,
                                  4096,
                                  0x7fffffffULL,
                                  0x80000000ULL,
                                  0xffffffffULL,
                                  0x100000000ULL,
                                  0x7fffffffffffffffULL,
                                  0x8000000000000000ULL,
                                  0xfffffffffffffff8ULL,
                                  ~0ULL};
  if (rng.Chance(60)) {
    return rng.Pick(kBoundary);
  }
  return rng.Next();
}

constexpr u32 kFuzzValueSize = 64;
constexpr u8 kScalarPool[] = {R0, R1, R2, R3, R4, R5, R6, R7, R8};

// One seeded random program. Shape: map-lookup prologue that seeds R6/R7
// with unknown 64-bit scalars and R8 with an unknown u32, constant pool in
// R0..R5, then `body_len` random single-slot ALU / forward-branch / stack /
// map-access instructions (so a branch skipping k instructions is exactly
// `off = k`). Every program is memory-safe by construction: R9 stays the
// map-value pointer, all accesses use constant in-bounds offsets.
xbase::Result<Program> GenProgram(Rng& rng, int map_fd, u32 body_len,
                                  const std::string& name) {
  ProgramBuilder b(name, ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, map_fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R9, R0))
      .Ins(LdxMem(BPF_DW, R6, R9, 0))
      .Ins(LdxMem(BPF_DW, R7, R9, 8))
      .Ins(LdxMem(BPF_W, R8, R9, 16));
  for (const u8 reg : {R0, R1, R2, R3, R4, R5}) {
    if (rng.Chance(50)) {
      b.Ins(Mov64Imm(reg, BiasedImm(rng)));
    } else {
      b.Ins(LdImm64(reg, BiasedU64(rng)));
    }
  }

  static const u8 kRegOps[] = {BPF_ADD, BPF_SUB, BPF_MUL,
                               BPF_AND, BPF_OR,  BPF_XOR};
  static const u8 kImmOps[] = {BPF_ADD, BPF_SUB, BPF_MUL, BPF_AND,
                               BPF_OR,  BPF_XOR, BPF_DIV, BPF_MOD,
                               BPF_LSH, BPF_RSH, BPF_ARSH};
  static const u8 kJmpOps[] = {BPF_JEQ,  BPF_JNE,  BPF_JGT, BPF_JGE,
                               BPF_JLT,  BPF_JLE,  BPF_JSGT, BPF_JSGE,
                               BPF_JSLT, BPF_JSLE, BPF_JSET};
  static const u8 kSizes[] = {BPF_B, BPF_H, BPF_W, BPF_DW};

  u32 branches = 0;
  bool spilled[4] = {false, false, false, false};
  for (u32 i = 0; i < body_len; ++i) {
    const u32 remaining = body_len - i - 1;
    const u8 dst = rng.Pick(kScalarPool);
    const u8 src = rng.Pick(kScalarPool);
    const bool is64 = rng.Chance(60);
    const u32 pick = static_cast<u32>(rng.Below(100));
    if (pick < 15 && branches < 6 && remaining >= 1) {
      ++branches;
      const u8 op = rng.Pick(kJmpOps);
      const s16 off =
          static_cast<s16>(1 + rng.Below(std::min<u32>(4, remaining)));
      switch (rng.Below(4)) {
        case 0:
          b.Ins(JmpImm(op, dst, BiasedImm(rng), off));
          break;
        case 1:
          b.Ins(JmpReg(op, dst, src, off));
          break;
        case 2:
          b.Ins(Jmp32Imm(op, dst, BiasedImm(rng), off));
          break;
        default:
          b.Ins(Jmp32Reg(op, dst, src, off));
          break;
      }
    } else if (pick < 45) {
      const u8 op = rng.Pick(kImmOps);
      s32 imm = BiasedImm(rng);
      if (op == BPF_LSH || op == BPF_RSH || op == BPF_ARSH) {
        imm = static_cast<s32>(rng.Below(is64 ? 64 : 32));
      } else if ((op == BPF_DIV || op == BPF_MOD) && imm == 0) {
        imm = 7;
      }
      b.Ins(is64 ? Alu64Imm(op, dst, imm) : Alu32Imm(op, dst, imm));
    } else if (pick < 70) {
      const u8 op = rng.Pick(kRegOps);
      b.Ins(is64 ? Alu64Reg(op, dst, src) : Alu32Reg(op, dst, src));
    } else if (pick < 78) {
      if (rng.Chance(40)) {
        b.Ins(is64 ? Mov64Imm(dst, BiasedImm(rng))
                   : Mov32Imm(dst, BiasedImm(rng)));
      } else if (rng.Chance(70)) {
        b.Ins(is64 ? Mov64Reg(dst, src) : Mov32Reg(dst, src));
      } else {
        b.Ins(Neg64(dst));
      }
    } else if (pick < 88) {
      const u32 slot = static_cast<u32>(rng.Below(4));
      const s16 off = static_cast<s16>(-8 * static_cast<s32>(slot + 1));
      if (!spilled[slot] || rng.Chance(50)) {
        b.Ins(StxMem(BPF_DW, R10, dst, off));
        spilled[slot] = true;
      } else if (rng.Chance(30)) {
        // Narrow scribble over a live spill slot: both analyses must
        // demote the slot (the spill-width invariant under fuzz).
        b.Ins(StxMem(rng.Chance(50) ? BPF_B : BPF_W, R10, dst, off));
      } else {
        b.Ins(LdxMem(BPF_DW, dst, R10, off));
      }
    } else {
      const u8 size = rng.Pick(kSizes);
      const u32 bytes = SizeBytes(size);
      const s16 off =
          static_cast<s16>(rng.Below(kFuzzValueSize / bytes) * bytes);
      if (rng.Chance(50)) {
        b.Ins(LdxMem(size, dst, R9, off));
      } else {
        b.Ins(StxMem(size, R9, dst, off));
      }
    }
  }
  b.Bind("out").Ins(Mov64Imm(R0, 0)).Ins(Exit());
  return b.Build();
}

// One kernel + BPF stack per fuzzed program, so map state and injected
// faults cannot bleed across programs.
struct FuzzCell {
  FuzzCell() : kernel(simkern::KernelConfig{}), bpf(kernel) {
    boot_ok = kernel.BootstrapWorkload().ok();
    auto ctx_or =
        kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                         simkern::RegionKind::kKernelData, "rangefuzz-ctx");
    if (ctx_or.ok()) {
      ctx = ctx_or.value();
    } else {
      boot_ok = false;
    }
  }

  xbase::Result<int> CreateMap(u32 value_size) {
    MapSpec spec;
    spec.type = MapType::kArray;
    spec.key_size = 4;
    spec.value_size = value_size;
    spec.max_entries = 1;
    spec.name = "rangefuzz";
    return bpf.maps().Create(spec);
  }

  xbase::Status SetValue(int fd, std::span<const u8> value) {
    XB_ASSIGN_OR_RETURN(Map * map, bpf.maps().Find(fd));
    const u32 key = 0;
    return map->Update(
        kernel,
        std::span<const u8>(reinterpret_cast<const u8*>(&key), sizeof(key)),
        value, kBpfAny);
  }

  simkern::Kernel kernel;
  Bpf bpf;
  simkern::Addr ctx = 0;
  bool boot_ok = false;
};

// Oracles 1 and 2: the two static analyses with their range traces. A
// rejected verification or an incomplete fixpoint empties the matching
// trace — partial claims cover only the paths walked before the bail-out,
// and checking concrete values against them would flag phantom escapes.
struct OracleRun {
  bool verifier_accepted = false;
  bool static_complete = false;
  usize static_errors = 0;
  RangeTrace static_trace;
  RangeTrace verifier_trace;
};

OracleRun RunStaticOracles(FuzzCell& cell, const Program& prog,
                           const FaultRegistry* faults) {
  OracleRun run;
  VerifyOptions vopts;
  vopts.version = cell.kernel.version();
  vopts.faults = faults;
  vopts.kfuncs = &cell.bpf.kfuncs();
  vopts.range_trace = &run.verifier_trace;
  run.verifier_accepted =
      Verify(prog, cell.bpf.maps(), cell.bpf.helpers(), vopts).ok();
  if (!run.verifier_accepted) {
    run.verifier_trace.Reset(0);
  }

  staticcheck::CheckOptions copts;
  copts.maps = &cell.bpf.maps();
  copts.helpers = &cell.bpf.helpers();
  copts.callgraph = &cell.kernel.callgraph();
  copts.range_trace = &run.static_trace;
  auto report = staticcheck::RunChecks(prog, copts);
  if (report.ok()) {
    run.static_complete = report.value().analysis_complete;
    run.static_errors = report.value().errors();
  }
  if (!run.static_complete) {
    run.static_trace.Reset(0);
  }
  return run;
}

// Oracle 3: checks every concrete register value the interpreter produces
// against both analyses' claims at that pc.
class ClaimChecker : public InsnTracer {
 public:
  struct Escape {
    u32 pc = 0;
    u8 reg = 0;
    u64 value = 0;
    RegClaim claim;
  };

  // A concrete register-pair difference outside a claimed bound: the
  // relational analog of Escape.
  struct RelEscape {
    u32 pc = 0;
    u8 i = 0;
    u8 j = 0;
    u64 vi = 0;
    u64 vj = 0;
    s64 bound = 0;  // violated claim: ri - rj <= bound
  };

  ClaimChecker(const RangeTrace& static_trace,
               const RangeTrace& verifier_trace, RangeFuzzStats* stats)
      : static_(static_trace), verifier_(verifier_trace), stats_(stats) {}

  void OnInsn(u32 pc, const u64* regs) override {
    if (pc >= executed_pcs_.size()) {
      executed_pcs_.resize(pc + 1, false);
    }
    executed_pcs_[pc] = true;
    Check(static_, pc, regs, static_escapes_, seen_static_);
    Check(verifier_, pc, regs, verifier_escapes_, seen_verifier_);
    CheckRel(static_, pc, regs, static_rel_escapes_, seen_static_rel_);
    CheckRel(verifier_, pc, regs, verifier_rel_escapes_, seen_verifier_rel_);
  }

  // Pcs at least one concrete execution reached; claims elsewhere are
  // vacuously true and excluded from the divergence comparison.
  const std::vector<bool>& executed_pcs() const { return executed_pcs_; }

  const std::vector<Escape>& static_escapes() const {
    return static_escapes_;
  }
  const std::vector<Escape>& verifier_escapes() const {
    return verifier_escapes_;
  }
  const std::vector<RelEscape>& static_rel_escapes() const {
    return static_rel_escapes_;
  }
  const std::vector<RelEscape>& verifier_rel_escapes() const {
    return verifier_rel_escapes_;
  }

 private:
  void Check(const RangeTrace& trace, u32 pc, const u64* regs,
             std::vector<Escape>& out, std::set<u32>& seen) {
    if (pc >= trace.per_pc.size()) {
      return;
    }
    for (u32 reg = 0; reg < kNumRegs; ++reg) {
      const RegClaim& claim = trace.per_pc[pc][reg];
      if (claim.kind != RegClaim::Kind::kScalar) {
        continue;
      }
      ++stats_->points_checked;
      if (claim.Admits(regs[reg])) {
        continue;
      }
      const u32 key = pc * kNumRegs + reg;
      if (!seen.insert(key).second || out.size() >= 4) {
        continue;
      }
      out.push_back({pc, static_cast<u8>(reg), regs[reg], claim});
    }
  }

  // Relational claims speak about the mathematical s64 views of the
  // registers; a difference outside a finite bound is an unsoundness
  // witness exactly like a scalar escape.
  void CheckRel(const RangeTrace& trace, u32 pc, const u64* regs,
                std::vector<RelEscape>& out, std::set<u32>& seen) {
    if (pc >= trace.rel_per_pc.size()) {
      return;
    }
    const RelClaims& claims = trace.rel_per_pc[pc];
    if (!claims.seen) {
      return;
    }
    for (int i = 0; i < kRelRegs; ++i) {
      for (int j = 0; j < kRelRegs; ++j) {
        if (i == j) {
          continue;
        }
        const s64 bound = claims.At(i, j);
        if (bound == kRelInf) {
          continue;
        }
        ++stats_->rel_points_checked;
        const __int128 diff =
            static_cast<__int128>(static_cast<s64>(regs[i])) -
            static_cast<__int128>(static_cast<s64>(regs[j]));
        if (diff <= static_cast<__int128>(bound)) {
          continue;
        }
        const u32 key =
            (pc * static_cast<u32>(kRelRegs) + static_cast<u32>(i)) *
                static_cast<u32>(kRelRegs) +
            static_cast<u32>(j);
        if (!seen.insert(key).second || out.size() >= 4) {
          continue;
        }
        out.push_back({pc, static_cast<u8>(i), static_cast<u8>(j), regs[i],
                       regs[j], bound});
      }
    }
  }

  const RangeTrace& static_;
  const RangeTrace& verifier_;
  RangeFuzzStats* stats_;
  std::vector<bool> executed_pcs_;
  std::vector<Escape> static_escapes_;
  std::vector<Escape> verifier_escapes_;
  std::vector<RelEscape> static_rel_escapes_;
  std::vector<RelEscape> verifier_rel_escapes_;
  std::set<u32> seen_static_;
  std::set<u32> seen_verifier_;
  std::set<u32> seen_static_rel_;
  std::set<u32> seen_verifier_rel_;
};

u64 ExecuteWithChecker(FuzzCell& cell, const Program& prog,
                       ClaimChecker& checker) {
  LoadedProgram loaded;
  loaded.source = prog;
  loaded.image = prog;  // interp resolves map-fd pseudo loads at runtime
  ExecOptions eopts;
  eopts.max_insns = 1u << 20;
  eopts.tracer = &checker;
  auto result = Execute(cell.bpf, loaded, cell.ctx, eopts, nullptr);
  // A runtime fault (possible only under injected verifier defects) ends
  // the execution; the escapes observed before it stand.
  return result.ok() ? result.value().stats.insns : 0;
}

std::string EscapeDetail(const ClaimChecker::Escape& esc,
                         std::string_view analysis) {
  return StrFormat("r%u = %llu (0x%llx) escapes %s claim %s",
                   static_cast<unsigned>(esc.reg),
                   static_cast<unsigned long long>(esc.value),
                   static_cast<unsigned long long>(esc.value),
                   std::string(analysis).c_str(),
                   esc.claim.ToString().c_str());
}

std::string RelEscapeDetail(const ClaimChecker::RelEscape& esc,
                            std::string_view analysis) {
  const s64 vi = static_cast<s64>(esc.vi);
  const s64 vj = static_cast<s64>(esc.vj);
  return StrFormat(
      "r%u - r%u = %lld - %lld escapes %s bound r%u-r%u<=%lld",
      static_cast<unsigned>(esc.i), static_cast<unsigned>(esc.j),
      static_cast<long long>(vi), static_cast<long long>(vj),
      std::string(analysis).c_str(), static_cast<unsigned>(esc.i),
      static_cast<unsigned>(esc.j), static_cast<long long>(esc.bound));
}

}  // namespace

std::string_view RangeFindingKindName(RangeFinding::Kind kind) {
  switch (kind) {
    case RangeFinding::Kind::kStaticUnsound:
      return "STATICCHECK-UNSOUND";
    case RangeFinding::Kind::kVerifierUnsound:
      return "VERIFIER-UNSOUND";
    case RangeFinding::Kind::kDivergence:
      return "DIVERGENCE";
    case RangeFinding::Kind::kStaticRelUnsound:
      return "STATICCHECK-REL-UNSOUND";
    case RangeFinding::Kind::kVerifierRelUnsound:
      return "VERIFIER-REL-UNSOUND";
    case RangeFinding::Kind::kRelDivergence:
      return "REL-DIVERGENCE";
  }
  return "?";
}

bool RangeFuzzReport::StaticUnsound() const {
  for (const RangeFinding& f : findings) {
    if (f.kind == RangeFinding::Kind::kStaticUnsound ||
        f.kind == RangeFinding::Kind::kStaticRelUnsound) {
      return true;
    }
  }
  return false;
}

bool RangeFuzzReport::VerifierUnsound() const {
  for (const RangeFinding& f : findings) {
    if (f.kind == RangeFinding::Kind::kVerifierUnsound ||
        f.kind == RangeFinding::Kind::kVerifierRelUnsound) {
      return true;
    }
  }
  return false;
}

std::vector<u64> FuzzProgramSeeds(u64 master_seed, u32 count) {
  Rng scheduler(master_seed);
  std::vector<u64> seeds(count);
  for (u64& seed : seeds) {
    seed = scheduler.Next();
  }
  return seeds;
}

xbase::Result<Program> BuildFuzzProgram(u64 program_seed, int map_fd,
                                        u32 body_len,
                                        const std::string& name) {
  Rng rng(program_seed);
  return GenProgram(rng, map_fd, body_len, name);
}

static_assert(kRangeFuzzValueSize == kFuzzValueSize,
              "exported value size must match the generator's");

xbase::Result<RangeFuzzReport> RunRangeFuzz(const RangeFuzzOptions& opts) {
  RangeFuzzReport report;
  Rng scheduler(opts.seed);
  FaultRegistry faults;
  for (const std::string& id : opts.verifier_faults) {
    faults.Inject(id);
  }
  const FaultRegistry* faults_ptr =
      opts.verifier_faults.empty() ? nullptr : &faults;

  const u32 programs =
      opts.replay_program_seed != 0 ? 1 : opts.programs;
  for (u32 i = 0; i < programs; ++i) {
    const u64 program_seed = opts.replay_program_seed != 0
                                 ? opts.replay_program_seed
                                 : scheduler.Next();
    Rng rng(program_seed);
    FuzzCell cell;
    if (!cell.boot_ok) {
      return xbase::Internal("rangefuzz: cell bootstrap failed");
    }
    XB_ASSIGN_OR_RETURN(int fd, cell.CreateMap(kFuzzValueSize));
    XB_ASSIGN_OR_RETURN(
        Program prog,
        GenProgram(rng, fd, opts.body_len,
                   StrFormat("fuzz_%llu",
                             static_cast<unsigned long long>(program_seed))));
    ++report.stats.programs;

    OracleRun run = RunStaticOracles(cell, prog, faults_ptr);
    if (run.verifier_accepted) {
      ++report.stats.verifier_accepted;
    }
    if (run.static_complete) {
      ++report.stats.staticcheck_complete;
    }

    ClaimChecker checker(run.static_trace, run.verifier_trace,
                         &report.stats);
    for (u32 e = 0; e < opts.execs; ++e) {
      std::array<u8, kFuzzValueSize> value;
      for (u32 off = 0; off < kFuzzValueSize; off += 8) {
        const u64 word = BiasedU64(rng);
        std::memcpy(value.data() + off, &word, sizeof(word));
      }
      XB_RETURN_IF_ERROR(cell.SetValue(fd, value));
      report.stats.exec_insns += ExecuteWithChecker(cell, prog, checker);
      ++report.stats.executions;
    }

    const auto add_finding = [&](RangeFinding::Kind kind, u32 pc, u8 reg,
                                 std::string detail) {
      if (report.findings.size() >= opts.max_findings) {
        return;
      }
      RangeFinding finding;
      finding.kind = kind;
      finding.program_seed = program_seed;
      finding.prog_index = i;
      finding.pc = pc;
      finding.reg = reg;
      finding.detail = std::move(detail);
      finding.disasm = DisasmProgram(prog);
      report.findings.push_back(std::move(finding));
    };
    for (const auto& esc : checker.static_escapes()) {
      add_finding(RangeFinding::Kind::kStaticUnsound, esc.pc, esc.reg,
                  EscapeDetail(esc, "staticcheck"));
    }
    for (const auto& esc : checker.verifier_escapes()) {
      add_finding(RangeFinding::Kind::kVerifierUnsound, esc.pc, esc.reg,
                  EscapeDetail(esc, "verifier"));
    }
    for (const auto& esc : checker.static_rel_escapes()) {
      add_finding(RangeFinding::Kind::kStaticRelUnsound, esc.pc, esc.i,
                  RelEscapeDetail(esc, "staticcheck"));
    }
    for (const auto& esc : checker.verifier_rel_escapes()) {
      add_finding(RangeFinding::Kind::kVerifierRelUnsound, esc.pc, esc.i,
                  RelEscapeDetail(esc, "verifier"));
    }

    if (run.verifier_accepted && run.static_complete) {
      const RangeCompareResult cmp = CompareRangeTraces(
          run.static_trace, run.verifier_trace, &checker.executed_pcs());
      report.stats.points_compared += cmp.points;
      report.stats.width_ratio_sum += cmp.width_ratio_sum;
      report.stats.disjoint_points += cmp.disjoint;
      for (const RangeDisagreement& d : cmp.disagreements) {
        add_finding(RangeFinding::Kind::kDivergence, d.pc, d.reg,
                    StrFormat("staticcheck %s vs verifier %s",
                              d.staticcheck.ToString().c_str(),
                              d.verifier.ToString().c_str()));
      }
      const RelCompareResult relcmp = CompareRelTraces(
          run.static_trace, run.verifier_trace, &checker.executed_pcs());
      report.stats.rel_points_compared += relcmp.points;
      report.stats.rel_contradictions += relcmp.contradictions;
      for (const RelDisagreement& d : relcmp.disagreements) {
        add_finding(
            RangeFinding::Kind::kRelDivergence, d.pc, d.i,
            StrFormat("staticcheck r%u-r%u<=%lld vs verifier r%u-r%u<=%lld",
                      static_cast<unsigned>(d.i), static_cast<unsigned>(d.j),
                      static_cast<long long>(d.static_bound),
                      static_cast<unsigned>(d.j), static_cast<unsigned>(d.i),
                      static_cast<long long>(d.verifier_rev_bound)));
      }
    }
  }
  return report;
}

std::string FormatRangeFuzzReport(const RangeFuzzReport& report) {
  const RangeFuzzStats& st = report.stats;
  std::string out = StrFormat(
      "rangefuzz: %u programs (%u verifier-accepted, %u staticcheck-"
      "complete), %llu executions, %llu insns interpreted\n"
      "  concrete claim checks: %llu   static claim pairs compared: %llu "
      "(%llu disjoint)\n"
      "  relational bound checks: %llu   bound pairs cross-checked: %llu "
      "(%llu contradictory)\n"
      "  mean interval width ratio staticcheck/verifier: %.3f\n",
      st.programs, st.verifier_accepted, st.staticcheck_complete,
      static_cast<unsigned long long>(st.executions),
      static_cast<unsigned long long>(st.exec_insns),
      static_cast<unsigned long long>(st.points_checked),
      static_cast<unsigned long long>(st.points_compared),
      static_cast<unsigned long long>(st.disjoint_points),
      static_cast<unsigned long long>(st.rel_points_checked),
      static_cast<unsigned long long>(st.rel_points_compared),
      static_cast<unsigned long long>(st.rel_contradictions),
      st.MeanWidthRatio());
  if (report.findings.empty()) {
    out += "  no unsoundness, no divergence\n";
    return out;
  }
  for (const RangeFinding& f : report.findings) {
    out += StrFormat(
        "FINDING %s prog=%u pc=%u r%u: %s\n  replay: rangefuzz --replay "
        "%llu --execs 64\n",
        std::string(RangeFindingKindName(f.kind)).c_str(), f.prog_index,
        f.pc, static_cast<unsigned>(f.reg), f.detail.c_str(),
        static_cast<unsigned long long>(f.program_seed));
    out += f.disasm;
  }
  return out;
}

xbase::Result<std::vector<RangeFaultResult>> CheckRangeFaults(u32 execs) {
  struct Witness {
    std::string_view fault_id;
    const char* name;
    xbase::Result<Program> (*build)(int);
    u64 value_word0;  // first 8 bytes of the 16-byte map value (LE)
  };
  // Triggering inputs: alu32-trunc reads a u32 (0x100 + 8 = 264 escapes
  // the truncated [0,7]); jgt needs exactly the off-by-one value 9;
  // tnum-mul needs an odd word so (r & 1) * 24 lands on 24; sign-ext
  // triggers independently of the map value.
  static const Witness kWitnesses[] = {
      {kFaultVerifierAlu32BoundsTrunc, "alu32-trunc-oob",
       BuildAlu32TruncExploit, 0x100},
      {kFaultVerifierSignExtConfusion, "sign-ext-oob", BuildSignExtExploit,
       0},
      {kFaultVerifierJgtOffByOne, "jgt-off-by-one", BuildJgtOffByOneExploit,
       9},
      {kFaultVerifierTnumMulPrecision, "tnum-mul-oob", BuildTnumMulExploit,
       1},
  };

  std::vector<RangeFaultResult> rows;
  for (const Witness& witness : kWitnesses) {
    RangeFaultResult row;
    row.fault_id = std::string(witness.fault_id);
    row.witness = witness.name;

    FuzzCell cell;
    if (!cell.boot_ok) {
      return xbase::Internal("rangefuzz: cell bootstrap failed");
    }
    XB_ASSIGN_OR_RETURN(int fd, cell.CreateMap(16));
    XB_ASSIGN_OR_RETURN(Program prog, witness.build(fd));

    {
      VerifyOptions vopts;
      vopts.version = cell.kernel.version();
      vopts.kfuncs = &cell.bpf.kfuncs();
      row.clean_verifier_rejects =
          !Verify(prog, cell.bpf.maps(), cell.bpf.helpers(), vopts).ok();
    }

    FaultRegistry faults;
    faults.Inject(witness.fault_id);
    RangeTrace verifier_trace;
    {
      VerifyOptions vopts;
      vopts.version = cell.kernel.version();
      vopts.kfuncs = &cell.bpf.kfuncs();
      vopts.faults = &faults;
      vopts.range_trace = &verifier_trace;
      row.faulted_verifier_accepts =
          Verify(prog, cell.bpf.maps(), cell.bpf.helpers(), vopts).ok();
      if (!row.faulted_verifier_accepts) {
        verifier_trace.Reset(0);
      }
    }

    RangeTrace static_trace;
    {
      staticcheck::CheckOptions copts;
      copts.maps = &cell.bpf.maps();
      copts.helpers = &cell.bpf.helpers();
      copts.callgraph = &cell.kernel.callgraph();
      copts.range_trace = &static_trace;
      auto report = staticcheck::RunChecks(prog, copts);
      if (report.ok()) {
        row.staticcheck_rejects = report.value().errors() > 0;
        if (!report.value().analysis_complete) {
          static_trace.Reset(0);
        }
      }
    }

    row.witness_divergence =
        CompareRangeTraces(static_trace, verifier_trace).disjoint > 0;

    RangeFuzzStats scratch;
    ClaimChecker checker(static_trace, verifier_trace, &scratch);
    std::array<u8, 16> value{};
    std::memcpy(value.data(), &witness.value_word0,
                sizeof(witness.value_word0));
    XB_RETURN_IF_ERROR(cell.SetValue(fd, value));
    for (u32 e = 0; e < std::max<u32>(execs, 1); ++e) {
      ExecuteWithChecker(cell, prog, checker);
    }
    row.witness_unsound = !checker.verifier_escapes().empty();
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string FormatRangeFaultTable(const std::vector<RangeFaultResult>& rows) {
  std::string out = StrFormat("%-36s %-18s %7s %7s %8s %8s %8s  %s\n",
                              "injected range fault", "witness", "cleanV",
                              "faultV", "unsound", "diverge", "detected",
                              "staticcheck");
  out += std::string(110, '-') + "\n";
  usize detected = 0;
  for (const RangeFaultResult& row : rows) {
    detected += row.detected() ? 1 : 0;
    out += StrFormat("%-36s %-18s %7s %7s %8s %8s %8s  %s\n",
                     row.fault_id.c_str(), row.witness.c_str(),
                     row.clean_verifier_rejects ? "reject" : "accept",
                     row.faulted_verifier_accepts ? "accept" : "reject",
                     row.witness_unsound ? "YES" : "no",
                     row.witness_divergence ? "YES" : "no",
                     row.detected() ? "YES" : "NO",
                     row.staticcheck_rejects ? "reject" : "accept");
  }
  out += std::string(110, '-') + "\n";
  out += StrFormat("injected range faults detected: %zu/%zu\n", detected,
                   rows.size());
  for (const RangeFaultResult& row : rows) {
    out += StrFormat("RANGEFAULT-TSV\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
                     row.fault_id.c_str(), row.witness.c_str(),
                     row.clean_verifier_rejects ? 1 : 0,
                     row.faulted_verifier_accepts ? 1 : 0,
                     row.witness_unsound ? 1 : 0,
                     row.witness_divergence ? 1 : 0,
                     row.detected() ? 1 : 0,
                     row.staticcheck_rejects ? 1 : 0);
  }
  return out;
}

namespace {

// BuildPktRangeStaleExploit takes no map; adapter for the witness table.
xbase::Result<Program> BuildPktStaleAdapter(int) {
  return BuildPktRangeStaleExploit();
}

}  // namespace

xbase::Result<std::vector<RelFaultResult>> CheckRelationalFaults(u32 execs) {
  struct Witness {
    std::string_view fault_id;
    const char* name;
    xbase::Result<Program> (*build)(int);
    bool needs_map;
    u64 value_word0;  // bytes 0-7 of the 64-byte map value (LE)
    u64 value_word1;  // bytes 8-15
  };
  // Triggering inputs: reg-reg needs r8 == 8 (u32 at offset 8) and the
  // one-excluded value r7 == 7; spill-width needs a small spilled value
  // whose low byte the narrow store replaces with 0x7f; the packet witness
  // triggers statically (the stale dereference is in the bytecode).
  static const Witness kWitnesses[] = {
      {kFaultVerifierRegRegOffByOne, "reg-reg-off-by-one",
       BuildRegRegOffByOneExploit, true, 7, 8},
      {kFaultVerifierSpillWidth, "spill-width", BuildSpillWidthExploit, true,
       1, 0},
      {kFaultVerifierPktRangeStale, "pkt-range-stale", BuildPktStaleAdapter,
       false, 0, 0},
  };

  std::vector<RelFaultResult> rows;
  for (const Witness& witness : kWitnesses) {
    RelFaultResult row;
    row.fault_id = std::string(witness.fault_id);
    row.witness = witness.name;

    FuzzCell cell;
    if (!cell.boot_ok) {
      return xbase::Internal("rangefuzz: cell bootstrap failed");
    }
    int fd = -1;
    if (witness.needs_map) {
      XB_ASSIGN_OR_RETURN(fd, cell.CreateMap(kFuzzValueSize));
    }
    XB_ASSIGN_OR_RETURN(Program prog, witness.build(fd));

    {
      VerifyOptions vopts;
      vopts.version = cell.kernel.version();
      vopts.kfuncs = &cell.bpf.kfuncs();
      row.clean_verifier_rejects =
          !Verify(prog, cell.bpf.maps(), cell.bpf.helpers(), vopts).ok();
    }

    FaultRegistry faults;
    faults.Inject(witness.fault_id);
    RangeTrace verifier_trace;
    {
      VerifyOptions vopts;
      vopts.version = cell.kernel.version();
      vopts.kfuncs = &cell.bpf.kfuncs();
      vopts.faults = &faults;
      vopts.range_trace = &verifier_trace;
      row.faulted_verifier_accepts =
          Verify(prog, cell.bpf.maps(), cell.bpf.helpers(), vopts).ok();
      if (!row.faulted_verifier_accepts) {
        verifier_trace.Reset(0);
      }
    }

    RangeTrace static_trace;
    {
      staticcheck::CheckOptions copts;
      copts.maps = &cell.bpf.maps();
      copts.helpers = &cell.bpf.helpers();
      copts.callgraph = &cell.kernel.callgraph();
      copts.range_trace = &static_trace;
      auto report = staticcheck::RunChecks(prog, copts);
      if (report.ok()) {
        row.staticcheck_rejects = report.value().errors() > 0;
        if (!report.value().analysis_complete) {
          static_trace.Reset(0);
        }
      }
    }

    row.witness_divergence =
        CompareRangeTraces(static_trace, verifier_trace).disjoint > 0 ||
        CompareRelTraces(static_trace, verifier_trace).contradictions > 0;

    RangeFuzzStats scratch;
    ClaimChecker checker(static_trace, verifier_trace, &scratch);
    if (witness.needs_map) {
      std::array<u8, kFuzzValueSize> value{};
      std::memcpy(value.data(), &witness.value_word0,
                  sizeof(witness.value_word0));
      std::memcpy(value.data() + 8, &witness.value_word1,
                  sizeof(witness.value_word1));
      XB_RETURN_IF_ERROR(cell.SetValue(fd, value));
    }
    for (u32 e = 0; e < std::max<u32>(execs, 1); ++e) {
      ExecuteWithChecker(cell, prog, checker);
    }
    row.witness_unsound = !checker.verifier_escapes().empty() ||
                          !checker.verifier_rel_escapes().empty();
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string FormatRelationalFaultTable(
    const std::vector<RelFaultResult>& rows) {
  std::string out = StrFormat("%-38s %-20s %7s %7s %8s %8s %8s  %s\n",
                              "injected relational fault", "witness",
                              "cleanV", "faultV", "unsound", "diverge",
                              "detected", "staticcheck");
  out += std::string(114, '-') + "\n";
  usize detected = 0;
  for (const RelFaultResult& row : rows) {
    detected += row.detected() ? 1 : 0;
    out += StrFormat("%-38s %-20s %7s %7s %8s %8s %8s  %s\n",
                     row.fault_id.c_str(), row.witness.c_str(),
                     row.clean_verifier_rejects ? "reject" : "accept",
                     row.faulted_verifier_accepts ? "accept" : "reject",
                     row.witness_unsound ? "YES" : "no",
                     row.witness_divergence ? "YES" : "no",
                     row.detected() ? "YES" : "NO",
                     row.staticcheck_rejects ? "reject" : "accept");
  }
  out += std::string(114, '-') + "\n";
  out += StrFormat("injected relational faults detected: %zu/%zu\n",
                   detected, rows.size());
  for (const RelFaultResult& row : rows) {
    out += StrFormat("RELFAULT-TSV\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
                     row.fault_id.c_str(), row.witness.c_str(),
                     row.clean_verifier_rejects ? 1 : 0,
                     row.faulted_verifier_accepts ? 1 : 0,
                     row.witness_unsound ? 1 : 0,
                     row.witness_divergence ? 1 : 0,
                     row.detected() ? 1 : 0,
                     row.staticcheck_rejects ? 1 : 0);
  }
  return out;
}

}  // namespace analysis

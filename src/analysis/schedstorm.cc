#include "src/analysis/schedstorm.h"

#include <memory>
#include <set>

#include "src/analysis/workloads.h"
#include "src/core/sched.h"
#include "src/core/toolchain.h"
#include "src/xbase/rand.h"
#include "src/xbase/strfmt.h"

namespace analysis {
namespace {

using safex::Ctx;
using xbase::u32;
using xbase::u64;
using xbase::usize;

// ---- safex scheduler policies (the cross-framework corpus) ----------------

// Signed extension that always yields to the default policy.
class YieldExt : public safex::Extension {
 public:
  xbase::Result<u64> Run(Ctx&) override { return u64{0}; }
};

// Signed extension that panics on every pick.
class PanicPickExt : public safex::Extension {
 public:
  xbase::Result<u64> Run(Ctx& ctx) override {
    ctx.Panic("schedstorm: deliberate pick panic");
    return u64{0};
  }
};

// ---- the rig --------------------------------------------------------------

struct SchedRig {
  SchedRig(const safex::SupervisorConfig& supervisor_config,
           u64 starvation_bound_ns, bool supervised = true, u32 cpus = 1)
      : kernel(MakeKernelConfig(cpus)), bpf(kernel), bpf_loader(bpf) {
    kernel.set_oops_recovery(true);
    ok = kernel.BootstrapWorkload().ok();
    auto rt = safex::Runtime::Create(kernel, bpf);
    ok = ok && rt.ok();
    if (!ok) {
      return;
    }
    runtime = std::move(rt).value();
    key = std::make_unique<crypto::SigningKey>(
        crypto::SigningKey::FromPassphrase("schedstorm-vendor", "storm"));
    (void)runtime->keyring().Enroll(*key);
    runtime->keyring().Seal();
    ext_loader = std::make_unique<safex::ExtLoader>(*runtime);
    supervisor = std::make_unique<safex::Supervisor>(supervisor_config);
    safex::HookRegistryConfig hook_config;
    if (supervised) {
      hook_config.supervisor = supervisor.get();
    }
    hooks = std::make_unique<safex::HookRegistry>(bpf, bpf_loader,
                                                  *ext_loader, hook_config);
    safex::SchedConfig sched_config;
    sched_config.supervised = supervised;
    sched_config.starvation_bound_ns = starvation_bound_ns;
    sched = std::make_unique<safex::SchedCore>(kernel, *hooks, sched_config);
    ok = sched->Init().ok();
  }

  static simkern::KernelConfig MakeKernelConfig(u32 cpus) {
    simkern::KernelConfig config;
    config.version = simkern::kV6_12;
    config.unprivileged_bpf_disabled = false;
    if (cpus > 1) {
      config.num_cpus = cpus;
    }
    return config;
  }

  // Loads and attaches a sched_ext policy; 0 on failure.
  u32 AttachPolicy(xbase::Result<ebpf::Program> prog) {
    if (!prog.ok()) {
      return 0;
    }
    auto prog_id = bpf_loader.Load(prog.value());
    if (!prog_id.ok()) {
      return 0;
    }
    auto id = hooks->AttachProgram(safex::HookPoint::kSchedPickNext,
                                   prog_id.value());
    return id.ok() ? id.value() : 0;
  }

  bool ok = false;
  simkern::Kernel kernel;
  ebpf::Bpf bpf;
  ebpf::Loader bpf_loader;
  std::unique_ptr<safex::Runtime> runtime;
  std::unique_ptr<crypto::SigningKey> key;
  std::unique_ptr<safex::ExtLoader> ext_loader;
  std::unique_ptr<safex::Supervisor> supervisor;
  std::unique_ptr<safex::HookRegistry> hooks;
  std::unique_ptr<safex::SchedCore> sched;
};

constexpr std::string_view kSchedFaults[] = {
    ebpf::kFaultSchedStallLoop,
    ebpf::kFaultSchedPickInvalidPid,
    ebpf::kFaultSchedRunnableFilter,
    ebpf::kFaultSchedCrashOnPick,
};

}  // namespace

SchedStormReport RunSchedStorm(const SchedStormConfig& config) {
  SchedStormReport report;
  report.seed = config.seed;

  xbase::Rng rng(config.seed);
  SchedRig rig(config.supervisor, config.starvation_bound_ns,
               /*supervised=*/true, config.cpus);
  if (!rig.ok) {
    report.failure = "rig construction failed";
    return report;
  }

  // SMP mode: one SchedCore per simulated CPU (Linux-style per-CPU rq; the
  // kernel's runqueue() accessor resolves to the executing CPU's queue), all
  // sharing the kernel, hook registry and supervisor. cores[0] is the rig's
  // existing cpu0 core so the single-CPU path is byte-identical to before.
  const bool smp = config.cpus > 1;
  std::vector<safex::SchedCore*> cores;
  std::vector<std::unique_ptr<safex::SchedCore>> extra_cores;
  cores.push_back(rig.sched.get());
  if (smp) {
    rig.kernel.StartCpus();
    safex::SchedConfig core_config = rig.sched->config();
    for (u32 cpu = 1; cpu < rig.kernel.num_cpus(); ++cpu) {
      extra_cores.push_back(std::make_unique<safex::SchedCore>(
          rig.kernel, *rig.hooks, core_config));
      if (!extra_cores.back()->Init().ok()) {
        report.failure = "per-cpu sched core init failed";
        return report;
      }
      cores.push_back(extra_cores.back().get());
    }
  }

  // --- policy corpus: loaded once, attached/detached by the dice ---------
  struct CorpusEntry {
    std::string name;
    bool is_safex = false;
    u32 target_id = 0;  // prog id or ext id
  };
  std::vector<CorpusEntry> corpus;
  auto add_prog = [&](const char* name, xbase::Result<ebpf::Program> prog) {
    if (!prog.ok()) {
      return;
    }
    auto id = rig.bpf_loader.Load(prog.value());
    if (id.ok()) {
      corpus.push_back(CorpusEntry{name, false, id.value()});
    }
  };
  add_prog("pick_first", BuildSchedPickFirst());
  add_prog("pick_via_default", BuildSchedPickViaDefault());
  add_prog("pick_longest_waiting", BuildSchedPickLongestWaiting());
  add_prog("double_pick", BuildSchedDoublePick());
  add_prog("pick_dead_constant", BuildSchedPickConstant(999999));
  add_prog("yield", BuildSchedYield());

  safex::Toolchain toolchain(*rig.key);
  auto add_ext = [&](const char* name, safex::ExtensionFactory factory) {
    safex::ExtensionManifest manifest;
    manifest.name = name;
    manifest.version = "1";
    auto artifact = toolchain.Build(manifest, std::move(factory),
                                    std::span<const xbase::u8>());
    if (!artifact.ok()) {
      return;
    }
    auto id = rig.ext_loader->Load(artifact.value());
    if (id.ok()) {
      corpus.push_back(CorpusEntry{name, true, id.value()});
    }
  };
  add_ext("storm-yield", []() { return std::make_unique<YieldExt>(); });
  add_ext("storm-panic-pick",
          []() { return std::make_unique<PanicPickExt>(); });
  if (corpus.size() < 8) {
    report.failure = "corpus setup failed";
    return report;
  }

  struct LiveAttachment {
    u32 attachment_id;
    usize corpus_index;
  };
  std::vector<LiveAttachment> attachments;
  std::set<std::string_view> faults_ever;
  usize fault_cursor = 0;
  u32 next_pid = 50000;

  // Scheduling invariants, checked after every op — machine-wide: every
  // CPU's runqueue against that CPU's clock, locks totalled across CPUs,
  // readers checked on every CPU. Single-CPU runs degenerate to the
  // historical checks exactly. Only called at quiescent points (the burst
  // has Drained), so cross-thread reads of per-CPU state are ordered.
  auto check_invariants = [&](bool ticked, usize runnable_before,
                              const safex::SchedTickOutcome& outcome)
      -> std::string {
    if (rig.kernel.state() != simkern::KernelState::kRunning) {
      return "kernel not running (oopsed/panicked)";
    }
    if (rig.kernel.rcu().AnyReader()) {
      return "RCU read-side critical section leaked";
    }
    const int held = rig.kernel.locks().held_count_total();
    if (held != 0) {
      return xbase::StrFormat("%d lock(s) still held", held);
    }
    const xbase::Status supervisor_state =
        rig.supervisor->CheckConsistent(rig.kernel.clock().max_now_ns());
    if (!supervisor_state.ok()) {
      return supervisor_state.message();
    }
    for (u32 cpu = 0; cpu < rig.kernel.num_cpus(); ++cpu) {
      // Every queued pid must name a live task, exactly once per queue (a
      // task is legitimately on several CPUs' queues: each per-CPU core
      // schedules the full task set, like chaos tenants spanning CPUs).
      const simkern::RunQueue& rq = rig.kernel.runqueue(cpu);
      std::set<u32> seen;
      for (usize i = 0; i < rq.runnable_count(); ++i) {
        const u32 pid = rq.PidAt(i).value();
        if (!rig.kernel.tasks().FindByPid(pid).ok()) {
          return xbase::StrFormat("dead pid %u on cpu%u's runqueue", pid,
                                  cpu);
        }
        if (!seen.insert(pid).second) {
          return xbase::StrFormat("pid %u queued twice on cpu%u", pid, cpu);
        }
      }
      // Bounded waits: the whole point of the containment ladder. Each
      // queue's entries are stamped with its own CPU's clock.
      const u64 max_wait = rq.MaxWaitNs(rig.kernel.clock().now_ns(cpu));
      if (max_wait > report.stats.max_wait_seen_ns) {
        report.stats.max_wait_seen_ns = max_wait;
      }
      if (max_wait > config.max_wait_ns) {
        return xbase::StrFormat(
            "runnable task on cpu%u waiting %llu ns (bound %llu)", cpu,
            static_cast<unsigned long long>(max_wait),
            static_cast<unsigned long long>(config.max_wait_ns));
      }
    }
    // Liveness: a supervised tick with runnable tasks must dispatch one —
    // no pick policy, however hostile, may take the CPU away.
    if (ticked && runnable_before > 0 && outcome.ran_pid == 0) {
      return "supervised tick with runnable tasks dispatched nothing";
    }
    return "";
  };

  u64 ops_done = 0;
  std::string op_desc;
  for (u64 op = 0; op < config.ops; ++op) {
    bool ticked = false;
    usize runnable_before = 0;
    safex::SchedTickOutcome outcome;

    const u64 dice = rng.NextBelow(100);
    if (dice < 55) {
      // One scheduling cycle. Reclaim runs inside Tick, so count what is
      // *about to be* runnable — every live task.
      runnable_before = rig.kernel.tasks().size();
      if (smp) {
        // Cross-CPU burst: every core ticks concurrently on its own
        // CPU-bound thread, against its own runqueue and clock, through
        // the shared hook registry and supervisor. A fault toggle races
        // the in-flight picks (the registry is atomic), so a defect can
        // switch on mid-burst — exactly the interleaving a real SMP
        // machine produces.
        op_desc = "tick burst";
        simkern::CpuPool& pool = *rig.kernel.cpus();
        std::vector<safex::SchedTickOutcome> outcomes(cores.size());
        for (u32 cpu = 0; cpu < cores.size(); ++cpu) {
          safex::SchedCore* core = cores[cpu];
          safex::SchedTickOutcome* slot = &outcomes[cpu];
          pool.Submit(cpu, [core, slot] { *slot = core->Tick(); });
        }
        if (config.toggle_faults && rng.NextBelow(4) == 0) {
          const std::string_view fault =
              kSchedFaults[fault_cursor++ % std::size(kSchedFaults)];
          if (rig.bpf.faults().IsActive(fault)) {
            rig.bpf.faults().Clear(fault);
          } else {
            rig.bpf.faults().Inject(fault);
            faults_ever.insert(fault);
          }
          ++report.stats.fault_toggles;
        }
        pool.Drain();
        // Surface the worst outcome of the burst for the liveness check.
        outcome = outcomes[0];
        for (const safex::SchedTickOutcome& o : outcomes) {
          if (o.ran_pid == 0) {
            outcome = o;
          }
        }
        ticked = true;
        report.stats.ticks += cores.size();
      } else {
        op_desc = "tick";
        outcome = rig.sched->Tick();
        ticked = true;
        ++report.stats.ticks;
      }
    } else if (dice < 65) {
      const u64 delta = rng.NextBelow(5 * simkern::kNsPerMs);
      // Keep the per-CPU clocks loosely in step: the storm advances the
      // whole machine, as a global timer interrupt would.
      for (u32 cpu = 0; cpu < rig.kernel.num_cpus(); ++cpu) {
        rig.kernel.clock().Advance(cpu, delta);
      }
      op_desc = "advance clock";
      ++report.stats.clock_advances;
    } else if (dice < 75) {
      // Attach a random corpus policy (duplicates are AlreadyExists no-ops).
      const usize index = rng.NextBelow(corpus.size());
      const CorpusEntry& entry = corpus[index];
      op_desc = "attach " + entry.name;
      if (attachments.size() < 4) {
        auto id = entry.is_safex
                      ? rig.hooks->AttachExtension(
                            safex::HookPoint::kSchedPickNext, entry.target_id)
                      : rig.hooks->AttachProgram(
                            safex::HookPoint::kSchedPickNext, entry.target_id);
        if (id.ok()) {
          attachments.push_back(LiveAttachment{id.value(), index});
          ++report.stats.attaches;
        }
      }
    } else if (dice < 83) {
      if (!attachments.empty()) {
        const usize index = rng.NextBelow(attachments.size());
        op_desc = xbase::StrFormat("detach %u",
                                   attachments[index].attachment_id);
        (void)rig.hooks->Detach(attachments[index].attachment_id);
        attachments.erase(attachments.begin() +
                          static_cast<std::ptrdiff_t>(index));
        ++report.stats.detaches;
      } else {
        op_desc = "detach (none)";
      }
    } else if (dice < 90 && config.toggle_faults) {
      const std::string_view fault =
          kSchedFaults[fault_cursor++ % std::size(kSchedFaults)];
      if (rig.bpf.faults().IsActive(fault)) {
        rig.bpf.faults().Clear(fault);
        op_desc = xbase::StrFormat("fault clear %s",
                                   std::string(fault).c_str());
      } else {
        rig.bpf.faults().Inject(fault);
        faults_ever.insert(fault);
        op_desc = xbase::StrFormat("fault inject %s",
                                   std::string(fault).c_str());
      }
      ++report.stats.fault_toggles;
    } else if (dice < 95) {
      const u32 pid = next_pid++;
      op_desc = xbase::StrFormat("create task %u", pid);
      if (rig.kernel.tasks()
              .Create(rig.kernel.mem(), rig.kernel.objects(), pid, pid,
                      "storm")
              .ok()) {
        // Runnable immediately; the reclaim pass would admit it next tick
        // anyway, enqueueing here just stamps the honest arrival time.
        // SMP: land it on a round-robin home CPU, stamped with that CPU's
        // clock (each queue's waits are measured against its own clock).
        const u32 home = pid % rig.kernel.num_cpus();
        (void)rig.kernel.runqueue(home).Enqueue(
            pid, rig.kernel.clock().now_ns(home));
        ++report.stats.task_creates;
      }
    } else {
      // Task exit — keep at least two runnable tasks so ticks stay
      // meaningful.
      const std::vector<u32> pids = rig.kernel.tasks().Pids();
      if (pids.size() > 2) {
        const u32 pid = pids[rng.NextBelow(pids.size())];
        op_desc = xbase::StrFormat("exit task %u", pid);
        if (rig.kernel.RemoveTask(pid).ok()) {
          ++report.stats.task_exits;
        }
      } else {
        op_desc = "exit task (too few)";
      }
    }

    ++ops_done;
    const std::string violated =
        check_invariants(ticked, runnable_before, outcome);
    if (!violated.empty()) {
      report.failure = xbase::StrFormat(
          "op %llu (%s): %s [replay: --seed %llu --ops %llu]",
          static_cast<unsigned long long>(op), op_desc.c_str(),
          violated.c_str(), static_cast<unsigned long long>(config.seed),
          static_cast<unsigned long long>(config.ops));
      report.failed_at_op = op;
      break;
    }
  }

  if (smp) {
    rig.kernel.StopCpus();
  }
  report.stats.ops_executed = ops_done;
  for (const safex::SchedCore* core : cores) {
    const safex::SchedStats& sched_stats = core->stats();
    report.stats.dispatches += sched_stats.dispatches;
    report.stats.ext_picks += sched_stats.ext_picks;
    report.stats.default_picks += sched_stats.default_picks;
    report.stats.fallback_picks += sched_stats.fallback_picks;
    report.stats.yields += sched_stats.yields;
    report.stats.deadline_misses += sched_stats.deadline_misses;
    report.stats.invalid_picks += sched_stats.invalid_picks;
    report.stats.starvation_events += sched_stats.starvation_events;
    report.stats.stalls += sched_stats.stalls;
  }
  report.stats.faults_ever_injected = faults_ever.size();
  report.stats.final_sim_time_ns = rig.kernel.clock().max_now_ns();
  report.stats.supervisor_failures = rig.supervisor->failures();
  report.stats.supervisor_trips = rig.supervisor->trips();
  report.stats.supervisor_evictions = rig.supervisor->evictions();
  report.stats.supervisor_readmissions = rig.supervisor->readmissions();
  for (const simkern::OopsRecord& oops : rig.kernel.oopses()) {
    if (oops.recovered) {
      ++report.stats.oopses_contained;
    }
  }
  report.ok = report.failure.empty();
  return report;
}

// ---- --check-faults: detection & containment per fault class --------------

namespace {

safex::SupervisorConfig CheckSupervisorConfig() {
  safex::SupervisorConfig config;
  config.window_ns = 100 * simkern::kNsPerMs;
  config.crash_budget = 3;
  config.base_backoff_ns = 10 * simkern::kNsPerMs;
  return config;
}

u64 KindCount(const SchedRig& rig, u32 attachment, safex::FailureKind kind) {
  const safex::ExtRecord* record = rig.supervisor->Find(attachment);
  if (record == nullptr) {
    return 0;
  }
  return record->failures_by_kind[static_cast<usize>(kind)];
}

SchedFaultCheck Check(const char* name, bool passed,
                      const std::string& detail) {
  SchedFaultCheck check;
  check.name = name;
  check.passed = passed;
  check.detail = passed ? "" : detail;
  return check;
}

}  // namespace

std::vector<SchedFaultCheck> RunSchedFaultChecks() {
  std::vector<SchedFaultCheck> checks;
  constexpr u64 kBound = 10 * simkern::kNsPerMs;

  // stall-loop: the pick blows its watchdog deadline; the supervised tick
  // must still dispatch, and the deadline miss must be charged.
  {
    SchedRig rig(CheckSupervisorConfig(), kBound);
    rig.bpf.faults().Inject(ebpf::kFaultSchedStallLoop);
    const u32 attachment = rig.AttachPolicy(BuildSchedPickViaDefault());
    for (int i = 0; i < 40; ++i) {
      (void)rig.sched->Tick();
    }
    const safex::SchedStats& stats = rig.sched->stats();
    checks.push_back(Check(
        "sched.helper_stall_loop",
        attachment != 0 && stats.deadline_misses > 0 &&
            stats.dispatches == stats.ticks && rig.supervisor->trips() > 0 &&
            KindCount(rig, attachment, safex::FailureKind::kDeadlineMiss) > 0,
        xbase::StrFormat(
            "expected deadline misses charged and every tick dispatched; "
            "got misses=%llu dispatches=%llu/%llu trips=%llu",
            static_cast<unsigned long long>(stats.deadline_misses),
            static_cast<unsigned long long>(stats.dispatches),
            static_cast<unsigned long long>(stats.ticks),
            static_cast<unsigned long long>(rig.supervisor->trips()))));
  }

  // invalid-pid: the buggy peek serves a dead pid; validation must refuse
  // it, charge kInvalidPick, and fail over.
  {
    SchedRig rig(CheckSupervisorConfig(), kBound);
    rig.bpf.faults().Inject(ebpf::kFaultSchedPickInvalidPid);
    const u32 attachment = rig.AttachPolicy(BuildSchedPickFirst());
    for (int i = 0; i < 20; ++i) {
      (void)rig.sched->Tick();
    }
    const safex::SchedStats& stats = rig.sched->stats();
    checks.push_back(Check(
        "sched.helper_pick_invalid_pid",
        attachment != 0 && stats.invalid_picks > 0 &&
            stats.dispatches == stats.ticks &&
            KindCount(rig, attachment, safex::FailureKind::kInvalidPick) > 0,
        xbase::StrFormat(
            "expected invalid picks contained; got invalid=%llu "
            "dispatches=%llu/%llu",
            static_cast<unsigned long long>(stats.invalid_picks),
            static_cast<unsigned long long>(stats.dispatches),
            static_cast<unsigned long long>(stats.ticks))));
  }

  // runnable-filter: the hidden task must be flagged starving, the charge
  // must land, and quarantine fail-over must rescue it.
  {
    SchedRig rig(CheckSupervisorConfig(), kBound);
    rig.bpf.faults().Inject(ebpf::kFaultSchedRunnableFilter);
    const u32 attachment = rig.AttachPolicy(BuildSchedPickLongestWaiting());
    const std::vector<u32> pids = rig.kernel.tasks().Pids();
    const u32 hidden = pids.back();
    for (int i = 0; i < 250; ++i) {
      (void)rig.sched->Tick();
    }
    const safex::SchedStats& stats = rig.sched->stats();
    const u64 hidden_runs = rig.kernel.runqueue().StatsOf(hidden).runs;
    checks.push_back(Check(
        "sched.helper_runnable_filter",
        attachment != 0 && stats.starvation_events > 0 &&
            stats.dispatches == stats.ticks && hidden_runs > 0 &&
            KindCount(rig, attachment, safex::FailureKind::kStarvation) > 0,
        xbase::StrFormat(
            "expected starvation detected and hidden pid %u rescued; got "
            "events=%llu hidden_runs=%llu",
            hidden, static_cast<unsigned long long>(stats.starvation_events),
            static_cast<unsigned long long>(hidden_runs))));
  }

  // crash-on-pick: the helper oopses mid-pick; the oops must be contained,
  // attributed to the extension, and the tick must still dispatch.
  {
    SchedRig rig(CheckSupervisorConfig(), kBound);
    rig.bpf.faults().Inject(ebpf::kFaultSchedCrashOnPick);
    const u32 attachment = rig.AttachPolicy(BuildSchedPickLongestWaiting());
    for (int i = 0; i < 20; ++i) {
      (void)rig.sched->Tick();
    }
    const safex::SchedStats& stats = rig.sched->stats();
    const bool attributed =
        !rig.kernel.oopses().empty() &&
        rig.kernel.oopses().front().attribution.rfind("bpf:", 0) == 0;
    checks.push_back(Check(
        "sched.helper_crash_on_pick",
        attachment != 0 &&
            rig.kernel.state() == simkern::KernelState::kRunning &&
            attributed && stats.dispatches == stats.ticks &&
            KindCount(rig, attachment, safex::FailureKind::kOops) > 0,
        xbase::StrFormat(
            "expected contained attributed oops; kernel %s, %zu oops(es), "
            "dispatches=%llu/%llu",
            rig.kernel.state() == simkern::KernelState::kRunning ? "alive"
                                                                 : "dead",
            rig.kernel.oopses().size(),
            static_cast<unsigned long long>(stats.dispatches),
            static_cast<unsigned long long>(stats.ticks))));
  }

  // double-pick: a policy-level attack (no helper defect) — the dequeued
  // victim must be detected as a non-runnable pick and reclaimed.
  {
    SchedRig rig(CheckSupervisorConfig(), kBound);
    const u32 attachment = rig.AttachPolicy(BuildSchedDoublePick());
    for (int i = 0; i < 20; ++i) {
      (void)rig.sched->Tick();
    }
    const safex::SchedStats& stats = rig.sched->stats();
    bool all_runnable = true;
    for (u32 pid : rig.kernel.tasks().Pids()) {
      all_runnable = all_runnable && rig.kernel.runqueue().Contains(pid);
    }
    checks.push_back(Check(
        "policy.double_pick",
        attachment != 0 && stats.invalid_picks > 0 &&
            stats.dispatches == stats.ticks && all_runnable,
        xbase::StrFormat(
            "expected double pick contained and victims reclaimed; got "
            "invalid=%llu dispatches=%llu/%llu",
            static_cast<unsigned long long>(stats.invalid_picks),
            static_cast<unsigned long long>(stats.dispatches),
            static_cast<unsigned long long>(stats.ticks))));
  }

  // Clean baselines: with no defect injected, the honest policies must run
  // charge-free — the detectors may not cry wolf.
  struct CleanLeg {
    const char* name;
    xbase::Result<ebpf::Program> (*builder)();
  };
  const CleanLeg clean_legs[] = {
      {"clean.pick_first", BuildSchedPickFirst},
      {"clean.pick_via_default", BuildSchedPickViaDefault},
      {"clean.pick_longest_waiting", BuildSchedPickLongestWaiting},
      {"clean.yield", BuildSchedYield},
  };
  for (const CleanLeg& leg : clean_legs) {
    SchedRig rig(CheckSupervisorConfig(), kBound);
    const u32 attachment = rig.AttachPolicy(leg.builder());
    for (int i = 0; i < 60; ++i) {
      (void)rig.sched->Tick();
    }
    const safex::SchedStats& stats = rig.sched->stats();
    checks.push_back(Check(
        leg.name,
        attachment != 0 && rig.supervisor->failures() == 0 &&
            stats.deadline_misses == 0 && stats.invalid_picks == 0 &&
            stats.starvation_events == 0 &&
            stats.dispatches == stats.ticks,
        xbase::StrFormat(
            "false positive: failures=%llu misses=%llu invalid=%llu "
            "starved=%llu",
            static_cast<unsigned long long>(rig.supervisor->failures()),
            static_cast<unsigned long long>(stats.deadline_misses),
            static_cast<unsigned long long>(stats.invalid_picks),
            static_cast<unsigned long long>(stats.starvation_events))));
  }

  return checks;
}

}  // namespace analysis

// Table 1: the 2021-2022 security-bug census for the eBPF verifier and
// helper functions. The category/component counts reproduce the paper's
// table exactly; each studied entry additionally records which injectable
// defect in ebpf::FaultRegistry (if any) makes that bug class *executable*
// in this repository, so the census is backed by running exploits rather
// than only data entry.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/xbase/types.h"

namespace analysis {

struct BugEntry {
  std::string category;   // Table 1 row
  std::string component;  // "Helper" | "Verifier"
  int year = 0;
  std::string reference;  // CVE / commit / descriptive pointer
  std::string fault_id;   // ebpf::FaultRegistry id when modelled; "" if not
};

const std::vector<BugEntry>& BugDatabase();

struct CategoryCount {
  int total = 0;
  int helper = 0;
  int verifier = 0;
};

// Category -> counts, plus a "Total" row — the exact shape of Table 1.
std::map<std::string, CategoryCount> BugCensus();

// Entries that are backed by an injectable defect.
std::vector<BugEntry> ModeledBugs();

}  // namespace analysis

// rangefuzz: a three-oracle soundness fuzzer for the numeric abstract
// domains on both sides of the differential pair. For each seeded random
// ALU/branch/memory program it runs
//   1. staticcheck's range dataflow (path-insensitive reduced product),
//   2. the in-kernel verifier's range tracking (path-sensitive, possibly
//      with injected Table-1 defects), and
//   3. N concrete interpreter executions over boundary-biased map inputs
//      as ground truth,
// then checks every concrete register value against both analyses' per-pc
// claims (a value outside a claim is an unsoundness witness — the
// CVE-2020-8835 shape) and cross-checks the two static traces for disjoint
// claims and interval-width imprecision gaps.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "src/ebpf/prog.h"
#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace analysis {

// ---- fuzz-program generator --------------------------------------------

// The generator is exposed so other harnesses (the execution-engine
// equivalence test) can replay the exact corpus RunRangeFuzz would fuzz.

// Array-map value size every fuzz program is generated against.
inline constexpr xbase::u32 kRangeFuzzValueSize = 64;

// The per-program seeds RunRangeFuzz derives from `master_seed`, in
// schedule order.
std::vector<xbase::u64> FuzzProgramSeeds(xbase::u64 master_seed,
                                         xbase::u32 count);

// The deterministic seeded random program for `program_seed`: map-lookup
// prologue seeding unknown scalars from an array map at `map_fd`
// (kRangeFuzzValueSize-byte values), then `body_len` random ALU / forward
// branch / stack / map-access instructions. Memory-safe by construction.
xbase::Result<ebpf::Program> BuildFuzzProgram(xbase::u64 program_seed,
                                              int map_fd, xbase::u32 body_len,
                                              const std::string& name);

struct RangeFuzzOptions {
  xbase::u64 seed = 1;
  xbase::u32 programs = 100;
  xbase::u32 execs = 16;     // concrete executions per program
  xbase::u32 body_len = 24;  // random body instructions per program
  // Fault ids injected into the *verifier* oracle only; staticcheck and
  // the concrete interpreter never see them. With a Table-1 range fault
  // here, verifier-unsoundness findings are the expected outcome.
  std::vector<std::string> verifier_faults;
  // Nonzero: skip seed scheduling and fuzz exactly the one program this
  // per-program seed generates (the replay path findings print).
  xbase::u64 replay_program_seed = 0;
  xbase::usize max_findings = 16;
};

struct RangeFinding {
  enum class Kind : xbase::u8 {
    kStaticUnsound,    // concrete value escaped a staticcheck claim
    kVerifierUnsound,  // concrete value escaped a verifier claim
    kDivergence,       // the two analyses' claims share no value
    // Relational (difference-bound) variants of the same three oracles:
    kStaticRelUnsound,    // concrete ri - rj escaped a staticcheck bound
    kVerifierRelUnsound,  // concrete ri - rj escaped a verifier bound
    kRelDivergence,       // the two analyses' bounds on a pair contradict
  };
  Kind kind = Kind::kDivergence;
  xbase::u64 program_seed = 0;  // regenerate with --replay
  xbase::u32 prog_index = 0;
  xbase::u32 pc = 0;
  xbase::u8 reg = 0;
  std::string detail;  // claim vs concrete value / claim vs claim
  std::string disasm;  // full program disassembly for offline replay
};

std::string_view RangeFindingKindName(RangeFinding::Kind kind);

struct RangeFuzzStats {
  xbase::u32 programs = 0;
  xbase::u32 verifier_accepted = 0;     // programs the verifier oracle ran on
  xbase::u32 staticcheck_complete = 0;  // programs with a full fixpoint
  xbase::u64 executions = 0;
  xbase::u64 exec_insns = 0;
  xbase::u64 points_checked = 0;   // concrete (pc, reg) claim checks
  xbase::u64 points_compared = 0;  // scalar-vs-scalar static claim pairs
  xbase::u64 disjoint_points = 0;
  // Relational-claim counterparts.
  xbase::u64 rel_points_checked = 0;   // concrete (pc, i, j) bound checks
  xbase::u64 rel_points_compared = 0;  // finite bound pairs cross-checked
  xbase::u64 rel_contradictions = 0;
  // Imprecision gap, accumulated in log2 space (see
  // RangeCompareResult::width_ratio_sum): the geometric mean of
  // (staticcheck width + 1) / (verifier width + 1) over compared points.
  double width_ratio_sum = 0;
  double MeanWidthRatio() const {
    return points_compared == 0
               ? 1.0
               : std::exp2(width_ratio_sum /
                           static_cast<double>(points_compared));
  }
};

struct RangeFuzzReport {
  RangeFuzzStats stats;
  std::vector<RangeFinding> findings;

  bool StaticUnsound() const;
  bool VerifierUnsound() const;
  // Zero unsoundness witnesses against either analysis.
  bool Sound() const { return !StaticUnsound() && !VerifierUnsound(); }
};

xbase::Result<RangeFuzzReport> RunRangeFuzz(const RangeFuzzOptions& opts);

std::string FormatRangeFuzzReport(const RangeFuzzReport& report);

// ---- deterministic Table-1 fault witnesses ---------------------------------

// One row per injectable range fault: the paired exploit is verified under
// the clean and the faulted verifier, analyzed by staticcheck, executed
// concretely with the triggering map value, and the two range traces are
// compared. `detected()` is the acceptance bar: the fault must surface as
// an unsoundness witness or as trace divergence.
struct RangeFaultResult {
  std::string fault_id;
  std::string witness;  // workload name
  bool clean_verifier_rejects = false;
  bool faulted_verifier_accepts = false;
  bool witness_unsound = false;     // concrete escape of a faulted claim
  bool witness_divergence = false;  // staticcheck vs faulted claims disjoint
  bool staticcheck_rejects = false; // error-severity finding on the witness
  bool detected() const { return witness_unsound || witness_divergence; }
};

xbase::Result<std::vector<RangeFaultResult>> CheckRangeFaults(
    xbase::u32 execs = 8);

std::string FormatRangeFaultTable(const std::vector<RangeFaultResult>& rows);

// ---- deterministic relational fault witnesses ------------------------------

// Same shape for the relational fault classes (reg-reg refinement,
// spill-width confusion, stale packet ranges). Because these witnesses
// exercise *memory* and *pointer* state the interval traces cannot always
// see, the acceptance bar gains a third channel: the faulted verifier
// admitting a program staticcheck rejects is itself the differential
// detection (the diffcheck shape, specialized to relational faults).
struct RelFaultResult {
  std::string fault_id;
  std::string witness;
  bool clean_verifier_rejects = false;
  bool faulted_verifier_accepts = false;
  bool witness_unsound = false;     // concrete escape of a faulted claim
  bool witness_divergence = false;  // interval or relational contradiction
  bool staticcheck_rejects = false;
  bool detected() const {
    return witness_unsound || witness_divergence ||
           (faulted_verifier_accepts && staticcheck_rejects);
  }
};

xbase::Result<std::vector<RelFaultResult>> CheckRelationalFaults(
    xbase::u32 execs = 8);

std::string FormatRelationalFaultTable(const std::vector<RelFaultResult>& rows);

}  // namespace analysis

// Table 2: the safety properties the verifier normally enforces, and the
// mechanism the proposed framework enforces them with. The property list is
// data; the probes that demonstrate each enforcement live in
// bench/tab2_safety_matrix and tests/core.
#pragma once

#include <string>
#include <vector>

namespace analysis {

struct SafetyProperty {
  std::string property;     // Table 2 left column
  std::string enforcement;  // Table 2 right column
  std::string probe;        // how this repository demonstrates it
};

const std::vector<SafetyProperty>& SafetyMatrix();

}  // namespace analysis

// Deterministic chaos harness: drives randomized load / attach / invoke /
// fault-toggle / detach / clock-advance sequences against a supervised
// kernel and asserts the survival invariants after every single step —
// kernel alive, RCU balanced and stall-free, no held locks, no leaked
// refcounts, supervisor state consistent. Everything derives from one
// xbase::Rng seed, so any failure replays bit-identically from the seed
// printed in the failure message (`tools/chaos --seed N --ops M`).
//
// The hostile corpus spans both frameworks deliberately: signed safex
// extensions that panic, hog the watchdog, overflow the stack and throw
// foreign exceptions, and *verifier-approved* eBPF programs whose bugs live
// below the verifier's horizon (the §2.2 sys_bpf union-NULL crash, leak-
// and deadlock-exploits enabled by injected Table 1 defects). Surviving
// the storm is the paper's availability claim, demonstrated rather than
// asserted.
#pragma once

#include <string>
#include <vector>

#include "src/core/supervisor.h"
#include "src/ebpf/interp.h"
#include "src/xbase/types.h"

namespace analysis {

struct ChaosConfig {
  xbase::u64 seed = 1;
  xbase::u64 ops = 10000;
  // Simulated CPUs. >1 turns every fire op into a cross-CPU burst: the
  // fires run concurrently on real CPU-bound threads (with fault toggles
  // racing them), and the survival invariants are asserted machine-wide at
  // the post-burst quiescence barrier. Replayable: the op sequence still
  // derives from the seed; only intra-burst interleaving varies.
  xbase::u32 cpus = 1;
  // Round-robin fault toggling (guarantees every registry defect is active
  // at some point once enough toggle ops have fired).
  bool toggle_faults = true;
  bool verbose = false;
  // Execution engine every hook fire runs attached programs on — the storm
  // is engine-agnostic by construction, so both must survive it.
  ebpf::ExecEngine engine = ebpf::ExecEngine::kThreaded;
  safex::SupervisorConfig supervisor;
};

struct ChaosStats {
  xbase::u64 ops_executed = 0;
  xbase::u64 fires = 0;
  xbase::u64 attachments_served = 0;
  xbase::u64 attachments_failed = 0;
  xbase::u64 attachments_skipped = 0;
  xbase::u64 loads_ok = 0;
  xbase::u64 loads_rejected = 0;
  xbase::u64 unloads = 0;
  xbase::u64 attaches = 0;
  xbase::u64 detaches = 0;
  xbase::u64 fault_toggles = 0;
  xbase::u64 clock_advances = 0;
  xbase::u64 oopses_contained = 0;
  xbase::u64 supervisor_failures = 0;
  xbase::u64 supervisor_trips = 0;
  xbase::u64 supervisor_evictions = 0;
  xbase::u64 supervisor_readmissions = 0;
  xbase::usize faults_ever_injected = 0;  // distinct defects enabled
  xbase::usize fault_catalog_size = 0;
  xbase::u64 final_sim_time_ns = 0;
};

struct ChaosReport {
  bool ok = false;
  xbase::u64 seed = 0;
  // On failure: which invariant broke, at which op, doing what.
  std::string failure;
  xbase::u64 failed_at_op = 0;
  ChaosStats stats;

  bool all_faults_covered() const {
    return stats.faults_ever_injected == stats.fault_catalog_size;
  }
};

ChaosReport RunChaos(const ChaosConfig& config);

}  // namespace analysis

#include "src/analysis/admitstorm.h"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "src/analysis/workloads.h"
#include "src/core/toolchain.h"
#include "src/service/admission.h"
#include "src/xbase/rand.h"
#include "src/xbase/strfmt.h"

namespace analysis {
namespace {

using xbase::u32;
using xbase::u64;
using xbase::usize;

// Minimal well-behaved extension for the signed-artifact leg of the storm;
// the storm never invokes it, it only exercises signature validation and
// registration under concurrency.
class NopExt : public safex::Extension {
 public:
  xbase::Result<u64> Run(safex::Ctx&) override { return u64{0}; }
};

struct StormRig {
  StormRig() : kernel(MakeKernelConfig()), bpf(kernel), loader(bpf) {
    ok = kernel.BootstrapWorkload().ok();
    auto rt = safex::Runtime::Create(kernel, bpf);
    ok = ok && rt.ok();
    if (!ok) {
      return;
    }
    runtime = std::move(rt).value();
    key = std::make_unique<crypto::SigningKey>(
        crypto::SigningKey::FromPassphrase("storm-vendor", "storm"));
    rogue_key = std::make_unique<crypto::SigningKey>(
        crypto::SigningKey::FromPassphrase("storm-rogue", "rogue"));
    (void)runtime->keyring().Enroll(*key);
    runtime->keyring().Seal();
    ext_loader = std::make_unique<safex::ExtLoader>(*runtime);
  }

  static simkern::KernelConfig MakeKernelConfig() {
    simkern::KernelConfig config;
    config.unprivileged_bpf_disabled = false;
    return config;
  }

  bool ok = false;
  simkern::Kernel kernel;
  ebpf::Bpf bpf;
  ebpf::Loader loader;
  std::unique_ptr<safex::Runtime> runtime;
  std::unique_ptr<crypto::SigningKey> key;
  std::unique_ptr<crypto::SigningKey> rogue_key;  // never enrolled
  std::unique_ptr<safex::ExtLoader> ext_loader;
};

struct CorpusEntry {
  std::string name;
  ebpf::Program prog;
};

int MustArrayMap(StormRig& rig, const char* name, u32 value_size,
                 u32 entries) {
  ebpf::MapSpec spec;
  spec.type = ebpf::MapType::kArray;
  spec.key_size = 4;
  spec.value_size = value_size;
  spec.max_entries = entries;
  spec.name = name;
  auto fd = rig.bpf.maps().Create(spec);
  return fd.ok() ? fd.value() : -1;
}

}  // namespace

AdmitStormReport RunAdmitStorm(const AdmitStormConfig& config) {
  AdmitStormReport report;
  report.seed = config.seed;

  xbase::Rng rng(config.seed);
  StormRig rig;
  if (!rig.ok) {
    report.failure = "rig construction failed";
    return report;
  }

  const int arr_fd = MustArrayMap(rig, "storm-arr", 8, 4);
  const int wide_fd = MustArrayMap(rig, "storm-wide", 64, 4);
  if (arr_fd < 0 || wide_fd < 0) {
    report.failure = "map setup failed";
    return report;
  }
  // Zeroed ctx block for the post-drain execution probes.
  auto probe_ctx = rig.kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                        simkern::RegionKind::kKernelData,
                                        "storm-ctx");
  if (!probe_ctx.ok()) {
    report.failure = "probe ctx setup failed";
    return report;
  }

  // Corpus. `accepted` programs pass the clean verifier; `rejected` ones are
  // turned away by it (though an injected defect may let one through
  // mid-storm — the invariants below don't depend on which way any single
  // verdict goes). Small on purpose: duplicates are the point.
  std::vector<CorpusEntry> corpus;
  const auto add = [&corpus](const char* name,
                             xbase::Result<ebpf::Program> prog) {
    if (prog.ok()) {
      corpus.push_back(CorpusEntry{name, std::move(prog).value()});
    }
  };
  add("straight-16", BuildStraightLine(16));
  add("straight-64", BuildStraightLine(64));
  add("straight-256", BuildStraightLine(256));
  add("diamonds-4", BuildBranchDiamonds(4));
  add("diamonds-8", BuildBranchDiamonds(8));
  add("loop-32", BuildCountedLoop(32));
  // Everything above at most reads scalar fields out of the ctx block —
  // the post-drain execution probes draw from this prefix so a plain
  // zeroed kernel-data region serves as ctx (no packet or socket state).
  const usize probe_safe_count = corpus.size();
  add("packet-counter", BuildPacketCounter(arr_fd));
  add("sk-lookup-ok", BuildSkLookupWithRelease());
  const usize accepted_count = corpus.size();
  add("sk-lookup-leak", BuildSkLookupNoRelease());
  add("arbitrary-read", BuildArbitraryReadExploit(arr_fd, 4096));
  add("jmp32-oob", BuildJmp32BoundsExploit(wide_fd));
  if (accepted_count < 8 || corpus.size() < 11) {
    report.failure = "corpus setup failed";
    return report;
  }

  safex::Toolchain toolchain(*rig.key);
  safex::Toolchain rogue_toolchain(*rig.rogue_key);
  safex::ExtensionManifest manifest;
  manifest.name = "storm-nop";
  manifest.version = "1";
  auto good_artifact = toolchain.Build(
      manifest, []() { return std::make_unique<NopExt>(); },
      std::span<const xbase::u8>());
  manifest.name = "storm-rogue";
  auto rogue_artifact = rogue_toolchain.Build(
      manifest, []() { return std::make_unique<NopExt>(); },
      std::span<const xbase::u8>());
  if (!good_artifact.ok() || !rogue_artifact.ok()) {
    report.failure = "artifact setup failed";
    return report;
  }

  service::AdmissionConfig svc_config;
  svc_config.workers = config.workers;
  svc_config.queue_capacity = config.queue_capacity;
  svc_config.cache_enabled = config.cache_enabled;
  service::AdmissionService svc(svc_config, rig.bpf, rig.loader,
                                rig.ext_loader.get());

  const auto& catalog = ebpf::FaultRegistry::Catalog();
  std::set<u32> live_progs;
  std::set<u32> live_exts;
  u64 round = 0;

  const auto fail = [&](std::string why) {
    report.failure = std::move(why);
    report.failed_at_round = round;
    // Leave the service to its destructor (drains and joins).
  };

  struct Pending {
    service::AdmissionService::Ticket ticket;
    bool is_ext = false;
  };

  for (round = 1; round <= config.rounds; ++round) {
    std::vector<Pending> pending;
    pending.reserve(config.ops_per_round);

    for (u64 op = 0; op < config.ops_per_round; ++op) {
      const u64 dice = rng.NextBelow(100);
      if (dice < 10 && config.toggle_faults && !catalog.empty()) {
        // Toggle a defect from the driver thread while workers are mid-
        // verification: races the epoch against in-flight stage runs.
        const ebpf::FaultInfo& fault =
            catalog[rng.NextBelow(catalog.size())];
        if (rig.bpf.faults().IsActive(fault.id)) {
          rig.bpf.faults().Clear(fault.id);
        } else {
          rig.bpf.faults().Inject(fault.id);
        }
        ++report.stats.fault_toggles;
        continue;
      }
      if (dice < 25) {
        const bool rogue = rng.NextBelow(3) == 0;
        pending.push_back(Pending{
            svc.LoadExtension(rogue ? rogue_artifact.value()
                                    : good_artifact.value(),
                              /*async=*/true),
            /*is_ext=*/true});
        ++report.stats.ext_submissions;
      } else {
        // Bias toward the accepted half of the corpus, and toward its
        // first few entries — duplicates force coalescing.
        const bool pick_rejected = rng.NextBelow(4) == 0;
        const usize index =
            pick_rejected
                ? accepted_count +
                      rng.NextBelow(corpus.size() - accepted_count)
                : rng.NextBelow(rng.NextBool() ? 3 : accepted_count);
        ebpf::LoadOptions options;
        options.async = true;
        options.privileged = rng.NextBelow(4) != 0;
        options.staticcheck_prepass = rng.NextBelow(4) == 0;
        pending.push_back(
            Pending{svc.Load(corpus[index].prog, options), false});
        ++report.stats.bpf_submissions;
      }
      ++report.stats.submissions;
    }

    svc.Drain();

    // Invariant: every ticket resolved; admitted ids unique and findable.
    for (const Pending& p : pending) {
      auto result = svc.Wait(p.ticket);
      if (!result.ok()) {
        ++report.stats.rejected;
        continue;
      }
      ++report.stats.admitted;
      const u32 id = result.value();
      if (p.is_ext) {
        if (!live_exts.insert(id).second) {
          fail(xbase::StrFormat("duplicate live extension id %u", id));
          return report;
        }
        if (!rig.ext_loader->Find(id).ok()) {
          fail(xbase::StrFormat("admitted extension %u not findable", id));
          return report;
        }
      } else {
        if (!live_progs.insert(id).second) {
          fail(xbase::StrFormat("duplicate live program id %u", id));
          return report;
        }
        auto found = rig.loader.Find(id);
        if (!found.ok() || found.value()->id != id) {
          fail(xbase::StrFormat("admitted program %u not findable", id));
          return report;
        }
      }
    }

    // Invariant: loader populations match the storm's own accounting.
    if (rig.loader.size() != live_progs.size()) {
      fail(xbase::StrFormat("loader holds %zu programs, storm expects %zu",
                            rig.loader.size(), live_progs.size()));
      return report;
    }
    if (rig.ext_loader->size() != live_exts.size()) {
      fail(xbase::StrFormat("ext loader holds %zu, storm expects %zu",
                            rig.ext_loader->size(), live_exts.size()));
      return report;
    }

    // Invariant: settled-epoch verdict consistency. With no toggle in
    // flight, a service load (cache hit or fresh) must agree with a direct
    // single-threaded Prepare — status and verification stats both.
    for (int probe = 0; probe < 2; ++probe) {
      const CorpusEntry& entry = corpus[rng.NextBelow(corpus.size())];
      ebpf::LoadOptions options;  // privileged, no prepass, sync
      auto direct = rig.loader.Prepare(entry.prog, options);
      auto via_service = svc.Wait(svc.Load(entry.prog, options));
      ++report.stats.bpf_submissions;
      ++report.stats.consistency_probes;
      if (direct.ok() != via_service.ok()) {
        fail(xbase::StrFormat(
            "settled-epoch divergence on %s: direct %s, service %s",
            entry.name.c_str(), direct.status().ToString().c_str(),
            via_service.status().ToString().c_str()));
        return report;
      }
      if (via_service.ok()) {
        const u32 id = via_service.value();
        auto found = rig.loader.Find(id);
        if (!found.ok()) {
          fail(xbase::StrFormat("probe id %u not findable", id));
          return report;
        }
        const ebpf::VerifyStats& service_stats =
            found.value()->verify.stats;
        const ebpf::VerifyStats& direct_stats = direct.value().verify.stats;
        if (service_stats.insns_processed != direct_stats.insns_processed ||
            service_stats.states_explored != direct_stats.states_explored) {
          fail(xbase::StrFormat(
              "verify stats diverge on %s: service %llu/%llu, "
              "direct %llu/%llu",
              entry.name.c_str(),
              static_cast<unsigned long long>(service_stats.insns_processed),
              static_cast<unsigned long long>(service_stats.states_explored),
              static_cast<unsigned long long>(direct_stats.insns_processed),
              static_cast<unsigned long long>(
                  direct_stats.states_explored)));
          return report;
        }
        if (!rig.loader.Unload(id).ok()) {
          fail(xbase::StrFormat("probe unload of %u refused", id));
          return report;
        }
        ++report.stats.unloads;
      }
    }

    // Invariant: post-drain execution probe. A freshly admitted ctx-free
    // corpus program must run to completion on the configured engine, and —
    // when that engine is the threaded one — agree with the legacy
    // interpreter on r0 and retired-insn count. Active fault-registry
    // defects are suspended for the probe (an injected JIT defect that
    // corrupts the lowered image is *supposed* to diverge the engines) and
    // restored afterwards so the storm's fault schedule is undisturbed.
    {
      std::vector<std::string> suspended;
      for (const ebpf::FaultInfo& fault : catalog) {
        if (rig.bpf.faults().IsActive(fault.id)) {
          suspended.push_back(fault.id);
          rig.bpf.faults().Clear(fault.id);
        }
      }
      const CorpusEntry& entry = corpus[rng.NextBelow(probe_safe_count)];
      auto probe_id = rig.loader.Load(entry.prog);
      if (!probe_id.ok()) {
        fail(xbase::StrFormat("exec probe load of %s refused: %s",
                              entry.name.c_str(),
                              probe_id.status().ToString().c_str()));
        return report;
      }
      auto loaded = rig.loader.Find(probe_id.value());
      ebpf::ExecOptions exec_opts;
      exec_opts.engine = config.engine;
      auto primary = ebpf::Execute(rig.bpf, *loaded.value(), probe_ctx.value(),
                                   exec_opts, &rig.loader);
      ++report.stats.exec_probes;
      if (!primary.ok()) {
        fail(xbase::StrFormat("exec probe of %s failed: %s",
                              entry.name.c_str(),
                              primary.status().ToString().c_str()));
        return report;
      }
      if (config.engine == ebpf::ExecEngine::kThreaded) {
        exec_opts.engine = ebpf::ExecEngine::kLegacy;
        auto cross = ebpf::Execute(rig.bpf, *loaded.value(), probe_ctx.value(),
                                   exec_opts, &rig.loader);
        if (!cross.ok() || cross.value().r0 != primary.value().r0 ||
            cross.value().stats.insns != primary.value().stats.insns) {
          fail(xbase::StrFormat(
              "engine divergence on %s: threaded r0=%llu insns=%llu, "
              "legacy %s",
              entry.name.c_str(),
              static_cast<unsigned long long>(primary.value().r0),
              static_cast<unsigned long long>(primary.value().stats.insns),
              cross.ok()
                  ? xbase::StrFormat(
                        "r0=%llu insns=%llu",
                        static_cast<unsigned long long>(cross.value().r0),
                        static_cast<unsigned long long>(
                            cross.value().stats.insns))
                        .c_str()
                  : cross.status().ToString().c_str()));
          return report;
        }
      }
      if (!rig.loader.Unload(probe_id.value()).ok()) {
        fail(xbase::StrFormat("exec probe unload of %u refused",
                              probe_id.value()));
        return report;
      }
      ++report.stats.unloads;
      for (const std::string& fault_id : suspended) {
        rig.bpf.faults().Inject(fault_id);
      }
    }

    // Invariant: metrics conserve after a drain.
    const service::AdmissionMetrics m = svc.Metrics();
    if (m.submitted != m.completed) {
      fail(xbase::StrFormat("metrics leak: %llu submitted, %llu completed",
                            static_cast<unsigned long long>(m.submitted),
                            static_cast<unsigned long long>(m.completed)));
      return report;
    }
    if (m.admitted + m.rejected != m.completed) {
      fail("metrics leak: admitted + rejected != completed");
      return report;
    }
    if (m.queue_depth != 0) {
      fail(xbase::StrFormat("queue depth %llu after drain",
                            static_cast<unsigned long long>(m.queue_depth)));
      return report;
    }
    if (config.cache_enabled) {
      // Every program admission performs exactly one cache Acquire, and
      // every miss's owner publishes exactly once (cacheable or not).
      if (m.cache.hits + m.cache.misses != report.stats.bpf_submissions) {
        fail(xbase::StrFormat(
            "cache lookups leak: %llu hits + %llu misses != %llu program "
            "submissions",
            static_cast<unsigned long long>(m.cache.hits),
            static_cast<unsigned long long>(m.cache.misses),
            static_cast<unsigned long long>(report.stats.bpf_submissions)));
        return report;
      }
      if (m.cache.published != m.cache.misses) {
        fail("cache publish leak: a miss owner never published");
        return report;
      }
    }

    // Unload roughly half of everything live; unattached unloads must
    // always succeed.
    for (auto* live : {&live_progs, &live_exts}) {
      std::vector<u32> victims;
      for (const u32 id : *live) {
        if (rng.NextBool()) {
          victims.push_back(id);
        }
      }
      for (const u32 id : victims) {
        const xbase::Status status = live == &live_progs
                                         ? rig.loader.Unload(id)
                                         : rig.ext_loader->Unload(id);
        if (!status.ok()) {
          fail(xbase::StrFormat("unload of unattached %u refused: %s", id,
                                status.ToString().c_str()));
          return report;
        }
        live->erase(id);
        ++report.stats.unloads;
      }
    }

    if (rig.kernel.state() != simkern::KernelState::kRunning) {
      fail("kernel not running");
      return report;
    }
    ++report.stats.rounds_executed;
  }

  // Teardown: everything must unload cleanly, and a submission after
  // Shutdown must resolve (rejected), not hang.
  round = config.rounds + 1;
  for (const u32 id : live_progs) {
    if (!rig.loader.Unload(id).ok()) {
      fail(xbase::StrFormat("final unload of program %u refused", id));
      return report;
    }
    ++report.stats.unloads;
  }
  for (const u32 id : live_exts) {
    if (!rig.ext_loader->Unload(id).ok()) {
      fail(xbase::StrFormat("final unload of extension %u refused", id));
      return report;
    }
    ++report.stats.unloads;
  }
  if (rig.loader.size() != 0 || rig.ext_loader->size() != 0) {
    fail("loaders not empty after final unload");
    return report;
  }

  const service::AdmissionMetrics final_metrics = svc.Metrics();
  report.stats.cache_hits = final_metrics.cache.hits;
  report.stats.cache_misses = final_metrics.cache.misses;
  report.stats.coalesced_waits = final_metrics.cache.coalesced_waits;
  report.stats.uncacheable = final_metrics.cache.uncacheable;
  report.stats.verify_runs = final_metrics.verify_runs;
  report.stats.queue_depth_peak = final_metrics.queue_depth_peak;

  svc.Shutdown();
  auto post = svc.Wait(svc.Load(corpus[0].prog, {}));
  if (post.ok() ||
      post.status().code() != xbase::Code::kFailedPrecondition) {
    fail("post-shutdown submission did not fail with FailedPrecondition");
    return report;
  }

  report.ok = true;
  return report;
}

}  // namespace analysis

#include "src/analysis/chaos.h"

#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>

#include "src/analysis/workloads.h"
#include "src/core/hooks.h"
#include "src/core/toolchain.h"
#include "src/ebpf/interp.h"
#include "src/xbase/rand.h"
#include "src/xbase/strfmt.h"

namespace analysis {
namespace {

using safex::Ctx;
using xbase::u32;
using xbase::u64;
using xbase::usize;

// ---- hostile safex corpus ------------------------------------------------

// Well-behaved control: returns a fixed verdict.
class ConstExt : public safex::Extension {
 public:
  explicit ConstExt(u64 verdict) : verdict_(verdict) {}
  xbase::Result<u64> Run(Ctx&) override { return verdict_; }

 private:
  u64 verdict_;
};

// Panics on every invocation (crate-violation analogue).
class PanickerExt : public safex::Extension {
 public:
  xbase::Result<u64> Run(Ctx& ctx) override {
    ctx.Panic("chaos: deliberate panic");
    return u64{0};
  }
};

// Panics every `period`-th invocation; healthy otherwise. Exercises the
// probation/readmission path: it can earn its way back after quarantine.
class FlakyExt : public safex::Extension {
 public:
  explicit FlakyExt(u32 period) : period_(period) {}
  xbase::Result<u64> Run(Ctx& ctx) override {
    if (++calls_ % period_ == 0) {
      ctx.Panic("chaos: periodic fault");
    }
    return u64{0};
  }

 private:
  u32 period_;
  u64 calls_ = 0;
};

// Burns simulated time until the watchdog kills it.
class WatchdogHogExt : public safex::Extension {
 public:
  xbase::Result<u64> Run(Ctx& ctx) override {
    for (;;) {
      XB_RETURN_IF_ERROR(ctx.Charge(50'000));  // 50 µs per spin
    }
  }
};

// Recurses past the frame-depth guard.
class StackHogExt : public safex::Extension {
 public:
  xbase::Result<u64> Run(Ctx& ctx) override {
    return Recurse(ctx, 0);
  }

 private:
  xbase::Result<u64> Recurse(Ctx& ctx, u32 depth) {
    XB_RETURN_IF_ERROR(ctx.EnterFrame());
    XB_ASSIGN_OR_RETURN(const u64 below, Recurse(ctx, depth + 1));
    ctx.LeaveFrame();
    return below + 1;
  }
};

// Throws a foreign (non-TerminationSignal) exception out of the body.
class ThrowerExt : public safex::Extension {
 public:
  xbase::Result<u64> Run(Ctx&) override {
    throw std::runtime_error("chaos: foreign exception");
  }
};

// ---- the rig -------------------------------------------------------------

struct CorpusProgram {
  std::string name;
  ebpf::Program prog;
};

struct ChaosRig {
  explicit ChaosRig(const ChaosConfig& config)
      : kernel(MakeKernelConfig(config.cpus)), bpf(kernel),
        bpf_loader(bpf) {
    kernel.set_oops_recovery(true);
    ok = kernel.BootstrapWorkload().ok();
    auto rt = safex::Runtime::Create(kernel, bpf);
    ok = ok && rt.ok();
    if (!ok) {
      return;
    }
    runtime = std::move(rt).value();
    key = std::make_unique<crypto::SigningKey>(
        crypto::SigningKey::FromPassphrase("chaos-vendor", "chaos"));
    (void)runtime->keyring().Enroll(*key);
    runtime->keyring().Seal();
    ext_loader = std::make_unique<safex::ExtLoader>(*runtime);
    supervisor = std::make_unique<safex::Supervisor>(config.supervisor);
    safex::HookRegistryConfig hook_config;
    hook_config.supervisor = supervisor.get();
    hook_config.exec_options.engine = config.engine;
    hooks = std::make_unique<safex::HookRegistry>(bpf, bpf_loader,
                                                  *ext_loader, hook_config);
  }

  static simkern::KernelConfig MakeKernelConfig(xbase::u32 cpus) {
    simkern::KernelConfig config;
    config.unprivileged_bpf_disabled = false;
    if (cpus > 1) {
      config.num_cpus = cpus;
    }
    return config;
  }

  bool ok = false;
  simkern::Kernel kernel;
  ebpf::Bpf bpf;
  ebpf::Loader bpf_loader;
  std::unique_ptr<safex::Runtime> runtime;
  std::unique_ptr<crypto::SigningKey> key;
  std::unique_ptr<safex::ExtLoader> ext_loader;
  std::unique_ptr<safex::Supervisor> supervisor;
  std::unique_ptr<safex::HookRegistry> hooks;
};

int MustMap(ChaosRig& rig, ebpf::MapType type, const char* name,
            u32 value_size, u32 entries) {
  ebpf::MapSpec spec;
  spec.type = type;
  spec.key_size = 4;
  spec.value_size = value_size;
  spec.max_entries = entries;
  spec.name = name;
  auto fd = rig.bpf.maps().Create(spec);
  return fd.ok() ? fd.value() : -1;
}

struct LiveAttachment {
  u32 attachment_id;
  bool is_safex;
  u32 target_id;
  safex::HookPoint hook;
};

constexpr safex::HookPoint kHooks[] = {safex::HookPoint::kXdpIngress,
                                       safex::HookPoint::kSyscallEnter,
                                       safex::HookPoint::kSchedSwitch};

}  // namespace

ChaosReport RunChaos(const ChaosConfig& config) {
  ChaosReport report;
  report.seed = config.seed;
  report.stats.fault_catalog_size = ebpf::FaultRegistry::Catalog().size();

  xbase::Rng rng(config.seed);
  ChaosRig rig(config);
  if (!rig.ok) {
    report.failure = "rig construction failed";
    return report;
  }
  const bool smp = config.cpus > 1;
  if (smp) {
    rig.kernel.StartCpus();
  }

  // --- fixed substrate: maps, one skb, one ctx block ---------------------
  const int arr_fd = MustMap(rig, ebpf::MapType::kArray, "chaos-arr", 8, 4);
  const int wide_fd =
      MustMap(rig, ebpf::MapType::kArray, "chaos-wide", 64, 4);
  const int lock_fd =
      MustMap(rig, ebpf::MapType::kArray, "chaos-lock", 16, 1);
  const int tstor_fd =
      MustMap(rig, ebpf::MapType::kTaskStorage, "chaos-tstor", 16, 16);
  if (arr_fd < 0 || wide_fd < 0 || lock_fd < 0 || tstor_fd < 0) {
    report.failure = "map setup failed";
    return report;
  }
  xbase::u8 payload[48] = {0xde, 0xad, 0xbe, 0xef};
  auto skb = rig.kernel.net().CreateSkBuff(rig.kernel.mem(), payload);
  auto ctx_block = rig.kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                        simkern::RegionKind::kKernelData,
                                        "chaos-ctx");
  if (!skb.ok() || !ctx_block.ok()) {
    report.failure = "context setup failed";
    return report;
  }

  // --- program corpus: verifier-approved and fault-gated exploits --------
  std::vector<CorpusProgram> programs;
  auto add_prog = [&programs](const char* name,
                              xbase::Result<ebpf::Program> prog) {
    if (prog.ok()) {
      programs.push_back(CorpusProgram{name, std::move(prog).value()});
    }
  };
  add_prog("straight_line", BuildStraightLine(16));
  add_prog("packet_counter", BuildPacketCounter(arr_fd));
  add_prog("sys_bpf_null", BuildSysBpfNullCrash());
  add_prog("sk_lookup_ok", BuildSkLookupWithRelease());
  add_prog("sk_lookup_leak", BuildSkLookupNoRelease());
  add_prog("double_spin_lock", BuildDoubleSpinLock(lock_fd));
  add_prog("arbitrary_read", BuildArbitraryReadExploit(arr_fd, 4096));
  add_prog("jmp32_oob", BuildJmp32BoundsExploit(wide_fd));
  add_prog("tstor_null_owner", BuildTaskStorageNullOwner(tstor_fd));
  add_prog("task_stack_leak", BuildGetTaskStackErrorPath());

  // --- signed extension corpus -------------------------------------------
  safex::Toolchain toolchain(*rig.key);
  std::vector<safex::SignedArtifact> artifacts;
  auto add_ext = [&](const char* name, safex::ExtensionFactory factory) {
    safex::ExtensionManifest manifest;
    manifest.name = name;
    manifest.version = "1";
    auto artifact = toolchain.Build(manifest, std::move(factory),
                                    std::span<const xbase::u8>());
    if (artifact.ok()) {
      artifacts.push_back(std::move(artifact).value());
    }
  };
  add_ext("chaos-const",
          []() { return std::make_unique<ConstExt>(0); });
  add_ext("chaos-panicker",
          []() { return std::make_unique<PanickerExt>(); });
  add_ext("chaos-flaky",
          []() { return std::make_unique<FlakyExt>(5); });
  add_ext("chaos-watchdog-hog",
          []() { return std::make_unique<WatchdogHogExt>(); });
  add_ext("chaos-stack-hog",
          []() { return std::make_unique<StackHogExt>(); });
  add_ext("chaos-thrower",
          []() { return std::make_unique<ThrowerExt>(); });
  if (programs.size() < 10 || artifacts.size() < 6) {
    report.failure = "corpus setup failed";
    return report;
  }

  std::vector<u32> loaded_progs;
  std::vector<u32> loaded_exts;
  std::vector<LiveAttachment> attachments;
  std::set<std::string> faults_ever;
  usize fault_cursor = 0;
  const auto& catalog = ebpf::FaultRegistry::Catalog();

  // Baseline for the leaked-refcount invariant: nothing an op does may
  // leave a net refcount above this snapshot.
  const simkern::RefcountSnapshot baseline = rig.kernel.objects().Snapshot();

  // Survival invariants, checked after every op. Every check is
  // machine-wide: any CPU's leaked reader, held lock or drifted record
  // breaks the run (the op loop quiesces SMP bursts before checking).
  auto check_invariants = [&](u64 op_index,
                              const std::string& op) -> std::string {
    if (rig.kernel.state() != simkern::KernelState::kRunning) {
      return "kernel not running (oopsed/panicked)";
    }
    if (rig.kernel.rcu().AnyReader()) {
      return "RCU read-side critical section leaked";
    }
    if (!rig.kernel.rcu().stalls().empty()) {
      return "RCU stall recorded";
    }
    if (rig.kernel.locks().held_count_total() != 0) {
      return xbase::StrFormat("%d lock(s) still held",
                              rig.kernel.locks().held_count_total());
    }
    const auto leaks = rig.kernel.objects().DiffSince(baseline);
    if (!leaks.empty()) {
      return xbase::StrFormat("%zu refcount leak(s), first: %s",
                              leaks.size(), leaks.front().name.c_str());
    }
    const xbase::Status supervisor_state =
        rig.supervisor->CheckConsistent(rig.kernel.clock().max_now_ns());
    if (!supervisor_state.ok()) {
      return supervisor_state.message();
    }
    (void)op_index;
    (void)op;
    return "";
  };

  u64 ops_done = 0;
  std::string op_desc;
  for (u64 op = 0; op < config.ops; ++op) {
    const u64 dice = rng.NextBelow(100);
    if (dice < 8) {
      // Load an eBPF program or a safex extension.
      if (rng.NextBool() || artifacts.empty()) {
        const auto& entry = programs[rng.NextBelow(programs.size())];
        op_desc = "load bpf " + entry.name;
        auto id = rig.bpf_loader.Load(entry.prog);
        if (id.ok()) {
          loaded_progs.push_back(id.value());
          ++report.stats.loads_ok;
        } else {
          ++report.stats.loads_rejected;
        }
      } else {
        const auto& artifact =
            artifacts[rng.NextBelow(artifacts.size())];
        op_desc = "load ext " + artifact.manifest.name;
        auto id = rig.ext_loader->Load(artifact);
        if (id.ok()) {
          loaded_exts.push_back(id.value());
          ++report.stats.loads_ok;
        } else {
          ++report.stats.loads_rejected;
        }
      }
    } else if (dice < 12) {
      // Unload a random target (detaching its attachments first).
      const bool pick_ext = rng.NextBool();
      auto& pool = pick_ext ? loaded_exts : loaded_progs;
      if (!pool.empty()) {
        const usize index = rng.NextBelow(pool.size());
        const u32 target = pool[index];
        op_desc = xbase::StrFormat("unload %s %u",
                                   pick_ext ? "ext" : "bpf", target);
        for (usize i = attachments.size(); i-- > 0;) {
          if (attachments[i].is_safex == pick_ext &&
              attachments[i].target_id == target) {
            (void)rig.hooks->Detach(attachments[i].attachment_id);
            attachments.erase(attachments.begin() +
                              static_cast<std::ptrdiff_t>(i));
            ++report.stats.detaches;
          }
        }
        if (pick_ext) {
          (void)rig.ext_loader->Unload(target);
        } else {
          (void)rig.bpf_loader.Unload(target);
        }
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(index));
        ++report.stats.unloads;
      } else {
        op_desc = "unload (nothing loaded)";
      }
    } else if (dice < 24) {
      // Attach a random loaded target to a random hook.
      const bool pick_ext = rng.NextBool();
      auto& pool = pick_ext ? loaded_exts : loaded_progs;
      const safex::HookPoint hook = kHooks[rng.NextBelow(3)];
      if (!pool.empty() && rig.hooks->AttachedCountTotal() < 24) {
        const u32 target = pool[rng.NextBelow(pool.size())];
        op_desc = xbase::StrFormat("attach %s %u",
                                   pick_ext ? "ext" : "bpf", target);
        auto id = pick_ext ? rig.hooks->AttachExtension(hook, target)
                           : rig.hooks->AttachProgram(hook, target);
        if (id.ok()) {
          attachments.push_back(
              LiveAttachment{id.value(), pick_ext, target, hook});
          ++report.stats.attaches;
        }
      } else {
        op_desc = "attach (no target)";
      }
    } else if (dice < 32) {
      // Detach a random attachment (quarantined ones included).
      if (!attachments.empty()) {
        const usize index = rng.NextBelow(attachments.size());
        op_desc = xbase::StrFormat("detach %u",
                                   attachments[index].attachment_id);
        (void)rig.hooks->Detach(attachments[index].attachment_id);
        attachments.erase(attachments.begin() +
                          static_cast<std::ptrdiff_t>(index));
        ++report.stats.detaches;
      } else {
        op_desc = "detach (none)";
      }
    } else if (dice < 40 && config.toggle_faults) {
      // Round-robin fault toggle: first pass injects every catalog defect.
      const ebpf::FaultInfo& fault =
          catalog[fault_cursor++ % catalog.size()];
      if (rig.bpf.faults().IsActive(fault.id)) {
        rig.bpf.faults().Clear(fault.id);
        op_desc = "fault clear " + fault.id;
      } else {
        rig.bpf.faults().Inject(fault.id);
        faults_ever.insert(fault.id);
        op_desc = "fault inject " + fault.id;
      }
      ++report.stats.fault_toggles;
    } else if (dice < 50) {
      // Let simulated time pass (backoffs expire, windows slide) — on
      // every CPU, so per-CPU quarantine deadlines all move.
      const u64 delta = rng.NextBelow(20 * simkern::kNsPerMs);
      for (u32 cpu = 0; cpu < rig.kernel.num_cpus(); ++cpu) {
        rig.kernel.clock().Advance(cpu, delta);
      }
      op_desc = "advance clock";
      ++report.stats.clock_advances;
    } else {
      // Fire a hook.
      const safex::HookPoint hook = kHooks[rng.NextBelow(3)];
      const simkern::Addr ctx_addr =
          hook == safex::HookPoint::kXdpIngress ? skb.value().meta_addr
                                                : ctx_block.value();
      op_desc = std::string("fire ") + std::string(HookPointName(hook));
      if (smp && rig.kernel.cpus() != nullptr) {
        // Cross-CPU burst: one fire per CPU runs concurrently on the pool
        // (idle CPUs steal), with a fault toggle racing the in-flight
        // fires. Invariants are asserted after the Drain barrier.
        simkern::CpuPool& pool = *rig.kernel.cpus();
        std::mutex agg_mu;
        for (u32 i = 0; i < config.cpus; ++i) {
          rig.hooks->FireAsyncOn(pool, i % rig.kernel.num_cpus(), hook,
                                 ctx_addr);
          pool.Submit(i % rig.kernel.num_cpus(), [&] {
            auto fired = rig.hooks->Fire(hook, ctx_addr);
            if (fired.ok()) {
              std::lock_guard<std::mutex> lock(agg_mu);
              ++report.stats.fires;
              report.stats.attachments_served += fired.value().served;
              report.stats.attachments_failed += fired.value().failed;
              report.stats.attachments_skipped += fired.value().skipped;
            }
          });
        }
        if (config.toggle_faults && !catalog.empty()) {
          // Deliberately concurrent with the burst: the registry is
          // atomic, and fires must survive faults flipping mid-flight.
          const ebpf::FaultInfo& fault =
              catalog[fault_cursor++ % catalog.size()];
          if (rig.bpf.faults().IsActive(fault.id)) {
            rig.bpf.faults().Clear(fault.id);
          } else {
            rig.bpf.faults().Inject(fault.id);
            faults_ever.insert(fault.id);
          }
          ++report.stats.fault_toggles;
        }
        pool.Drain();
        report.stats.fires += config.cpus;  // the FireAsyncOn halves
      } else {
        auto fired = rig.hooks->Fire(hook, ctx_addr);
        if (fired.ok()) {
          ++report.stats.fires;
          report.stats.attachments_served += fired.value().served;
          report.stats.attachments_failed += fired.value().failed;
          report.stats.attachments_skipped += fired.value().skipped;
        }
      }
    }

    ++ops_done;
    const std::string violated = check_invariants(op, op_desc);
    if (!violated.empty()) {
      report.failure = xbase::StrFormat(
          "op %llu (%s): %s [replay: --seed %llu --ops %llu]",
          static_cast<unsigned long long>(op), op_desc.c_str(),
          violated.c_str(), static_cast<unsigned long long>(config.seed),
          static_cast<unsigned long long>(config.ops));
      report.failed_at_op = op;
      break;
    }
  }

  if (smp) {
    rig.kernel.StopCpus();
  }
  report.stats.ops_executed = ops_done;
  report.stats.faults_ever_injected = faults_ever.size();
  report.stats.final_sim_time_ns = rig.kernel.clock().max_now_ns();
  report.stats.supervisor_failures = rig.supervisor->failures();
  report.stats.supervisor_trips = rig.supervisor->trips();
  report.stats.supervisor_evictions = rig.supervisor->evictions();
  report.stats.supervisor_readmissions = rig.supervisor->readmissions();
  for (const simkern::OopsRecord& oops : rig.kernel.oopses()) {
    if (oops.recovered) {
      ++report.stats.oopses_contained;
    }
  }
  report.ok = report.failure.empty();
  return report;
}

}  // namespace analysis

// Seeded SMP load generator: a mixed-tenant event stream — packet-counter
// fires, scheduler ticks, LSM file-open decisions and map churn — submitted
// across all simulated CPUs of one kernel and executed concurrently on the
// CpuPool's real threads (idle CPUs steal, like softirq load spreading).
//
// This is the workload half of the tentpole's scaling claim: the same
// seeded stream runs at any CPU count, throughput is measured in simulated
// time (events per simulated millisecond, using the slowest CPU's clock
// advance as the makespan), and per-fire service latencies are recorded
// per CPU and merged into p50/p99/p999 tails. bench/smp_scaling sweeps
// RunTraffic over 1..16 CPUs to produce BENCH_smp.json; tools/trafficgen
// is the CLI for one run.
//
// Correctness is asserted, not assumed: the packet program counts into a
// per-CPU array map, so after the final Drain the cross-CPU sum must equal
// the number of packet fires exactly — a lost update anywhere in the
// per-CPU storage, dispatch path or work-stealing pool breaks the run.
#pragma once

#include <string>
#include <vector>

#include "src/ebpf/interp.h"
#include "src/simkern/lock.h"
#include "src/xbase/types.h"

namespace analysis {

struct TrafficConfig {
  xbase::u64 seed = 1;
  xbase::u64 events = 20000;
  // Simulated CPUs. 1 runs the stream inline on the calling thread (no
  // pool, the historical single-CPU dispatch path); >1 starts the kernel's
  // CpuPool and round-robins event batches across the machine.
  xbase::u32 cpus = 4;
  // Tasks available to the scheduler tenant (spread across the CPUs'
  // runqueues at setup).
  xbase::u32 tasks = 8;
  ebpf::ExecEngine engine = ebpf::ExecEngine::kThreaded;
};

// Per-CPU accounting, read at the post-Drain quiescent point.
struct TrafficCpuStats {
  xbase::u64 executed = 0;        // pool tasks that ran on this CPU
  xbase::u64 stolen = 0;          // tasks this CPU took from a sibling
  xbase::u64 fires = 0;           // hook fires dispatched on this CPU
  xbase::u64 sim_advanced_ns = 0; // simulated time this CPU's clock moved
  xbase::u64 packet_count = 0;    // this CPU's slot of the per-CPU counter
};

// Wall-clock service-latency tails for one tenant's fires (ns per fire,
// measured around the Fire call on the executing thread).
struct LatencyTailsNs {
  xbase::u64 p50 = 0;
  xbase::u64 p99 = 0;
  xbase::u64 p999 = 0;
  xbase::u64 max = 0;
  xbase::usize samples = 0;
};

struct TrafficReport {
  bool ok = false;
  std::string failure;  // which end-of-run invariant broke

  // Event mix actually generated (sums to TrafficConfig::events).
  xbase::u64 packet_events = 0;
  xbase::u64 sched_events = 0;
  xbase::u64 lsm_events = 0;
  xbase::u64 churn_events = 0;

  xbase::u64 lsm_denies = 0;          // fail-closed verdicts observed
  xbase::u64 packet_count_sum = 0;    // per-CPU map sum; == packet_events

  // Aggregate throughput in simulated time: events / (max over CPUs of
  // that CPU's clock advance). Wall time is reported informationally —
  // the simulation's own clocks are the noise-free scaling metric.
  xbase::u64 sim_elapsed_ns = 0;
  xbase::u64 wall_elapsed_ns = 0;
  double events_per_sim_ms = 0;

  LatencyTailsNs fire_latency;        // merged across CPUs
  std::vector<TrafficCpuStats> per_cpu;
  simkern::LockStats lock_totals;     // spin/hold contention, machine-wide
};

TrafficReport RunTraffic(const TrafficConfig& config);

}  // namespace analysis

// Figure 3 analysis: call-graph complexity of each registered eBPF helper,
// measured by static reachability over the simulated kernel's call graph —
// the same methodology as the paper (function pointers excluded, counts are
// lower bounds).
#pragma once

#include <string>
#include <vector>

#include "src/ebpf/helper.h"
#include "src/simkern/kernel.h"

namespace analysis {

struct HelperComplexity {
  std::string name;
  xbase::u32 helper_id = 0;
  xbase::usize reachable_nodes = 0;
};

struct ComplexitySummary {
  std::vector<HelperComplexity> helpers;  // sorted by node count descending
  xbase::usize total_helpers = 0;
  xbase::usize min_nodes = 0;
  xbase::usize median_nodes = 0;
  xbase::usize max_nodes = 0;
  double fraction_ge_30 = 0;   // paper: 52.2 %
  double fraction_ge_500 = 0;  // paper: 34.5 %
};

// Computes reachability for every helper registered in `helpers` against
// `kernel`'s call graph.
ComplexitySummary AnalyzeHelperComplexity(const ebpf::HelperRegistry& helpers,
                                          const simkern::Kernel& kernel);

}  // namespace analysis

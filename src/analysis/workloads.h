// Workload and exploit program builders shared by the benchmark harnesses
// and the integration tests. Each Build* function returns a complete eBPF
// program reproducing one of the paper's demonstrations or one Table 1 bug
// class; the comments state which defect (if any) must be injected for the
// exploit to land.
#pragma once

#include "src/ebpf/asm.h"
#include "src/ebpf/bpf.h"
#include "src/xbase/status.h"

namespace analysis {

// §2.2 "Safety": calls bpf_sys_bpf(BPF_PROG_LOAD, attr, 24) with a NULL
// instruction pointer inside the attr union. Passes any verifier (the union
// field is invisible to it); crashes the kernel with no defect injected —
// the bug is the interface.
xbase::Result<ebpf::Program> BuildSysBpfNullCrash();

// §2.2 "Termination": `nesting` levels of bpf_loop, each level running
// `iters` iterations; the innermost body performs a map update. Runtime is
// (iters ^ nesting) * body_cost — linear control over total runtime via
// iters, exponential via nesting.
xbase::Result<ebpf::Program> BuildNestedLoopStall(int map_fd,
                                                  xbase::u32 nesting,
                                                  xbase::u32 iters);

// Table 1 "Arbitrary read/write" (verifier.scalar_bounds injected): walks a
// map-value pointer `stride` bytes past the value and reads — landing in
// whatever kernel memory follows.
xbase::Result<ebpf::Program> BuildArbitraryReadExploit(int map_fd,
                                                       xbase::s32 stride);

// Table 1 "Out-of-bound access" (verifier.jmp32_bounds injected): a 64-bit
// index whose low 32 bits look small defeats the buggy 32-bit bounds
// propagation; the map value access is then out of bounds at runtime.
xbase::Result<ebpf::Program> BuildJmp32BoundsExploit(int map_fd);

// Table 1 "Kernel pointer leak" (verifier.ptr_leak_check injected, unpriv):
// returns a map-value kernel address as the program's return value.
xbase::Result<ebpf::Program> BuildPtrLeakExploit(int map_fd);

// Table 1 "Deadlock" (verifier.spin_lock_tracking injected): acquires the
// same bpf_spin_lock twice; with lock tracking off this verifies and then
// self-deadlocks at runtime.
xbase::Result<ebpf::Program> BuildDoubleSpinLock(int map_fd);

// Table 1 "Reference count leak" #1 (verifier.ref_tracking injected):
// bpf_sk_lookup_tcp without bpf_sk_release.
xbase::Result<ebpf::Program> BuildSkLookupNoRelease();

// A *correct* socket-lookup program (lookup + release). Used to show that
// with helper.sk_lookup.request_sock_leak injected, even well-behaved
// verified programs leak — the bug is inside the helper, below the
// verifier's horizon.
xbase::Result<ebpf::Program> BuildSkLookupWithRelease();

// Table 1 "Reference count leak" #2 (helper.get_task_stack.refcount_leak
// injected): drives bpf_get_task_stack down its error path (undersized
// buffer), where the buggy helper forgets to drop the task reference.
xbase::Result<ebpf::Program> BuildGetTaskStackErrorPath();

// Table 1 "Null-pointer dereference" (helper.task_storage.null_owner
// injected): passes a NULL task pointer to bpf_task_storage_get.
xbase::Result<ebpf::Program> BuildTaskStorageNullOwner(int storage_fd);

// Table 1 "Integer overflow" (helper.array_index_overflow injected):
// updates a high array index whose wrapped offset aliases element 0, then
// reads element 0 back (the corruption witness).
xbase::Result<ebpf::Program> BuildArrayOverflowExploit(int map_fd,
                                                       xbase::u32 hi_index);

// Table 1 / CVE-2021-29154 (jit.branch_off_by_one injected): a long forward
// branch that the buggy JIT lands one instruction short, executing a load
// through an uninitialized register.
xbase::Result<ebpf::Program> BuildJitHijackVictim();

// Table 1 / CVE-2020-8835 (verifier.alu32_bounds_trunc injected): a 32-bit
// add whose 64-bit bounds wrap past 2^32; the buggy epilogue truncates them
// modulo 2^32 and claims [0,7] for a value that can be anywhere in u32.
// Needs an array map with value_size >= 16.
xbase::Result<ebpf::Program> BuildAlu32TruncExploit(int map_fd);

// Table 1 / CVE-2017-16995 (verifier.sign_ext_confusion injected): mov32
// with imm -1 tracked as the sign-extended 64-bit constant although the
// runtime zero-extends, so (r+1)>>28 is 16 at runtime but 0 to the buggy
// verifier. Needs an array map with value_size >= 16.
xbase::Result<ebpf::Program> BuildSignExtExploit(int map_fd);

// Table 1 bounds class (verifier.jgt_refine_off_by_one injected): the JGT
// fall-through edge refines umax one too low, admitting an 8-byte read at
// map_value + 9 into a 16-byte value. This is also the staticcheck_prepass
// regression witness: range refinement rejects it from the bytecode alone.
// Needs an array map with value_size >= 16.
xbase::Result<ebpf::Program> BuildJgtOffByOneExploit(int map_fd);

// Table 1 / tnum_mul rewrite class (verifier.tnum_mul_precision injected):
// (r & 1) * 24 is {0, 24} at runtime, but a mul that drops the uncertainty
// cross terms claims known bits {0,1}. Needs value_size >= 16.
xbase::Result<ebpf::Program> BuildTnumMulExploit(int map_fd);

// Table 1 relational bounds class (verifier.reg_reg_refine_off_by_one
// injected): r8 <= 8 by an immediate compare, then `if r7 >= r8 goto out`
// proves r7 <= 7 on the fall-through — the buggy refinement claims
// r7 <= 6, admitting an 8-byte read at value + r7 + 50 into a 64-byte
// value (needs r7 <= 6; r7 == 7 lands out of bounds). Needs value_size 64.
xbase::Result<ebpf::Program> BuildRegRegOffByOneExploit(int map_fd);

// Table 1 spill-width class (verifier.spill_width_confusion injected): a
// bounded scalar is spilled as 8 bytes, a 1-byte store scribbles over the
// slot, and the following fill under the defect restores the stale [0,7]
// bounds although the low byte is now 0x7f. Needs value_size 64.
xbase::Result<ebpf::Program> BuildSpillWidthExploit(int map_fd);

// Table 1 packet-invalidation class (verifier.pkt_range_stale_helper
// injected): proves 14 packet bytes, calls bpf_skb_vlan_push (which
// reallocates packet data), then rereads through the pre-call packet
// pointer. The clean verifier and staticcheck both reject the stale
// dereference; the faulted verifier admits it.
xbase::Result<ebpf::Program> BuildPktRangeStaleExploit();

// Relational-precision flagship: `if r7 >= r8 goto out; if r8 > 32 goto
// out` then a 1-byte read at value + r7. Safe because r7 < r8 <= 32, but
// proving it needs the *relation* carried across the second branch — the
// zone domain accepts, intervals (either analysis, even with endpoint
// reg-reg refinement) cannot. Needs value_size 64.
xbase::Result<ebpf::Program> BuildRelGuard(int map_fd);

// Verification-cost probe, spill-heavy family: `rounds` spill/fill round
// trips of a bounded scalar through rotating stack slots, ending in a
// 1-byte access indexed by the surviving bound. Needs value_size 64.
xbase::Result<ebpf::Program> BuildSpillHeavy(xbase::u32 rounds, int map_fd);

// Verification-cost probe, reg-reg branch-diamond family: `branches`
// if/else diamonds over two unknown scalars compared against each other,
// so every diamond forks verifier state with differently-refined bounds.
// Needs value_size 64.
xbase::Result<ebpf::Program> BuildRegRegDiamonds(xbase::u32 branches,
                                                 int map_fd);

// Expressiveness corpus (§2.1 / B-EXP): a straight-line program of `len`
// ALU instructions (size-limit probe).
xbase::Result<ebpf::Program> BuildStraightLine(xbase::u32 len);

// Path-explosion probe (B-VER): `branches` independent if/else diamonds,
// which the verifier explores as 2^branches paths bounded by pruning.
xbase::Result<ebpf::Program> BuildBranchDiamonds(xbase::u32 branches);

// Verification-cost probe: a bounded loop of `trip_count` iterations whose
// body the verifier walks iteration by iteration.
xbase::Result<ebpf::Program> BuildCountedLoop(xbase::u32 trip_count);

// A small packet filter (XDP-style) used by the runtime-overhead bench:
// parses the first bytes of the packet and counts into a map.
xbase::Result<ebpf::Program> BuildPacketCounter(int map_fd);

// ---- scheduler pick-next policies (sched_ext family) -----------------------
// All are ProgType::kSchedExt and verify cleanly at v6.12 under a
// privileged loader; the fault witnesses misbehave only when the named
// sched.* helper defect is injected underneath them.

// Picks the first task the enumeration helpers expose (index 0); yields
// (returns 0) when the visible set is empty. The witness for
// sched.helper_pick_invalid_pid: the buggy peek serves a dead pid and this
// honest policy faithfully returns it.
xbase::Result<ebpf::Program> BuildSchedPickFirst();

// Delegates the decision to bpf_sched_pick_default (head of queue). The
// witness for sched.helper_stall_loop: the buggy helper burns ~10ms of
// simulated CPU before answering, blowing any sane pick deadline.
xbase::Result<ebpf::Program> BuildSchedPickViaDefault();

// Scans up to 16 visible tasks and picks the one waiting longest — the
// honest fairness policy. The witness for sched.helper_runnable_filter
// (the hidden task can never win a scan it does not appear in) and for
// sched.helper_crash_on_pick (bpf_sched_wait_ns oopses on the pick path).
xbase::Result<ebpf::Program> BuildSchedPickLongestWaiting();

// Peeks a pid, dequeues it itself, then returns it — so by dispatch time
// the pid is no longer runnable. A malicious/buggy *policy* (no helper
// defect needed): the double-pick the scheduler core must contain.
xbase::Result<ebpf::Program> BuildSchedDoublePick();

// Always returns `pid` regardless of the runqueue. With a dead or absurd
// pid this is the constant-garbage policy.
xbase::Result<ebpf::Program> BuildSchedPickConstant(xbase::u32 pid);

// Calls bpf_sched_yield and returns 0: the cooperative hand-off path.
xbase::Result<ebpf::Program> BuildSchedYield();

}  // namespace analysis

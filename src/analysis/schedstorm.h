// Deterministic scheduler chaos harness: drives randomized tick / attach /
// detach / sched-fault-toggle / task-create / task-exit / clock-advance
// sequences against a supervised SchedCore and asserts the scheduling
// invariants after every single step — kernel alive, supervisor consistent,
// runqueue entries live and duplicate-free, every supervised tick with
// runnable tasks dispatching one, and no runnable task waiting unboundedly.
// Everything derives from one xbase::Rng seed, so any failure replays
// bit-identically from the seed printed in the failure message
// (`tools/schedstorm --seed N --ops M`).
//
// The policy corpus is deliberately hostile: honest sched_ext programs that
// misbehave only when a sched.* helper defect is injected underneath them
// (stall-loop, invalid-pid, runnable-filter, crash-on-pick), an actively
// malicious double-picking policy, a constant-garbage policy, and signed
// safex extensions that yield or panic on pick. Surviving the storm — every
// runnable task keeps progressing no matter what the pick policy does — is
// the availability claim for the scheduler hook family.
#pragma once

#include <string>
#include <vector>

#include "src/core/supervisor.h"
#include "src/xbase/types.h"

namespace analysis {

struct SchedStormConfig {
  xbase::u64 seed = 1;
  xbase::u64 ops = 10000;
  // Simulated CPUs. >1 runs one SchedCore per CPU (Linux-style per-CPU
  // runqueues, same kernel/hooks/supervisor underneath): every tick op
  // becomes a cross-CPU burst of concurrent ticks on real CPU-bound
  // threads, with fault toggles racing the in-flight picks, and the
  // invariants asserted machine-wide (all queues, all clocks) at the
  // post-burst quiescence barrier. Replayable: the op sequence still
  // derives from the seed; only intra-burst interleaving varies.
  xbase::u32 cpus = 1;
  // Round-robin toggling of the four sched.* helper defects.
  bool toggle_faults = true;
  // Starvation bound handed to the SchedCore under test.
  xbase::u64 starvation_bound_ns = 10 * simkern::kNsPerMs;
  // Liveness invariant: no runnable task may ever wait longer than this.
  // Generous (200x the bound) because a runnable-filter defect legitimately
  // starves the hidden task for a few breaker trips before eviction — the
  // invariant is that the wait is *bounded*, unlike the unsupervised loop
  // where it grows without limit.
  xbase::u64 max_wait_ns = 2 * simkern::kNsPerSec;
  safex::SupervisorConfig supervisor;
};

struct SchedStormStats {
  xbase::u64 ops_executed = 0;
  xbase::u64 ticks = 0;
  xbase::u64 dispatches = 0;
  xbase::u64 ext_picks = 0;
  xbase::u64 default_picks = 0;
  xbase::u64 fallback_picks = 0;
  xbase::u64 yields = 0;
  xbase::u64 deadline_misses = 0;
  xbase::u64 invalid_picks = 0;
  xbase::u64 starvation_events = 0;
  xbase::u64 stalls = 0;
  xbase::u64 attaches = 0;
  xbase::u64 detaches = 0;
  xbase::u64 fault_toggles = 0;
  xbase::u64 task_creates = 0;
  xbase::u64 task_exits = 0;
  xbase::u64 clock_advances = 0;
  xbase::u64 oopses_contained = 0;
  xbase::u64 supervisor_failures = 0;
  xbase::u64 supervisor_trips = 0;
  xbase::u64 supervisor_evictions = 0;
  xbase::u64 supervisor_readmissions = 0;
  xbase::u64 max_wait_seen_ns = 0;
  xbase::usize faults_ever_injected = 0;  // distinct sched defects enabled
  xbase::u64 final_sim_time_ns = 0;
};

struct SchedStormReport {
  bool ok = false;
  xbase::u64 seed = 0;
  // On failure: which invariant broke, at which op, doing what.
  std::string failure;
  xbase::u64 failed_at_op = 0;
  SchedStormStats stats;
};

SchedStormReport RunSchedStorm(const SchedStormConfig& config);

// --check-faults mode: for each injectable scheduler fault class, a fresh
// supervised rig with the matched witness policy must *detect* the fault
// (the right FailureKind charged to the right attachment) and *contain* it
// (every tick still dispatches; the kernel stays alive; a starved task is
// rescued). Clean-baseline legs assert no false positives.
struct SchedFaultCheck {
  std::string name;      // fault id, or "clean.<policy>" for baselines
  bool passed = false;
  std::string detail;    // what was expected vs. observed on failure
};

std::vector<SchedFaultCheck> RunSchedFaultChecks();

}  // namespace analysis

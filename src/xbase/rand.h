// Deterministic PRNGs for workload generation and property tests.
// SplitMix64 seeds Xoshiro256**; both are tiny, fast and reproducible, which
// matters because every experiment in this repo must replay bit-identically.
#pragma once

#include "src/xbase/types.h"

namespace xbase {

// One-shot mixer, also usable as a hash finalizer.
constexpr u64 SplitMix64(u64& state) {
  state += 0x9e3779b97f4a7c15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(u64 seed) : seed_(seed) {
    u64 sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  // The construction seed, kept so tests and harnesses can print it on
  // failure — replaying that seed reproduces the exact sequence.
  u64 seed() const { return seed_; }

  u64 NextU64() {
    const u64 result = Rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  u32 NextU32() { return static_cast<u32>(NextU64() >> 32); }

  // Uniform in [0, bound). bound == 0 returns 0.
  u64 NextBelow(u64 bound) {
    if (bound == 0) {
      return 0;
    }
    return NextU64() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  s64 NextInRange(s64 lo, s64 hi) {
    const u64 span = static_cast<u64>(hi - lo) + 1;
    return lo + static_cast<s64>(NextBelow(span));
  }

  bool NextBool() { return (NextU64() & 1) != 0; }

  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr u64 Rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  u64 seed_;
  u64 state_[4];
};

}  // namespace xbase

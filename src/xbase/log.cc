#include "src/xbase/log.h"

#include <atomic>
#include <cstdio>

namespace xbase {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

std::string_view LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogLine(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) {
    return;
  }
  std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(LevelTag(level).size()),
               LevelTag(level).data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace xbase

#include "src/xbase/status.h"

namespace xbase {

std::string_view CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Code::kNotFound:
      return "NOT_FOUND";
    case Code::kAlreadyExists:
      return "ALREADY_EXISTS";
    case Code::kOutOfRange:
      return "OUT_OF_RANGE";
    case Code::kPermissionDenied:
      return "PERMISSION_DENIED";
    case Code::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case Code::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case Code::kUnimplemented:
      return "UNIMPLEMENTED";
    case Code::kRejected:
      return "REJECTED";
    case Code::kTerminated:
      return "TERMINATED";
    case Code::kKernelFault:
      return "KERNEL_FAULT";
    case Code::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(CodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgument(std::string message) {
  return Status(Code::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(Code::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(Code::kAlreadyExists, std::move(message));
}
Status OutOfRange(std::string message) {
  return Status(Code::kOutOfRange, std::move(message));
}
Status PermissionDenied(std::string message) {
  return Status(Code::kPermissionDenied, std::move(message));
}
Status ResourceExhausted(std::string message) {
  return Status(Code::kResourceExhausted, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(Code::kFailedPrecondition, std::move(message));
}
Status Unimplemented(std::string message) {
  return Status(Code::kUnimplemented, std::move(message));
}
Status Rejected(std::string message) {
  return Status(Code::kRejected, std::move(message));
}
Status Terminated(std::string message) {
  return Status(Code::kTerminated, std::move(message));
}
Status KernelFault(std::string message) {
  return Status(Code::kKernelFault, std::move(message));
}
Status Internal(std::string message) {
  return Status(Code::kInternal, std::move(message));
}

}  // namespace xbase

// Minimal leveled logger. The simulated kernel keeps its own dmesg ring; this
// logger is for host-side diagnostics (tests, benches, tools). Quiet by
// default so bench output stays clean.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace xbase {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emit one line to stderr, prefixed with the level tag.
void LogLine(LogLevel level, std::string_view message);

namespace logdetail {

class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace logdetail

}  // namespace xbase

#define XB_LOG(level) ::xbase::logdetail::LogMessage(::xbase::LogLevel::level)
#define XB_DEBUG XB_LOG(kDebug)
#define XB_INFO XB_LOG(kInfo)
#define XB_WARN XB_LOG(kWarn)
#define XB_ERROR XB_LOG(kError)

// Error handling primitives. Library code in this project does not throw:
// every fallible operation returns Status or Result<T>. The codes mirror the
// failure classes that matter to the extension frameworks (verifier
// rejection, signature rejection, runtime termination, simulated kernel
// faults) so call sites can dispatch on *why* something failed.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace xbase {

enum class Code {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // lookup miss
  kAlreadyExists,     // duplicate registration
  kOutOfRange,        // index/offset outside a valid region
  kPermissionDenied,  // capability or privilege check failed
  kResourceExhausted, // pool/map/budget exhausted
  kFailedPrecondition,// object in the wrong state
  kUnimplemented,     // feature not available (e.g. before its kernel version)
  kRejected,          // static check rejected the program (verifier/toolchain)
  kTerminated,        // runtime mechanism killed the extension
  kKernelFault,       // the simulated kernel oopsed
  kInternal,          // invariant violation inside this library
};

std::string_view CodeName(Code code);

// A success-or-error value. Cheap to copy on success (no allocation).
class Status {
 public:
  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" rendering.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Code code_;
  std::string message_;
};

// Result<T> carries either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value)                                      // NOLINT: implicit by design
      : value_(std::move(value)), status_(Status::Ok()) {}
  Result(Status status) : status_(std::move(status)) { // NOLINT: implicit by design
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_{Code::kInternal, "Result engaged without value or status"};
};

// Convenience constructors, kernel-log style.
Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status OutOfRange(std::string message);
Status PermissionDenied(std::string message);
Status ResourceExhausted(std::string message);
Status FailedPrecondition(std::string message);
Status Unimplemented(std::string message);
Status Rejected(std::string message);
Status Terminated(std::string message);
Status KernelFault(std::string message);
Status Internal(std::string message);

}  // namespace xbase

// Propagate a non-OK Status from an expression that yields Status.
#define XB_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::xbase::Status xb_status_ = (expr);      \
    if (!xb_status_.ok()) {                   \
      return xb_status_;                      \
    }                                         \
  } while (0)

// Evaluate a Result<T> expression; on error return its Status, otherwise
// bind the value to `lhs`.
#define XB_CONCAT_INNER(a, b) a##b
#define XB_CONCAT(a, b) XB_CONCAT_INNER(a, b)
#define XB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) {                               \
    return tmp.status();                         \
  }                                              \
  lhs = std::move(tmp).value()
#define XB_ASSIGN_OR_RETURN(lhs, expr) \
  XB_ASSIGN_OR_RETURN_IMPL(XB_CONCAT(xb_result_, __LINE__), lhs, expr)

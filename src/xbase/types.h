// Fixed-width integer aliases used throughout the project. The kernel-style
// short names keep instruction-encoding and memory-model code readable.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xbase {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;
using usize = std::size_t;

}  // namespace xbase

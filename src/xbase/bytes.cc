#include "src/xbase/bytes.h"

namespace xbase {

std::string ToHex(std::span<const u8> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (u8 byte : data) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xf]);
  }
  return out;
}

}  // namespace xbase

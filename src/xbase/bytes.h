// Byte-level utilities: explicit little-endian loads/stores (the simulated
// kernel memory and the BPF ISA are little-endian regardless of host), hex
// rendering, and a simple FNV-1a hash used by the map substrate.
#pragma once

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/xbase/types.h"

namespace xbase {

inline u16 LoadLe16(const u8* p) {
  return static_cast<u16>(p[0]) | static_cast<u16>(p[1]) << 8;
}
inline u32 LoadLe32(const u8* p) {
  return static_cast<u32>(p[0]) | static_cast<u32>(p[1]) << 8 |
         static_cast<u32>(p[2]) << 16 | static_cast<u32>(p[3]) << 24;
}
inline u64 LoadLe64(const u8* p) {
  return static_cast<u64>(LoadLe32(p)) |
         static_cast<u64>(LoadLe32(p + 4)) << 32;
}

inline void StoreLe16(u8* p, u16 v) {
  p[0] = static_cast<u8>(v);
  p[1] = static_cast<u8>(v >> 8);
}
inline void StoreLe32(u8* p, u32 v) {
  p[0] = static_cast<u8>(v);
  p[1] = static_cast<u8>(v >> 8);
  p[2] = static_cast<u8>(v >> 16);
  p[3] = static_cast<u8>(v >> 24);
}
inline void StoreLe64(u8* p, u64 v) {
  StoreLe32(p, static_cast<u32>(v));
  StoreLe32(p + 4, static_cast<u32>(v >> 32));
}

inline u32 LoadBe32(const u8* p) {
  return static_cast<u32>(p[0]) << 24 | static_cast<u32>(p[1]) << 16 |
         static_cast<u32>(p[2]) << 8 | static_cast<u32>(p[3]);
}
inline void StoreBe32(u8* p, u32 v) {
  p[0] = static_cast<u8>(v >> 24);
  p[1] = static_cast<u8>(v >> 16);
  p[2] = static_cast<u8>(v >> 8);
  p[3] = static_cast<u8>(v);
}
inline void StoreBe64(u8* p, u64 v) {
  StoreBe32(p, static_cast<u32>(v >> 32));
  StoreBe32(p + 4, static_cast<u32>(v));
}

// Lowercase hex, no separators.
std::string ToHex(std::span<const u8> data);

// FNV-1a 64-bit over arbitrary bytes; stable across platforms.
inline u64 Fnv1a(std::span<const u8> data) {
  u64 hash = 0xcbf29ce484222325ULL;
  for (u8 byte : data) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// Byte-vector view of any trivially copyable value.
template <typename T>
std::span<const u8> AsBytes(const T& value) {
  return std::span<const u8>(reinterpret_cast<const u8*>(&value), sizeof(T));
}

}  // namespace xbase

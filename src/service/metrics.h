// Per-stage admission metrics: what a production operator would watch.
// Counters are atomics (hot path); latency distributions are mutex-guarded
// sample vectors whose percentiles are computed at snapshot time. The
// exported AdmissionMetrics is a plain-data struct — no locks, no methods —
// so benches serialize it and tests assert on it directly.
#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "src/service/cache.h"
#include "src/xbase/types.h"

namespace service {

// Latency distribution of one pipeline stage.
struct StageStats {
  xbase::u64 count = 0;
  xbase::u64 total_ns = 0;
  xbase::u64 p50_ns = 0;
  xbase::u64 p99_ns = 0;
  xbase::u64 max_ns = 0;
};

// The plain-data export (snapshot; internally consistent only when the
// pipeline is drained, monotonic otherwise).
struct AdmissionMetrics {
  // Request accounting.
  xbase::u64 submitted = 0;
  xbase::u64 completed = 0;
  xbase::u64 admitted = 0;
  xbase::u64 rejected = 0;
  // Stage run counts. verify_runs is the number the verdict cache exists to
  // minimize: duplicate submissions coalesce to one run.
  xbase::u64 prepass_runs = 0;
  xbase::u64 verify_runs = 0;
  xbase::u64 jit_runs = 0;
  xbase::u64 signature_checks = 0;  // safex admissions
  // Queue pressure.
  xbase::u64 queue_depth = 0;
  xbase::u64 queue_depth_peak = 0;
  // Verdict cache (zeroed when the cache is disabled).
  CacheStats cache;
  // Stage latencies.
  StageStats prepass;
  StageStats verify;
  StageStats jit;
  StageStats install;
  StageStats total;  // submit → verdict, includes queueing
};

enum class Stage : xbase::u8 { kPrepass, kVerify, kJit, kInstall, kTotal };

class MetricsCollector {
 public:
  void CountSubmitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void CountCompleted() { completed_.fetch_add(1, std::memory_order_relaxed); }
  void CountAdmitted() { admitted_.fetch_add(1, std::memory_order_relaxed); }
  void CountRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void CountPrepass() { prepass_runs_.fetch_add(1, std::memory_order_relaxed); }
  void CountVerify() { verify_runs_.fetch_add(1, std::memory_order_relaxed); }
  void CountJit() { jit_runs_.fetch_add(1, std::memory_order_relaxed); }
  void CountSignatureCheck() {
    signature_checks_.fetch_add(1, std::memory_order_relaxed);
  }

  void RecordLatency(Stage stage, xbase::u64 ns);

  // Fills everything except queue depth and cache stats (the service owns
  // those and patches them in).
  AdmissionMetrics Snapshot() const;

 private:
  static StageStats Summarize(const std::vector<xbase::u64>& samples);

  std::atomic<xbase::u64> submitted_{0};
  std::atomic<xbase::u64> completed_{0};
  std::atomic<xbase::u64> admitted_{0};
  std::atomic<xbase::u64> rejected_{0};
  std::atomic<xbase::u64> prepass_runs_{0};
  std::atomic<xbase::u64> verify_runs_{0};
  std::atomic<xbase::u64> jit_runs_{0};
  std::atomic<xbase::u64> signature_checks_{0};

  mutable std::mutex samples_mu_;
  std::vector<xbase::u64> samples_[5];  // indexed by Stage
};

}  // namespace service

// The content-addressed verdict cache: the reason a production load path
// does not re-pay verification (the tax B-VER measures) for a program it
// has already judged. Keyed by
//
//   SHA-256(program bytes) × verifier version × privilege × prepass flag
//                          × FaultRegistry epoch
//
// The epoch term is the correctness heart: toggling any injectable verifier
// defect bumps the registry epoch, so a "safe" verdict computed before a
// fault was enabled can never be served after it — stale verdicts are
// simply unreachable keys. Sharded to keep admission workers off each
// other's locks; lookups for a key another worker is currently computing
// coalesce (block until the owner publishes) so a thundering herd of
// duplicate loads verifies exactly once.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/ebpf/jit.h"
#include "src/ebpf/prog.h"
#include "src/ebpf/verifier.h"
#include "src/simkern/version.h"
#include "src/xbase/status.h"

namespace service {

struct VerdictKey {
  crypto::Digest256 content{};
  xbase::u16 version_major = 0;
  xbase::u16 version_minor = 0;
  bool privileged = true;
  bool prepass = false;
  xbase::u64 fault_epoch = 0;

  bool operator==(const VerdictKey&) const = default;
};

// Content hash of a program: every byte that feeds the admission decision
// (type, GPL flag, instruction stream). Names are cosmetic and excluded, so
// re-submitting the same bytecode under a different name still hits.
crypto::Digest256 HashProgram(const ebpf::Program& prog);

VerdictKey MakeProgramKey(const ebpf::Program& prog,
                          simkern::KernelVersion version, bool privileged,
                          bool prepass, xbase::u64 fault_epoch);

// What admission decided, in full: either the rejection status or
// everything Install needs (verify result + JIT image/stats). A cache hit
// returns the stored VerifyResult byte-identically — stats and all — so a
// hit is observationally the original verification, minus the cost.
struct Verdict {
  xbase::Status status;  // Ok = admitted
  ebpf::VerifyResult verify;
  ebpf::Program image;
  ebpf::JitStats jit;
};

struct CacheStats {
  xbase::u64 hits = 0;
  xbase::u64 misses = 0;            // first arrival, caller owns computation
  xbase::u64 coalesced_waits = 0;   // hits that waited for an in-flight owner
  xbase::u64 published = 0;
  xbase::u64 uncacheable = 0;       // published transient (epoch moved)
  xbase::u64 evictions = 0;
  xbase::usize entries = 0;
};

class VerdictCache {
 public:
  explicit VerdictCache(xbase::usize shard_count = 16,
                        xbase::usize capacity_per_shard = 1024);

  struct Acquisition {
    // Exactly one of hit/owner is true. hit: verdict is set (waited is true
    // if it blocked on an in-flight owner). owner: the caller must run the
    // stages and Publish() — waiters for this key are blocked on it.
    bool hit = false;
    bool owner = false;
    bool waited = false;
    std::shared_ptr<const Verdict> verdict;
  };

  // Lookup-or-claim. First arrival for a key becomes the owner; concurrent
  // arrivals for the same key block until the owner publishes, then return
  // its verdict as a hit. An owner that never publishes deadlocks its
  // waiters — the admission pipeline always publishes, even rejections.
  Acquisition Acquire(const VerdictKey& key);

  // Owner hands in the computed verdict. cacheable=false wakes the waiters
  // with the verdict but leaves nothing in the cache (used when the fault
  // epoch moved mid-computation: the verdict matches neither the old nor
  // the new epoch's key for certain, so nothing may persist under it).
  void Publish(const VerdictKey& key, Verdict verdict, bool cacheable);

  CacheStats stats() const;

  // Drops every ready entry (pending computations are left alone).
  void Clear();

 private:
  struct KeyHash {
    xbase::usize operator()(const VerdictKey& key) const;
  };

  struct Entry {
    bool ready = false;
    std::shared_ptr<const Verdict> verdict;
    xbase::u64 order = 0;  // insertion order, for FIFO eviction
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable ready_cv;
    std::unordered_map<VerdictKey, std::shared_ptr<Entry>, KeyHash> map;
    xbase::u64 next_order = 0;
    // Local stat counters (aggregated by stats()).
    xbase::u64 hits = 0;
    xbase::u64 misses = 0;
    xbase::u64 coalesced = 0;
    xbase::u64 published = 0;
    xbase::u64 uncacheable = 0;
    xbase::u64 evictions = 0;
  };

  Shard& ShardFor(const VerdictKey& key);
  void EvictIfNeededLocked(Shard& shard);

  const xbase::usize capacity_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace service

#include "src/service/cache.h"

#include <algorithm>

#include "src/xbase/rand.h"

namespace service {

crypto::Digest256 HashProgram(const ebpf::Program& prog) {
  crypto::Sha256 hasher;
  const xbase::u8 meta[2] = {static_cast<xbase::u8>(prog.type),
                             static_cast<xbase::u8>(prog.gpl_compatible)};
  hasher.Update(meta);
  for (const ebpf::Insn& insn : prog.insns) {
    // Wire-format encoding, little-endian: identical bytecode hashes
    // identically regardless of how the Insn structs were built.
    xbase::u8 wire[8];
    wire[0] = insn.opcode;
    wire[1] = static_cast<xbase::u8>((insn.dst & 0x0f) |
                                     ((insn.src & 0x0f) << 4));
    wire[2] = static_cast<xbase::u8>(insn.off & 0xff);
    wire[3] = static_cast<xbase::u8>((insn.off >> 8) & 0xff);
    wire[4] = static_cast<xbase::u8>(insn.imm & 0xff);
    wire[5] = static_cast<xbase::u8>((insn.imm >> 8) & 0xff);
    wire[6] = static_cast<xbase::u8>((insn.imm >> 16) & 0xff);
    wire[7] = static_cast<xbase::u8>((insn.imm >> 24) & 0xff);
    hasher.Update(wire);
  }
  return hasher.Finalize();
}

VerdictKey MakeProgramKey(const ebpf::Program& prog,
                          simkern::KernelVersion version, bool privileged,
                          bool prepass, xbase::u64 fault_epoch) {
  VerdictKey key;
  key.content = HashProgram(prog);
  key.version_major = version.major;
  key.version_minor = version.minor;
  key.privileged = privileged;
  key.prepass = prepass;
  key.fault_epoch = fault_epoch;
  return key;
}

xbase::usize VerdictCache::KeyHash::operator()(const VerdictKey& key) const {
  // The content digest is already uniform; fold in the discriminators with
  // a SplitMix64 round so near-identical keys land on distinct shards.
  xbase::u64 h = 0;
  for (int i = 0; i < 8; ++i) {
    h = (h << 8) | key.content[static_cast<xbase::usize>(i)];
  }
  xbase::u64 mix = h ^ (static_cast<xbase::u64>(key.version_major) << 48) ^
                   (static_cast<xbase::u64>(key.version_minor) << 32) ^
                   (static_cast<xbase::u64>(key.privileged) << 17) ^
                   (static_cast<xbase::u64>(key.prepass) << 16) ^
                   key.fault_epoch;
  return static_cast<xbase::usize>(xbase::SplitMix64(mix));
}

VerdictCache::VerdictCache(xbase::usize shard_count,
                           xbase::usize capacity_per_shard)
    : capacity_per_shard_(capacity_per_shard == 0 ? 1 : capacity_per_shard) {
  if (shard_count == 0) {
    shard_count = 1;
  }
  shards_.reserve(shard_count);
  for (xbase::usize i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

VerdictCache::Shard& VerdictCache::ShardFor(const VerdictKey& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

void VerdictCache::EvictIfNeededLocked(Shard& shard) {
  while (shard.map.size() > capacity_per_shard_) {
    // FIFO over ready entries; pending entries are never evicted (waiters
    // hold references into them).
    auto victim = shard.map.end();
    for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
      if (it->second->ready &&
          (victim == shard.map.end() ||
           it->second->order < victim->second->order)) {
        victim = it;
      }
    }
    if (victim == shard.map.end()) {
      return;  // everything pending; nothing evictable
    }
    shard.map.erase(victim);
    ++shard.evictions;
  }
}

VerdictCache::Acquisition VerdictCache::Acquire(const VerdictKey& key) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    auto entry = std::make_shared<Entry>();
    entry->order = shard.next_order++;
    shard.map.emplace(key, std::move(entry));
    ++shard.misses;
    Acquisition acq;
    acq.owner = true;
    return acq;
  }

  std::shared_ptr<Entry> entry = it->second;
  Acquisition acq;
  acq.hit = true;
  if (!entry->ready) {
    // Coalesce: the owner is computing this exact verdict right now.
    acq.waited = true;
    ++shard.coalesced;
    shard.ready_cv.wait(lock, [&entry] { return entry->ready; });
  }
  ++shard.hits;
  acq.verdict = entry->verdict;
  return acq;
}

void VerdictCache::Publish(const VerdictKey& key, Verdict verdict,
                           bool cacheable) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    return;  // entry evaporated (Clear between Acquire and Publish)
  }
  std::shared_ptr<Entry> entry = it->second;
  entry->verdict = std::make_shared<const Verdict>(std::move(verdict));
  entry->ready = true;
  ++shard.published;
  // Waiters hold the Entry shared_ptr, so dropping the map reference for an
  // uncacheable verdict is safe: they wake, read, and the entry dies with
  // the last waiter.
  if (!cacheable) {
    shard.map.erase(it);
    ++shard.uncacheable;
  } else {
    EvictIfNeededLocked(shard);
  }
  shard.ready_cv.notify_all();
}

CacheStats VerdictCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.coalesced_waits += shard->coalesced;
    total.published += shard->published;
    total.uncacheable += shard->uncacheable;
    total.evictions += shard->evictions;
    total.entries += shard->map.size();
  }
  return total;
}

void VerdictCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      if (it->second->ready) {
        it = shard->map.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace service

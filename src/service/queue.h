// A bounded MPMC work queue for the admission pipeline. Producers block
// while the queue is full — backpressure, never drop — and consumers block
// while it is empty. Close() lets consumers drain the backlog and then
// observe shutdown. Condition-variable based: admission requests are
// milliseconds of verification work, so queue overhead is noise and
// correctness under TSan is what matters.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "src/xbase/types.h"

namespace service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(xbase::usize capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false (item dropped) only after Close().
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    if (items_.size() > peak_depth_) {
      peak_depth_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty; std::nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  xbase::usize depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  xbase::usize peak_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_depth_;
  }

  xbase::usize capacity() const { return capacity_; }

 private:
  const xbase::usize capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  xbase::usize peak_depth_ = 0;
};

}  // namespace service

#include "src/service/metrics.h"

#include <algorithm>

namespace service {

void MetricsCollector::RecordLatency(Stage stage, xbase::u64 ns) {
  std::lock_guard<std::mutex> lock(samples_mu_);
  samples_[static_cast<xbase::usize>(stage)].push_back(ns);
}

StageStats MetricsCollector::Summarize(const std::vector<xbase::u64>& samples) {
  StageStats stats;
  stats.count = samples.size();
  if (samples.empty()) {
    return stats;
  }
  std::vector<xbase::u64> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (xbase::u64 sample : sorted) {
    stats.total_ns += sample;
  }
  stats.p50_ns = sorted[(sorted.size() - 1) / 2];
  stats.p99_ns = sorted[(sorted.size() - 1) * 99 / 100];
  stats.max_ns = sorted.back();
  return stats;
}

AdmissionMetrics MetricsCollector::Snapshot() const {
  AdmissionMetrics m;
  m.submitted = submitted_.load(std::memory_order_relaxed);
  m.completed = completed_.load(std::memory_order_relaxed);
  m.admitted = admitted_.load(std::memory_order_relaxed);
  m.rejected = rejected_.load(std::memory_order_relaxed);
  m.prepass_runs = prepass_runs_.load(std::memory_order_relaxed);
  m.verify_runs = verify_runs_.load(std::memory_order_relaxed);
  m.jit_runs = jit_runs_.load(std::memory_order_relaxed);
  m.signature_checks = signature_checks_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(samples_mu_);
    m.prepass = Summarize(samples_[static_cast<xbase::usize>(Stage::kPrepass)]);
    m.verify = Summarize(samples_[static_cast<xbase::usize>(Stage::kVerify)]);
    m.jit = Summarize(samples_[static_cast<xbase::usize>(Stage::kJit)]);
    m.install = Summarize(samples_[static_cast<xbase::usize>(Stage::kInstall)]);
    m.total = Summarize(samples_[static_cast<xbase::usize>(Stage::kTotal)]);
  }
  return m;
}

}  // namespace service

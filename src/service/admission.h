// The concurrent admission pipeline: a fixed worker pool that runs the
// expensive admission stages — staticcheck prepass → eBPF verification →
// JIT, or safex signature validation — off the caller thread, in front of a
// content-addressed verdict cache. This is the first threaded subsystem in
// the repo, and it turns the paper's B-VER observation (verification cost
// is a tax every load pays) into an engineering artifact: the tax is paid
// once per distinct program per verifier configuration, concurrently.
//
//   caller ──Submit──▶ [bounded MPMC queue] ──▶ worker pool
//                                                 │  VerdictCache lookup
//                                                 │   (hit: skip all stages;
//                                                 │    in-flight: coalesce)
//                                                 │  Loader::Prepare
//                                                 │  VerdictCache publish
//                                                 │  Loader::Install
//                                                 ▼
//                                              Ticket resolves
//
// Both stacks share the pipeline: eBPF programs flow through cache +
// prepass/verify/JIT; safex artifacts flow through signature validation
// (already O(bytes), not cached). Backpressure is by blocking — the
// bounded queue never drops a request.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/core/loader.h"
#include "src/ebpf/loader.h"
#include "src/service/cache.h"
#include "src/service/metrics.h"
#include "src/service/queue.h"

namespace service {

struct AdmissionConfig {
  xbase::usize workers = 4;
  xbase::usize queue_capacity = 128;
  bool cache_enabled = true;
  xbase::usize cache_shards = 16;
  xbase::usize cache_capacity_per_shard = 1024;
};

class AdmissionService {
 public:
  // ext_loader may be null (eBPF-only pipeline).
  AdmissionService(const AdmissionConfig& config, ebpf::Bpf& bpf,
                   ebpf::Loader& loader,
                   safex::ExtLoader* ext_loader = nullptr);
  ~AdmissionService();

  AdmissionService(const AdmissionService&) = delete;
  AdmissionService& operator=(const AdmissionService&) = delete;

  // A pending admission. Cheap to copy; resolve with Wait().
  class Ticket {
   public:
    Ticket() = default;
    bool valid() const { return state_ != nullptr; }

   private:
    friend class AdmissionService;
    struct State;
    explicit Ticket(std::shared_ptr<State> state) : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
  };

  // The front door, honoring options.async: async=true enqueues and returns
  // immediately (resolve with Wait); async=false blocks for the verdict —
  // still through the pool and cache, so concurrent sync callers coalesce.
  // Submitting to a shut-down service yields a FailedPrecondition verdict.
  Ticket Load(const ebpf::Program& prog, const ebpf::LoadOptions& options = {});
  Ticket LoadExtension(const safex::SignedArtifact& artifact,
                       bool async = false);

  // Blocks until the ticket's verdict: the loader id, or the admission
  // failure. Idempotent.
  xbase::Result<xbase::u32> Wait(const Ticket& ticket) const;

  // Batch admission: submit everything (workers start immediately), then
  // collect verdicts in submission order.
  std::vector<xbase::Result<xbase::u32>> LoadBatch(
      const std::vector<ebpf::Program>& progs,
      const ebpf::LoadOptions& options = {});

  // Blocks until every submitted request has resolved.
  void Drain();

  // Drain, then stop the workers. Further submissions fail; idempotent.
  void Shutdown();

  AdmissionMetrics Metrics() const;

  const AdmissionConfig& config() const { return config_; }

 private:
  struct Request;

  void WorkerLoop();
  void ProcessProgram(Request& request);
  void ProcessExtension(Request& request);
  Verdict RunProgramStages(const Request& request);
  Ticket Submit(std::unique_ptr<Request> request, bool async);
  void Resolve(Request& request, xbase::Result<xbase::u32> result);

  AdmissionConfig config_;
  ebpf::Bpf& bpf_;
  ebpf::Loader& loader_;
  safex::ExtLoader* ext_loader_;

  VerdictCache cache_;
  MetricsCollector metrics_;
  std::unique_ptr<BoundedQueue<std::unique_ptr<Request>>> queue_;
  std::vector<std::thread> workers_;

  // Outstanding-request accounting for Drain().
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  xbase::u64 inflight_ = 0;
  bool shutdown_ = false;
};

}  // namespace service

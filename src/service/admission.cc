#include "src/service/admission.h"

#include <chrono>

namespace service {

namespace {

xbase::u64 NowNs() {
  return static_cast<xbase::u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct AdmissionService::Ticket::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::optional<xbase::Result<xbase::u32>> result;
};

struct AdmissionService::Request {
  std::shared_ptr<Ticket::State> state;
  bool is_extension = false;
  ebpf::Program prog;
  ebpf::LoadOptions options;
  std::optional<safex::SignedArtifact> artifact;
  xbase::u64 submit_ns = 0;
};

AdmissionService::AdmissionService(const AdmissionConfig& config,
                                   ebpf::Bpf& bpf, ebpf::Loader& loader,
                                   safex::ExtLoader* ext_loader)
    : config_(config),
      bpf_(bpf),
      loader_(loader),
      ext_loader_(ext_loader),
      cache_(config.cache_shards, config.cache_capacity_per_shard),
      queue_(std::make_unique<BoundedQueue<std::unique_ptr<Request>>>(
          config.queue_capacity)) {
  if (config_.workers == 0) {
    config_.workers = 1;
  }
  workers_.reserve(config_.workers);
  for (xbase::usize i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AdmissionService::~AdmissionService() { Shutdown(); }

void AdmissionService::Resolve(Request& request,
                               xbase::Result<xbase::u32> result) {
  metrics_.RecordLatency(Stage::kTotal, NowNs() - request.submit_ns);
  metrics_.CountCompleted();
  if (result.ok()) {
    metrics_.CountAdmitted();
  } else {
    metrics_.CountRejected();
  }
  {
    std::lock_guard<std::mutex> lock(request.state->mu);
    request.state->result = std::move(result);
    request.state->done = true;
  }
  request.state->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    --inflight_;
  }
  drain_cv_.notify_all();
}

void AdmissionService::WorkerLoop() {
  for (;;) {
    std::optional<std::unique_ptr<Request>> item = queue_->Pop();
    if (!item.has_value()) {
      return;  // closed and drained
    }
    Request& request = **item;
    if (request.is_extension) {
      ProcessExtension(request);
    } else {
      ProcessProgram(request);
    }
  }
}

// Runs prepass → verify → JIT through Loader::Prepare, recording per-stage
// metrics. Owners of a cache miss and the cache-disabled path both land here.
Verdict AdmissionService::RunProgramStages(const Request& request) {
  ebpf::PrepareTimes times;
  auto prepared = loader_.Prepare(request.prog, request.options, &times);
  if (times.prepass_ran) {
    metrics_.CountPrepass();
    metrics_.RecordLatency(Stage::kPrepass, times.prepass_ns);
  }
  if (times.verify_ns > 0) {
    metrics_.CountVerify();
    metrics_.RecordLatency(Stage::kVerify, times.verify_ns);
  }
  if (times.jit_ns > 0) {
    metrics_.CountJit();
    metrics_.RecordLatency(Stage::kJit, times.jit_ns);
  }
  Verdict verdict;
  if (prepared.ok()) {
    verdict.status = xbase::Status::Ok();
    verdict.verify = std::move(prepared.value().verify);
    verdict.image = std::move(prepared.value().image);
    verdict.jit = prepared.value().jit;
  } else {
    verdict.status = prepared.status();
  }
  return verdict;
}

void AdmissionService::ProcessProgram(Request& request) {
  ebpf::FaultRegistry& faults = bpf_.faults();
  const simkern::KernelVersion version =
      request.options.version_override.value_or(bpf_.kernel().version());

  Verdict verdict;

  if (config_.cache_enabled) {
    // The epoch is read *before* the stages run; if it moved while we were
    // verifying (a fault toggled mid-flight), the verdict is published to
    // any coalesced waiters but not cached — it provably matches neither
    // the old nor the new fault set's key.
    const xbase::u64 epoch_before = faults.epoch();
    const VerdictKey key = MakeProgramKey(
        request.prog, version, request.options.privileged,
        request.options.staticcheck_prepass, epoch_before);
    VerdictCache::Acquisition acq = cache_.Acquire(key);
    if (acq.hit) {
      verdict = *acq.verdict;
    } else {
      verdict = RunProgramStages(request);
      const bool cacheable = faults.epoch() == epoch_before;
      cache_.Publish(key, verdict, cacheable);
    }
  } else {
    verdict = RunProgramStages(request);
  }

  if (!verdict.status.ok()) {
    Resolve(request, verdict.status);
    return;
  }

  // Registration is per-load even on a hit: every admitted submission gets
  // its own id, like N successful bpf(2) calls for the same bytes.
  ebpf::PreparedLoad prepared;
  prepared.source = std::move(request.prog);
  prepared.image = std::move(verdict.image);
  prepared.verify = std::move(verdict.verify);
  prepared.jit = verdict.jit;
  const xbase::u64 install_start = NowNs();
  auto id = loader_.Install(std::move(prepared));
  metrics_.RecordLatency(Stage::kInstall, NowNs() - install_start);
  Resolve(request, std::move(id));
}

void AdmissionService::ProcessExtension(Request& request) {
  if (ext_loader_ == nullptr) {
    Resolve(request, xbase::Status(xbase::Code::kFailedPrecondition,
                                   "no extension loader configured"));
    return;
  }
  metrics_.CountSignatureCheck();
  const xbase::u64 verify_start = NowNs();
  auto prepared = ext_loader_->Prepare(*request.artifact);
  metrics_.RecordLatency(Stage::kVerify, NowNs() - verify_start);
  if (!prepared.ok()) {
    Resolve(request, prepared.status());
    return;
  }
  const xbase::u64 install_start = NowNs();
  auto id = ext_loader_->Install(std::move(prepared).value());
  metrics_.RecordLatency(Stage::kInstall, NowNs() - install_start);
  Resolve(request, std::move(id));
}

AdmissionService::Ticket AdmissionService::Submit(
    std::unique_ptr<Request> request, bool async) {
  std::shared_ptr<Ticket::State> state = request->state;
  request->submit_ns = NowNs();

  metrics_.CountSubmitted();
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++inflight_;
  }
  if (!queue_->Push(std::move(request))) {
    // Shut down: resolve the ticket directly.
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->result = xbase::Status(xbase::Code::kFailedPrecondition,
                                    "admission service is shut down");
      state->done = true;
    }
    state->cv.notify_all();
    metrics_.CountCompleted();
    metrics_.CountRejected();
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      --inflight_;
    }
    drain_cv_.notify_all();
  }

  Ticket ticket(std::move(state));
  if (!async) {
    (void)Wait(ticket);
  }
  return ticket;
}

AdmissionService::Ticket AdmissionService::Load(
    const ebpf::Program& prog, const ebpf::LoadOptions& options) {
  auto request = std::make_unique<Request>();
  request->state = std::make_shared<Ticket::State>();
  request->prog = prog;
  request->options = options;
  return Submit(std::move(request), options.async);
}

AdmissionService::Ticket AdmissionService::LoadExtension(
    const safex::SignedArtifact& artifact, bool async) {
  auto request = std::make_unique<Request>();
  request->state = std::make_shared<Ticket::State>();
  request->is_extension = true;
  request->artifact = artifact;
  return Submit(std::move(request), async);
}

xbase::Result<xbase::u32> AdmissionService::Wait(const Ticket& ticket) const {
  if (!ticket.valid()) {
    return xbase::Status(xbase::Code::kInvalidArgument, "invalid ticket");
  }
  Ticket::State& state = *ticket.state_;
  std::unique_lock<std::mutex> lock(state.mu);
  state.cv.wait(lock, [&state] { return state.done; });
  return *state.result;
}

std::vector<xbase::Result<xbase::u32>> AdmissionService::LoadBatch(
    const std::vector<ebpf::Program>& progs,
    const ebpf::LoadOptions& options) {
  ebpf::LoadOptions async_options = options;
  async_options.async = true;
  std::vector<Ticket> tickets;
  tickets.reserve(progs.size());
  for (const ebpf::Program& prog : progs) {
    tickets.push_back(Load(prog, async_options));
  }
  std::vector<xbase::Result<xbase::u32>> results;
  results.reserve(tickets.size());
  for (const Ticket& ticket : tickets) {
    results.push_back(Wait(ticket));
  }
  return results;
}

void AdmissionService::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] { return inflight_ == 0; });
}

void AdmissionService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
  }
  Drain();
  queue_->Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

AdmissionMetrics AdmissionService::Metrics() const {
  AdmissionMetrics m = metrics_.Snapshot();
  m.queue_depth = queue_->depth();
  m.queue_depth_peak = queue_->peak_depth();
  if (config_.cache_enabled) {
    m.cache = cache_.stats();
  }
  return m;
}

}  // namespace service

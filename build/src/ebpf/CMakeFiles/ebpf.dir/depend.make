# Empty dependencies file for ebpf.
# This may be replaced when dependencies are built.

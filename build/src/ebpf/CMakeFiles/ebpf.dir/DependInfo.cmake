
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ebpf/asm.cc" "src/ebpf/CMakeFiles/ebpf.dir/asm.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/asm.cc.o.d"
  "/root/repo/src/ebpf/disasm.cc" "src/ebpf/CMakeFiles/ebpf.dir/disasm.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/disasm.cc.o.d"
  "/root/repo/src/ebpf/fault.cc" "src/ebpf/CMakeFiles/ebpf.dir/fault.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/fault.cc.o.d"
  "/root/repo/src/ebpf/helper.cc" "src/ebpf/CMakeFiles/ebpf.dir/helper.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/helper.cc.o.d"
  "/root/repo/src/ebpf/helpers_core.cc" "src/ebpf/CMakeFiles/ebpf.dir/helpers_core.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/helpers_core.cc.o.d"
  "/root/repo/src/ebpf/helpers_net.cc" "src/ebpf/CMakeFiles/ebpf.dir/helpers_net.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/helpers_net.cc.o.d"
  "/root/repo/src/ebpf/insn.cc" "src/ebpf/CMakeFiles/ebpf.dir/insn.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/insn.cc.o.d"
  "/root/repo/src/ebpf/interp.cc" "src/ebpf/CMakeFiles/ebpf.dir/interp.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/interp.cc.o.d"
  "/root/repo/src/ebpf/jit.cc" "src/ebpf/CMakeFiles/ebpf.dir/jit.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/jit.cc.o.d"
  "/root/repo/src/ebpf/kfunc.cc" "src/ebpf/CMakeFiles/ebpf.dir/kfunc.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/kfunc.cc.o.d"
  "/root/repo/src/ebpf/loader.cc" "src/ebpf/CMakeFiles/ebpf.dir/loader.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/loader.cc.o.d"
  "/root/repo/src/ebpf/map.cc" "src/ebpf/CMakeFiles/ebpf.dir/map.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/map.cc.o.d"
  "/root/repo/src/ebpf/prog.cc" "src/ebpf/CMakeFiles/ebpf.dir/prog.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/prog.cc.o.d"
  "/root/repo/src/ebpf/tnum.cc" "src/ebpf/CMakeFiles/ebpf.dir/tnum.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/tnum.cc.o.d"
  "/root/repo/src/ebpf/verifier.cc" "src/ebpf/CMakeFiles/ebpf.dir/verifier.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/verifier.cc.o.d"
  "/root/repo/src/ebpf/verifier_features.cc" "src/ebpf/CMakeFiles/ebpf.dir/verifier_features.cc.o" "gcc" "src/ebpf/CMakeFiles/ebpf.dir/verifier_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkern/CMakeFiles/simkern.dir/DependInfo.cmake"
  "/root/repo/build/src/xbase/CMakeFiles/xbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

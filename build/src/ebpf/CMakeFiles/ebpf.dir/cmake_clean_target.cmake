file(REMOVE_RECURSE
  "libebpf.a"
)

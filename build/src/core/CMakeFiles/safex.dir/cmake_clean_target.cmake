file(REMOVE_RECURSE
  "libsafex.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/api.cc" "src/core/CMakeFiles/safex.dir/api.cc.o" "gcc" "src/core/CMakeFiles/safex.dir/api.cc.o.d"
  "/root/repo/src/core/artifact.cc" "src/core/CMakeFiles/safex.dir/artifact.cc.o" "gcc" "src/core/CMakeFiles/safex.dir/artifact.cc.o.d"
  "/root/repo/src/core/caps.cc" "src/core/CMakeFiles/safex.dir/caps.cc.o" "gcc" "src/core/CMakeFiles/safex.dir/caps.cc.o.d"
  "/root/repo/src/core/cleanup.cc" "src/core/CMakeFiles/safex.dir/cleanup.cc.o" "gcc" "src/core/CMakeFiles/safex.dir/cleanup.cc.o.d"
  "/root/repo/src/core/ext.cc" "src/core/CMakeFiles/safex.dir/ext.cc.o" "gcc" "src/core/CMakeFiles/safex.dir/ext.cc.o.d"
  "/root/repo/src/core/hooks.cc" "src/core/CMakeFiles/safex.dir/hooks.cc.o" "gcc" "src/core/CMakeFiles/safex.dir/hooks.cc.o.d"
  "/root/repo/src/core/loader.cc" "src/core/CMakeFiles/safex.dir/loader.cc.o" "gcc" "src/core/CMakeFiles/safex.dir/loader.cc.o.d"
  "/root/repo/src/core/pool.cc" "src/core/CMakeFiles/safex.dir/pool.cc.o" "gcc" "src/core/CMakeFiles/safex.dir/pool.cc.o.d"
  "/root/repo/src/core/toolchain.cc" "src/core/CMakeFiles/safex.dir/toolchain.cc.o" "gcc" "src/core/CMakeFiles/safex.dir/toolchain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ebpf/CMakeFiles/ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/simkern/CMakeFiles/simkern.dir/DependInfo.cmake"
  "/root/repo/build/src/xbase/CMakeFiles/xbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

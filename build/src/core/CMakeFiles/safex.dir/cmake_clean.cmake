file(REMOVE_RECURSE
  "CMakeFiles/safex.dir/api.cc.o"
  "CMakeFiles/safex.dir/api.cc.o.d"
  "CMakeFiles/safex.dir/artifact.cc.o"
  "CMakeFiles/safex.dir/artifact.cc.o.d"
  "CMakeFiles/safex.dir/caps.cc.o"
  "CMakeFiles/safex.dir/caps.cc.o.d"
  "CMakeFiles/safex.dir/cleanup.cc.o"
  "CMakeFiles/safex.dir/cleanup.cc.o.d"
  "CMakeFiles/safex.dir/ext.cc.o"
  "CMakeFiles/safex.dir/ext.cc.o.d"
  "CMakeFiles/safex.dir/hooks.cc.o"
  "CMakeFiles/safex.dir/hooks.cc.o.d"
  "CMakeFiles/safex.dir/loader.cc.o"
  "CMakeFiles/safex.dir/loader.cc.o.d"
  "CMakeFiles/safex.dir/pool.cc.o"
  "CMakeFiles/safex.dir/pool.cc.o.d"
  "CMakeFiles/safex.dir/toolchain.cc.o"
  "CMakeFiles/safex.dir/toolchain.cc.o.d"
  "libsafex.a"
  "libsafex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

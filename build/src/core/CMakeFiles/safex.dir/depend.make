# Empty dependencies file for safex.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/analysis.dir/bugdb.cc.o"
  "CMakeFiles/analysis.dir/bugdb.cc.o.d"
  "CMakeFiles/analysis.dir/callgraph.cc.o"
  "CMakeFiles/analysis.dir/callgraph.cc.o.d"
  "CMakeFiles/analysis.dir/growth.cc.o"
  "CMakeFiles/analysis.dir/growth.cc.o.d"
  "CMakeFiles/analysis.dir/matrix.cc.o"
  "CMakeFiles/analysis.dir/matrix.cc.o.d"
  "CMakeFiles/analysis.dir/workloads.cc.o"
  "CMakeFiles/analysis.dir/workloads.cc.o.d"
  "libanalysis.a"
  "libanalysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bugdb.cc" "src/analysis/CMakeFiles/analysis.dir/bugdb.cc.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/bugdb.cc.o.d"
  "/root/repo/src/analysis/callgraph.cc" "src/analysis/CMakeFiles/analysis.dir/callgraph.cc.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/callgraph.cc.o.d"
  "/root/repo/src/analysis/growth.cc" "src/analysis/CMakeFiles/analysis.dir/growth.cc.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/growth.cc.o.d"
  "/root/repo/src/analysis/matrix.cc" "src/analysis/CMakeFiles/analysis.dir/matrix.cc.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/matrix.cc.o.d"
  "/root/repo/src/analysis/workloads.cc" "src/analysis/CMakeFiles/analysis.dir/workloads.cc.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ebpf/CMakeFiles/ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/simkern/CMakeFiles/simkern.dir/DependInfo.cmake"
  "/root/repo/build/src/xbase/CMakeFiles/xbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

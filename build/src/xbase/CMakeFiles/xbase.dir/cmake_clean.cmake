file(REMOVE_RECURSE
  "CMakeFiles/xbase.dir/bytes.cc.o"
  "CMakeFiles/xbase.dir/bytes.cc.o.d"
  "CMakeFiles/xbase.dir/log.cc.o"
  "CMakeFiles/xbase.dir/log.cc.o.d"
  "CMakeFiles/xbase.dir/status.cc.o"
  "CMakeFiles/xbase.dir/status.cc.o.d"
  "libxbase.a"
  "libxbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/crypto.dir/hmac.cc.o"
  "CMakeFiles/crypto.dir/hmac.cc.o.d"
  "CMakeFiles/crypto.dir/keyring.cc.o"
  "CMakeFiles/crypto.dir/keyring.cc.o.d"
  "CMakeFiles/crypto.dir/sha256.cc.o"
  "CMakeFiles/crypto.dir/sha256.cc.o.d"
  "libcrypto.a"
  "libcrypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for simkern.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsimkern.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simkern/callgraph.cc" "src/simkern/CMakeFiles/simkern.dir/callgraph.cc.o" "gcc" "src/simkern/CMakeFiles/simkern.dir/callgraph.cc.o.d"
  "/root/repo/src/simkern/kernel.cc" "src/simkern/CMakeFiles/simkern.dir/kernel.cc.o" "gcc" "src/simkern/CMakeFiles/simkern.dir/kernel.cc.o.d"
  "/root/repo/src/simkern/lock.cc" "src/simkern/CMakeFiles/simkern.dir/lock.cc.o" "gcc" "src/simkern/CMakeFiles/simkern.dir/lock.cc.o.d"
  "/root/repo/src/simkern/mem.cc" "src/simkern/CMakeFiles/simkern.dir/mem.cc.o" "gcc" "src/simkern/CMakeFiles/simkern.dir/mem.cc.o.d"
  "/root/repo/src/simkern/net.cc" "src/simkern/CMakeFiles/simkern.dir/net.cc.o" "gcc" "src/simkern/CMakeFiles/simkern.dir/net.cc.o.d"
  "/root/repo/src/simkern/object.cc" "src/simkern/CMakeFiles/simkern.dir/object.cc.o" "gcc" "src/simkern/CMakeFiles/simkern.dir/object.cc.o.d"
  "/root/repo/src/simkern/rcu.cc" "src/simkern/CMakeFiles/simkern.dir/rcu.cc.o" "gcc" "src/simkern/CMakeFiles/simkern.dir/rcu.cc.o.d"
  "/root/repo/src/simkern/subsys.cc" "src/simkern/CMakeFiles/simkern.dir/subsys.cc.o" "gcc" "src/simkern/CMakeFiles/simkern.dir/subsys.cc.o.d"
  "/root/repo/src/simkern/task.cc" "src/simkern/CMakeFiles/simkern.dir/task.cc.o" "gcc" "src/simkern/CMakeFiles/simkern.dir/task.cc.o.d"
  "/root/repo/src/simkern/version.cc" "src/simkern/CMakeFiles/simkern.dir/version.cc.o" "gcc" "src/simkern/CMakeFiles/simkern.dir/version.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xbase/CMakeFiles/xbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

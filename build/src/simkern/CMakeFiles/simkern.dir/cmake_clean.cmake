file(REMOVE_RECURSE
  "CMakeFiles/simkern.dir/callgraph.cc.o"
  "CMakeFiles/simkern.dir/callgraph.cc.o.d"
  "CMakeFiles/simkern.dir/kernel.cc.o"
  "CMakeFiles/simkern.dir/kernel.cc.o.d"
  "CMakeFiles/simkern.dir/lock.cc.o"
  "CMakeFiles/simkern.dir/lock.cc.o.d"
  "CMakeFiles/simkern.dir/mem.cc.o"
  "CMakeFiles/simkern.dir/mem.cc.o.d"
  "CMakeFiles/simkern.dir/net.cc.o"
  "CMakeFiles/simkern.dir/net.cc.o.d"
  "CMakeFiles/simkern.dir/object.cc.o"
  "CMakeFiles/simkern.dir/object.cc.o.d"
  "CMakeFiles/simkern.dir/rcu.cc.o"
  "CMakeFiles/simkern.dir/rcu.cc.o.d"
  "CMakeFiles/simkern.dir/subsys.cc.o"
  "CMakeFiles/simkern.dir/subsys.cc.o.d"
  "CMakeFiles/simkern.dir/task.cc.o"
  "CMakeFiles/simkern.dir/task.cc.o.d"
  "CMakeFiles/simkern.dir/version.cc.o"
  "CMakeFiles/simkern.dir/version.cc.o.d"
  "libsimkern.a"
  "libsimkern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simkern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/helpers_test.dir/ebpf/helpers_test.cc.o"
  "CMakeFiles/helpers_test.dir/ebpf/helpers_test.cc.o.d"
  "helpers_test"
  "helpers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helpers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for helpers_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for safex_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/safex_test.dir/core/safex_test.cc.o"
  "CMakeFiles/safex_test.dir/core/safex_test.cc.o.d"
  "safex_test"
  "safex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/runtime_mechanisms_test.dir/core/runtime_mechanisms_test.cc.o"
  "CMakeFiles/runtime_mechanisms_test.dir/core/runtime_mechanisms_test.cc.o.d"
  "runtime_mechanisms_test"
  "runtime_mechanisms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_mechanisms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

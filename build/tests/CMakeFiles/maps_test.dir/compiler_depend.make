# Empty compiler generated dependencies file for maps_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/xbase_test.dir/xbase/xbase_test.cc.o"
  "CMakeFiles/xbase_test.dir/xbase/xbase_test.cc.o.d"
  "xbase_test"
  "xbase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

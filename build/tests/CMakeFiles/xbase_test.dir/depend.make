# Empty dependencies file for xbase_test.
# This may be replaced when dependencies are built.

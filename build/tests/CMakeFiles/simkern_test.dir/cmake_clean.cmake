file(REMOVE_RECURSE
  "CMakeFiles/simkern_test.dir/simkern/simkern_test.cc.o"
  "CMakeFiles/simkern_test.dir/simkern/simkern_test.cc.o.d"
  "simkern_test"
  "simkern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simkern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for simkern_test.
# This may be replaced when dependencies are built.

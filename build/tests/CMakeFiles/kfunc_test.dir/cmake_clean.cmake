file(REMOVE_RECURSE
  "CMakeFiles/kfunc_test.dir/ebpf/kfunc_test.cc.o"
  "CMakeFiles/kfunc_test.dir/ebpf/kfunc_test.cc.o.d"
  "kfunc_test"
  "kfunc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfunc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

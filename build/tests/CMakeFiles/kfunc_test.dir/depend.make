# Empty dependencies file for kfunc_test.
# This may be replaced when dependencies are built.

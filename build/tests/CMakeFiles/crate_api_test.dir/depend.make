# Empty dependencies file for crate_api_test.
# This may be replaced when dependencies are built.

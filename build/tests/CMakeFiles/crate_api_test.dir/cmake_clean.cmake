file(REMOVE_RECURSE
  "CMakeFiles/crate_api_test.dir/core/crate_api_test.cc.o"
  "CMakeFiles/crate_api_test.dir/core/crate_api_test.cc.o.d"
  "crate_api_test"
  "crate_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crate_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

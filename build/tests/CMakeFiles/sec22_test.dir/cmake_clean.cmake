file(REMOVE_RECURSE
  "CMakeFiles/sec22_test.dir/integration/sec22_test.cc.o"
  "CMakeFiles/sec22_test.dir/integration/sec22_test.cc.o.d"
  "sec22_test"
  "sec22_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec22_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sec22_test.
# This may be replaced when dependencies are built.

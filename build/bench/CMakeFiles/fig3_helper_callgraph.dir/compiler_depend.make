# Empty compiler generated dependencies file for fig3_helper_callgraph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig3_helper_callgraph.dir/fig3_helper_callgraph.cc.o"
  "CMakeFiles/fig3_helper_callgraph.dir/fig3_helper_callgraph.cc.o.d"
  "fig3_helper_callgraph"
  "fig3_helper_callgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_helper_callgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/expressiveness.cc" "bench/CMakeFiles/expressiveness.dir/expressiveness.cc.o" "gcc" "bench/CMakeFiles/expressiveness.dir/expressiveness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/safex.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/simkern/CMakeFiles/simkern.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/xbase/CMakeFiles/xbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

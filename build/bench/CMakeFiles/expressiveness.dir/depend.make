# Empty dependencies file for expressiveness.
# This may be replaced when dependencies are built.

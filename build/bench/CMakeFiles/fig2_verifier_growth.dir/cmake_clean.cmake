file(REMOVE_RECURSE
  "CMakeFiles/fig2_verifier_growth.dir/fig2_verifier_growth.cc.o"
  "CMakeFiles/fig2_verifier_growth.dir/fig2_verifier_growth.cc.o.d"
  "fig2_verifier_growth"
  "fig2_verifier_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_verifier_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig2_verifier_growth.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tab1_bug_census.dir/tab1_bug_census.cc.o"
  "CMakeFiles/tab1_bug_census.dir/tab1_bug_census.cc.o.d"
  "tab1_bug_census"
  "tab1_bug_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_bug_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tab1_bug_census.
# This may be replaced when dependencies are built.

# Empty dependencies file for sec22_safety_crash.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sec22_safety_crash.dir/sec22_safety_crash.cc.o"
  "CMakeFiles/sec22_safety_crash.dir/sec22_safety_crash.cc.o.d"
  "sec22_safety_crash"
  "sec22_safety_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec22_safety_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

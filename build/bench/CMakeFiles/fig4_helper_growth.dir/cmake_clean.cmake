file(REMOVE_RECURSE
  "CMakeFiles/fig4_helper_growth.dir/fig4_helper_growth.cc.o"
  "CMakeFiles/fig4_helper_growth.dir/fig4_helper_growth.cc.o.d"
  "fig4_helper_growth"
  "fig4_helper_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_helper_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

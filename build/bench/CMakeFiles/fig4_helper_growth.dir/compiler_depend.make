# Empty compiler generated dependencies file for fig4_helper_growth.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/verification_cost.dir/verification_cost.cc.o"
  "CMakeFiles/verification_cost.dir/verification_cost.cc.o.d"
  "verification_cost"
  "verification_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verification_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for verification_cost.
# This may be replaced when dependencies are built.

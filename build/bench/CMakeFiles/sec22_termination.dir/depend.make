# Empty dependencies file for sec22_termination.
# This may be replaced when dependencies are built.

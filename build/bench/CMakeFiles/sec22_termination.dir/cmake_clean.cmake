file(REMOVE_RECURSE
  "CMakeFiles/sec22_termination.dir/sec22_termination.cc.o"
  "CMakeFiles/sec22_termination.dir/sec22_termination.cc.o.d"
  "sec22_termination"
  "sec22_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec22_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tab2_safety_matrix.
# This may be replaced when dependencies are built.

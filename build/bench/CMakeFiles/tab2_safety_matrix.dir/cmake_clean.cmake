file(REMOVE_RECURSE
  "CMakeFiles/tab2_safety_matrix.dir/tab2_safety_matrix.cc.o"
  "CMakeFiles/tab2_safety_matrix.dir/tab2_safety_matrix.cc.o.d"
  "tab2_safety_matrix"
  "tab2_safety_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_safety_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

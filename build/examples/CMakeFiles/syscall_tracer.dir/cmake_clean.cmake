file(REMOVE_RECURSE
  "CMakeFiles/syscall_tracer.dir/syscall_tracer.cpp.o"
  "CMakeFiles/syscall_tracer.dir/syscall_tracer.cpp.o.d"
  "syscall_tracer"
  "syscall_tracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syscall_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

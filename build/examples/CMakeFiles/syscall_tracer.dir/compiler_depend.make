# Empty compiler generated dependencies file for syscall_tracer.
# This may be replaced when dependencies are built.

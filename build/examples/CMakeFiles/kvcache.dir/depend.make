# Empty dependencies file for kvcache.
# This may be replaced when dependencies are built.

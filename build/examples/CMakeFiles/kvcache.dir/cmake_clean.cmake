file(REMOVE_RECURSE
  "CMakeFiles/kvcache.dir/kvcache.cpp.o"
  "CMakeFiles/kvcache.dir/kvcache.cpp.o.d"
  "kvcache"
  "kvcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

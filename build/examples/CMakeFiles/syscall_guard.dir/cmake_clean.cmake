file(REMOVE_RECURSE
  "CMakeFiles/syscall_guard.dir/syscall_guard.cpp.o"
  "CMakeFiles/syscall_guard.dir/syscall_guard.cpp.o.d"
  "syscall_guard"
  "syscall_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syscall_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

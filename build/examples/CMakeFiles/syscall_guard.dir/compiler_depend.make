# Empty compiler generated dependencies file for syscall_guard.
# This may be replaced when dependencies are built.

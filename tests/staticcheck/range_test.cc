// Tests for the staticcheck numeric domain (range.h), the staticcheck
// prepass as a verifier cross-check, and the rangefuzz three-oracle
// harness. The prepass regression here is the PR's acceptance bar: a
// program the *faulted* verifier admits must be rejected by staticcheck
// from the bytecode alone.
#include <gtest/gtest.h>

#include "src/analysis/rangefuzz.h"
#include "src/analysis/workloads.h"
#include "src/ebpf/asm.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/fault.h"
#include "src/ebpf/insn.h"
#include "src/ebpf/loader.h"
#include "src/ebpf/map.h"
#include "src/simkern/kernel.h"
#include "src/staticcheck/range.h"

namespace staticcheck {
namespace {

using ebpf::BPF_ADD;
using ebpf::BPF_AND;
using ebpf::BPF_JEQ;
using ebpf::BPF_JGT;
using ebpf::BPF_JLT;
using ebpf::BPF_RSH;
using xbase::s64;
using xbase::u32;
using xbase::u64;

TEST(RangeValTest, ConstIsExact) {
  const RangeVal v = RangeVal::Const(42);
  EXPECT_TRUE(v.IsConst());
  EXPECT_TRUE(v.Contains(42));
  EXPECT_FALSE(v.Contains(41));
  EXPECT_FALSE(v.Contains(43));
  EXPECT_EQ(v.umin, 42u);
  EXPECT_EQ(v.umax, 42u);
  EXPECT_EQ(v.smin, 42);
  EXPECT_EQ(v.smax, 42);
}

TEST(RangeValTest, ReduceTightensBitsFromInterval) {
  RangeVal v = RangeVal::FromU(0, 7);
  // Every value in [0,7] has bits 3..63 clear, so Reduce must know them.
  EXPECT_EQ(v.bits.mask & ~u64{7}, 0u);
  EXPECT_EQ(v.bits.value, 0u);
  EXPECT_TRUE(v.Contains(0));
  EXPECT_TRUE(v.Contains(7));
  EXPECT_FALSE(v.Contains(8));
}

TEST(RangeValTest, ReduceTightensIntervalFromBits) {
  RangeVal v;
  v.bits = KnownBits{0x10, 0x01};  // value in {0x10, 0x11}
  v.Reduce();
  EXPECT_EQ(v.umin, 0x10u);
  EXPECT_EQ(v.umax, 0x11u);
  EXPECT_GE(v.smin, 0);
}

TEST(RangeValTest, NonNegativeUnsignedRangeImpliesSignedRange) {
  RangeVal v = RangeVal::FromU(5, 100);
  EXPECT_EQ(v.smin, 5);
  EXPECT_EQ(v.smax, 100);
}

TEST(RangeAluTest, AddConstants) {
  const RangeVal r =
      RangeAlu(BPF_ADD, RangeVal::Const(40), RangeVal::Const(2), true);
  EXPECT_TRUE(r.IsConst());
  EXPECT_TRUE(r.Contains(42));
}

TEST(RangeAluTest, AddIntervals) {
  const RangeVal r = RangeAlu(BPF_ADD, RangeVal::FromU(0, 10),
                              RangeVal::FromU(100, 200), true);
  for (u64 v = 100; v <= 210; ++v) {
    EXPECT_TRUE(r.Contains(v)) << v;
  }
}

TEST(RangeAluTest, AddOverflowWidensInsteadOfWrapping) {
  // umax + umax overflows u64: the result interval must not claim a wrapped
  // tight bound it cannot prove.
  const RangeVal a = RangeVal::FromU(0, ~u64{0});
  const RangeVal r = RangeAlu(BPF_ADD, a, RangeVal::Const(1), true);
  EXPECT_TRUE(r.Contains(0));        // wraparound value
  EXPECT_TRUE(r.Contains(~u64{0}));  // max - no wrap yet
}

TEST(RangeAluTest, Alu32TruncatesOperandsAndResult) {
  // 0xffffffff + 1 in 32-bit mode wraps to 0 (then zero-extends).
  const RangeVal r = RangeAlu(BPF_ADD, RangeVal::Const(0xffffffffull),
                              RangeVal::Const(1), false);
  EXPECT_TRUE(r.Contains(0));
  EXPECT_FALSE(r.Contains(0x100000000ull));
}

TEST(RangeAluTest, AndWithMaskBoundsResult) {
  const RangeVal r =
      RangeAlu(BPF_AND, RangeVal::Unknown(), RangeVal::Const(0xff), true);
  EXPECT_LE(r.umax, 0xffu);
  for (u64 v = 0; v <= 0xff; ++v) {
    EXPECT_TRUE(r.Contains(v)) << v;
  }
}

TEST(RangeAluTest, RshZeroKeepsSignUnknown) {
  // The BPF_RSH shift==0 identity: the sign bit stays in place, so the
  // result is NOT provably non-negative (the bug rangefuzz found in the
  // verifier's transfer function).
  const RangeVal r =
      RangeAlu(BPF_RSH, RangeVal::Unknown(), RangeVal::Const(0), true);
  EXPECT_TRUE(r.Contains(~u64{0}));  // -1 must stay inside the claim
}

TEST(RangeCast32Test, TruncatesAndZeroExtends) {
  const RangeVal r = RangeCast32(RangeVal::Const(0xaabbccdd11223344ull));
  EXPECT_TRUE(r.IsConst());
  EXPECT_TRUE(r.Contains(0x11223344ull));
  EXPECT_GE(r.smin, 0);  // zero-extension: always non-negative
}

TEST(RangeJoinTest, JoinContainsBothSides) {
  const RangeVal j =
      RangeJoin(RangeVal::Const(3), RangeVal::FromU(100, 200));
  EXPECT_TRUE(j.Contains(3));
  EXPECT_TRUE(j.Contains(150));
  EXPECT_TRUE(j.Contains(200));
}

TEST(RangeRefineTest, JeqTakenPinsValue) {
  RangeVal dst = RangeVal::Unknown();
  RangeVal src = RangeVal::Const(17);
  ASSERT_TRUE(RangeRefine(BPF_JEQ, /*is32=*/false, /*taken=*/true, dst, src));
  EXPECT_TRUE(dst.IsConst());
  EXPECT_TRUE(dst.Contains(17));
}

TEST(RangeRefineTest, ContradictoryEqualityIsInfeasible) {
  RangeVal dst = RangeVal::Const(5);
  RangeVal src = RangeVal::Const(7);
  EXPECT_FALSE(
      RangeRefine(BPF_JEQ, /*is32=*/false, /*taken=*/true, dst, src));
}

TEST(RangeRefineTest, JgtTakenRaisesUmin) {
  RangeVal dst = RangeVal::FromU(0, 100);
  RangeVal src = RangeVal::Const(10);
  ASSERT_TRUE(RangeRefine(BPF_JGT, /*is32=*/false, /*taken=*/true, dst, src));
  EXPECT_EQ(dst.umin, 11u);
  EXPECT_EQ(dst.umax, 100u);
}

TEST(RangeRefineTest, JgtFallThroughKeepsBoundItself) {
  // The Table-1 off-by-one shape: !(r > 8) means r <= 8, and 8 itself must
  // stay inside the refined range.
  RangeVal dst = RangeVal::FromU(0, 100);
  RangeVal src = RangeVal::Const(8);
  ASSERT_TRUE(
      RangeRefine(BPF_JGT, /*is32=*/false, /*taken=*/false, dst, src));
  EXPECT_EQ(dst.umax, 8u);
  EXPECT_TRUE(dst.Contains(8));
}

TEST(RangeRefineTest, Jmp32DoesNotRefineWideRegister)
{
  // A 32-bit compare only sees the low word: with unknown upper bits the
  // 64-bit unsigned range must not tighten (kernel commit 3844d153 class).
  RangeVal dst = RangeVal::Unknown();
  RangeVal src = RangeVal::Const(10);
  ASSERT_TRUE(RangeRefine(BPF_JLT, /*is32=*/true, /*taken=*/true, dst, src));
  EXPECT_TRUE(dst.Contains(0xffffffff00000001ull));
}

// ---- prepass regression: staticcheck rejects what a broken verifier takes --

struct Cell {
  Cell() : kernel(simkern::KernelConfig{}), bpf(kernel), loader(bpf) {
    EXPECT_TRUE(kernel.BootstrapWorkload().ok());
  }
  int CreateValueMap() {
    ebpf::MapSpec spec;
    spec.type = ebpf::MapType::kArray;
    spec.key_size = 4;
    spec.value_size = 16;
    spec.max_entries = 1;
    spec.name = "range_test";
    auto fd = bpf.maps().Create(spec);
    EXPECT_TRUE(fd.ok());
    return fd.ok() ? fd.value() : -1;
  }
  simkern::Kernel kernel;
  ebpf::Bpf bpf;
  ebpf::Loader loader;
};

TEST(PrepassRegressionTest, StaticcheckRejectsWhatFaultedVerifierAccepts) {
  Cell cell;
  const int fd = cell.CreateValueMap();
  auto prog = analysis::BuildJgtOffByOneExploit(fd);
  ASSERT_TRUE(prog.ok());

  // The clean verifier rejects the out-of-bounds witness.
  EXPECT_FALSE(cell.loader.Load(prog.value()).ok());

  // With the Table-1 refinement bug injected, the verifier admits it...
  cell.bpf.faults().Inject(ebpf::kFaultVerifierJgtOffByOne);
  EXPECT_TRUE(cell.loader.Load(prog.value()).ok());

  // ...and the verifier-independent prepass still rejects it.
  ebpf::LoadOptions opts;
  opts.staticcheck_prepass = true;
  auto guarded = cell.loader.Load(prog.value(), opts);
  ASSERT_FALSE(guarded.ok());
  EXPECT_NE(guarded.status().message().find("staticcheck prepass"),
            std::string::npos);
}

TEST(PrepassRegressionTest, PrepassAcceptsTrivialProgram) {
  Cell cell;
  ebpf::ProgramBuilder b("range_test_ok", ebpf::ProgType::kKprobe);
  b.Ins(ebpf::Mov64Imm(ebpf::R0, 0)).Ins(ebpf::Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  ebpf::LoadOptions opts;
  opts.staticcheck_prepass = true;
  EXPECT_TRUE(cell.loader.Load(prog.value(), opts).ok());
}

// ---- rangefuzz harness ------------------------------------------------------

TEST(RangeFuzzTest, ShortCleanCampaignFindsNothing) {
  analysis::RangeFuzzOptions opts;
  opts.seed = 7;
  opts.programs = 40;
  opts.execs = 8;
  auto report = analysis::RunRangeFuzz(opts);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().Sound());
  EXPECT_TRUE(report.value().findings.empty());
  EXPECT_GT(report.value().stats.points_checked, 0u);
  EXPECT_GT(report.value().stats.points_compared, 0u);
}

TEST(RangeFuzzTest, InjectedFaultSurfacesAsVerifierUnsoundness) {
  analysis::RangeFuzzOptions opts;
  opts.seed = 1;
  opts.programs = 120;
  opts.execs = 16;
  opts.verifier_faults = {std::string(ebpf::kFaultVerifierAlu32BoundsTrunc)};
  auto report = analysis::RunRangeFuzz(opts);
  ASSERT_TRUE(report.ok());
  // The fault lives in the verifier oracle only: staticcheck must stay
  // sound while the verifier's claims are concretely violated.
  EXPECT_FALSE(report.value().StaticUnsound());
}

TEST(RangeFaultTest, AllInjectedRangeFaultsDetected) {
  auto rows = analysis::CheckRangeFaults(/*execs=*/8);
  ASSERT_TRUE(rows.ok());
  ASSERT_GE(rows.value().size(), 4u);
  for (const analysis::RangeFaultResult& row : rows.value()) {
    EXPECT_TRUE(row.clean_verifier_rejects) << row.fault_id;
    EXPECT_TRUE(row.faulted_verifier_accepts) << row.fault_id;
    EXPECT_TRUE(row.detected()) << row.fault_id;
    EXPECT_TRUE(row.staticcheck_rejects) << row.fault_id;
  }
}

}  // namespace
}  // namespace staticcheck

// Tests for the verifier-independent staticcheck subsystem: clean programs
// stay clean, every program-visible injected-fault exploit is flagged, the
// loader prepass rejects what the path-sensitive verifier waves through,
// and the CFG/termination/lock passes report what they claim to.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/analysis/diffcheck.h"
#include "src/analysis/workloads.h"
#include "src/ebpf/asm.h"
#include "src/ebpf/loader.h"
#include "src/staticcheck/check.h"

namespace {

using namespace ebpf;  // NOLINT: register/opcode constants read like asm

struct TestRig {
  TestRig() : kernel(Config()), bpf(kernel), loader(bpf) {
    (void)kernel.BootstrapWorkload();
  }

  static simkern::KernelConfig Config() {
    simkern::KernelConfig config;
    config.unprivileged_bpf_disabled = false;
    return config;
  }

  int ArrayMap(const std::string& name, u32 value_size, u32 entries) {
    MapSpec spec;
    spec.type = MapType::kArray;
    spec.key_size = 4;
    spec.value_size = value_size;
    spec.max_entries = entries;
    spec.name = name;
    auto fd = bpf.maps().Create(spec);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    return fd.ok() ? fd.value() : -1;
  }

  staticcheck::Report Check(const Program& prog) {
    staticcheck::CheckOptions opts;
    opts.maps = &bpf.maps();
    opts.helpers = &bpf.helpers();
    opts.callgraph = &kernel.callgraph();
    auto report = staticcheck::RunChecks(prog, opts);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? std::move(report).value() : staticcheck::Report{};
  }

  simkern::Kernel kernel;
  Bpf bpf;
  Loader loader;
};

std::string Rules(const staticcheck::Report& report) {
  std::string all;
  for (const auto& finding : report.findings) {
    all += finding.rule + " ";
  }
  return all;
}

// --- (a) clean programs produce zero findings ----------------------------

TEST(StaticCheckClean, WellFormedCorpusHasNoFindings) {
  TestRig rig;
  const int counter_fd = rig.ArrayMap("cnt", 8, 4);
  const int loop_fd = rig.ArrayMap("m", 8, 4);

  struct Case {
    const char* name;
    xbase::Result<Program> prog;
  } cases[] = {
      {"straight-line", analysis::BuildStraightLine(64)},
      {"branch-diamonds", analysis::BuildBranchDiamonds(8)},
      {"counted-loop", analysis::BuildCountedLoop(16)},
      {"packet-counter", analysis::BuildPacketCounter(counter_fd)},
      {"sk-lookup-ok", analysis::BuildSkLookupWithRelease()},
      {"nested-loop-small", analysis::BuildNestedLoopStall(loop_fd, 1, 4)},
      {"task-stack-err", analysis::BuildGetTaskStackErrorPath()},
  };
  for (auto& c : cases) {
    ASSERT_TRUE(c.prog.ok()) << c.name;
    const auto report = rig.Check(c.prog.value());
    EXPECT_TRUE(report.clean())
        << c.name << " produced findings: " << Rules(report);
    EXPECT_TRUE(report.analysis_complete) << c.name;
  }
}

// --- (b) exploit programs behind injected verifier faults are flagged ----

TEST(StaticCheckExploits, EachExploitIsFlaggedByAtLeastOnePass) {
  TestRig rig;
  const int small_fd = rig.ArrayMap("vic8", 8, 4);
  const int mid_fd = rig.ArrayMap("vic64", 64, 4);
  const int lock_fd = rig.ArrayMap("locked", 16, 1);

  struct Case {
    const char* name;
    xbase::Result<Program> prog;
    const char* expected_rule;
  } cases[] = {
      {"arbitrary-read", analysis::BuildArbitraryReadExploit(small_fd, 4096),
       "map-value-oob"},
      {"jmp32-oob", analysis::BuildJmp32BoundsExploit(mid_fd),
       "map-value-oob"},
      {"ptr-leak", analysis::BuildPtrLeakExploit(small_fd),
       "ptr-return-leak"},
      {"double-spin-lock", analysis::BuildDoubleSpinLock(lock_fd),
       "double-lock"},
      {"sk-lookup-no-release", analysis::BuildSkLookupNoRelease(),
       "ref-leak"},
      {"jit-hijack-victim", analysis::BuildJitHijackVictim(),
       "use-before-init"},
  };
  for (auto& c : cases) {
    ASSERT_TRUE(c.prog.ok()) << c.name;
    const auto report = rig.Check(c.prog.value());
    EXPECT_GT(report.errors(), 0u) << c.name;
    EXPECT_TRUE(report.HasRule(c.expected_rule))
        << c.name << " rules: " << Rules(report);
  }
}

TEST(StaticCheckExploits, DifferentialOracleCatchesInjectedVerifierFaults) {
  auto report = analysis::RunDiffCheck();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Acceptance bar: at least 4 distinct injected *verifier* faults whose
  // exploits the broken verifier admits but staticcheck flags.
  std::set<std::string> caught_verifier_faults;
  for (const auto& row : report.value().rows) {
    if (row.divergence_caught() &&
        row.fault_id.rfind("verifier.", 0) == 0) {
      caught_verifier_faults.insert(row.fault_id);
    }
  }
  EXPECT_GE(caught_verifier_faults.size(), 4u);

  // The interface bug must stay uncaught — that is the paper's point.
  for (const auto& row : report.value().rows) {
    if (row.exploit == "sys-bpf-null-crash") {
      EXPECT_FALSE(row.caught);
    }
  }
}

// --- (c) loader prepass rejects what the verifier accepts ----------------

TEST(StaticCheckLoader, PrepassRejectsUseBeforeInitTheVerifierAccepts) {
  // The uninitialized read sits on a branch the verifier constant-folds
  // away (R6 is provably 0), so path-sensitive verification never visits
  // it — at v4.9 or any other version. The path-insensitive CFG walk does.
  ProgramBuilder b("uninit_dead_path", ProgType::kKprobe);
  b.Ins(Mov64Imm(R6, 0))
      .JmpTo(BPF_JEQ, R6, 0, "skip")
      .Ins(LdxMem(BPF_DW, R0, R8, 0))  // R8 never written anywhere
      .Ins(Exit())
      .Bind("skip")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());

  LoadOptions opts;
  opts.version_override = simkern::kV4_9;

  {
    TestRig rig;
    auto id = rig.loader.Load(prog.value(), opts);
    EXPECT_TRUE(id.ok()) << "verifier should accept: "
                         << id.status().ToString();
  }
  {
    TestRig rig;
    opts.staticcheck_prepass = true;
    auto id = rig.loader.Load(prog.value(), opts);
    ASSERT_FALSE(id.ok());
    EXPECT_EQ(id.status().code(), xbase::Code::kRejected);
    EXPECT_NE(id.status().message().find("use-before-init"),
              std::string::npos)
        << id.status().ToString();
  }
}

TEST(StaticCheckLoader, PrepassStillLoadsCleanPrograms) {
  TestRig rig;
  const int fd = rig.ArrayMap("cnt", 8, 4);
  auto prog = analysis::BuildPacketCounter(fd);
  ASSERT_TRUE(prog.ok());
  LoadOptions opts;
  opts.staticcheck_prepass = true;
  auto id = rig.loader.Load(prog.value(), opts);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
}

// --- CFG pass ------------------------------------------------------------

TEST(StaticCheckCfg, DeadCodeIsAWarningNotAnError) {
  ProgramBuilder b("dead_code", ProgType::kKprobe);
  b.Ins(Mov64Imm(R0, 0))
      .JaTo("end")
      .Ins(Mov64Imm(R1, 1))  // unreachable
      .Bind("end")
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  TestRig rig;
  const auto report = rig.Check(prog.value());
  EXPECT_TRUE(report.HasRule("dead-code")) << Rules(report);
  EXPECT_EQ(report.errors(), 0u) << Rules(report);
}

TEST(StaticCheckCfg, FallthroughOffEndIsAnError) {
  Program prog;
  prog.name = "falls_off";
  prog.insns = {Mov64Imm(R0, 0)};  // no exit
  TestRig rig;
  const auto report = rig.Check(prog);
  EXPECT_TRUE(report.HasRule("fallthrough-off-end")) << Rules(report);
  EXPECT_GT(report.errors(), 0u);
}

TEST(StaticCheckCfg, JumpOutOfRangeIsAnError) {
  Program prog;
  prog.name = "wild_jump";
  prog.insns = {Mov64Imm(R0, 0), Ja(5), Exit()};
  TestRig rig;
  const auto report = rig.Check(prog);
  EXPECT_TRUE(report.HasRule("jump-out-of-range")) << Rules(report);
}

TEST(StaticCheckCfg, CountsBlocksAndBackEdges) {
  TestRig rig;
  auto straight = analysis::BuildStraightLine(16);
  ASSERT_TRUE(straight.ok());
  const auto flat = rig.Check(straight.value());
  EXPECT_EQ(flat.block_count, 1u);
  EXPECT_EQ(flat.back_edge_count, 0u);

  auto loop = analysis::BuildCountedLoop(8);
  ASSERT_TRUE(loop.ok());
  const auto looped = rig.Check(loop.value());
  EXPECT_EQ(looped.back_edge_count, 1u);
}

// --- dataflow pass -------------------------------------------------------

TEST(StaticCheckDataflow, ExitWithoutSettingR0IsAnError) {
  Program prog;
  prog.name = "no_r0";
  prog.insns = {Exit()};
  TestRig rig;
  const auto report = rig.Check(prog);
  EXPECT_TRUE(report.HasRule("exit-uninit-r0")) << Rules(report);
}

TEST(StaticCheckDataflow, HelperArgArityCheckedAgainstRegistry) {
  ProgramBuilder b("bad_arity", ProgType::kKprobe);
  b.Ins(CallHelper(kHelperMapLookupElem))  // R1/R2 never set
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  TestRig rig;
  const auto report = rig.Check(prog.value());
  EXPECT_TRUE(report.HasRule("helper-arg-uninit")) << Rules(report);
}

TEST(StaticCheckDataflow, UninitializedStackReadIsAWarning) {
  ProgramBuilder b("stack_uninit", ProgType::kKprobe);
  b.Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -8))
      .Ins(LdxMem(BPF_DW, R3, R2, 0))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  TestRig rig;
  const auto report = rig.Check(prog.value());
  EXPECT_TRUE(report.HasRule("stack-uninit-read")) << Rules(report);
  EXPECT_EQ(report.errors(), 0u) << Rules(report);
}

TEST(StaticCheckDataflow, UncheckedMapValueDerefIsAnError) {
  TestRig rig;
  const int fd = rig.ArrayMap("vic", 8, 4);
  ProgramBuilder b("no_null_check", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .Ins(LdxMem(BPF_DW, R1, R0, 0))  // no null check on R0
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  const auto report = rig.Check(prog.value());
  EXPECT_TRUE(report.HasRule("null-deref")) << Rules(report);
}

// --- termination pass ----------------------------------------------------

TEST(StaticCheckTermination, LoopWithInvariantExitConditionIsFlagged) {
  ProgramBuilder b("unbounded", ProgType::kKprobe);
  b.Ins(LdxMem(BPF_W, R6, R1, 0))  // unknown ctx value
      .Ins(Mov64Imm(R7, 0))
      .Bind("top")
      .JmpTo(BPF_JGE, R6, 10, "done")
      .Ins(Alu64Imm(BPF_ADD, R7, 1))  // R6 never changes
      .JaTo("top")
      .Bind("done")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  TestRig rig;
  const auto report = rig.Check(prog.value());
  EXPECT_TRUE(report.HasRule("unbounded-loop")) << Rules(report);
}

TEST(StaticCheckTermination, LoopWithNoExitEdgeIsAnError) {
  ProgramBuilder b("spin_forever", ProgType::kKprobe);
  b.Ins(Mov64Imm(R0, 0)).Bind("top").JaTo("top").Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  TestRig rig;
  const auto report = rig.Check(prog.value());
  EXPECT_TRUE(report.HasRule("infinite-loop")) << Rules(report);
  EXPECT_GT(report.errors(), 0u);
}

TEST(StaticCheckTermination, NestedBpfLoopBudgetIsEstimated) {
  TestRig rig;
  const int fd = rig.ArrayMap("m", 8, 4);
  auto deep = analysis::BuildNestedLoopStall(fd, 3, 256);  // 256^3 iters
  ASSERT_TRUE(deep.ok());
  const auto report = rig.Check(deep.value());
  EXPECT_TRUE(report.HasRule("loop-budget")) << Rules(report);

  auto shallow = analysis::BuildNestedLoopStall(fd, 1, 4);
  ASSERT_TRUE(shallow.ok());
  EXPECT_FALSE(rig.Check(shallow.value()).HasRule("loop-budget"));
}

// --- lock pass -----------------------------------------------------------

TEST(StaticCheckLocks, HelperCallUnderHeldLockIsReported) {
  TestRig rig;
  const int fd = rig.ArrayMap("locked", 16, 1);
  ProgramBuilder b("helper_under_lock", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R6, R0))
      .Ins(Mov64Reg(R1, R6))
      .Ins(CallHelper(kHelperSpinLock))
      .Ins(CallHelper(kHelperKtimeGetNs))  // under the lock
      .Ins(Mov64Reg(R1, R6))
      .Ins(CallHelper(kHelperSpinUnlock))
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  const auto report = rig.Check(prog.value());
  EXPECT_TRUE(report.HasRule("helper-call-under-lock") ||
              report.HasRule("helper-under-lock"))
      << Rules(report);
  EXPECT_FALSE(report.HasRule("double-lock"));
  EXPECT_FALSE(report.HasRule("lock-held-at-exit"));
}

TEST(StaticCheckLocks, UnlockWithoutLockIsAWarning) {
  TestRig rig;
  const int fd = rig.ArrayMap("locked", 16, 1);
  ProgramBuilder b("unlock_unheld", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R1, R0))
      .Ins(CallHelper(kHelperSpinUnlock))  // never locked
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  const auto report = rig.Check(prog.value());
  EXPECT_TRUE(report.HasRule("unlock-unheld")) << Rules(report);
}

TEST(StaticCheckLocks, DoubleLockAndHeldAtExitAreErrors) {
  TestRig rig;
  const int fd = rig.ArrayMap("locked", 16, 1);
  auto prog = analysis::BuildDoubleSpinLock(fd);
  ASSERT_TRUE(prog.ok());
  const auto report = rig.Check(prog.value());
  EXPECT_TRUE(report.HasRule("double-lock")) << Rules(report);
  EXPECT_TRUE(report.HasRule("lock-held-at-exit")) << Rules(report);
}

}  // namespace

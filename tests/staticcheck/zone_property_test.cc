// Soundness properties for the zone (difference-bound matrix) domain
// (zone.cc), checked against exhaustive concrete valuations the same way
// tnum_property_test checks the tnum algebra: over a small box [-W, W]^3
// the full concretization of a 3-variable zone is enumerable, so every
// claim the domain makes — closure, join, widening, assignment transfer,
// branch refinement — can be tested against the ground-truth set of
// satisfying valuations rather than against hand-picked examples.
//
// Randomized zones run 200 trials over W=4 by default; setting
// ZONE_EXHAUSTIVE in the environment widens the box to W=6 and runs 2000
// trials (a few seconds).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/ebpf/insn.h"
#include "src/staticcheck/zone.h"

namespace staticcheck {
namespace {

using xbase::s64;
using xbase::u32;
using xbase::u64;
using xbase::u8;

// The three tracked variables valuations range over; everything else in
// the matrix stays unconstrained (top) throughout.
constexpr int kVars[] = {0, 1, 2};

s64 BoxWidth() {
  return std::getenv("ZONE_EXHAUSTIVE") != nullptr ? 6 : 4;
}

u32 Trials() {
  return std::getenv("ZONE_EXHAUSTIVE") != nullptr ? 2000 : 200;
}

// Deterministic xorshift so failures replay.
struct Rng {
  u64 state;
  explicit Rng(u64 seed) : state(seed * 0x9e3779b97f4a7c15ULL + 1) {}
  u64 Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  s64 Bound(s64 w) {  // uniform-ish in [-w, w]
    return static_cast<s64>(Next() % static_cast<u64>(2 * w + 1)) - w;
  }
  int Var() { return kVars[Next() % 3]; }
};

struct Valuation {
  s64 v[3];
  s64 Of(int var) const { return var == kZoneZero ? 0 : v[var]; }
};

// Every valuation of (v0, v1, v2) in the box.
std::vector<Valuation> Box(s64 w) {
  std::vector<Valuation> out;
  for (s64 a = -w; a <= w; ++a) {
    for (s64 b = -w; b <= w; ++b) {
      for (s64 c = -w; c <= w; ++c) {
        out.push_back(Valuation{{a, b, c}});
      }
    }
  }
  return out;
}

bool Satisfies(const Zone& z, const Valuation& val) {
  if (z.bot) {
    return false;
  }
  const int tracked[] = {0, 1, 2, kZoneZero};
  for (const int i : tracked) {
    for (const int j : tracked) {
      const s64 c = z.At(i, j);
      if (i != j && c != kZoneInf && val.Of(i) - val.Of(j) > c) {
        return false;
      }
    }
  }
  return true;
}

struct Constraint {
  int i;
  int j;
  s64 c;
};

bool SatisfiesRaw(const std::vector<Constraint>& cons, const Valuation& val) {
  for (const Constraint& con : cons) {
    if (val.Of(con.i) - val.Of(con.j) > con.c) {
      return false;
    }
  }
  return true;
}

// A random zone: up to 6 difference constraints over the tracked vars and
// the zero pseudo-variable, bounds within the box scale.
std::vector<Constraint> RandomConstraints(Rng& rng, s64 w) {
  std::vector<Constraint> cons;
  const u64 count = rng.Next() % 7;
  for (u64 k = 0; k < count; ++k) {
    int i = rng.Next() % 4 == 0 ? kZoneZero : rng.Var();
    int j = rng.Next() % 4 == 0 ? kZoneZero : rng.Var();
    if (i == j) {
      continue;
    }
    cons.push_back(Constraint{i, j, rng.Bound(2 * w)});
  }
  return cons;
}

Zone FromConstraints(const std::vector<Constraint>& cons) {
  Zone z;
  for (const Constraint& con : cons) {
    z.AddUpper(con.i, con.j, con.c);
  }
  return z;
}

TEST(ZonePropertyTest, CloseIsSemanticsPreserving) {
  // Closure must neither drop satisfying valuations (soundness) nor admit
  // new ones (it only derives consequences); bot must imply emptiness.
  const std::vector<Valuation> box = Box(BoxWidth());
  for (u32 t = 0; t < Trials(); ++t) {
    Rng rng(t);
    const std::vector<Constraint> cons = RandomConstraints(rng, BoxWidth());
    Zone z = FromConstraints(cons);
    z.Close();
    for (const Valuation& val : box) {
      ASSERT_EQ(SatisfiesRaw(cons, val), Satisfies(z, val))
          << "trial " << t << " at (" << val.v[0] << "," << val.v[1] << ","
          << val.v[2] << "): " << z.ToString();
    }
  }
}

TEST(ZonePropertyTest, CloseIsIdempotent) {
  for (u32 t = 0; t < Trials(); ++t) {
    Rng rng(t + 1000000);
    Zone z = FromConstraints(RandomConstraints(rng, BoxWidth()));
    z.Close();
    Zone again = z;
    again.Close();
    EXPECT_EQ(z, again) << "trial " << t << ": " << z.ToString();
  }
}

TEST(ZonePropertyTest, JoinOverApproximatesBothSides) {
  const std::vector<Valuation> box = Box(BoxWidth());
  for (u32 t = 0; t < Trials(); ++t) {
    Rng rng(t + 2000000);
    Zone a = FromConstraints(RandomConstraints(rng, BoxWidth()));
    Zone b = FromConstraints(RandomConstraints(rng, BoxWidth()));
    a.Close();
    b.Close();
    const Zone j = Zone::Join(a, b);
    for (const Valuation& val : box) {
      if (Satisfies(a, val) || Satisfies(b, val)) {
        ASSERT_TRUE(Satisfies(j, val))
            << "trial " << t << ": join dropped (" << val.v[0] << ","
            << val.v[1] << "," << val.v[2] << ")";
      }
    }
  }
}

TEST(ZonePropertyTest, JoinOfClosedIsClosed) {
  // The pointwise max of two closed DBMs is closed — the property the
  // dataflow relies on to skip re-closing after every merge.
  for (u32 t = 0; t < Trials(); ++t) {
    Rng rng(t + 3000000);
    Zone a = FromConstraints(RandomConstraints(rng, BoxWidth()));
    Zone b = FromConstraints(RandomConstraints(rng, BoxWidth()));
    a.Close();
    b.Close();
    Zone j = Zone::Join(a, b);
    Zone closed = j;
    closed.Close();
    EXPECT_EQ(j, closed) << "trial " << t;
  }
}

TEST(ZonePropertyTest, WideningTerminates) {
  // A widening chain acc = Widen(acc, Join(acc, next_i)) must stabilize:
  // every entry that ever grows jumps straight to kZoneInf, so the chain
  // changes at most once per matrix entry.
  const int kMaxSteps = kZoneVars * kZoneVars + 1;
  for (u32 t = 0; t < Trials(); ++t) {
    Rng rng(t + 4000000);
    Zone acc = FromConstraints(RandomConstraints(rng, BoxWidth()));
    acc.Close();
    int steps = 0;
    for (; steps < kMaxSteps + 1; ++steps) {
      Zone next = FromConstraints(RandomConstraints(rng, BoxWidth()));
      next.Close();
      const Zone merged = Zone::Join(acc, next);
      const Zone widened = Zone::Widen(acc, merged);
      if (widened == acc) {
        break;  // would re-check forever; one fixpoint hit is enough
      }
      acc = widened;
    }
    EXPECT_LE(steps, kMaxSteps) << "trial " << t << " did not stabilize";
  }
}

TEST(ZonePropertyTest, WideningOverApproximatesNext) {
  const std::vector<Valuation> box = Box(BoxWidth());
  for (u32 t = 0; t < Trials(); ++t) {
    Rng rng(t + 5000000);
    Zone prev = FromConstraints(RandomConstraints(rng, BoxWidth()));
    Zone next = FromConstraints(RandomConstraints(rng, BoxWidth()));
    prev.Close();
    next.Close();
    const Zone w = Zone::Widen(prev, Zone::Join(prev, next));
    for (const Valuation& val : box) {
      if (Satisfies(prev, val) || Satisfies(next, val)) {
        ASSERT_TRUE(Satisfies(w, val)) << "trial " << t;
      }
    }
  }
}

TEST(ZonePropertyTest, AssignCopySound) {
  // After v_dst := v_src, any model of the original with val[dst]
  // overwritten by val[src] models the transformed zone.
  const std::vector<Valuation> box = Box(BoxWidth());
  for (u32 t = 0; t < Trials(); ++t) {
    Rng rng(t + 6000000);
    Zone z = FromConstraints(RandomConstraints(rng, BoxWidth()));
    z.Close();
    const int dst = rng.Var();
    const int src = rng.Var();
    Zone after = z;
    after.AssignCopy(dst, src);
    for (const Valuation& val : box) {
      if (!Satisfies(z, val)) {
        continue;
      }
      Valuation moved = val;
      moved.v[dst] = moved.Of(src);
      ASSERT_TRUE(Satisfies(after, moved))
          << "trial " << t << ": r" << dst << " = r" << src;
    }
  }
}

TEST(ZonePropertyTest, AssignShiftSound) {
  const std::vector<Valuation> box = Box(BoxWidth());
  for (u32 t = 0; t < Trials(); ++t) {
    Rng rng(t + 7000000);
    Zone z = FromConstraints(RandomConstraints(rng, BoxWidth()));
    z.Close();
    const int v = rng.Var();
    s64 lo = rng.Bound(BoxWidth());
    s64 hi = rng.Bound(BoxWidth());
    if (lo > hi) {
      std::swap(lo, hi);
    }
    Zone after = z;
    after.AssignShift(v, lo, hi);
    for (const Valuation& val : box) {
      if (!Satisfies(z, val)) {
        continue;
      }
      for (s64 d = lo; d <= hi; ++d) {
        Valuation moved = val;
        moved.v[v] += d;
        ASSERT_TRUE(Satisfies(after, moved))
            << "trial " << t << ": r" << v << " += " << d;
      }
    }
  }
}

TEST(ZonePropertyTest, SeedRangeSound) {
  const std::vector<Valuation> box = Box(BoxWidth());
  for (u32 t = 0; t < Trials(); ++t) {
    Rng rng(t + 8000000);
    Zone z = FromConstraints(RandomConstraints(rng, BoxWidth()));
    z.Close();
    const int v = rng.Var();
    s64 smin = rng.Bound(BoxWidth());
    s64 smax = rng.Bound(BoxWidth());
    if (smin > smax) {
      std::swap(smin, smax);
    }
    Zone after = z;
    after.SeedRange(v, smin, smax);
    for (const Valuation& val : box) {
      if (Satisfies(z, val) && val.Of(v) >= smin && val.Of(v) <= smax) {
        ASSERT_TRUE(Satisfies(after, val)) << "trial " << t;
      }
    }
  }
}

TEST(ZonePropertyTest, RefineCompareSound) {
  // Branch refinement may only assume the branch predicate: every model of
  // the original zone in which the (signed) predicate concretely holds on
  // the chosen edge must still be a model after refinement + closure.
  const u8 kOps[] = {ebpf::BPF_JEQ,  ebpf::BPF_JNE,  ebpf::BPF_JSGT,
                     ebpf::BPF_JSGE, ebpf::BPF_JSLT, ebpf::BPF_JSLE};
  const std::vector<Valuation> box = Box(BoxWidth());
  for (u32 t = 0; t < Trials(); ++t) {
    Rng rng(t + 9000000);
    Zone z = FromConstraints(RandomConstraints(rng, BoxWidth()));
    z.Close();
    const int dst = rng.Var();
    const int src = rng.Var();
    if (dst == src) {
      continue;
    }
    const u8 op = kOps[rng.Next() % 6];
    const bool taken = (rng.Next() & 1) != 0;
    Zone refined = z;
    refined.RefineCompare(op, taken, dst, src);
    refined.Close();
    for (const Valuation& val : box) {
      if (!Satisfies(z, val)) {
        continue;
      }
      const s64 a = val.Of(dst);
      const s64 b = val.Of(src);
      bool pred = false;
      switch (op) {
        case ebpf::BPF_JEQ: pred = a == b; break;
        case ebpf::BPF_JNE: pred = a != b; break;
        case ebpf::BPF_JSGT: pred = a > b; break;
        case ebpf::BPF_JSGE: pred = a >= b; break;
        case ebpf::BPF_JSLT: pred = a < b; break;
        case ebpf::BPF_JSLE: pred = a <= b; break;
      }
      if (pred == taken) {
        ASSERT_TRUE(Satisfies(refined, val))
            << "trial " << t << " op " << int{op} << (taken ? " taken" : " else")
            << " r" << dst << " vs r" << src << " at (" << val.v[0] << ","
            << val.v[1] << "," << val.v[2] << ")";
      }
    }
  }
}

TEST(ZonePropertyTest, BotOnContradiction) {
  Zone z;
  z.AddUpper(0, 1, -5);  // v0 - v1 <= -5
  z.AddUpper(1, 0, 2);   // v1 - v0 <= 2  => cycle weight -3 < 0
  z.Close();
  EXPECT_TRUE(z.bot);
}

TEST(ZonePropertyTest, DefaultIsTop) {
  Zone z;
  EXPECT_TRUE(z.IsTop());
  z.Close();
  EXPECT_FALSE(z.bot);
  EXPECT_TRUE(z.IsTop());
}

}  // namespace
}  // namespace staticcheck

// Integration tests for the relational layer of staticcheck: the zone
// domain carrying reg-reg facts through branches, the stack memory domain
// round-tripping spills (and demoting scribbled slots), and the packet
// domain proving data_end bounds and invalidating them across
// packet-mutating helpers. Each behavior is pinned with an A/B pair: the
// same program under enable_relational on and off, or a well-formed
// program against its subtly-broken twin.
#include <gtest/gtest.h>

#include <string>

#include "src/analysis/workloads.h"
#include "src/ebpf/asm.h"
#include "src/ebpf/helper.h"
#include "src/staticcheck/check.h"

namespace {

using namespace ebpf;  // NOLINT: register/opcode constants read like asm

struct TestRig {
  TestRig() : kernel(Config()), bpf(kernel) {
    (void)kernel.BootstrapWorkload();
  }

  static simkern::KernelConfig Config() {
    simkern::KernelConfig config;
    config.unprivileged_bpf_disabled = false;
    return config;
  }

  int ArrayMap(const std::string& name, u32 value_size, u32 entries) {
    MapSpec spec;
    spec.type = MapType::kArray;
    spec.key_size = 4;
    spec.value_size = value_size;
    spec.max_entries = entries;
    spec.name = name;
    auto fd = bpf.maps().Create(spec);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    return fd.ok() ? fd.value() : -1;
  }

  staticcheck::Report Check(const Program& prog, bool relational) {
    staticcheck::CheckOptions opts;
    opts.maps = &bpf.maps();
    opts.helpers = &bpf.helpers();
    opts.callgraph = &kernel.callgraph();
    opts.enable_relational = relational;
    auto report = staticcheck::RunChecks(prog, opts);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? std::move(report).value() : staticcheck::Report{};
  }

  simkern::Kernel kernel;
  Bpf bpf;
};

std::string Rules(const staticcheck::Report& report) {
  std::string all;
  for (const auto& finding : report.findings) {
    all += finding.rule + " ";
  }
  return all;
}

// --- zone domain: reg-reg facts across branches --------------------------

TEST(RelationalZone, RelGuardProvableOnlyWithZones) {
  // r7 < r8 then r8 <= 32 bounds r7 <= 31 — but only if the analysis can
  // carry the r7 - r8 <= -1 fact across the second branch. The interval
  // product cannot (neither register has useful endpoints at the compare),
  // so this one program separates the two configurations.
  TestRig rig;
  const int fd = rig.ArrayMap("rel", 64, 4);
  auto prog = analysis::BuildRelGuard(fd);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();

  const auto with_zones = rig.Check(prog.value(), /*relational=*/true);
  EXPECT_EQ(with_zones.errors(), 0u) << Rules(with_zones);

  const auto intervals_only = rig.Check(prog.value(), /*relational=*/false);
  EXPECT_GT(intervals_only.errors(), 0u)
      << "interval product should not prove the guarded access";
  EXPECT_TRUE(intervals_only.HasRule("map-value-oob"))
      << Rules(intervals_only);
}

// --- stack memory domain: spill/fill -------------------------------------

TEST(RelationalStack, SpillFillRestoresBounds) {
  // A bounds-checked index survives a round trip through fp-8 only when
  // the stack domain tracks the spilled abstract value.
  TestRig rig;
  const int fd = rig.ArrayMap("m", 64, 4);
  ProgramBuilder b("spill_fill", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R9, R0))
      .Ins(LdxMem(BPF_DW, R6, R9, 0))
      .JmpTo(BPF_JGT, R6, 7, "out")
      .Ins(StxMem(BPF_DW, R10, R6, -8))   // spill bounded index
      .Ins(LdxMem(BPF_DW, R7, R10, -8))   // fill it back
      .Ins(Alu64Reg(BPF_ADD, R9, R7))
      .Ins(LdxMem(BPF_B, R0, R9, 56))     // needs r7 in [0, 7]
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());

  const auto tracked = rig.Check(prog.value(), /*relational=*/true);
  EXPECT_EQ(tracked.errors(), 0u) << Rules(tracked);
  EXPECT_FALSE(tracked.HasRule("map-value-var-off")) << Rules(tracked);

  // Without the memory domain the fill produces an unknown scalar and the
  // access offset is statically unbounded.
  const auto untracked = rig.Check(prog.value(), /*relational=*/false);
  EXPECT_TRUE(untracked.HasRule("map-value-var-off")) << Rules(untracked);
}

TEST(RelationalStack, NarrowOverwriteDemotesSpill) {
  // BuildSpillWidthExploit scribbles one byte over the spilled slot; a
  // sound stack domain must forget the old bounds (restoring them anyway
  // is the kernel's spill-width-confusion defect, commit 27113c59b6d0).
  TestRig rig;
  const int fd = rig.ArrayMap("m", 64, 4);
  auto prog = analysis::BuildSpillWidthExploit(fd);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();

  const auto report = rig.Check(prog.value(), /*relational=*/true);
  EXPECT_TRUE(report.HasRule("map-value-var-off"))
      << "fill after a narrow overwrite must be unknown, rules: "
      << Rules(report);
}

// --- packet domain: data_end proofs and helper invalidation --------------

TEST(RelationalPacket, BoundsCheckedAccessIsClean) {
  TestRig rig;
  ProgramBuilder b("pkt_ok", ProgType::kSocketFilter);
  b.Ins(LdxMem(BPF_DW, R7, R1, 8))    // data
      .Ins(LdxMem(BPF_DW, R3, R1, 16))  // data_end
      .Ins(Mov64Reg(R4, R7))
      .Ins(Alu64Imm(BPF_ADD, R4, 14))
      .JmpRegTo(BPF_JGT, R4, R3, "out")  // data + 14 > data_end -> out
      .Ins(LdxMem(BPF_B, R5, R7, 13))    // within the proven 14 bytes
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  const auto report = rig.Check(prog.value(), /*relational=*/true);
  EXPECT_EQ(report.errors(), 0u) << Rules(report);
}

TEST(RelationalPacket, UnprovenAccessIsFlagged) {
  TestRig rig;
  ProgramBuilder b("pkt_unproven", ProgType::kSocketFilter);
  b.Ins(LdxMem(BPF_DW, R7, R1, 8))   // data, no data_end compare
      .Ins(LdxMem(BPF_B, R5, R7, 0))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  const auto report = rig.Check(prog.value(), /*relational=*/true);
  EXPECT_TRUE(report.HasRule("pkt-oob")) << Rules(report);
  EXPECT_GT(report.errors(), 0u);
}

TEST(RelationalPacket, StaleAfterMutatingHelperIsFlagged) {
  // BuildPktRangeStaleExploit re-reads through the pre-helper packet
  // pointer after bpf_skb_vlan_push; the proven range must not survive.
  TestRig rig;
  auto prog = analysis::BuildPktRangeStaleExploit();
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  const auto report = rig.Check(prog.value(), /*relational=*/true);
  EXPECT_TRUE(report.HasRule("pkt-oob")) << Rules(report);
  EXPECT_GT(report.errors(), 0u);
}

TEST(RelationalPacket, SpilledPacketPointerAlsoGoesStale) {
  // The same invalidation must reach pointers parked on the stack across
  // the helper call — the escape hatch the in-kernel bug class used.
  TestRig rig;
  ProgramBuilder b("pkt_spill_stale", ProgType::kSocketFilter);
  b.Ins(Mov64Reg(R6, R1))
      .Ins(LdxMem(BPF_DW, R7, R1, 8))
      .Ins(LdxMem(BPF_DW, R3, R1, 16))
      .Ins(Mov64Reg(R4, R7))
      .Ins(Alu64Imm(BPF_ADD, R4, 14))
      .JmpRegTo(BPF_JGT, R4, R3, "out")
      .Ins(StxMem(BPF_DW, R10, R7, -8))  // park proven pointer at fp-8
      .Ins(Mov64Reg(R1, R6))
      .Ins(Mov64Imm(R2, 0x8100))
      .Ins(Mov64Imm(R3, 2))
      .Ins(CallHelper(kHelperSkbVlanPush))  // mutates packet geometry
      .Ins(LdxMem(BPF_DW, R8, R10, -8))     // unpark
      .Ins(LdxMem(BPF_B, R5, R8, 13))       // stale proof
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  const auto report = rig.Check(prog.value(), /*relational=*/true);
  EXPECT_TRUE(report.HasRule("pkt-oob")) << Rules(report);
  EXPECT_GT(report.errors(), 0u);
}

}  // namespace

// permcheck tests: the contract side of the access-control audit. The
// ExpectedAdmissionFor verdicts are the census's ground truth, so they are
// pinned cell by cell here — per-layer obligations, pipeline-order reason
// attribution — together with the bytecode contract scan, the registry
// consistency assert, the disassembler's helper-name table, and the static
// half of the version-gate matrix: every registered helper must flip from
// denied to admitted exactly at its declared introduction version, on the
// verifier gate and the dispatch gate alike (probed end to end here via
// permaudit's shared probe primitives).
#include <gtest/gtest.h>

#include "src/analysis/permaudit.h"
#include "src/ebpf/asm.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/disasm.h"
#include "src/staticcheck/permcheck.h"

namespace staticcheck {
namespace {

using ebpf::ProgType;
using simkern::KernelVersion;

class PermcheckTest : public ::testing::Test {
 protected:
  const ebpf::HelperSpec& Spec(u32 id) {
    return *bpf_.helpers().FindSpec(id).value();
  }

  simkern::Kernel kernel_;
  ebpf::Bpf bpf_{kernel_};
};

// ---- ExpectedAdmissionFor --------------------------------------------------

TEST_F(PermcheckTest, GenericHelperFromUnprivilegedSocketFilterIsAllowed) {
  const ExpectedAdmission a = ExpectedAdmissionFor(
      Spec(ebpf::kHelperMapLookupElem), ProgType::kSocketFilter,
      /*privileged=*/false, simkern::kV6_12);
  EXPECT_TRUE(a.allow);
  EXPECT_EQ(a.reason, PermReason::kAllowed);
  EXPECT_FALSE(a.verifier_denies);
  EXPECT_FALSE(a.runtime_denies);
  EXPECT_FALSE(a.loader_denies);
}

TEST_F(PermcheckTest, FamilyDenialChargesVerifierAndRuntimeNotLoader) {
  const ExpectedAdmission a = ExpectedAdmissionFor(
      Spec(ebpf::kHelperSchedYield), ProgType::kXdp, /*privileged=*/true,
      simkern::kV6_12);
  EXPECT_FALSE(a.allow);
  EXPECT_EQ(a.reason, PermReason::kFamily);
  EXPECT_TRUE(a.verifier_denies);
  EXPECT_TRUE(a.runtime_denies);
  EXPECT_FALSE(a.loader_denies);
}

TEST_F(PermcheckTest, VersionDenialChargesVerifierAndRuntime) {
  // sched helper from its own admitting type, but before its introduction.
  const ExpectedAdmission a = ExpectedAdmissionFor(
      Spec(ebpf::kHelperSchedYield), ProgType::kSchedExt,
      /*privileged=*/true, simkern::kV6_1);
  EXPECT_FALSE(a.allow);
  EXPECT_EQ(a.reason, PermReason::kVersion);
  EXPECT_TRUE(a.verifier_denies);
  EXPECT_TRUE(a.runtime_denies);
  EXPECT_FALSE(a.loader_denies);
}

TEST_F(PermcheckTest, PrivilegeDenialChargesLoaderAlone) {
  // lsm helper from an lsm program: family and version admit, so the only
  // obligation left is the loader's — lsm loads are privileged-only.
  const ExpectedAdmission a = ExpectedAdmissionFor(
      Spec(ebpf::kHelperLsmCurrentUid), ProgType::kLsm,
      /*privileged=*/false, simkern::kV6_12);
  EXPECT_FALSE(a.allow);
  EXPECT_EQ(a.reason, PermReason::kPrivilege);
  EXPECT_FALSE(a.verifier_denies);
  EXPECT_FALSE(a.runtime_denies);
  EXPECT_TRUE(a.loader_denies);
}

TEST_F(PermcheckTest, ReasonFollowsPipelineOrderWhenSeveralGatesDeny) {
  // Unprivileged + too-old version: the loader's privilege gate fires
  // before verification ever starts, so privilege wins the attribution —
  // but the verifier/runtime obligations are still recorded, because each
  // layer must enforce its own gate no matter what ran before it.
  const ExpectedAdmission a = ExpectedAdmissionFor(
      Spec(ebpf::kHelperLsmAudit), ProgType::kLsm, /*privileged=*/false,
      simkern::kV6_1);
  EXPECT_EQ(a.reason, PermReason::kPrivilege);
  EXPECT_TRUE(a.loader_denies);
  EXPECT_TRUE(a.verifier_denies);
  EXPECT_TRUE(a.runtime_denies);

  // Version outranks family within the verifier: its gate runs first.
  const ExpectedAdmission b = ExpectedAdmissionFor(
      Spec(ebpf::kHelperSchedYield), ProgType::kXdp, /*privileged=*/true,
      simkern::kV6_1);
  EXPECT_EQ(b.reason, PermReason::kVersion);
}

TEST_F(PermcheckTest, NamesAndCellToString) {
  EXPECT_EQ(PermReasonName(PermReason::kAllowed), "allowed");
  EXPECT_EQ(PermReasonName(PermReason::kPrivilege), "privilege");
  EXPECT_EQ(PermReasonName(PermReason::kVersion), "version");
  EXPECT_EQ(PermReasonName(PermReason::kFamily), "family");
  EXPECT_EQ(PermLayerName(PermLayer::kVerifier), "verifier");
  EXPECT_EQ(PermLayerName(PermLayer::kRuntime), "runtime");
  EXPECT_EQ(PermLayerName(PermLayer::kLoader), "loader");

  const AdmissionCell cell{ebpf::kHelperSchedYield, ProgType::kXdp, false,
                           simkern::kV6_12};
  const std::string s = cell.ToString();
  EXPECT_NE(s.find("helper#236"), std::string::npos) << s;
  EXPECT_NE(s.find("xdp"), std::string::npos) << s;
  EXPECT_NE(s.find("unpriv"), std::string::npos) << s;
}

// ---- ScanRequiredContract --------------------------------------------------

TEST_F(PermcheckTest, ScanCollectsDistinctHelpersAndMinVersion) {
  ebpf::ProgramBuilder b("scan", ProgType::kSocketFilter);
  b.Ins(ebpf::CallHelper(ebpf::kHelperKtimeGetNs))
      .Ins(ebpf::CallHelper(ebpf::kHelperGetCurrentPidTgid))
      .Ins(ebpf::CallHelper(ebpf::kHelperKtimeGetNs))  // duplicate
      .Ins(ebpf::Mov64Imm(ebpf::R0, 0))
      .Ins(ebpf::Exit());
  const RequiredContract contract =
      ScanRequiredContract(b.Build().value(), bpf_.helpers());
  ASSERT_EQ(contract.helpers.size(), 2u);
  EXPECT_EQ(contract.helpers[0], ebpf::kHelperKtimeGetNs);
  EXPECT_EQ(contract.helpers[1], ebpf::kHelperGetCurrentPidTgid);
  const KernelVersion expected_min =
      std::max(Spec(ebpf::kHelperKtimeGetNs).introduced,
               Spec(ebpf::kHelperGetCurrentPidTgid).introduced);
  EXPECT_EQ(contract.min_version, expected_min);
  EXPECT_FALSE(contract.requires_privilege);
  EXPECT_FALSE(contract.calls_writing_helper);
  EXPECT_TRUE(contract.well_typed());
}

TEST_F(PermcheckTest, ScanFlagsPrivilegeAndWritingHelpers) {
  ebpf::ProgramBuilder b("audit", ProgType::kLsm);
  b.Ins(ebpf::StMemImm(ebpf::BPF_DW, ebpf::R10, -8, 0x41))
      .Ins(ebpf::Mov64Reg(ebpf::R1, ebpf::R10))
      .Ins(ebpf::Alu64Imm(ebpf::BPF_ADD, ebpf::R1, -8))
      .Ins(ebpf::Mov64Imm(ebpf::R2, 8))
      .Ins(ebpf::CallHelper(ebpf::kHelperLsmAudit))
      .Ins(ebpf::Mov64Imm(ebpf::R0, 0))
      .Ins(ebpf::Exit());
  const RequiredContract contract =
      ScanRequiredContract(b.Build().value(), bpf_.helpers());
  EXPECT_TRUE(contract.requires_privilege) << "lsm is a privileged type";
  EXPECT_TRUE(contract.calls_writing_helper) << "bpf_lsm_audit mutates";
  EXPECT_EQ(contract.min_version, (KernelVersion{6, 12}));
  EXPECT_TRUE(contract.well_typed());
}

TEST_F(PermcheckTest, ScanReportsFamilyViolationsAndUnknownHelpers) {
  ebpf::ProgramBuilder b("bad", ProgType::kXdp);
  b.Ins(ebpf::CallHelper(ebpf::kHelperSchedYield))
      .Ins(ebpf::CallHelper(9999))
      .Ins(ebpf::Mov64Imm(ebpf::R0, 0))
      .Ins(ebpf::Exit());
  const RequiredContract contract =
      ScanRequiredContract(b.Build().value(), bpf_.helpers());
  EXPECT_FALSE(contract.well_typed());
  ASSERT_EQ(contract.violations.size(), 2u);
  EXPECT_NE(contract.violations[0].find(
                "sched family helper bpf_sched_yield#236 not callable "
                "from xdp programs"),
            std::string::npos)
      << contract.violations[0];
  EXPECT_NE(contract.violations[1].find("unknown helper #9999"),
            std::string::npos)
      << contract.violations[1];
}

TEST_F(PermcheckTest, ScanSkipsLdImm64SecondSlot) {
  // The wide immediate's second slot has opcode 0 and an arbitrary imm; a
  // scanner that fails to skip it could misread the payload as a call.
  ebpf::ProgramBuilder b("wide", ProgType::kSocketFilter);
  b.Ins(ebpf::LdImm64(ebpf::R1,
                      (static_cast<xbase::u64>(ebpf::kHelperSchedYield)
                       << 32) |
                          ebpf::kHelperSchedYield))
      .Ins(ebpf::Mov64Imm(ebpf::R0, 0))
      .Ins(ebpf::Exit());
  const RequiredContract contract =
      ScanRequiredContract(b.Build().value(), bpf_.helpers());
  EXPECT_TRUE(contract.helpers.empty());
  EXPECT_TRUE(contract.well_typed());
}

// ---- registry consistency + helper-name table ------------------------------

TEST_F(PermcheckTest, DefaultRegistryValidates) {
  EXPECT_TRUE(bpf_.helpers().Validate().ok());
}

TEST_F(PermcheckTest, ValidateCatchesContractlessSpecs) {
  ebpf::HelperRegistry registry;
  ebpf::HelperSpec spec;
  spec.id = 7001;
  spec.name = "bpf_test_no_version";
  spec.entry_func = "bpf_test_no_version";
  // introduced left at {}: the version gate would admit it everywhere.
  ASSERT_TRUE(registry
                  .Register(spec,
                            [](ebpf::HelperCtx&, const ebpf::HelperArgs&)
                                -> xbase::Result<xbase::u64> { return 0; })
                  .ok());
  const xbase::Status status = registry.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("no introduction version"),
            std::string::npos)
      << status.message();
}

TEST_F(PermcheckTest, ValidateCatchesArgGapAfterNone) {
  ebpf::HelperRegistry registry;
  ebpf::HelperSpec spec;
  spec.id = 7002;
  spec.name = "bpf_test_arg_gap";
  spec.entry_func = "bpf_test_arg_gap";
  spec.introduced = KernelVersion{6, 1};
  spec.args = {ebpf::ArgType::kScalar, ebpf::ArgType::kNone,
               ebpf::ArgType::kScalar, ebpf::ArgType::kNone,
               ebpf::ArgType::kNone};
  ASSERT_TRUE(registry
                  .Register(spec,
                            [](ebpf::HelperCtx&, const ebpf::HelperArgs&)
                                -> xbase::Result<xbase::u64> { return 0; })
                  .ok());
  EXPECT_FALSE(registry.Validate().ok());
}

TEST_F(PermcheckTest, DisassemblerNameTableMatchesRegistry) {
  // xcheck prints helper calls by name through HelperName(); a helper
  // registered without a disassembler entry would print as a bare id and
  // silently drift out of the census reports.
  for (const ebpf::HelperSpec* spec : bpf_.helpers().AllSpecs()) {
    EXPECT_EQ(ebpf::HelperName(spec->id), spec->name)
        << "helper #" << spec->id;
  }
  EXPECT_TRUE(ebpf::HelperName(0xdead).empty());
}

// ---- version-gate matrix ---------------------------------------------------

TEST_F(PermcheckTest, ContractVersionGateFlipsExactlyAtIntroduction) {
  // Static half: for every helper, the contract's verdict from its own
  // admitting program type flips from version-denied to allowed exactly at
  // the declared introduction version — including the predecessor minor,
  // which ProbeVersionsFor guarantees is probed.
  for (const ebpf::HelperSpec* spec : bpf_.helpers().AllSpecs()) {
    const ProgType type = ebpf::AdmittingProgType(spec->family);
    bool saw_predecessor = false;
    for (KernelVersion version : analysis::ProbeVersionsFor(*spec)) {
      const ExpectedAdmission a =
          ExpectedAdmissionFor(*spec, type, /*privileged=*/true, version);
      const bool before_gate = spec->introduced > version;
      EXPECT_EQ(a.allow, !before_gate)
          << spec->name << " at " << version.ToString();
      EXPECT_EQ(a.reason == PermReason::kVersion, before_gate)
          << spec->name << " at " << version.ToString();
      if (before_gate) {
        saw_predecessor = true;
      }
    }
    if (spec->introduced > KernelVersion{3, 19}) {
      EXPECT_TRUE(saw_predecessor)
          << spec->name << ": the probe axis must include a version below "
          << "the gate or an off-by-one defect is invisible";
    }
  }
}

TEST_F(PermcheckTest, EnforcedVersionGatesFlipExactlyAtIntroduction) {
  // Dynamic half: the verifier gate and the runtime dispatch gate, probed
  // for every helper at every version on the probe axis, must agree with
  // the contract cell for cell — admission flips at the declared gate and
  // nowhere else, on both enforcement layers.
  for (const ebpf::HelperSpec* spec : bpf_.helpers().AllSpecs()) {
    const ProgType type = ebpf::AdmittingProgType(spec->family);
    for (KernelVersion version : analysis::ProbeVersionsFor(*spec)) {
      const bool before_gate = spec->introduced > version;
      const analysis::GateObservation verifier =
          analysis::ProbeVerifierGate(bpf_, spec->id, type, version);
      EXPECT_EQ(verifier == analysis::GateObservation::kVersionDenied,
                before_gate)
          << spec->name << " at " << version.ToString() << ": verifier saw "
          << analysis::GateObservationName(verifier);
      EXPECT_EQ(analysis::ProbeRuntimeGateDenies(bpf_, spec->id, type,
                                                 version),
                before_gate)
          << spec->name << " at " << version.ToString() << " (dispatch)";
    }
  }
}

}  // namespace
}  // namespace staticcheck

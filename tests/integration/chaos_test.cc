// Chaos integration tests: the deterministic storm from src/analysis/chaos
// run at full length under three documented seeds. Each run drives ~10k
// randomized load/attach/invoke/fault-toggle/detach/clock ops with every
// Table 1 defect enabled at some point, and the harness asserts the
// survival invariants after every single op. A failure here prints the
// seed; `tools/chaos --seed N --ops M` replays it bit-identically.
#include <gtest/gtest.h>

#include "src/analysis/chaos.h"

namespace {

// The three documented seeds (see EXPERIMENTS.md). Chosen arbitrarily and
// then frozen: determinism means these exact runs are what CI repeats.
class ChaosSeedTest : public ::testing::TestWithParam<xbase::u64> {};

TEST_P(ChaosSeedTest, TenThousandOpsEveryInvariantHolds) {
  analysis::ChaosConfig config;
  config.seed = GetParam();
  config.ops = 10000;
  SCOPED_TRACE(::testing::Message()
               << "replay: tools/chaos --seed " << config.seed << " --ops "
               << config.ops);
  const analysis::ChaosReport report = analysis::RunChaos(config);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.stats.ops_executed, config.ops);
  EXPECT_TRUE(report.all_faults_covered())
      << "only " << report.stats.faults_ever_injected << " of "
      << report.stats.fault_catalog_size << " defects were ever enabled";
  // The storm must actually exercise the containment machinery, not idle
  // around it: failures charged, breakers tripped, oopses contained.
  EXPECT_GT(report.stats.fires, 1000u);
  EXPECT_GT(report.stats.supervisor_failures, 0u);
  EXPECT_GT(report.stats.supervisor_trips, 0u);
  EXPECT_GT(report.stats.oopses_contained, 0u);
}

INSTANTIATE_TEST_SUITE_P(DocumentedSeeds, ChaosSeedTest,
                         ::testing::Values(1, 42, 1337));

TEST(ChaosDeterminism, SameSeedSameRun) {
  analysis::ChaosConfig config;
  config.seed = 42;
  config.ops = 1500;
  const analysis::ChaosReport a = analysis::RunChaos(config);
  const analysis::ChaosReport b = analysis::RunChaos(config);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.stats.fires, b.stats.fires);
  EXPECT_EQ(a.stats.attachments_served, b.stats.attachments_served);
  EXPECT_EQ(a.stats.attachments_failed, b.stats.attachments_failed);
  EXPECT_EQ(a.stats.supervisor_trips, b.stats.supervisor_trips);
  EXPECT_EQ(a.stats.supervisor_evictions, b.stats.supervisor_evictions);
  EXPECT_EQ(a.stats.final_sim_time_ns, b.stats.final_sim_time_ns);
}

TEST(ChaosCalmMode, NoFaultTogglingStillSurvives) {
  analysis::ChaosConfig config;
  config.seed = 7;
  config.ops = 3000;
  config.toggle_faults = false;
  const analysis::ChaosReport report = analysis::RunChaos(config);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.stats.fault_toggles, 0u);
}

}  // namespace

// Integration tests binding the paper's headline §2.2 results into the test
// suite: the verified-program kernel crash, the RCU-stall termination
// failure, their safex counterparts, and cross-framework behavioural parity
// on a shared workload.
#include <gtest/gtest.h>

#include "src/analysis/workloads.h"
#include "src/core/hooks.h"
#include "src/core/toolchain.h"
#include "src/ebpf/interp.h"
#include "src/xbase/bytes.h"

namespace {

using xbase::u64;
using xbase::u8;

struct Sec22Rig {
  Sec22Rig() : bpf(kernel), loader(bpf) {
    EXPECT_TRUE(kernel.BootstrapWorkload().ok());
    runtime = safex::Runtime::Create(kernel, bpf).value();
    key = std::make_unique<crypto::SigningKey>(
        crypto::SigningKey::FromPassphrase("it", "pw"));
    (void)runtime->keyring().Enroll(*key);
    ext_loader = std::make_unique<safex::ExtLoader>(*runtime);
  }

  simkern::Kernel kernel;
  ebpf::Bpf bpf;
  ebpf::Loader loader;
  std::unique_ptr<safex::Runtime> runtime;
  std::unique_ptr<crypto::SigningKey> key;
  std::unique_ptr<safex::ExtLoader> ext_loader;
};

TEST(Sec22Test, VerifiedProgramCrashesKernelThroughSysBpf) {
  Sec22Rig rig;
  auto prog = analysis::BuildSysBpfNullCrash();
  auto id = rig.loader.Load(prog.value());
  ASSERT_TRUE(id.ok()) << "the verifier must accept it: "
                       << id.status().ToString();
  auto loaded = rig.loader.Find(id.value());
  auto ctx = rig.kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                  simkern::RegionKind::kKernelData, "ctx");
  auto result =
      ebpf::Execute(rig.bpf, *loaded.value(), ctx.value(), {}, &rig.loader);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(rig.kernel.crashed());
  ASSERT_FALSE(rig.kernel.oopses().empty());
  EXPECT_NE(rig.kernel.oopses()[0].message.find("null-deref"),
            std::string::npos);
}

TEST(Sec22Test, SafexWrapperCannotCrashAndStillWorks) {
  Sec22Rig rig;
  class Probe : public safex::Extension {
   public:
    xbase::Result<u64> Run(safex::Ctx& ctx) override {
      safex::Slice dead;
      if (ctx.SysBpfProgLoad(dead).ok()) {
        return u64{1};  // must not happen
      }
      auto insns = ctx.Alloc(16);
      XB_RETURN_IF_ERROR(insns.status());
      XB_RETURN_IF_ERROR(ctx.SysBpfProgLoad(insns.value()).status());
      return u64{0};
    }
  } probe;
  const auto outcome = rig.runtime->Invoke(
      probe, {safex::Capability::kSysBpf, safex::Capability::kDynAlloc}, {});
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.ret, 0u);
  EXPECT_FALSE(rig.kernel.crashed());
}

TEST(Sec22Test, NestedLoopRuntimeScalesLinearlyWithIters) {
  Sec22Rig rig;
  ebpf::MapSpec spec;
  spec.type = ebpf::MapType::kArray;
  spec.key_size = 4;
  spec.value_size = 8;
  spec.max_entries = 4;
  spec.name = "loop";
  const int fd = rig.bpf.maps().Create(spec).value();
  auto ctx = rig.kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                  simkern::RegionKind::kKernelData, "ctx");

  u64 prev_time = 0;
  for (const xbase::u32 iters : {32u, 64u, 128u}) {
    auto prog = analysis::BuildNestedLoopStall(fd, 2, iters);
    auto id = rig.loader.Load(prog.value());
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    auto loaded = rig.loader.Find(id.value());
    auto result = ebpf::Execute(rig.bpf, *loaded.value(), ctx.value(), {},
                                &rig.loader);
    ASSERT_TRUE(result.ok());
    const u64 elapsed = result.value().stats.sim_time_charged_ns;
    if (prev_time != 0) {
      // Doubling iters at nesting 2 roughly quadruples runtime.
      EXPECT_NEAR(static_cast<double>(elapsed) /
                      static_cast<double>(prev_time),
                  4.0, 0.8);
    }
    prev_time = elapsed;
  }
}

TEST(Sec22Test, RcuStallReproducesUnderEbpf) {
  Sec22Rig rig;
  ebpf::MapSpec spec;
  spec.type = ebpf::MapType::kArray;
  spec.key_size = 4;
  spec.value_size = 8;
  spec.max_entries = 4;
  spec.name = "loop";
  const int fd = rig.bpf.maps().Create(spec).value();
  auto prog = analysis::BuildNestedLoopStall(fd, 3, 256);
  auto id = rig.loader.Load(prog.value());
  ASSERT_TRUE(id.ok());
  auto loaded = rig.loader.Find(id.value());
  auto ctx = rig.kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                  simkern::RegionKind::kKernelData, "ctx");
  ebpf::ExecOptions opts;
  opts.cost_multiplier = 1000;  // documented time compression
  opts.max_insns = 10'000'000;
  (void)ebpf::Execute(rig.bpf, *loaded.value(), ctx.value(), opts,
                      &rig.loader);
  ASSERT_FALSE(rig.kernel.rcu().stalls().empty());
  EXPECT_GE(rig.kernel.rcu().stalls()[0].held_for_ns,
            simkern::kRcuStallTimeoutNs);
}

TEST(Sec22Test, SafexWatchdogPreventsTheStall) {
  Sec22Rig rig;
  ebpf::MapSpec spec;
  spec.type = ebpf::MapType::kArray;
  spec.key_size = 4;
  spec.value_size = 8;
  spec.max_entries = 4;
  spec.name = "loop";
  const int fd = rig.bpf.maps().Create(spec).value();
  class Spinner : public safex::Extension {
   public:
    explicit Spinner(int fd) : fd_(fd) {}
    xbase::Result<u64> Run(safex::Ctx& ctx) override {
      auto map = ctx.Map(fd_);
      XB_RETURN_IF_ERROR(map.status());
      u8 value[8] = {};
      for (;;) {
        XB_RETURN_IF_ERROR(map.value().UpdateIndex(0, value));
      }
    }

   private:
    int fd_;
  } spinner(fd);
  const auto outcome =
      rig.runtime->Invoke(spinner, {safex::Capability::kMapAccess}, {});
  EXPECT_TRUE(outcome.panicked);
  EXPECT_TRUE(rig.kernel.rcu().stalls().empty());
  EXPECT_LE(outcome.sim_time_ns, 2 * safex::kDefaultWatchdogBudgetNs);
  EXPECT_FALSE(rig.kernel.rcu().InCriticalSection());
}

// Cross-framework parity: the packet-counter policy must produce identical
// verdicts and identical map contents in both frameworks for a shared
// packet stream.
TEST(Sec22Test, FrameworkParityOnPacketWorkload) {
  Sec22Rig rig;
  ebpf::MapSpec spec;
  spec.type = ebpf::MapType::kArray;
  spec.key_size = 4;
  spec.value_size = 8;
  spec.max_entries = 4;
  spec.name = "ebpf-side";
  const int ebpf_fd = rig.bpf.maps().Create(spec).value();
  spec.name = "safex-side";
  const int safex_fd = rig.bpf.maps().Create(spec).value();

  auto prog_id =
      rig.loader.Load(analysis::BuildPacketCounter(ebpf_fd).value());
  ASSERT_TRUE(prog_id.ok());
  auto loaded = rig.loader.Find(prog_id.value());

  class Filter : public safex::Extension {
   public:
    explicit Filter(int fd) : fd_(fd) {}
    xbase::Result<u64> Run(safex::Ctx& ctx) override {
      auto packet = ctx.Packet();
      XB_RETURN_IF_ERROR(packet.status());
      if (packet.value().size() < 14) {
        return u64{1};
      }
      auto proto = packet.value().ReadU8(12);
      XB_RETURN_IF_ERROR(proto.status());
      const xbase::u32 klass = proto.value() & 3;
      auto map = ctx.Map(fd_);
      XB_RETURN_IF_ERROR(map.status());
      auto slot = map.value().LookupIndex(klass);
      XB_RETURN_IF_ERROR(slot.status());
      auto count = slot.value().ReadU64(0);
      XB_RETURN_IF_ERROR(count.status());
      XB_RETURN_IF_ERROR(slot.value().WriteU64(0, count.value() + 1));
      return klass == 3 ? u64{1} : u64{2};
    }

   private:
    int fd_;
  } filter(safex_fd);

  for (int i = 0; i < 32; ++i) {
    u8 payload[20] = {};
    payload[12] = static_cast<u8>(i);
    auto skb = rig.kernel.net().CreateSkBuff(rig.kernel.mem(), payload);
    auto ebpf_result = ebpf::Execute(rig.bpf, *loaded.value(),
                                     skb.value().meta_addr, {}, &rig.loader);
    safex::InvokeOptions opts;
    opts.skb_meta = skb.value().meta_addr;
    auto safex_outcome = rig.runtime->Invoke(
        filter,
        {safex::Capability::kPacketAccess, safex::Capability::kMapAccess},
        opts);
    ASSERT_TRUE(ebpf_result.ok());
    ASSERT_TRUE(safex_outcome.status.ok());
    EXPECT_EQ(ebpf_result.value().r0, safex_outcome.ret)
        << "verdict parity at packet " << i;
  }

  // Map contents identical.
  for (xbase::u32 klass = 0; klass < 4; ++klass) {
    u8 keybuf[4];
    xbase::StoreLe32(keybuf, klass);
    auto a = rig.bpf.maps().Find(ebpf_fd).value()->LookupAddr(rig.kernel,
                                                              keybuf);
    auto b = rig.bpf.maps().Find(safex_fd).value()->LookupAddr(rig.kernel,
                                                               keybuf);
    EXPECT_EQ(rig.kernel.mem().ReadU64(a.value()).value(),
              rig.kernel.mem().ReadU64(b.value()).value())
        << "class " << klass;
  }
}

}  // namespace

// Map substrate tests: CRUD semantics per map type, update flags, the
// use-after-free behaviour of deleted hash entries, ring-buffer
// producer/consumer discipline, and the injectable array-overflow defect.
#include <gtest/gtest.h>

#include "src/ebpf/bpf.h"
#include "src/xbase/bytes.h"

namespace ebpf {
namespace {

class MapsTest : public ::testing::Test {
 protected:
  MapsTest() : bpf_(kernel_) {}

  int Create(MapType type, u32 key_size, u32 value_size, u32 entries) {
    MapSpec spec;
    spec.type = type;
    spec.key_size = key_size;
    spec.value_size = value_size;
    spec.max_entries = entries;
    spec.name = "m";
    auto fd = bpf_.maps().Create(spec);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    return fd.value_or(-1);
  }

  Map* Find(int fd) { return bpf_.maps().Find(fd).value(); }

  static std::vector<u8> Key32(u32 key) {
    std::vector<u8> out(4);
    xbase::StoreLe32(out.data(), key);
    return out;
  }
  static std::vector<u8> Value64(u64 value) {
    std::vector<u8> out(8);
    xbase::StoreLe64(out.data(), value);
    return out;
  }

  u64 ReadValue(simkern::Addr addr) {
    return kernel_.mem().ReadU64(addr).value();
  }

  simkern::Kernel kernel_;
  Bpf bpf_;
};

// ---- array ----------------------------------------------------------------------

TEST_F(MapsTest, ArrayElementsAlwaysExist) {
  const int fd = Create(MapType::kArray, 4, 8, 4);
  Map* map = Find(fd);
  // Fresh elements are zero and addressable.
  auto addr = map->LookupAddr(kernel_, Key32(3));
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(ReadValue(addr.value()), 0u);
  ASSERT_TRUE(map->Update(kernel_, Key32(3), Value64(99), kBpfAny).ok());
  EXPECT_EQ(ReadValue(addr.value()), 99u);
}

TEST_F(MapsTest, ArrayIndexOutOfRange) {
  const int fd = Create(MapType::kArray, 4, 8, 4);
  EXPECT_EQ(Find(fd)->LookupAddr(kernel_, Key32(4)).status().code(),
            xbase::Code::kNotFound);
}

TEST_F(MapsTest, ArrayRejectsDeleteAndNoExist) {
  const int fd = Create(MapType::kArray, 4, 8, 4);
  EXPECT_FALSE(Find(fd)->Delete(kernel_, Key32(0)).ok());
  EXPECT_EQ(
      Find(fd)->Update(kernel_, Key32(0), Value64(1), kBpfNoExist).code(),
      xbase::Code::kAlreadyExists);
}

TEST_F(MapsTest, ArrayRejectsWrongKeyOrValueSize) {
  const int fd = Create(MapType::kArray, 4, 8, 4);
  std::vector<u8> bad_key(8, 0);
  EXPECT_FALSE(Find(fd)->LookupAddr(kernel_, bad_key).ok());
  std::vector<u8> bad_value(4, 0);
  EXPECT_FALSE(Find(fd)->Update(kernel_, Key32(0), bad_value, kBpfAny).ok());
}

TEST_F(MapsTest, ArrayOverflowDefectAliasesElementZero) {
  const int fd = Create(MapType::kArray, 4, 8, 8200);
  auto* array = dynamic_cast<ArrayMap*>(Find(fd));
  ASSERT_NE(array, nullptr);
  array->InjectIndexOverflow(true);
  // index 8192 * 8 bytes = 65536 wraps to 0 at 16 bits.
  ASSERT_TRUE(array->Update(kernel_, Key32(8192), Value64(0x41), kBpfAny)
                  .ok());
  auto elem0 = array->LookupAddr(kernel_, Key32(0));
  EXPECT_EQ(ReadValue(elem0.value()), 0x41u) << "corruption must alias";
  array->InjectIndexOverflow(false);
  ASSERT_TRUE(array->Update(kernel_, Key32(8192), Value64(0x42), kBpfAny)
                  .ok());
  EXPECT_EQ(ReadValue(elem0.value()), 0x41u) << "fixed path writes high";
}

// ---- hash -----------------------------------------------------------------------

TEST_F(MapsTest, HashInsertLookupDelete) {
  const int fd = Create(MapType::kHash, 8, 8, 4);
  Map* map = Find(fd);
  std::vector<u8> key(8, 0xaa);
  EXPECT_EQ(map->LookupAddr(kernel_, key).status().code(),
            xbase::Code::kNotFound);
  ASSERT_TRUE(map->Update(kernel_, key, Value64(7), kBpfAny).ok());
  EXPECT_EQ(map->entry_count(), 1u);
  EXPECT_EQ(ReadValue(map->LookupAddr(kernel_, key).value()), 7u);
  ASSERT_TRUE(map->Delete(kernel_, key).ok());
  EXPECT_EQ(map->entry_count(), 0u);
  EXPECT_EQ(map->Delete(kernel_, key).code(), xbase::Code::kNotFound);
}

TEST_F(MapsTest, HashUpdateFlagSemantics) {
  const int fd = Create(MapType::kHash, 4, 8, 4);
  Map* map = Find(fd);
  EXPECT_EQ(map->Update(kernel_, Key32(1), Value64(1), kBpfExist).code(),
            xbase::Code::kNotFound);
  ASSERT_TRUE(map->Update(kernel_, Key32(1), Value64(1), kBpfNoExist).ok());
  EXPECT_EQ(map->Update(kernel_, Key32(1), Value64(2), kBpfNoExist).code(),
            xbase::Code::kAlreadyExists);
  ASSERT_TRUE(map->Update(kernel_, Key32(1), Value64(2), kBpfExist).ok());
}

TEST_F(MapsTest, HashCapacityEnforced) {
  const int fd = Create(MapType::kHash, 4, 8, 2);
  Map* map = Find(fd);
  ASSERT_TRUE(map->Update(kernel_, Key32(1), Value64(1), kBpfAny).ok());
  ASSERT_TRUE(map->Update(kernel_, Key32(2), Value64(2), kBpfAny).ok());
  EXPECT_EQ(map->Update(kernel_, Key32(3), Value64(3), kBpfAny).code(),
            xbase::Code::kResourceExhausted);
  // Overwriting an existing key still works at capacity.
  EXPECT_TRUE(map->Update(kernel_, Key32(1), Value64(9), kBpfAny).ok());
}

TEST_F(MapsTest, DeletedHashEntryAddressFaults) {
  // The use-after-free shape: a stale value pointer faults once the entry
  // is deleted (its region is unmapped).
  const int fd = Create(MapType::kHash, 4, 8, 4);
  Map* map = Find(fd);
  ASSERT_TRUE(map->Update(kernel_, Key32(1), Value64(1), kBpfAny).ok());
  const simkern::Addr stale = map->LookupAddr(kernel_, Key32(1)).value();
  ASSERT_TRUE(map->Delete(kernel_, Key32(1)).ok());
  u8 buf[8];
  EXPECT_EQ(kernel_.mem().ReadChecked(stale, buf, 0).code(),
            xbase::Code::kKernelFault);
}

// ---- per-CPU array ------------------------------------------------------------------

TEST_F(MapsTest, PercpuSlotsAreIndependent) {
  const int fd = Create(MapType::kPercpuArray, 4, 8, 2);
  auto* map = dynamic_cast<PercpuArrayMap*>(Find(fd));
  ASSERT_NE(map, nullptr);
  const auto cpu0 = map->LookupAddrForCpu(Key32(1), 0);
  const auto cpu1 = map->LookupAddrForCpu(Key32(1), 1);
  ASSERT_TRUE(cpu0.ok());
  ASSERT_TRUE(cpu1.ok());
  EXPECT_NE(cpu0.value(), cpu1.value());
  ASSERT_TRUE(kernel_.mem().WriteU64(cpu0.value(), 111).ok());
  EXPECT_EQ(ReadValue(cpu1.value()), 0u);
  EXPECT_FALSE(map->LookupAddrForCpu(Key32(0), 99).ok());
}

TEST_F(MapsTest, PercpuLookupAddrRoutesToExecutingCpu) {
  // Regression: LookupAddr used to hardcode cpu 0, so every executing
  // CPU aliased onto the same slot.
  const int fd = Create(MapType::kPercpuArray, 4, 8, 2);
  auto* map = dynamic_cast<PercpuArrayMap*>(Find(fd));
  ASSERT_NE(map, nullptr);
  kernel_.set_current_cpu(0);
  const simkern::Addr cpu0_addr = map->LookupAddr(kernel_, Key32(1)).value();
  kernel_.set_current_cpu(1);
  const simkern::Addr cpu1_addr = map->LookupAddr(kernel_, Key32(1)).value();
  kernel_.set_current_cpu(0);
  EXPECT_NE(cpu0_addr, cpu1_addr);
  EXPECT_EQ(cpu0_addr, map->LookupAddrForCpu(Key32(1), 0).value());
  EXPECT_EQ(cpu1_addr, map->LookupAddrForCpu(Key32(1), 1).value());
}

// ---- prog array ---------------------------------------------------------------------

TEST_F(MapsTest, ProgArrayStoresIds) {
  const int fd = Create(MapType::kProgArray, 4, 4, 4);
  auto* map = dynamic_cast<ProgArrayMap*>(Find(fd));
  ASSERT_NE(map, nullptr);
  EXPECT_FALSE(map->ProgIdAt(0).has_value());
  std::vector<u8> value(4);
  xbase::StoreLe32(value.data(), 55);
  ASSERT_TRUE(map->Update(kernel_, Key32(0), value, kBpfAny).ok());
  EXPECT_EQ(map->ProgIdAt(0).value(), 55u);
  EXPECT_EQ(map->entry_count(), 1u);
  ASSERT_TRUE(map->Delete(kernel_, Key32(0)).ok());
  EXPECT_FALSE(map->ProgIdAt(0).has_value());
  // Direct reads of prog-array values are forbidden.
  EXPECT_EQ(map->LookupAddr(kernel_, Key32(0)).status().code(),
            xbase::Code::kPermissionDenied);
}

// ---- ring buffer ----------------------------------------------------------------------

TEST_F(MapsTest, RingbufSizeMustBePowerOfTwo) {
  MapSpec spec;
  spec.type = MapType::kRingBuf;
  spec.max_entries = 100;  // not a power of two
  spec.name = "rb";
  EXPECT_FALSE(bpf_.maps().Create(spec).ok());
}

TEST_F(MapsTest, RingbufOutputConsumeRoundTrip) {
  const int fd = Create(MapType::kRingBuf, 0, 0, 256);
  auto* ringbuf = dynamic_cast<RingBufMap*>(Find(fd));
  ASSERT_NE(ringbuf, nullptr);
  const u8 record[] = {1, 2, 3, 4};
  ASSERT_TRUE(ringbuf->Output(kernel_, record).ok());
  auto consumed = ringbuf->Consume(kernel_);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(consumed.value(), std::vector<u8>({1, 2, 3, 4}));
  EXPECT_EQ(ringbuf->Consume(kernel_).status().code(),
            xbase::Code::kNotFound);
}

TEST_F(MapsTest, RingbufReserveCommitDiscard) {
  const int fd = Create(MapType::kRingBuf, 0, 0, 64);
  auto* ringbuf = dynamic_cast<RingBufMap*>(Find(fd));
  auto rec = ringbuf->Reserve(kernel_, 16);
  ASSERT_TRUE(rec.ok());
  // Uncommitted records are invisible to the consumer.
  EXPECT_FALSE(ringbuf->Consume(kernel_).ok());
  ASSERT_TRUE(kernel_.mem().WriteU64(rec.value(), 0x1234).ok());
  ASSERT_TRUE(ringbuf->Commit(rec.value()).ok());
  EXPECT_FALSE(ringbuf->Commit(rec.value()).ok()) << "double commit";
  auto consumed = ringbuf->Consume(kernel_);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(xbase::LoadLe64(consumed.value().data()), 0x1234u);

  auto discarded = ringbuf->Reserve(kernel_, 16);
  ASSERT_TRUE(discarded.ok());
  ASSERT_TRUE(ringbuf->Discard(discarded.value()).ok());
  EXPECT_FALSE(ringbuf->Consume(kernel_).ok());
}

TEST_F(MapsTest, RingbufFullDrops) {
  const int fd = Create(MapType::kRingBuf, 0, 0, 64);
  auto* ringbuf = dynamic_cast<RingBufMap*>(Find(fd));
  ASSERT_TRUE(ringbuf->Reserve(kernel_, 48).ok());
  EXPECT_EQ(ringbuf->Reserve(kernel_, 32).status().code(),
            xbase::Code::kResourceExhausted);
  EXPECT_EQ(ringbuf->dropped(), 1u);
}

// ---- task storage -----------------------------------------------------------------------

TEST_F(MapsTest, TaskStorageGetForTask) {
  ASSERT_TRUE(kernel_.BootstrapWorkload().ok());
  const int fd = Create(MapType::kTaskStorage, 4, 16, 8);
  auto* storage = dynamic_cast<TaskStorageMap*>(Find(fd));
  ASSERT_NE(storage, nullptr);
  const simkern::Task* task = kernel_.tasks().current();

  EXPECT_EQ(storage->GetForTask(kernel_, task->struct_addr, false)
                .status()
                .code(),
            xbase::Code::kNotFound);
  auto created = storage->GetForTask(kernel_, task->struct_addr, true);
  ASSERT_TRUE(created.ok());
  auto again = storage->GetForTask(kernel_, task->struct_addr, false);
  EXPECT_EQ(created.value(), again.value());
  EXPECT_EQ(storage->entry_count(), 1u);
}

TEST_F(MapsTest, TaskStorageNullOwnerFaults) {
  const int fd = Create(MapType::kTaskStorage, 4, 16, 8);
  auto* storage = dynamic_cast<TaskStorageMap*>(Find(fd));
  const auto result = storage->GetForTask(kernel_, 0, true);
  EXPECT_EQ(result.status().code(), xbase::Code::kKernelFault);
}

// ---- table ---------------------------------------------------------------------------------

TEST_F(MapsTest, TableLifecycle) {
  const int fd = Create(MapType::kArray, 4, 8, 1);
  EXPECT_TRUE(bpf_.maps().Find(fd).ok());
  EXPECT_EQ(bpf_.maps().Find(999).status().code(), xbase::Code::kNotFound);
  ASSERT_TRUE(bpf_.maps().Destroy(fd).ok());
  EXPECT_FALSE(bpf_.maps().Find(fd).ok());
}

}  // namespace
}  // namespace ebpf

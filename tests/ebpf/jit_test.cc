// JIT translation tests: the image must be semantically identical to the
// source (differential fuzz over random verified programs), and the
// injectable branch defect must corrupt exactly the long branches.
#include <gtest/gtest.h>

#include "src/analysis/workloads.h"
#include "src/ebpf/interp.h"
#include "src/ebpf/jit.h"
#include "src/ebpf/loader.h"
#include "src/xbase/rand.h"

namespace ebpf {
namespace {

TEST(JitTest, CleanTranslationIsIdentity) {
  FaultRegistry faults;
  auto prog = analysis::BuildCountedLoop(16);
  auto image = JitCompile(prog.value(), faults);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image.value().image.insns, prog.value().insns);
  EXPECT_EQ(image.value().stats.branches_corrupted, 0u);
  EXPECT_GT(image.value().stats.branches_relocated, 0u);
}

TEST(JitTest, DefectCorruptsOnlyLongBranches) {
  FaultRegistry faults;
  faults.Inject(kFaultJitBranchOffByOne);
  auto victim = analysis::BuildJitHijackVictim();
  auto image = JitCompile(victim.value(), faults);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image.value().stats.branches_corrupted, 1u);
  // Short-branch programs are untouched even with the defect live.
  auto short_prog = analysis::BuildCountedLoop(4);
  auto short_image = JitCompile(short_prog.value(), faults);
  EXPECT_EQ(short_image.value().stats.branches_corrupted, 0u);
  EXPECT_EQ(short_image.value().image.insns, short_prog.value().insns);
}

// Differential property: for every random program the verifier accepts,
// the JITed image must compute the same r0 as the source instructions
// (run by loading the source as its own image).
class JitDifferentialTest : public ::testing::TestWithParam<xbase::u64> {};

TEST_P(JitDifferentialTest, ImageMatchesSourceSemantics) {
  xbase::Rng rng(GetParam());
  SCOPED_TRACE(::testing::Message() << "rng seed " << rng.seed());
  int compared = 0;
  for (int trial = 0; trial < 150; ++trial) {
    simkern::Kernel kernel;
    Bpf bpf(kernel);
    Loader loader(bpf);
    ASSERT_TRUE(kernel.BootstrapWorkload().ok());

    // Random arithmetic/branch programs (reusing the spirit of the
    // verifier soundness generator, arithmetic-only for determinism).
    Program prog;
    prog.name = "jitdiff";
    prog.type = ProgType::kKprobe;
    for (u8 regno = R0; regno <= R9; ++regno) {
      prog.insns.push_back(
          Mov64Imm(regno, static_cast<s32>(rng.NextBelow(1000))));
    }
    const xbase::u64 body = 6 + rng.NextBelow(20);
    for (xbase::u64 i = 0; i < body; ++i) {
      switch (rng.NextBelow(3)) {
        case 0: {
          static constexpr u8 kOps[] = {BPF_ADD, BPF_SUB, BPF_MUL, BPF_XOR};
          prog.insns.push_back(
              Alu64Reg(kOps[rng.NextBelow(4)],
                       static_cast<u8>(rng.NextBelow(10)),
                       static_cast<u8>(rng.NextBelow(10))));
          break;
        }
        case 1:
          prog.insns.push_back(
              JmpImm(BPF_JGT, static_cast<u8>(rng.NextBelow(10)),
                     static_cast<s32>(rng.NextBelow(512)),
                     static_cast<s16>(1 + rng.NextBelow(4))));
          break;
        default:
          prog.insns.push_back(
              Alu32Imm(BPF_ADD, static_cast<u8>(rng.NextBelow(10)),
                       static_cast<s32>(rng.NextU32() & 0xffff)));
      }
    }
    prog.insns.push_back(Mov64Reg(R0, static_cast<u8>(rng.NextBelow(10))));
    prog.insns.push_back(Exit());

    auto id = loader.Load(prog);
    if (!id.ok()) {
      continue;
    }
    ++compared;
    auto loaded = loader.Find(id.value());
    // The loader's image is the JIT output; build a "source image" too.
    LoadedProgram source = *loaded.value();
    source.image = source.source;

    auto ctx = kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                simkern::RegionKind::kKernelData, "c");
    auto via_jit =
        Execute(bpf, *loaded.value(), ctx.value(), {}, &loader);
    auto via_source = Execute(bpf, source, ctx.value(), {}, &loader);
    ASSERT_TRUE(via_jit.ok());
    ASSERT_TRUE(via_source.ok());
    EXPECT_EQ(via_jit.value().r0, via_source.value().r0)
        << "JIT changed semantics at trial " << trial;
  }
  EXPECT_GT(compared, 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitDifferentialTest,
                         ::testing::Values(3, 77, 901));

}  // namespace
}  // namespace ebpf

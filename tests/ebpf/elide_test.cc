// Directed tests for analysis-driven check elision in the JIT lowering.
// The contract under test (jit.h: JitClaims):
//   - a proven per-pc memory claim strips the runtime bounds check (the
//     unchecked `...U` handler variants appear, checks_elided counts);
//   - absent, unproven, or disabled claims keep every check, and the
//     lowering is then byte-identical to the pre-elision JIT;
//   - the jit.elide_unproven fault is the dispatch-layer defect that
//     elides without a proof;
//   - an injected *verifier* range defect converts into an elided check:
//     the out-of-bounds access that the checked engines catch as an oops
//     completes silently as a wild access — the paper's "buggy verifier
//     ⇒ silent corruption" chain, end to end, bracketed by clean runs.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "src/analysis/workloads.h"
#include "src/ebpf/asm.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/interp.h"
#include "src/ebpf/jit.h"
#include "src/ebpf/loader.h"
#include "src/ebpf/rangetrace.h"

namespace ebpf {
namespace {

using xbase::u32;
using xbase::u64;
using xbase::u8;

// A small verified program with provably-in-bounds memory on every access:
// a stack spill for the key, a map lookup, and a DW load from the value.
Program BuildProvenMemProgram(int fd) {
  ProgramBuilder b("proven", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(LdxMem(BPF_DW, R0, R0, 0))
      .Bind("out")
      .Ins(Exit());
  return b.Build().value();
}

MapSpec SmallArraySpec(u32 value_size) {
  MapSpec spec;
  spec.type = MapType::kArray;
  spec.key_size = 4;
  spec.value_size = value_size;
  spec.max_entries = 1;
  spec.name = "elide";
  return spec;
}

bool OpsIdentical(const DecodedImage& a, const DecodedImage& b) {
  if (a.ops.size() != b.ops.size()) {
    return false;
  }
  for (xbase::usize i = 0; i < a.ops.size(); ++i) {
    const MicroOp& x = a.ops[i];
    const MicroOp& y = b.ops[i];
    if (x.handler != y.handler || x.dst != y.dst || x.src != y.src ||
        x.jump != y.jump || x.imm != y.imm) {
      return false;
    }
  }
  return true;
}

// Claim present → check gone; elision disabled → check kept; and the
// disabled lowering is byte-identical to a claims-free DecodeProgram.
TEST(ElideTest, ProvenClaimStripsChecksAndDisabledLoweringIsIdentical) {
  simkern::Kernel kernel;
  Bpf bpf(kernel);
  Loader loader(bpf);
  ASSERT_TRUE(kernel.BootstrapWorkload().ok());
  const int fd = bpf.maps().Create(SmallArraySpec(8)).value();
  const Program prog = BuildProvenMemProgram(fd);

  LoadOptions on;
  on.elide_checks = true;
  auto elided_id = loader.Load(prog, on);
  ASSERT_TRUE(elided_id.ok()) << elided_id.status().ToString();
  const LoadedProgram* elided = loader.Find(elided_id.value()).value();
  EXPECT_GT(elided->jit.checks_elided, 0u)
      << "every access is provably in bounds; claims must elide";

  LoadOptions off;
  off.elide_checks = false;
  auto kept_id = loader.Load(prog, off);
  ASSERT_TRUE(kept_id.ok());
  const LoadedProgram* kept = loader.Find(kept_id.value()).value();
  EXPECT_EQ(kept->jit.checks_elided, 0u);
  EXPECT_EQ(kept->jit.superblocks, 0u);
  EXPECT_EQ(kept->jit.pairs_fused, 0u);
  EXPECT_TRUE(kept->decoded.sb_ops.empty());
  EXPECT_FALSE(OpsIdentical(elided->decoded, kept->decoded))
      << "elision must actually change the lowered form";

  // Fail-closed baseline: lowering the same post-JIT image without claims
  // reproduces the elision-off image bit for bit.
  const DecodedImage bare =
      DecodeProgram(kept->image, &bpf.helpers(), &bpf.kfuncs());
  EXPECT_TRUE(OpsIdentical(bare, kept->decoded));
  EXPECT_TRUE(bare.sb_ops.empty());
}

// Unit-level fail-closed matrix on a single load: proven claim elides,
// unproven or missing claims keep the check, and the jit.elide_unproven
// defect elides regardless.
TEST(ElideTest, ElisionIsFailClosedPerClaim) {
  Program prog;
  prog.type = ProgType::kKprobe;
  prog.name = "one_load";
  prog.insns = {Mov64Reg(R6, R1), LdxMem(BPF_W, R0, R6, 0), Exit()};
  const u32 mem_pc = 1;
  FaultRegistry no_faults;
  FaultRegistry elide_fault;
  elide_fault.Inject(kFaultJitElideUnproven);

  auto lower = [&](const RangeTrace* verifier, const RangeTrace* staticcheck,
                   const FaultRegistry& faults, JitStats* stats) {
    JitClaims claims;
    claims.verifier = verifier;
    claims.staticcheck = staticcheck;
    return DecodeProgram(prog, nullptr, nullptr, stats, nullptr, &faults,
                         &claims);
  };

  RangeTrace proven;
  proven.mem_only = true;
  proven.Reset(prog.insns.size());
  proven.mem_per_pc[mem_pc].Record(true);

  RangeTrace unproven;
  unproven.mem_only = true;
  unproven.Reset(prog.insns.size());
  unproven.mem_per_pc[mem_pc].Record(true);
  unproven.mem_per_pc[mem_pc].Record(false);  // AND-semantics: one bad path

  JitStats stats;
  DecodedImage lowered = lower(&proven, nullptr, no_faults, &stats);
  EXPECT_EQ(stats.checks_elided, 1u);
  EXPECT_EQ(lowered.ops[mem_pc].handler, static_cast<u16>(UOp::kLdxWU));

  stats = {};
  lowered = lower(&unproven, nullptr, no_faults, &stats);
  EXPECT_EQ(stats.checks_elided, 0u);
  EXPECT_EQ(lowered.ops[mem_pc].handler, static_cast<u16>(UOp::kLdxW));

  // Verifier proves but staticcheck (supplied as defense in depth) does
  // not: the disagreement keeps the check.
  stats = {};
  lowered = lower(&proven, &unproven, no_faults, &stats);
  EXPECT_EQ(stats.checks_elided, 0u);
  EXPECT_EQ(lowered.ops[mem_pc].handler, static_cast<u16>(UOp::kLdxW));

  // Never analysed (seen == false) is not a proof.
  RangeTrace unseen;
  unseen.mem_only = true;
  unseen.Reset(prog.insns.size());
  stats = {};
  lowered = lower(&unseen, nullptr, no_faults, &stats);
  EXPECT_EQ(stats.checks_elided, 0u);

  // The dispatch-layer defect: elides with no proof at all.
  stats = {};
  lowered = lower(&unseen, nullptr, elide_fault, &stats);
  EXPECT_EQ(stats.checks_elided, 1u);
  EXPECT_EQ(lowered.ops[mem_pc].handler, static_cast<u16>(UOp::kLdxWU));
}

// Straight-line runs lower into entry-charged superblocks only when claims
// flow (the same loader option gates both elision and block formation).
TEST(ElideTest, StraightLineLowersIntoSuperblocks) {
  simkern::Kernel kernel;
  Bpf bpf(kernel);
  Loader loader(bpf);
  ASSERT_TRUE(kernel.BootstrapWorkload().ok());
  const Program prog = analysis::BuildStraightLine(200).value();

  LoadOptions on;
  on.elide_checks = true;  // explicit: holds under -DUNTENABLE_NO_ELIDE too
  auto id = loader.Load(prog, on);
  ASSERT_TRUE(id.ok());
  const LoadedProgram* loaded = loader.Find(id.value()).value();
  EXPECT_GT(loaded->jit.superblocks, 0u);
  EXPECT_FALSE(loaded->decoded.sb_ops.empty());

  LoadOptions off;
  off.elide_checks = false;
  auto plain_id = loader.Load(prog, off);
  ASSERT_TRUE(plain_id.ok());
  const LoadedProgram* plain = loader.Find(plain_id.value()).value();
  EXPECT_EQ(plain->jit.superblocks, 0u);
  EXPECT_TRUE(plain->decoded.sb_ops.empty());
}

// The end-to-end witness, bracketed by clean runs: with the verifier's
// jgt_refine_off_by_one defect injected, the wrongly-proven bounds claim
// strips the runtime check, so the out-of-bounds DW read at value+9 (into
// a 16-byte value) completes *silently* on the threaded engine — no oops,
// wild-read counter as the only witness — while the still-checked legacy
// engine catches the same access as a kernel oops. Clean runs before and
// after reject the program outright.
TEST(ElideTest, InjectedRangeFaultConvertsIntoElidedCheckWitness) {
  struct Phase {
    bool inject = false;
    ExecEngine engine = ExecEngine::kThreaded;
  };
  // clean → buggy(threaded) → buggy(legacy) → clean
  const Phase phases[] = {
      {false, ExecEngine::kThreaded},
      {true, ExecEngine::kThreaded},
      {true, ExecEngine::kLegacy},
      {false, ExecEngine::kThreaded},
  };
  for (const Phase& phase : phases) {
    simkern::Kernel kernel;
    Bpf bpf(kernel);
    Loader loader(bpf);
    ASSERT_TRUE(kernel.BootstrapWorkload().ok());
    const int fd = bpf.maps().Create(SmallArraySpec(16)).value();
    // Seed value[0..8) = 9: the runtime index that crosses the region end
    // once the buggy refinement admits it.
    std::array<u8, 16> value{};
    const u64 idx = 9;
    std::memcpy(value.data(), &idx, 8);
    const u32 key = 0;
    Map* map = bpf.maps().Find(fd).value();
    ASSERT_TRUE(map->Update(kernel,
                            std::span<const u8>(
                                reinterpret_cast<const u8*>(&key),
                                sizeof(key)),
                            value, kBpfAny)
                    .ok());
    if (phase.inject) {
      bpf.faults().Inject(kFaultVerifierJgtOffByOne);
    }
    const Program prog = analysis::BuildJgtOffByOneExploit(fd).value();
    LoadOptions on;
    on.elide_checks = true;  // explicit: holds under -DUNTENABLE_NO_ELIDE
    auto id = loader.Load(prog, on);
    if (!phase.inject) {
      EXPECT_FALSE(id.ok()) << "clean verifier must reject the exploit";
      continue;
    }
    ASSERT_TRUE(id.ok()) << "buggy refinement must admit the exploit: "
                         << id.status().ToString();
    const LoadedProgram* loaded = loader.Find(id.value()).value();
    EXPECT_GT(loaded->jit.checks_elided, 0u)
        << "the wrong proof must strip runtime checks";
    auto ctx = kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                simkern::RegionKind::kKernelData, "ctx");
    ExecOptions opts;
    opts.engine = phase.engine;
    auto result = Execute(bpf, *loaded, ctx.value(), opts, &loader);
    if (phase.engine == ExecEngine::kThreaded) {
      // Elided check: the OOB access goes wild, silently.
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_FALSE(kernel.crashed());
      EXPECT_GT(kernel.mem().unchecked_wild_reads(), 0u)
          << "the wild counter is the only witness";
    } else {
      // The legacy engine still runs the check the elision removed: the
      // same access is a caught fault — the contrast IS the demonstration.
      EXPECT_FALSE(result.ok());
      EXPECT_TRUE(kernel.crashed());
      EXPECT_EQ(kernel.mem().unchecked_wild_reads(), 0u);
    }
  }
}

}  // namespace
}  // namespace ebpf

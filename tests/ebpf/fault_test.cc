// Fault-injection integration tests: for every defect in the registry,
// assert the full Table 1 causal chain as test expectations — defect off:
// rejected or contained; defect on: a verified program violates the
// property. (The tab1_bug_census bench prints the same runs as a report.)
#include <gtest/gtest.h>

#include "src/analysis/workloads.h"
#include "src/ebpf/interp.h"
#include "src/ebpf/loader.h"

namespace ebpf {
namespace {

struct RunOutcome {
  bool load_ok = false;
  bool kernel_crashed = false;
  xbase::Status load_status;
  u64 r0 = 0;
  xbase::usize ref_leaks = 0;
  u64 wild_reads = 0;
  u64 wild_writes = 0;
};

class FaultTest : public ::testing::Test {
 protected:
  RunOutcome RunWith(std::string_view fault, const Program& prog,
                     bool inject, bool privileged = true,
                     std::function<void(Bpf&)> prepare = nullptr) {
    simkern::KernelConfig config;
    config.unprivileged_bpf_disabled = false;
    simkern::Kernel kernel(config);
    Bpf bpf(kernel);
    Loader loader(bpf);
    EXPECT_TRUE(kernel.BootstrapWorkload().ok());
    if (inject && !fault.empty()) {
      bpf.faults().Inject(fault);
    }
    if (prepare != nullptr) {
      prepare(bpf);
    }
    const auto before = kernel.objects().Snapshot();

    RunOutcome outcome;
    LoadOptions opts;
    opts.privileged = privileged;
    auto id = loader.Load(prog, opts);
    outcome.load_ok = id.ok();
    outcome.load_status = id.ok() ? xbase::Status::Ok() : id.status();
    if (id.ok()) {
      auto loaded = loader.Find(id.value());
      auto ctx = kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                  simkern::RegionKind::kKernelData, "ctx");
      auto result = Execute(bpf, *loaded.value(), ctx.value(), {}, &loader);
      if (result.ok()) {
        outcome.r0 = result.value().r0;
      }
    }
    outcome.kernel_crashed = kernel.crashed();
    outcome.ref_leaks = kernel.objects().DiffSince(before).size();
    outcome.wild_reads = kernel.mem().unchecked_wild_reads();
    outcome.wild_writes = kernel.mem().unchecked_wild_writes();
    return outcome;
  }

  // Builds against a throwaway Bpf so fds match the run's map layout: both
  // kernels create maps in the same order, so fds line up.
  template <typename BuildFn>
  Program BuildWithMap(MapSpec spec, BuildFn build, int* out_fd = nullptr) {
    // Determine the fd a fresh kernel would assign.
    simkern::Kernel kernel;
    Bpf bpf(kernel);
    const int fd = bpf.maps().Create(spec).value();
    if (out_fd != nullptr) {
      *out_fd = fd;
    }
    return build(fd).value();
  }

  static MapSpec ArraySpec(u32 value_size, u32 entries) {
    MapSpec spec;
    spec.type = MapType::kArray;
    spec.key_size = 4;
    spec.value_size = value_size;
    spec.max_entries = entries;
    spec.name = "f";
    return spec;
  }
};

TEST_F(FaultTest, ScalarBoundsDefectAdmitsArbitraryRead) {
  const MapSpec spec = ArraySpec(8, 4);
  const Program prog = BuildWithMap(
      spec, [](int fd) { return analysis::BuildArbitraryReadExploit(fd, 4096); });
  const auto prepare = [&spec](Bpf& bpf) {
    (void)bpf.maps().Create(spec);
  };
  const RunOutcome clean =
      RunWith(kFaultVerifierScalarBounds, prog, false, true, prepare);
  EXPECT_FALSE(clean.load_ok);
  const RunOutcome buggy =
      RunWith(kFaultVerifierScalarBounds, prog, true, true, prepare);
  EXPECT_TRUE(buggy.load_ok);
  // With analysis-driven check elision, the buggy verifier's wrongly-proven
  // bounds claim strips the runtime check: the out-of-bounds read no longer
  // oopses — it completes *silently* as a wild access. The wild counter is
  // the only witness. (Before elision this asserted kernel_crashed; the
  // -DUNTENABLE_NO_ELIDE build keeps the checks and still does.)
#ifdef UNTENABLE_NO_ELIDE
  EXPECT_TRUE(buggy.kernel_crashed);
  EXPECT_EQ(buggy.wild_reads + buggy.wild_writes, 0u);
#else
  EXPECT_FALSE(buggy.kernel_crashed);
  EXPECT_GT(buggy.wild_reads + buggy.wild_writes, 0u)
      << "elided OOB access should register as wild, not oops";
#endif
}

TEST_F(FaultTest, PtrLeakDefectLeaksKernelAddress) {
  const MapSpec spec = ArraySpec(8, 4);
  const Program prog = BuildWithMap(
      spec, [](int fd) { return analysis::BuildPtrLeakExploit(fd); });
  const auto prepare = [&spec](Bpf& bpf) { (void)bpf.maps().Create(spec); };
  const RunOutcome clean = RunWith(kFaultVerifierPtrLeak, prog, false,
                                   /*privileged=*/false, prepare);
  EXPECT_FALSE(clean.load_ok);
  const RunOutcome buggy = RunWith(kFaultVerifierPtrLeak, prog, true,
                                   /*privileged=*/false, prepare);
  EXPECT_TRUE(buggy.load_ok);
  EXPECT_GE(buggy.r0, simkern::kKernelBase) << "r0 is a kernel address";
}

TEST_F(FaultTest, Jmp32BoundsDefectAdmitsOob) {
  const MapSpec spec = ArraySpec(64, 4);
  const Program prog = BuildWithMap(
      spec, [](int fd) { return analysis::BuildJmp32BoundsExploit(fd); });
  const auto prepare = [&spec](Bpf& bpf) { (void)bpf.maps().Create(spec); };
  const RunOutcome clean =
      RunWith(kFaultVerifierJmp32Bounds, prog, false, true, prepare);
  EXPECT_FALSE(clean.load_ok);
  const RunOutcome buggy =
      RunWith(kFaultVerifierJmp32Bounds, prog, true, true, prepare);
  EXPECT_TRUE(buggy.load_ok);
  EXPECT_TRUE(buggy.kernel_crashed);
}

TEST_F(FaultTest, SpinLockDefectDeadlocksAtRuntime) {
  const MapSpec spec = ArraySpec(16, 1);
  const Program prog = BuildWithMap(
      spec, [](int fd) { return analysis::BuildDoubleSpinLock(fd); });
  const auto prepare = [&spec](Bpf& bpf) { (void)bpf.maps().Create(spec); };
  const RunOutcome clean =
      RunWith(kFaultVerifierSpinLock, prog, false, true, prepare);
  EXPECT_FALSE(clean.load_ok);
  const RunOutcome buggy =
      RunWith(kFaultVerifierSpinLock, prog, true, true, prepare);
  EXPECT_TRUE(buggy.load_ok);
  EXPECT_TRUE(buggy.kernel_crashed) << "double spin_lock = deadlock oops";
}

TEST_F(FaultTest, LoopInlineUafCrashesTheVerifierItself) {
  const MapSpec spec = ArraySpec(8, 4);
  const Program prog = BuildWithMap(spec, [](int fd) {
    return analysis::BuildNestedLoopStall(fd, 1, 4);
  });
  const auto prepare = [&spec](Bpf& bpf) { (void)bpf.maps().Create(spec); };
  const RunOutcome clean =
      RunWith(kFaultVerifierLoopInlineUaf, prog, false, true, prepare);
  EXPECT_TRUE(clean.load_ok);
  const RunOutcome buggy =
      RunWith(kFaultVerifierLoopInlineUaf, prog, true, true, prepare);
  EXPECT_FALSE(buggy.load_ok);
  EXPECT_EQ(buggy.load_status.code(), xbase::Code::kInternal)
      << "the verifier malfunctions, it does not merely reject";
}

TEST_F(FaultTest, RefTrackingDefectLeaksSocketReference) {
  const Program prog = analysis::BuildSkLookupNoRelease().value();
  const RunOutcome clean = RunWith(kFaultVerifierRefTracking, prog, false);
  EXPECT_FALSE(clean.load_ok);
  const RunOutcome buggy = RunWith(kFaultVerifierRefTracking, prog, true);
  EXPECT_TRUE(buggy.load_ok);
  EXPECT_EQ(buggy.ref_leaks, 1u);
}

TEST_F(FaultTest, SkLookupHelperLeaksEvenInCorrectPrograms) {
  const Program prog = analysis::BuildSkLookupWithRelease().value();
  const RunOutcome clean = RunWith(kFaultHelperSkLookupLeak, prog, false);
  EXPECT_TRUE(clean.load_ok);
  EXPECT_EQ(clean.ref_leaks, 0u);
  const RunOutcome buggy = RunWith(kFaultHelperSkLookupLeak, prog, true);
  EXPECT_TRUE(buggy.load_ok) << "the program is correct; the helper is not";
  EXPECT_EQ(buggy.ref_leaks, 1u);
}

TEST_F(FaultTest, JitDefectHijacksVerifiedControlFlow) {
  const Program prog = analysis::BuildJitHijackVictim().value();
  const RunOutcome clean = RunWith(kFaultJitBranchOffByOne, prog, false);
  EXPECT_TRUE(clean.load_ok);
  EXPECT_EQ(clean.r0, 42u);
  EXPECT_FALSE(clean.kernel_crashed);
  const RunOutcome buggy = RunWith(kFaultJitBranchOffByOne, prog, true);
  EXPECT_TRUE(buggy.load_ok) << "verifier passed it; the JIT broke it";
  EXPECT_TRUE(buggy.kernel_crashed);
}

TEST_F(FaultTest, FaultRegistryCatalogIsConsistent) {
  FaultRegistry faults;
  EXPECT_FALSE(faults.IsActive(kFaultVerifierScalarBounds));
  faults.Inject(kFaultVerifierScalarBounds);
  EXPECT_TRUE(faults.IsActive(kFaultVerifierScalarBounds));
  faults.Clear(kFaultVerifierScalarBounds);
  EXPECT_FALSE(faults.IsActive(kFaultVerifierScalarBounds));
  // Every catalog entry has a component and category.
  for (const FaultInfo& info : FaultRegistry::Catalog()) {
    EXPECT_FALSE(info.id.empty());
    EXPECT_TRUE(info.component == "verifier" || info.component == "helper" ||
                info.component == "jit" || info.component == "runtime")
        << info.id;
    EXPECT_FALSE(info.category.empty());
    EXPECT_FALSE(info.reference.empty());
  }
  EXPECT_EQ(FaultRegistry::Catalog().size(), 27u);
}

}  // namespace
}  // namespace ebpf

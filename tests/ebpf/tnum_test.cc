// Tristate-number tests: algebraic unit cases plus property-based soundness
// sweeps. The soundness property for every abstract operator OP:
//
//     a.Contains(x) && b.Contains(y)  =>  OP#(a,b).Contains(x OP y)
//
// checked over randomized tnums and random members. This is the property
// Vishwanathan et al. [50] prove for the kernel's implementation; here it
// doubles as a differential test of our port.
#include <gtest/gtest.h>

#include "src/ebpf/tnum.h"
#include "src/xbase/rand.h"

namespace ebpf {
namespace {

using xbase::u64;
using xbase::u8;

// Generates a random tnum together with a random concrete member of it.
struct Sample {
  Tnum abstract;
  u64 concrete;
};

Sample RandomSample(xbase::Rng& rng) {
  const u64 mask = rng.NextU64() & rng.NextU64();  // biased toward sparse
  const u64 value = rng.NextU64() & ~mask;
  const u64 member = value | (rng.NextU64() & mask);
  return Sample{Tnum{value, mask}, member};
}

TEST(TnumTest, ConstAndUnknownBasics) {
  EXPECT_TRUE(TnumConst(7).IsConst());
  EXPECT_TRUE(TnumConst(7).Contains(7));
  EXPECT_FALSE(TnumConst(7).Contains(8));
  EXPECT_TRUE(TnumUnknown().IsUnknown());
  EXPECT_TRUE(TnumUnknown().Contains(0xdeadbeef));
}

TEST(TnumTest, RangeContainsEndpoints) {
  const Tnum range = TnumRange(16, 31);
  EXPECT_TRUE(range.Contains(16));
  EXPECT_TRUE(range.Contains(31));
  EXPECT_TRUE(range.Contains(20));
  EXPECT_FALSE(range.Contains(32));
  EXPECT_FALSE(range.Contains(15));
}

TEST(TnumTest, RangeOfSingletonIsConst) {
  EXPECT_TRUE(TnumRange(5, 5).IsConst());
  EXPECT_EQ(TnumRange(5, 5).value, 5u);
}

TEST(TnumTest, AddConstants) {
  EXPECT_EQ(TnumAdd(TnumConst(3), TnumConst(4)), TnumConst(7));
}

TEST(TnumTest, CastTruncates) {
  const Tnum t = TnumCast(TnumConst(0x1234567890ULL), 4);
  EXPECT_EQ(t.value, 0x34567890u);
  EXPECT_EQ(TnumCast(TnumUnknown(), 1).mask, 0xffu);
}

TEST(TnumTest, Alignment) {
  EXPECT_TRUE(TnumIsAligned(TnumConst(8), 8));
  EXPECT_FALSE(TnumIsAligned(TnumConst(9), 8));
  // Unknown low bits break alignment.
  EXPECT_FALSE(TnumIsAligned(Tnum{0, 7}, 8));
  EXPECT_TRUE(TnumIsAligned(Tnum{0, ~u64{7}}, 8));
}

TEST(TnumTest, InIsSubsetRelation) {
  EXPECT_TRUE(TnumIn(TnumUnknown(), TnumConst(3)));
  EXPECT_TRUE(TnumIn(TnumConst(3), TnumConst(3)));
  EXPECT_FALSE(TnumIn(TnumConst(3), TnumConst(4)));
  EXPECT_FALSE(TnumIn(TnumConst(3), TnumUnknown()));
}

TEST(TnumTest, SubregComposition) {
  const Tnum reg = TnumConst(0x1111222233334444ULL);
  const Tnum lowered = TnumConstSubreg(reg, 0xaabbccdd);
  EXPECT_EQ(lowered.value, 0x11112222aabbccddULL);
  EXPECT_EQ(TnumSubreg(lowered).value, 0xaabbccddu);
  EXPECT_EQ(TnumClearSubreg(lowered).value, 0x1111222200000000ULL);
}

// ---- property-based soundness ------------------------------------------------

class TnumPropertyTest : public ::testing::TestWithParam<u64> {};

TEST_P(TnumPropertyTest, AddSound) {
  xbase::Rng rng(GetParam());
  SCOPED_TRACE(::testing::Message() << "rng seed " << rng.seed());
  for (int i = 0; i < 2000; ++i) {
    const Sample a = RandomSample(rng);
    const Sample b = RandomSample(rng);
    EXPECT_TRUE(TnumAdd(a.abstract, b.abstract)
                    .Contains(a.concrete + b.concrete));
  }
}

TEST_P(TnumPropertyTest, SubSound) {
  xbase::Rng rng(GetParam() ^ 0x5u);
  SCOPED_TRACE(::testing::Message() << "rng seed " << rng.seed());
  for (int i = 0; i < 2000; ++i) {
    const Sample a = RandomSample(rng);
    const Sample b = RandomSample(rng);
    EXPECT_TRUE(TnumSub(a.abstract, b.abstract)
                    .Contains(a.concrete - b.concrete));
  }
}

TEST_P(TnumPropertyTest, BitwiseSound) {
  xbase::Rng rng(GetParam() ^ 0x77u);
  SCOPED_TRACE(::testing::Message() << "rng seed " << rng.seed());
  for (int i = 0; i < 2000; ++i) {
    const Sample a = RandomSample(rng);
    const Sample b = RandomSample(rng);
    EXPECT_TRUE(TnumAnd(a.abstract, b.abstract)
                    .Contains(a.concrete & b.concrete));
    EXPECT_TRUE(TnumOr(a.abstract, b.abstract)
                    .Contains(a.concrete | b.concrete));
    EXPECT_TRUE(TnumXor(a.abstract, b.abstract)
                    .Contains(a.concrete ^ b.concrete));
  }
}

TEST_P(TnumPropertyTest, MulSound) {
  xbase::Rng rng(GetParam() ^ 0xabcu);
  SCOPED_TRACE(::testing::Message() << "rng seed " << rng.seed());
  for (int i = 0; i < 500; ++i) {
    const Sample a = RandomSample(rng);
    const Sample b = RandomSample(rng);
    EXPECT_TRUE(TnumMul(a.abstract, b.abstract)
                    .Contains(a.concrete * b.concrete));
  }
}

TEST_P(TnumPropertyTest, ShiftsSound) {
  xbase::Rng rng(GetParam() ^ 0xddu);
  SCOPED_TRACE(::testing::Message() << "rng seed " << rng.seed());
  for (int i = 0; i < 2000; ++i) {
    const Sample a = RandomSample(rng);
    const u8 shift = static_cast<u8>(rng.NextBelow(64));
    EXPECT_TRUE(TnumLshift(a.abstract, shift).Contains(a.concrete << shift));
    EXPECT_TRUE(TnumRshift(a.abstract, shift).Contains(a.concrete >> shift));
    EXPECT_TRUE(TnumArshift(a.abstract, shift, 64)
                    .Contains(static_cast<u64>(
                        static_cast<xbase::s64>(a.concrete) >> shift)));
  }
}

TEST_P(TnumPropertyTest, RangeContainsAllMembers) {
  xbase::Rng rng(GetParam() ^ 0x31u);
  SCOPED_TRACE(::testing::Message() << "rng seed " << rng.seed());
  for (int i = 0; i < 2000; ++i) {
    u64 lo = rng.NextU64();
    u64 hi = rng.NextU64();
    if (lo > hi) {
      std::swap(lo, hi);
    }
    const Tnum range = TnumRange(lo, hi);
    const u64 member = lo + rng.NextBelow(hi - lo + 1);
    EXPECT_TRUE(range.Contains(member));
  }
}

TEST_P(TnumPropertyTest, IntersectKeepsCommonMembers) {
  xbase::Rng rng(GetParam() ^ 0x90u);
  SCOPED_TRACE(::testing::Message() << "rng seed " << rng.seed());
  for (int i = 0; i < 2000; ++i) {
    const Sample a = RandomSample(rng);
    // b generated around the same concrete member so intersection is
    // consistent by construction.
    const u64 mask_b = rng.NextU64() & rng.NextU64();
    const Tnum b{a.concrete & ~mask_b, mask_b};
    ASSERT_TRUE(b.Contains(a.concrete));
    EXPECT_TRUE(TnumIntersect(a.abstract, b).Contains(a.concrete));
  }
}

TEST_P(TnumPropertyTest, CastSound) {
  xbase::Rng rng(GetParam() ^ 0xc4u);
  SCOPED_TRACE(::testing::Message() << "rng seed " << rng.seed());
  for (int i = 0; i < 2000; ++i) {
    const Sample a = RandomSample(rng);
    for (const u8 size : {1, 2, 4, 8}) {
      const u64 keep = size >= 8 ? ~u64{0} : ((u64{1} << (size * 8)) - 1);
      EXPECT_TRUE(TnumCast(a.abstract, size).Contains(a.concrete & keep));
    }
  }
}

TEST_P(TnumPropertyTest, InReflectsMembership) {
  xbase::Rng rng(GetParam() ^ 0x1eu);
  SCOPED_TRACE(::testing::Message() << "rng seed " << rng.seed());
  for (int i = 0; i < 2000; ++i) {
    const Sample a = RandomSample(rng);
    // TnumIn(a, const(x)) must be true exactly when a.Contains(x).
    EXPECT_EQ(TnumIn(a.abstract, TnumConst(a.concrete)), true);
    const u64 non_member = a.concrete ^ (~a.abstract.mask | 1);
    if (!a.abstract.Contains(non_member)) {
      EXPECT_FALSE(TnumIn(a.abstract, TnumConst(non_member)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TnumPropertyTest,
                         ::testing::Values(1, 42, 0xdead, 0xbeef, 2026));

}  // namespace
}  // namespace ebpf

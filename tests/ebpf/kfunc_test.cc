// kfunc tests: version gating, the shallow argument checking that makes
// kfuncs a wider escape hatch than helpers (§2.2's closing observation),
// reference discipline, and the verified-program-crashes-anyway
// demonstration with find_vma.
#include <gtest/gtest.h>

#include "src/ebpf/asm.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/interp.h"
#include "src/ebpf/loader.h"

namespace ebpf {
namespace {

class KfuncTest : public ::testing::Test {
 protected:
  KfuncTest() : bpf_(kernel_), loader_(bpf_) {
    EXPECT_TRUE(kernel_.BootstrapWorkload().ok());
  }

  xbase::Result<ExecResult> LoadAndRun(
      const Program& prog,
      std::optional<simkern::KernelVersion> version = std::nullopt) {
    LoadOptions opts;
    opts.version_override = version;
    auto id = loader_.Load(prog, opts);
    if (!id.ok()) {
      return id.status();
    }
    auto loaded = loader_.Find(id.value());
    auto ctx = kernel_.mem().Map(64, simkern::MemPerm::kReadWrite,
                                 simkern::RegionKind::kKernelData, "ctx");
    return Execute(bpf_, *loaded.value(), ctx.value(), {}, &loader_);
  }

  simkern::Kernel kernel_;
  Bpf bpf_;
  Loader loader_;
};

Program AcquireReleaseProg() {
  ProgramBuilder b("kf_balanced", ProgType::kKprobe);
  b.Ins(CallHelper(kHelperGetCurrentTask))  // raw task addr (scalar)
      .Ins(Mov64Reg(R1, R0))
      .Ins(CallKfunc(kKfuncTaskAcquire))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R1, R0))
      .Ins(CallKfunc(kKfuncTaskRelease))
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  return b.Build().value();
}

TEST_F(KfuncTest, RegistryCensus) {
  EXPECT_EQ(bpf_.kfuncs().CountAtVersion(simkern::kV5_10), 0u);
  EXPECT_EQ(bpf_.kfuncs().CountAtVersion(simkern::kV5_13), 2u);
  EXPECT_EQ(bpf_.kfuncs().CountAtVersion(simkern::kV6_1), 5u);
  for (const KfuncSpec* spec : bpf_.kfuncs().AllSpecs()) {
    EXPECT_TRUE(kernel_.callgraph().Contains(spec->entry_func))
        << spec->name;
  }
}

TEST_F(KfuncTest, RejectedBeforeV5_13) {
  auto result = LoadAndRun(AcquireReleaseProg(), simkern::kV5_10);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("v5.13"), std::string::npos);
}

TEST_F(KfuncTest, BalancedAcquireReleaseRuns) {
  const auto before = kernel_.objects().Snapshot();
  auto result = LoadAndRun(AcquireReleaseProg());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(kernel_.objects().DiffSince(before).empty());
}

TEST_F(KfuncTest, UnreleasedKfuncRefRejected) {
  ProgramBuilder b("kf_leak", ProgType::kKprobe);
  b.Ins(CallHelper(kHelperGetCurrentTask))
      .Ins(Mov64Reg(R1, R0))
      .Ins(CallKfunc(kKfuncTaskAcquire))
      .Ins(Mov64Imm(R0, 0))  // never released
      .Ins(Exit());
  auto result = LoadAndRun(b.Build().value());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("Unreleased"), std::string::npos);
}

TEST_F(KfuncTest, ReleaseWithoutAcquireRejected) {
  ProgramBuilder b("kf_underflow", ProgType::kKprobe);
  b.Ins(CallHelper(kHelperGetCurrentTask))
      .Ins(Mov64Reg(R1, R0))
      .Ins(CallKfunc(kKfuncTaskRelease))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto result = LoadAndRun(b.Build().value());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unowned"), std::string::npos);
}

TEST_F(KfuncTest, UnknownBtfIdRejected) {
  ProgramBuilder b("kf_unknown", ProgType::kKprobe);
  b.Ins(Mov64Imm(R1, 0))
      .Ins(CallKfunc(424242))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto result = LoadAndRun(b.Build().value());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("invalid kernel function"),
            std::string::npos);
}

// The §2.2 punchline for kfuncs: the spec accepts *any* initialized value
// where the internal function expects a valid task_struct. A verified
// program passes garbage; the kernel function, written for trusted
// callers, dereferences it; oops.
TEST_F(KfuncTest, VerifiedProgramCrashesThroughUnsanitizedKfunc) {
  ProgramBuilder b("kf_crash", ProgType::kKprobe);
  b.Ins(Mov64Imm(R1, 0x1000))  // "task pointer": arbitrary scalar
      .Ins(Mov64Imm(R2, 0))
      .Ins(CallKfunc(kKfuncVmaLookup))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto result = LoadAndRun(b.Build().value());
  ASSERT_FALSE(result.ok()) << "runtime must fault";
  EXPECT_EQ(result.status().code(), xbase::Code::kKernelFault);
  EXPECT_TRUE(kernel_.crashed())
      << "the verifier accepted it; the kfunc was never written to cope";
}

TEST_F(KfuncTest, WellFormedKfuncCallWorks) {
  ProgramBuilder b("kf_ok", ProgType::kKprobe);
  b.Ins(CallHelper(kHelperGetCurrentTask))
      .Ins(Mov64Reg(R1, R0))
      .Ins(Mov64Imm(R2, 0))
      .Ins(CallKfunc(kKfuncVmaLookup))
      .Ins(Exit());
  auto result = LoadAndRun(b.Build().value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().r0, 0u);  // addr 0 not in the task's stack vma
  EXPECT_FALSE(kernel_.crashed());
}

TEST_F(KfuncTest, SkbSummarizeRequiresCtx) {
  ProgramBuilder b("kf_ctx", ProgType::kXdp);
  b.Ins(Mov64Imm(R1, 7))  // scalar where ctx is required
      .Ins(CallKfunc(kKfuncSkbSummarize))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto result = LoadAndRun(b.Build().value());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("expected=ctx"),
            std::string::npos);
}

TEST_F(KfuncTest, SkbSummarizeComputesCookie) {
  ProgramBuilder b("kf_sum", ProgType::kXdp);
  b.Ins(CallKfunc(kKfuncSkbSummarize)).Ins(Exit());
  auto prog = b.Build().value();
  LoadOptions opts;
  auto id = loader_.Load(prog, opts);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto loaded = loader_.Find(id.value());
  xbase::u8 payload[32] = {1, 2, 3};
  auto skb = kernel_.net().CreateSkBuff(kernel_.mem(), payload);
  auto result =
      Execute(bpf_, *loaded.value(), skb.value().meta_addr, {}, &loader_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result.value().r0, 0u);
}

}  // namespace
}  // namespace ebpf

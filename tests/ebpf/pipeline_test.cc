// End-to-end smoke tests for the eBPF substrate: build → verify → load →
// execute against the simulated kernel.
#include <gtest/gtest.h>

#include "src/ebpf/asm.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/interp.h"
#include "src/ebpf/loader.h"
#include "src/xbase/bytes.h"

namespace ebpf {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : bpf_(kernel_), loader_(bpf_) {
    EXPECT_TRUE(kernel_.BootstrapWorkload().ok());
  }

  // Loads and runs with a zeroed 64-byte context buffer.
  xbase::Result<ExecResult> LoadAndRun(const Program& prog,
                                       ExecOptions opts = {}) {
    auto id = loader_.Load(prog);
    if (!id.ok()) {
      return id.status();
    }
    auto loaded = loader_.Find(id.value());
    auto ctx = kernel_.mem().Map(64, simkern::MemPerm::kReadWrite,
                                 simkern::RegionKind::kKernelData,
                                 "test-ctx");
    EXPECT_TRUE(ctx.ok());
    return Execute(bpf_, *loaded.value(), ctx.value(), opts, &loader_);
  }

  simkern::Kernel kernel_;
  Bpf bpf_;
  Loader loader_;
};

TEST_F(PipelineTest, ReturnsConstant) {
  ProgramBuilder b("ret42", ProgType::kKprobe);
  b.Ins(Mov64Imm(R0, 42)).Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  auto result = LoadAndRun(prog.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().r0, 42u);
}

TEST_F(PipelineTest, ArithmeticChain) {
  ProgramBuilder b("arith", ProgType::kKprobe);
  b.Ins(Mov64Imm(R0, 10))
      .Ins(Alu64Imm(BPF_MUL, R0, 7))
      .Ins(Alu64Imm(BPF_ADD, R0, 2))
      .Ins(Alu64Imm(BPF_RSH, R0, 1))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  auto result = LoadAndRun(prog.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().r0, 36u);  // (10*7+2)>>1
}

TEST_F(PipelineTest, StackSpillAndFill) {
  ProgramBuilder b("stack", ProgType::kKprobe);
  b.Ins(Mov64Imm(R6, 1234))
      .Ins(StxMem(BPF_DW, R10, R6, -8))
      .Ins(LdxMem(BPF_DW, R0, R10, -8))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  auto result = LoadAndRun(prog.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().r0, 1234u);
}

TEST_F(PipelineTest, RejectsUninitializedRegister) {
  ProgramBuilder b("uninit", ProgType::kKprobe);
  b.Ins(Mov64Reg(R0, R3)).Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  auto result = LoadAndRun(prog.value());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), xbase::Code::kRejected);
}

TEST_F(PipelineTest, RejectsStackOutOfBounds) {
  ProgramBuilder b("oob", ProgType::kKprobe);
  b.Ins(Mov64Imm(R0, 0))
      .Ins(StxMem(BPF_DW, R10, R0, -520))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  auto result = LoadAndRun(prog.value());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), xbase::Code::kRejected);
}

TEST_F(PipelineTest, RejectsInfiniteLoopBeforeV5_3) {
  simkern::KernelConfig config;
  config.version = simkern::kV4_20;
  simkern::Kernel old_kernel(config);
  Bpf old_bpf(old_kernel);
  Loader old_loader(old_bpf);

  ProgramBuilder b("loop", ProgType::kKprobe);
  b.Bind("top")
      .Ins(Mov64Imm(R0, 0))
      .JaTo("top");
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  auto id = old_loader.Load(prog.value());
  ASSERT_FALSE(id.ok());
  EXPECT_NE(id.status().message().find("back-edge"), std::string::npos)
      << id.status().ToString();
}

TEST_F(PipelineTest, AcceptsBoundedLoopAtV5_18) {
  // for (i = 0; i < 10; i++) sum += i;  — legal since v5.3.
  ProgramBuilder b("bounded", ProgType::kKprobe);
  b.Ins(Mov64Imm(R6, 0))
      .Ins(Mov64Imm(R0, 0))
      .Bind("top")
      .JmpTo(BPF_JGE, R6, 10, "done")
      .Ins(Alu64Reg(BPF_ADD, R0, R6))
      .Ins(Alu64Imm(BPF_ADD, R6, 1))
      .JaTo("top")
      .Bind("done")
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  auto result = LoadAndRun(prog.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().r0, 45u);
}

TEST_F(PipelineTest, MapRoundTripThroughHelpers) {
  MapSpec spec;
  spec.type = MapType::kArray;
  spec.key_size = 4;
  spec.value_size = 8;
  spec.max_entries = 4;
  spec.name = "counters";
  auto fd = bpf_.maps().Create(spec);
  ASSERT_TRUE(fd.ok());

  // key=1 on the stack; value=777 on the stack; update then lookup.
  ProgramBuilder b("maprt", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 1))            // key
      .Ins(StMemImm(BPF_DW, R10, -16, 777))     // value
      .Ins(LdMapFd(R1, fd.value()))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(Mov64Reg(R3, R10))
      .Ins(Alu64Imm(BPF_ADD, R3, -16))
      .Ins(Mov64Imm(R4, 0))
      .Ins(CallHelper(kHelperMapUpdateElem))
      .Ins(LdMapFd(R1, fd.value()))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "miss")
      .Ins(LdxMem(BPF_DW, R0, R0, 0))
      .Ins(Exit())
      .Bind("miss")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  auto result = LoadAndRun(prog.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().r0, 777u);
}

TEST_F(PipelineTest, RejectsMapValueDerefWithoutNullCheck) {
  MapSpec spec;
  spec.type = MapType::kArray;
  spec.key_size = 4;
  spec.value_size = 8;
  spec.max_entries = 1;
  spec.name = "m";
  auto fd = bpf_.maps().Create(spec);
  ASSERT_TRUE(fd.ok());

  ProgramBuilder b("nonull", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, fd.value()))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .Ins(LdxMem(BPF_DW, R0, R0, 0))  // no NULL check!
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  auto result = LoadAndRun(prog.value());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("NULL"), std::string::npos)
      << result.status().ToString();
}

TEST_F(PipelineTest, RejectsMapValueOutOfBounds) {
  MapSpec spec;
  spec.type = MapType::kArray;
  spec.key_size = 4;
  spec.value_size = 8;
  spec.max_entries = 1;
  spec.name = "m";
  auto fd = bpf_.maps().Create(spec);
  ASSERT_TRUE(fd.ok());

  ProgramBuilder b("oobmap", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, fd.value()))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(LdxMem(BPF_DW, R3, R0, 8))  // off 8 in an 8-byte value: OOB
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  auto result = LoadAndRun(prog.value());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), xbase::Code::kRejected);
}

TEST_F(PipelineTest, HelperVersionGating) {
  // bpf_loop does not exist on a v5.10 kernel.
  simkern::KernelConfig config;
  config.version = simkern::kV5_10;
  simkern::Kernel old_kernel(config);
  Bpf old_bpf(old_kernel);
  Loader old_loader(old_bpf);

  ProgramBuilder b("newhelper", ProgType::kKprobe);
  b.Ins(Mov64Imm(R1, 1))
      .LdFuncTo(R2, "cb")
      .Ins(Mov64Imm(R3, 0))
      .Ins(Mov64Imm(R4, 0))
      .Ins(CallHelper(kHelperLoop))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit())
      .Bind("cb")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  auto id = old_loader.Load(prog.value());
  ASSERT_FALSE(id.ok());
  EXPECT_NE(id.status().message().find("introduced"), std::string::npos)
      << id.status().ToString();
}

TEST_F(PipelineTest, BpfLoopRunsCallback) {
  ProgramBuilder b("looped", ProgType::kKprobe);
  b.Ins(Mov64Imm(R1, 5))
      .LdFuncTo(R2, "cb")
      .Ins(Mov64Imm(R3, 0))
      .Ins(Mov64Imm(R4, 0))
      .Ins(CallHelper(kHelperLoop))
      .Ins(Exit())  // r0 = number of iterations
      .Bind("cb")
      .Ins(Mov64Imm(R0, 0))  // keep looping
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  auto result = LoadAndRun(prog.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().r0, 5u);
}

TEST_F(PipelineTest, UnprivilegedLoadRefusedByDefault) {
  ProgramBuilder b("unpriv", ProgType::kSocketFilter);
  b.Ins(Mov64Imm(R0, 0)).Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  LoadOptions opts;
  opts.privileged = false;
  auto id = loader_.Load(prog.value(), opts);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), xbase::Code::kPermissionDenied);
}

TEST_F(PipelineTest, TracePrintkWritesDmesg) {
  ProgramBuilder b("printk", ProgType::kKprobe);
  // "hi" on the stack.
  b.Ins(StMemImm(BPF_W, R10, -4, 0x6968))  // "hi\0\0"
      .Ins(Mov64Reg(R1, R10))
      .Ins(Alu64Imm(BPF_ADD, R1, -4))
      .Ins(Mov64Imm(R2, 3))
      .Ins(CallHelper(kHelperTracePrintk))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  auto result = LoadAndRun(prog.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  bool found = false;
  for (const auto& line : kernel_.dmesg()) {
    if (line.find("bpf_trace_printk: hi") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PipelineTest, TailCallSwitchesProgram) {
  MapSpec spec;
  spec.type = MapType::kProgArray;
  spec.key_size = 4;
  spec.value_size = 4;
  spec.max_entries = 2;
  spec.name = "jmp_table";
  auto fd = bpf_.maps().Create(spec);
  ASSERT_TRUE(fd.ok());

  // Target program returns 99.
  ProgramBuilder target_b("target", ProgType::kKprobe);
  target_b.Ins(Mov64Imm(R0, 99)).Ins(Exit());
  auto target = target_b.Build();
  ASSERT_TRUE(target.ok());
  auto target_id = loader_.Load(target.value());
  ASSERT_TRUE(target_id.ok()) << target_id.status().ToString();

  // Install it at index 0.
  auto map = bpf_.maps().Find(fd.value());
  ASSERT_TRUE(map.ok());
  xbase::u8 key[4] = {0, 0, 0, 0};
  xbase::u8 value[4];
  xbase::StoreLe32(value, target_id.value());
  ASSERT_TRUE(map.value()->Update(kernel_, key, value, kBpfAny).ok());

  // Caller tail-calls into it; the fallthrough value 7 must NOT appear.
  ProgramBuilder caller_b("caller", ProgType::kKprobe);
  caller_b.Ins(Mov64Imm(R0, 7))
      .Ins(Mov64Reg(R1, R1))  // keep ctx
      .Ins(LdMapFd(R2, fd.value()))
      .Ins(Mov64Imm(R3, 0))
      .Ins(CallHelper(kHelperTailCall))
      .Ins(Exit());
  auto caller = caller_b.Build();
  ASSERT_TRUE(caller.ok());
  auto result = LoadAndRun(caller.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().r0, 99u);
}

TEST_F(PipelineTest, Bpf2BpfCallAndReturn) {
  ProgramBuilder b("calls", ProgType::kKprobe);
  b.Ins(Mov64Imm(R1, 20))
      .CallTo("double_it")
      .Ins(Alu64Imm(BPF_ADD, R0, 2))
      .Ins(Exit())
      .Bind("double_it")
      .Ins(Mov64Reg(R0, R1))
      .Ins(Alu64Imm(BPF_MUL, R0, 2))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  auto result = LoadAndRun(prog.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().r0, 42u);
}

TEST_F(PipelineTest, Bpf2BpfRejectedBeforeV4_16) {
  simkern::KernelConfig config;
  config.version = simkern::kV4_14;
  simkern::Kernel old_kernel(config);
  Bpf old_bpf(old_kernel);
  Loader old_loader(old_bpf);

  ProgramBuilder b("calls", ProgType::kKprobe);
  b.Ins(Mov64Imm(R1, 20))
      .CallTo("sub")
      .Ins(Exit())
      .Bind("sub")
      .Ins(Mov64Imm(R0, 1))
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  auto id = old_loader.Load(prog.value());
  ASSERT_FALSE(id.ok());
  EXPECT_NE(id.status().message().find("v4.16"), std::string::npos);
}

}  // namespace
}  // namespace ebpf

// Assembler/builder and disassembler tests: encoding invariants, label
// fixup arithmetic, and the rendering used in verifier diagnostics. Also
// covers the atomic fetch-add instruction end to end.
#include <gtest/gtest.h>

#include "src/ebpf/asm.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/disasm.h"
#include "src/ebpf/interp.h"
#include "src/ebpf/loader.h"

namespace ebpf {
namespace {

TEST(EncodingTest, FieldExtractionRoundTrips) {
  const Insn insn = Alu64Imm(BPF_ADD, R3, -7);
  EXPECT_EQ(insn.Class(), BPF_ALU64);
  EXPECT_EQ(insn.AluOp(), BPF_ADD);
  EXPECT_FALSE(insn.UsesRegSrc());
  EXPECT_EQ(insn.dst, R3);
  EXPECT_EQ(insn.imm, -7);

  const Insn load = LdxMem(BPF_H, R2, R4, -12);
  EXPECT_EQ(load.Class(), BPF_LDX);
  EXPECT_EQ(SizeBytes(load.Size()), 2u);
  EXPECT_EQ(load.Mode(), BPF_MEM);
  EXPECT_EQ(load.off, -12);

  const Insn call = CallHelper(25);
  EXPECT_TRUE(call.IsHelperCall());
  EXPECT_FALSE(call.IsPseudoCall());
  EXPECT_FALSE(call.IsKfuncCall());
  EXPECT_TRUE(CallKfunc(1001).IsKfuncCall());
  EXPECT_TRUE(CallPseudo(3).IsPseudoCall());
  EXPECT_TRUE(Exit().IsExit());

  const auto pair = LdImm64(R1, 0x1122334455667788ULL);
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_TRUE(pair[0].IsLdImm64());
  EXPECT_EQ(static_cast<u32>(pair[0].imm), 0x55667788u);
  EXPECT_EQ(static_cast<u32>(pair[1].imm), 0x11223344u);

  const Insn atomic = AtomicAdd(BPF_DW, R1, R2, 8);
  EXPECT_EQ(atomic.Class(), BPF_STX);
  EXPECT_EQ(atomic.Mode(), BPF_ATOMIC);
  EXPECT_EQ(atomic.imm, BPF_ADD);
}

TEST(BuilderTest, ForwardAndBackwardLabels) {
  ProgramBuilder b("labels", ProgType::kKprobe);
  b.Ins(Mov64Imm(R0, 0))
      .Bind("back")
      .Ins(Alu64Imm(BPF_ADD, R0, 1))
      .JmpTo(BPF_JGE, R0, 3, "fwd")
      .JaTo("back")
      .Bind("fwd")
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  // The JA at index 3 jumps back to index 1: off = 1 - 3 - 1 = -3.
  EXPECT_EQ(prog.value().insns[3].off, -3);
  // The conditional at index 2 jumps to index 4: off = 4 - 2 - 1 = 1.
  EXPECT_EQ(prog.value().insns[2].off, 1);
}

TEST(BuilderTest, UnboundLabelFails) {
  ProgramBuilder b("bad", ProgType::kKprobe);
  b.JaTo("nowhere").Ins(Exit());
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, LdFuncEncodesAbsolutePc) {
  ProgramBuilder b("func", ProgType::kKprobe);
  b.LdFuncTo(R2, "cb").Ins(Mov64Imm(R0, 0)).Ins(Exit()).Bind("cb").Ins(
      Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog.value().insns[0].src, BPF_PSEUDO_FUNC);
  EXPECT_EQ(prog.value().insns[0].imm, 4);  // absolute index of "cb"
}

TEST(DisasmTest, RendersCommonForms) {
  EXPECT_EQ(DisasmInsn(Mov64Imm(R1, 5)), "r1 = 5");
  EXPECT_EQ(DisasmInsn(Alu64Reg(BPF_ADD, R1, R2)), "r1 add= r2");
  EXPECT_EQ(DisasmInsn(LdxMem(BPF_W, R0, R1, 8)), "r0 = *(u32 *)(r1 +8)");
  EXPECT_EQ(DisasmInsn(StMemImm(BPF_DW, R10, -8, 3)),
            "*(u64 *)(r10 -8) = 3");
  EXPECT_EQ(DisasmInsn(CallHelper(1)), "call bpf_map_lookup_elem#1");
  EXPECT_EQ(DisasmInsn(CallHelper(999)), "call helper#999");
  EXPECT_EQ(DisasmInsn(CallHelper(kHelperSchedNrRunnable)),
            "call bpf_sched_nr_runnable#230");
  EXPECT_EQ(DisasmInsn(CallHelper(kHelperLsmInodeId)),
            "call bpf_lsm_inode_id#240");
  EXPECT_EQ(DisasmInsn(Exit()), "exit");
  EXPECT_EQ(DisasmInsn(JmpImm(BPF_JEQ, R3, 0, 5)), "if r3 jeq 0 goto +5");
  EXPECT_EQ(DisasmInsn(AtomicAdd(BPF_W, R0, R1, 4)),
            "lock *(u32 *)(r0 +4) += r1");
}

TEST(DisasmTest, ProgramListingMergesLdImm64) {
  ProgramBuilder b("listing", ProgType::kKprobe);
  b.Ins(LdImm64(R1, 0xabcdef)).Ins(Mov64Imm(R0, 0)).Ins(Exit());
  const std::string text = DisasmProgram(b.Build().value());
  EXPECT_NE(text.find("r1 = 0xabcdef"), std::string::npos);
  EXPECT_NE(text.find("exit"), std::string::npos);
}

TEST(AtomicTest, XaddThroughTheFullPipeline) {
  simkern::Kernel kernel;
  Bpf bpf(kernel);
  Loader loader(bpf);
  ASSERT_TRUE(kernel.BootstrapWorkload().ok());

  MapSpec spec;
  spec.type = MapType::kArray;
  spec.key_size = 4;
  spec.value_size = 8;
  spec.max_entries = 1;
  spec.name = "xadd";
  const int fd = bpf.maps().Create(spec).value();

  ProgramBuilder b("xadd", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Imm(R1, 5))
      .Ins(AtomicAdd(BPF_DW, R0, R1, 0))
      .Ins(AtomicAdd(BPF_DW, R0, R1, 0))
      .Ins(LdxMem(BPF_DW, R0, R0, 0))
      .Ins(Exit())
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto id = loader.Load(b.Build().value());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto loaded = loader.Find(id.value());
  auto ctx = kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                              simkern::RegionKind::kKernelData, "c");
  auto result = Execute(bpf, *loaded.value(), ctx.value(), {}, &loader);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().r0, 10u);
}

TEST(AtomicTest, VerifierRejectsBadAtomics) {
  simkern::Kernel kernel;
  Bpf bpf(kernel);
  VerifyOptions opts;
  opts.version = kernel.version();
  opts.faults = &bpf.faults();

  // Unsupported atomic operation.
  {
    Program prog;
    prog.name = "badop";
    prog.type = ProgType::kKprobe;
    prog.insns.push_back(Mov64Imm(R1, 0));
    Insn bad = AtomicAdd(BPF_DW, R10, R1, -8);
    bad.imm = BPF_XOR;
    prog.insns.push_back(StMemImm(BPF_DW, R10, -8, 0));
    prog.insns.push_back(bad);
    prog.insns.push_back(Mov64Imm(R0, 0));
    prog.insns.push_back(Exit());
    EXPECT_FALSE(Verify(prog, bpf.maps(), bpf.helpers(), opts).ok());
  }
  // Byte-sized atomic.
  {
    Program prog;
    prog.name = "badsize";
    prog.type = ProgType::kKprobe;
    prog.insns.push_back(Mov64Imm(R1, 0));
    prog.insns.push_back(StMemImm(BPF_DW, R10, -8, 0));
    prog.insns.push_back(AtomicAdd(BPF_B, R10, R1, -8));
    prog.insns.push_back(Mov64Imm(R0, 0));
    prog.insns.push_back(Exit());
    EXPECT_FALSE(Verify(prog, bpf.maps(), bpf.helpers(), opts).ok());
  }
  // Atomic on an uninitialized stack slot (read half fails).
  {
    Program prog;
    prog.name = "coldxadd";
    prog.type = ProgType::kKprobe;
    prog.insns.push_back(Mov64Imm(R1, 1));
    prog.insns.push_back(AtomicAdd(BPF_DW, R10, R1, -8));
    prog.insns.push_back(Mov64Imm(R0, 0));
    prog.insns.push_back(Exit());
    EXPECT_FALSE(Verify(prog, bpf.maps(), bpf.helpers(), opts).ok());
  }
}

}  // namespace
}  // namespace ebpf

// Helper implementation tests: direct invocation of each helper family
// against the simulated kernel, including error paths and the behaviours
// the §2.2 and Table 1 experiments rely on.
#include <gtest/gtest.h>

#include "src/ebpf/bpf.h"
#include "src/ebpf/runtime.h"
#include "src/xbase/bytes.h"

namespace ebpf {
namespace {

class HelpersTest : public ::testing::Test {
 protected:
  HelpersTest() : bpf_(kernel_) {
    EXPECT_TRUE(kernel_.BootstrapWorkload().ok());
  }

  // Invokes a helper directly (no program, no hooks).
  xbase::Result<u64> Call(u32 id, HelperArgs args) {
    auto fn = bpf_.helpers().FindFn(id);
    if (!fn.ok()) {
      return fn.status();
    }
    HelperCtx ctx = bpf_.MakeHelperCtx(nullptr);
    return (*fn.value())(ctx, args);
  }

  simkern::Addr MapBuffer(xbase::usize size, const std::string& name) {
    return kernel_.mem()
        .Map(size, simkern::MemPerm::kReadWrite,
             simkern::RegionKind::kKernelData, name)
        .value();
  }

  int CreateArrayMap(u32 value_size, u32 entries) {
    MapSpec spec;
    spec.type = MapType::kArray;
    spec.key_size = 4;
    spec.value_size = value_size;
    spec.max_entries = entries;
    spec.name = "h";
    return bpf_.maps().Create(spec).value();
  }

  simkern::Kernel kernel_;
  Bpf bpf_;
};

TEST_F(HelpersTest, RegistryHasFullSuite) {
  EXPECT_GE(bpf_.helpers().AllSpecs().size(), 75u);
  // Real Linux helper ids resolve.
  EXPECT_TRUE(bpf_.helpers().FindSpec(kHelperMapLookupElem).ok());
  EXPECT_TRUE(bpf_.helpers().FindSpec(kHelperSysBpf).ok());
  EXPECT_FALSE(bpf_.helpers().FindSpec(9999).ok());
}

TEST_F(HelpersTest, CensusGrowsMonotonically) {
  xbase::usize prev = 0;
  for (const auto version : simkern::kPlottedVersions) {
    const xbase::usize count = bpf_.helpers().CountAtVersion(version);
    EXPECT_GE(count, prev);
    prev = count;
  }
  EXPECT_EQ(bpf_.helpers().CountAtVersion(simkern::kV3_18), 3u);
}

TEST_F(HelpersTest, EveryHelperEntryIsInTheCallGraph) {
  for (const HelperSpec* spec : bpf_.helpers().AllSpecs()) {
    EXPECT_TRUE(kernel_.callgraph().Contains(spec->entry_func))
        << spec->name;
  }
}

TEST_F(HelpersTest, KtimeReturnsSimulatedClock) {
  kernel_.clock().Advance(12345);
  EXPECT_EQ(Call(kHelperKtimeGetNs, {}).value(), 12345u);
}

TEST_F(HelpersTest, PidTgidPacksBothHalves) {
  const u64 result = Call(kHelperGetCurrentPidTgid, {}).value();
  EXPECT_EQ(result & 0xffffffff, 1234u);   // pid
  EXPECT_EQ(result >> 32, 1200u);          // tgid
}

TEST_F(HelpersTest, GetCurrentCommCopiesName) {
  const simkern::Addr buf = MapBuffer(16, "comm");
  ASSERT_TRUE(Call(kHelperGetCurrentComm, {buf, 16, 0, 0, 0}).ok());
  xbase::u8 bytes[16];
  ASSERT_TRUE(kernel_.mem().Read(buf, bytes).ok());
  EXPECT_STREQ(reinterpret_cast<const char*>(bytes), "memcached");
}

TEST_F(HelpersTest, ProbeReadToleratesBadAddresses) {
  const simkern::Addr dst = MapBuffer(8, "dst");
  // Reading NULL returns -EFAULT, does not oops.
  EXPECT_EQ(Call(kHelperProbeRead, {dst, 8, 0, 0, 0}).value(),
            NegErrno(kEFault));
  EXPECT_FALSE(kernel_.crashed());
  // Valid source works.
  const simkern::Addr src = MapBuffer(8, "src");
  ASSERT_TRUE(kernel_.mem().WriteU64(src, 0x77).ok());
  EXPECT_EQ(Call(kHelperProbeRead, {dst, 8, src, 0, 0}).value(), 0u);
  EXPECT_EQ(kernel_.mem().ReadU64(dst).value(), 0x77u);
}

TEST_F(HelpersTest, ProbeReadStrStopsAtNul) {
  const simkern::Addr src = MapBuffer(16, "s");
  const xbase::u8 text[] = {'h', 'i', 0, 'x'};
  ASSERT_TRUE(kernel_.mem().Write(src, text).ok());
  const simkern::Addr dst = MapBuffer(16, "d");
  EXPECT_EQ(Call(kHelperProbeReadStr, {dst, 16, src, 0, 0}).value(), 3u);
}

TEST_F(HelpersTest, StrtolParsesAndRejects) {
  const simkern::Addr text = MapBuffer(16, "text");
  const simkern::Addr out = MapBuffer(8, "out");
  const xbase::u8 digits[] = {'-', '4', '2', 0};
  ASSERT_TRUE(kernel_.mem().Write(text, digits).ok());
  EXPECT_EQ(Call(kHelperStrtol, {text, 3, 0, out, 0}).value(), 3u);
  EXPECT_EQ(static_cast<xbase::s64>(kernel_.mem().ReadU64(out).value()),
            -42);
  const xbase::u8 junk[] = {'x', 'y', 0};
  ASSERT_TRUE(kernel_.mem().Write(text, junk).ok());
  EXPECT_EQ(Call(kHelperStrtol, {text, 2, 0, out, 0}).value(),
            NegErrno(kEInval));
}

TEST_F(HelpersTest, StrncmpComparesBytes) {
  const simkern::Addr a = MapBuffer(8, "a");
  const simkern::Addr b = MapBuffer(8, "b");
  const xbase::u8 s1[] = {'a', 'b', 'c', 0};
  const xbase::u8 s2[] = {'a', 'b', 'd', 0};
  ASSERT_TRUE(kernel_.mem().Write(a, s1).ok());
  ASSERT_TRUE(kernel_.mem().Write(b, s2).ok());
  EXPECT_EQ(Call(kHelperStrncmp, {a, 4, b, 0, 0}).value(),
            static_cast<u64>(static_cast<s64>('c' - 'd')));
  EXPECT_EQ(Call(kHelperStrncmp, {a, 4, a, 0, 0}).value(), 0u);
}

TEST_F(HelpersTest, SnprintfFormatsSubset) {
  const simkern::Addr out = MapBuffer(64, "out");
  const simkern::Addr fmt = MapBuffer(32, "fmt");
  const simkern::Addr data = MapBuffer(16, "data");
  const char* format = "v=%d h=%x";
  ASSERT_TRUE(kernel_.mem()
                  .Write(fmt, std::span<const xbase::u8>(
                                  reinterpret_cast<const xbase::u8*>(format),
                                  strlen(format) + 1))
                  .ok());
  ASSERT_TRUE(kernel_.mem().WriteU64(data, 42).ok());
  ASSERT_TRUE(kernel_.mem().WriteU64(data + 8, 255).ok());
  ASSERT_TRUE(Call(kHelperSnprintf, {out, 64, fmt, data, 16}).ok());
  xbase::u8 bytes[16];
  ASSERT_TRUE(kernel_.mem().Read(out, bytes).ok());
  EXPECT_STREQ(reinterpret_cast<const char*>(bytes), "v=42 h=ff");
}

TEST_F(HelpersTest, SkLookupAcquiresReference) {
  const simkern::Addr tuple = MapBuffer(12, "tuple");
  xbase::u8 bytes[12];
  xbase::StoreLe32(bytes, 0x0a000001);
  xbase::StoreLe32(bytes + 4, 0x0a000002);
  xbase::StoreLe16(bytes + 8, 8080);
  xbase::StoreLe16(bytes + 10, 40000);
  ASSERT_TRUE(kernel_.mem().Write(tuple, bytes).ok());

  const auto before = kernel_.objects().Snapshot();
  const u64 sock_addr =
      Call(kHelperSkLookupTcp, {0, tuple, 12, 0, 0}).value();
  ASSERT_NE(sock_addr, 0u);
  EXPECT_EQ(kernel_.objects().DiffSince(before).size(), 1u);

  // Release restores the count.
  ASSERT_TRUE(Call(kHelperSkRelease, {sock_addr, 0, 0, 0, 0}).ok());
  EXPECT_TRUE(kernel_.objects().DiffSince(before).empty());

  // A miss returns NULL without touching counts.
  xbase::StoreLe16(bytes + 8, 9);
  ASSERT_TRUE(kernel_.mem().Write(tuple, bytes).ok());
  EXPECT_EQ(Call(kHelperSkLookupTcp, {0, tuple, 12, 0, 0}).value(), 0u);
  EXPECT_TRUE(kernel_.objects().DiffSince(before).empty());
}

TEST_F(HelpersTest, GetTaskStackBalancedOnBothPaths) {
  const simkern::Task* task = kernel_.tasks().current();
  const simkern::Addr buf = MapBuffer(64, "stack");
  const auto before = kernel_.objects().Snapshot();
  // Happy path.
  EXPECT_EQ(Call(kHelperGetTaskStack, {task->struct_addr, buf, 64, 0, 0})
                .value(),
            64u);
  EXPECT_TRUE(kernel_.objects().DiffSince(before).empty());
  // Error path (fixed helper releases there too).
  EXPECT_EQ(Call(kHelperGetTaskStack, {task->struct_addr, buf, 4, 0, 0})
                .value(),
            NegErrno(kEFault));
  EXPECT_TRUE(kernel_.objects().DiffSince(before).empty());
}

TEST_F(HelpersTest, GetTaskStackLeakUnderInjectedDefect) {
  bpf_.faults().Inject(kFaultHelperTaskStackLeak);
  const simkern::Task* task = kernel_.tasks().current();
  const simkern::Addr buf = MapBuffer(64, "stack");
  const auto before = kernel_.objects().Snapshot();
  EXPECT_EQ(Call(kHelperGetTaskStack, {task->struct_addr, buf, 4, 0, 0})
                .value(),
            NegErrno(kEFault));
  EXPECT_EQ(kernel_.objects().DiffSince(before).size(), 1u);
}

TEST_F(HelpersTest, TaskStorageNullOwnerFixedVsBuggy) {
  MapSpec spec;
  spec.type = MapType::kTaskStorage;
  spec.key_size = 4;
  spec.value_size = 8;
  spec.max_entries = 8;
  spec.name = "ts";
  const int fd = bpf_.maps().Create(spec).value();
  const u64 handle = MapHandleFromFd(fd);

  // Fixed behaviour: NULL owner yields NULL.
  EXPECT_EQ(Call(kHelperTaskStorageGet, {handle, 0, 0, 1, 0}).value(), 0u);
  EXPECT_FALSE(kernel_.crashed());

  // Buggy behaviour: NULL owner is dereferenced.
  bpf_.faults().Inject(kFaultHelperTaskStorageNull);
  const auto result = Call(kHelperTaskStorageGet, {handle, 0, 0, 1, 0});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(kernel_.crashed());
}

TEST_F(HelpersTest, SysBpfMapCreatePath) {
  const simkern::Addr attr = MapBuffer(64, "attr");
  ASSERT_TRUE(kernel_.mem().WriteU32(attr + 4, 8).ok());    // value_size
  ASSERT_TRUE(kernel_.mem().WriteU32(attr + 8, 16).ok());   // max_entries
  const auto fd = Call(kHelperSysBpf, {kSysBpfMapCreate, attr, 64, 0, 0});
  ASSERT_TRUE(fd.ok());
  EXPECT_GT(static_cast<s64>(fd.value()), 0);
  EXPECT_TRUE(bpf_.maps().Find(static_cast<int>(fd.value())).ok());
}

TEST_F(HelpersTest, SysBpfProgLoadNullPointerCrashes) {
  const simkern::Addr attr = MapBuffer(64, "attr");  // insns ptr = 0
  const auto result = Call(kHelperSysBpf, {kSysBpfProgLoad, attr, 64, 0, 0});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), xbase::Code::kKernelFault);
  EXPECT_TRUE(kernel_.crashed());
}

TEST_F(HelpersTest, SysBpfRejectsShortAttr) {
  EXPECT_EQ(Call(kHelperSysBpf, {kSysBpfProgLoad, 0, 8, 0, 0}).value(),
            NegErrno(kEInval));
}

TEST_F(HelpersTest, SkbStoreAndLoadBytes) {
  xbase::u8 payload[32] = {};
  auto skb = kernel_.net().CreateSkBuff(kernel_.mem(), payload).value();
  const simkern::Addr src = MapBuffer(4, "src");
  ASSERT_TRUE(kernel_.mem().WriteU32(src, 0xaabbccdd).ok());
  EXPECT_EQ(Call(kHelperSkbStoreBytes, {skb.meta_addr, 8, src, 4, 0})
                .value(),
            0u);
  const simkern::Addr dst = MapBuffer(4, "dst");
  EXPECT_EQ(Call(kHelperSkbLoadBytes, {skb.meta_addr, 8, dst, 4, 0})
                .value(),
            0u);
  EXPECT_EQ(kernel_.mem().ReadU32(dst).value(), 0xaabbccddu);
  // Out of bounds offset fails cleanly.
  EXPECT_EQ(Call(kHelperSkbStoreBytes, {skb.meta_addr, 30, src, 4, 0})
                .value(),
            NegErrno(kEFault));
}

TEST_F(HelpersTest, VlanPushPopAdjustsMetadata) {
  xbase::u8 payload[32] = {};
  auto skb = kernel_.net().CreateSkBuff(kernel_.mem(), payload).value();
  ASSERT_TRUE(Call(kHelperSkbVlanPush, {skb.meta_addr, 0x8100, 5, 0, 0})
                  .ok());
  EXPECT_EQ(kernel_.mem()
                .ReadU32(skb.meta_addr + simkern::SkBuffLayout::kLen)
                .value(),
            36u);
  ASSERT_TRUE(Call(kHelperSkbVlanPop, {skb.meta_addr, 0, 0, 0, 0}).ok());
  EXPECT_EQ(kernel_.mem()
                .ReadU32(skb.meta_addr + simkern::SkBuffLayout::kLen)
                .value(),
            32u);
}

TEST_F(HelpersTest, XdpAdjustHeadMovesDataPointer) {
  xbase::u8 payload[32] = {};
  auto skb = kernel_.net().CreateSkBuff(kernel_.mem(), payload).value();
  ASSERT_TRUE(Call(kHelperXdpAdjustHead, {skb.meta_addr, 8, 0, 0, 0}).ok());
  EXPECT_EQ(kernel_.mem()
                .ReadU64(skb.meta_addr + simkern::SkBuffLayout::kDataPtr)
                .value(),
            skb.data_addr + 8);
  // Negative delta (no headroom) fails.
  const u64 neg = static_cast<u64>(-4);
  EXPECT_EQ(Call(kHelperXdpAdjustHead, {skb.meta_addr, neg, 0, 0, 0})
                .value(),
            NegErrno(kEInval));
}

TEST_F(HelpersTest, SpinLockHelperDetectsDoubleAcquire) {
  const int fd = CreateArrayMap(16, 1);
  xbase::u8 key[4] = {};
  const simkern::Addr value =
      bpf_.maps().Find(fd).value()->LookupAddr(kernel_, key).value();
  ASSERT_TRUE(Call(kHelperSpinLock, {value, 0, 0, 0, 0}).ok());
  const auto second = Call(kHelperSpinLock, {value, 0, 0, 0, 0});
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(kernel_.crashed()) << "runtime deadlock is an oops";
}

TEST_F(HelpersTest, FibLookupFillsResult) {
  const simkern::Addr params = MapBuffer(16, "fib");
  EXPECT_EQ(Call(kHelperFibLookup, {0, params, 16, 0, 0}).value(), 0u);
  EXPECT_EQ(kernel_.mem().ReadU32(params).value(), 1u);  // ifindex
}

TEST_F(HelpersTest, CsumDiffComputesDelta) {
  const simkern::Addr from = MapBuffer(4, "from");
  const simkern::Addr to = MapBuffer(4, "to");
  ASSERT_TRUE(kernel_.mem().WriteU32(from, 0x01010101).ok());
  ASSERT_TRUE(kernel_.mem().WriteU32(to, 0x02020202).ok());
  const u64 diff = Call(kHelperCsumDiff, {from, 4, to, 4, 0}).value();
  EXPECT_EQ(diff, 4u);  // +1 per byte
}

}  // namespace
}  // namespace ebpf

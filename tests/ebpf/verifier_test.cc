// Verifier behaviour suite: acceptance/rejection cases for every check the
// verifier implements, the version-gating matrix, and the soundness
// property test (verifier-accepted random programs never fault the kernel).
#include <gtest/gtest.h>

#include "src/analysis/workloads.h"
#include "src/ebpf/asm.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/disasm.h"
#include "src/ebpf/interp.h"
#include "src/ebpf/verifier.h"
#include "src/xbase/rand.h"

namespace ebpf {
namespace {

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest() : bpf_(kernel_) {
    EXPECT_TRUE(kernel_.BootstrapWorkload().ok());
  }

  int MakeArrayMap(u32 value_size, u32 entries) {
    MapSpec spec;
    spec.type = MapType::kArray;
    spec.key_size = 4;
    spec.value_size = value_size;
    spec.max_entries = entries;
    spec.name = "t";
    return bpf_.maps().Create(spec).value();
  }

  xbase::Result<VerifyResult> VerifyProg(
      const Program& prog, simkern::KernelVersion version = simkern::kV5_18,
      bool privileged = true) {
    VerifyOptions opts;
    opts.version = version;
    opts.privileged = privileged;
    opts.faults = &bpf_.faults();
    return Verify(prog, bpf_.maps(), bpf_.helpers(), opts);
  }

  void ExpectRejected(const Program& prog, const std::string& fragment,
                      simkern::KernelVersion version = simkern::kV5_18,
                      bool privileged = true) {
    auto result = VerifyProg(prog, version, privileged);
    ASSERT_FALSE(result.ok()) << "expected rejection: " << fragment;
    EXPECT_NE(result.status().message().find(fragment), std::string::npos)
        << result.status().ToString();
  }

  void ExpectAccepted(const Program& prog,
                      simkern::KernelVersion version = simkern::kV5_18) {
    auto result = VerifyProg(prog, version);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }

  simkern::Kernel kernel_;
  Bpf bpf_;
};

Program Must(xbase::Result<Program> prog) { return std::move(prog).value(); }

// ---- CFG -----------------------------------------------------------------------

TEST_F(VerifierTest, RejectsEmptyProgram) {
  Program prog;
  prog.name = "empty";
  auto result = VerifyProg(prog);
  EXPECT_FALSE(result.ok());
}

TEST_F(VerifierTest, RejectsMissingExit) {
  ProgramBuilder b("noexit", ProgType::kKprobe);
  b.Ins(Mov64Imm(R0, 0));
  ExpectRejected(Must(b.Build()), "past the last instruction");
}

TEST_F(VerifierTest, RejectsJumpOutOfRange) {
  ProgramBuilder b("badjmp", ProgType::kKprobe);
  b.Ins(Mov64Imm(R0, 0)).Ins(JmpImm(BPF_JEQ, R0, 0, 100)).Ins(Exit());
  ExpectRejected(Must(b.Build()), "jump out of range");
}

TEST_F(VerifierTest, RejectsJumpIntoLdImm64) {
  ProgramBuilder b("midld", ProgType::kKprobe);
  b.Ins(JmpImm(BPF_JA, 0, 0, 1))        // jumps to the second ld slot
      .Ins(LdImm64(R1, 0x1122334455667788ULL))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "middle of ld_imm64");
}

TEST_F(VerifierTest, RejectsUnreachableCode) {
  ProgramBuilder b("dead", ProgType::kKprobe);
  b.Ins(Mov64Imm(R0, 0))
      .Ins(Exit())
      .Ins(Mov64Imm(R0, 1))  // unreachable
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "unreachable");
}

TEST_F(VerifierTest, RejectsOversizedUnprivilegedProgram) {
  auto prog = analysis::BuildStraightLine(kMaxProgLenUnpriv + 10);
  simkern::KernelConfig config;
  config.unprivileged_bpf_disabled = false;
  auto result = VerifyProg(prog.value(), simkern::kV5_18,
                           /*privileged=*/false);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("too large"), std::string::npos);
}

// ---- register discipline ----------------------------------------------------------

TEST_F(VerifierTest, RejectsWriteToFramePointer) {
  ProgramBuilder b("wfp", ProgType::kKprobe);
  b.Ins(Mov64Imm(R10, 0)).Ins(Mov64Imm(R0, 0)).Ins(Exit());
  ExpectRejected(Must(b.Build()), "frame pointer");
}

TEST_F(VerifierTest, RejectsUninitR0AtExit) {
  ProgramBuilder b("nor0", ProgType::kKprobe);
  b.Ins(Exit());
  ExpectRejected(Must(b.Build()), "R0 !read_ok");
}

TEST_F(VerifierTest, RejectsArithmeticOnTwoPointers) {
  ProgramBuilder b("ptrptr", ProgType::kKprobe);
  b.Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Reg(BPF_ADD, R2, R10))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "two pointers");
}

TEST_F(VerifierTest, AcceptsPtrSubPtrForPrivileged) {
  ProgramBuilder b("ptrsub", ProgType::kKprobe);
  b.Ins(Mov64Reg(R2, R10))
      .Ins(Mov64Reg(R3, R10))
      .Ins(Alu64Reg(BPF_SUB, R2, R3))
      .Ins(Mov64Reg(R0, R2))
      .Ins(Exit());
  ExpectAccepted(Must(b.Build()));
}

TEST_F(VerifierTest, RejectsDivByConstZero) {
  ProgramBuilder b("div0", ProgType::kKprobe);
  b.Ins(Mov64Imm(R0, 5))
      .Ins(Alu64Imm(BPF_DIV, R0, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "division by zero");
}

TEST_F(VerifierTest, RejectsOversizedConstShift) {
  ProgramBuilder b("shift", ProgType::kKprobe);
  b.Ins(Mov64Imm(R0, 5))
      .Ins(Alu64Imm(BPF_LSH, R0, 64))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "shift");
}

// ---- stack ---------------------------------------------------------------------------

TEST_F(VerifierTest, RejectsReadOfUninitializedStack) {
  ProgramBuilder b("coldread", ProgType::kKprobe);
  b.Ins(LdxMem(BPF_DW, R0, R10, -16)).Ins(Exit());
  ExpectRejected(Must(b.Build()), "invalid read from stack");
}

TEST_F(VerifierTest, SpillPreservesPointerType) {
  // Spill the ctx pointer, fill it back, then use it as ctx: only works if
  // the spill tracked the type.
  ProgramBuilder b("spillptr", ProgType::kXdp);
  b.Ins(StxMem(BPF_DW, R10, R1, -8))
      .Ins(LdxMem(BPF_DW, R2, R10, -8))
      .Ins(LdxMem(BPF_W, R0, R2, 0))  // ctx load via the filled pointer
      .Ins(Exit());
  ExpectAccepted(Must(b.Build()));
}

TEST_F(VerifierTest, PartialOverwriteDowngradesSpill) {
  // Spill ctx ptr, clobber one byte, then try to use it as a pointer.
  ProgramBuilder b("clobber", ProgType::kXdp);
  b.Ins(StxMem(BPF_DW, R10, R1, -8))
      .Ins(StMemImm(BPF_B, R10, -5, 7))
      .Ins(LdxMem(BPF_DW, R2, R10, -8))
      .Ins(LdxMem(BPF_W, R0, R2, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "scalar");
}

TEST_F(VerifierTest, RejectsVariableStackOffset) {
  ProgramBuilder b("varstack", ProgType::kXdp);
  b.Ins(LdxMem(BPF_W, R2, R1, 0))   // unknown scalar
      .Ins(Mov64Reg(R3, R10))
      .Ins(Alu64Reg(BPF_ADD, R3, R2))
      .Ins(StMemImm(BPF_DW, R3, -8, 1))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "variable stack access");
}

// ---- ctx & packet -------------------------------------------------------------------

TEST_F(VerifierTest, RejectsCtxOutOfBounds) {
  ProgramBuilder b("ctxoob", ProgType::kXdp);
  b.Ins(LdxMem(BPF_DW, R0, R1, 128)).Ins(Exit());
  ExpectRejected(Must(b.Build()), "bpf_context");
}

TEST_F(VerifierTest, RejectsCtxWriteForReadOnlyProgTypes) {
  ProgramBuilder b("ctxw", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R1, 0, 1))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "write into ctx");
}

TEST_F(VerifierTest, PacketAccessRequiresRangeCheck) {
  ProgramBuilder b("nopkt", ProgType::kXdp);
  b.Ins(LdxMem(BPF_DW, R2, R1, 8))  // data
      .Ins(LdxMem(BPF_B, R0, R2, 0))  // no compare against data_end!
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "invalid access to packet");
}

TEST_F(VerifierTest, PacketAccessAfterRangeCheckAccepted) {
  ExpectAccepted(Must(analysis::BuildPacketCounter(MakeArrayMap(8, 4))));
}

TEST_F(VerifierTest, PacketRangeDoesNotExtendPastProof) {
  ProgramBuilder b("pastproof", ProgType::kXdp);
  b.Ins(LdxMem(BPF_DW, R2, R1, 8))
      .Ins(LdxMem(BPF_DW, R3, R1, 16))
      .Ins(Mov64Reg(R4, R2))
      .Ins(Alu64Imm(BPF_ADD, R4, 4))
      .JmpRegTo(BPF_JGT, R4, R3, "out")  // proves 4 bytes
      .Ins(LdxMem(BPF_B, R0, R2, 7))     // reads the 8th: too far
      .Ins(Exit())
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "invalid access to packet");
}

TEST_F(VerifierTest, PacketPointersInvalidatedByDataChangingHelper) {
  ProgramBuilder b("invalidate", ProgType::kXdp);
  b.Ins(Mov64Reg(R6, R1))
      .Ins(LdxMem(BPF_DW, R7, R1, 8))
      .Ins(LdxMem(BPF_DW, R3, R1, 16))
      .Ins(Mov64Reg(R4, R7))
      .Ins(Alu64Imm(BPF_ADD, R4, 4))
      .JmpRegTo(BPF_JGT, R4, R3, "out")
      .Ins(Mov64Reg(R1, R6))
      .Ins(CallHelper(kHelperSkbVlanPop))  // changes packet data
      .Ins(LdxMem(BPF_B, R0, R7, 0))       // stale packet pointer
      .Ins(Exit())
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "scalar");
}

// ---- bounds refinement ----------------------------------------------------------------

TEST_F(VerifierTest, BoundsCheckedMapAccessWithVariableIndex) {
  // value_size 64; index from ctx masked to [0, 56]: in bounds.
  const int fd = MakeArrayMap(64, 4);
  ProgramBuilder b("varidx", ProgType::kXdp);
  b.Ins(LdxMem(BPF_W, R6, R1, 0))  // unknown scalar
      .Ins(Alu64Imm(BPF_AND, R6, 56))
      .Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Alu64Reg(BPF_ADD, R0, R6))
      .Ins(LdxMem(BPF_DW, R0, R0, 0))
      .Ins(Exit())
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectAccepted(Must(b.Build()));
}

TEST_F(VerifierTest, UncheckedVariableIndexRejected) {
  const int fd = MakeArrayMap(64, 4);
  ProgramBuilder b("unchecked", ProgType::kXdp);
  b.Ins(LdxMem(BPF_W, R6, R1, 0))  // unbounded scalar
      .Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Alu64Reg(BPF_ADD, R0, R6))
      .Ins(LdxMem(BPF_DW, R0, R0, 0))
      .Ins(Exit())
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "invalid access to map value");
}

TEST_F(VerifierTest, BranchRefinementAllComparators) {
  // For each unsigned comparator: index checked against 8 keeps an access
  // at [0,7] legal in an 8-entry byte array.
  const int fd = MakeArrayMap(8, 4);
  const struct {
    u8 op;
    bool jump_when_bad;  // branch taken = out-of-bounds side
  } cases[] = {
      {BPF_JGE, true},   // if (i >= 8) goto out
      {BPF_JGT, true},   // if (i > 7) goto out
  };
  for (const auto& test_case : cases) {
    ProgramBuilder b("refine", ProgType::kXdp);
    b.Ins(LdxMem(BPF_W, R6, R1, 0))
        .JmpTo(test_case.op, R6,
               test_case.op == BPF_JGE ? 8 : 7, "out")
        .Ins(StMemImm(BPF_W, R10, -4, 0))
        .Ins(LdMapFd(R1, fd))
        .Ins(Mov64Reg(R2, R10))
        .Ins(Alu64Imm(BPF_ADD, R2, -4))
        .Ins(CallHelper(kHelperMapLookupElem))
        .JmpTo(BPF_JEQ, R0, 0, "out")
        .Ins(Alu64Reg(BPF_ADD, R0, R6))
        .Ins(LdxMem(BPF_B, R0, R0, 0))
        .Ins(Exit())
        .Bind("out")
        .Ins(Mov64Imm(R0, 0))
        .Ins(Exit());
    ExpectAccepted(Must(b.Build()));
  }
}

TEST_F(VerifierTest, ImpossibleBranchesArePruned) {
  // if (5 > 7) is never taken; the dead branch contains illegal code that
  // must not be verified.
  ProgramBuilder b("deadbranch", ProgType::kKprobe);
  b.Ins(Mov64Imm(R6, 5))
      .JmpTo(BPF_JGT, R6, 7, "bad")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit())
      .Bind("bad")
      .Ins(LdxMem(BPF_DW, R0, R9, 0))  // would be rejected if explored
      .Ins(Exit());
  ExpectAccepted(Must(b.Build()));
}

TEST_F(VerifierTest, JsetFalseBranchClearsBits) {
  // if (!(i & ~7)) then i <= 7: array access legal.
  const int fd = MakeArrayMap(8, 4);
  ProgramBuilder b("jset", ProgType::kXdp);
  b.Ins(LdxMem(BPF_W, R6, R1, 0))
      .JmpTo(BPF_JSET, R6, ~7, "out")
      .Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Alu64Reg(BPF_ADD, R0, R6))
      .Ins(LdxMem(BPF_B, R0, R0, 0))
      .Ins(Exit())
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectAccepted(Must(b.Build()));
}

TEST_F(VerifierTest, RegRegCompareRefinesAgainstBoundedRegister) {
  // r8 is bounded by an immediate compare (r8 <= 8); the *reg-reg* compare
  // "if r7 >= r8 goto out" must then bound r7 <= r8 - 1 <= 7 on the
  // fallthrough, keeping a byte access at r7 within an 8-byte value.
  // Before endpoint-based reg-reg refinement only reg-vs-immediate
  // compares refined, so this program was (wrongly) rejected.
  const int fd = MakeArrayMap(8, 4);
  const struct {
    u8 op;
    bool taken_is_bad;  // branch taken = out-of-bounds side
  } cases[] = {
      {BPF_JGE, true},   // if (r7 >= r8) goto out;  else r7 < r8
      {BPF_JLT, false},  // if (r7 < r8) goto ok
      {BPF_JSGE, true},  // signed forms: r7, r8 both provably >= 0
      {BPF_JSLT, false},
  };
  for (const auto& test_case : cases) {
    ProgramBuilder b("regreg_refine", ProgType::kXdp);
    b.Ins(StMemImm(BPF_W, R10, -4, 0))
        .Ins(LdMapFd(R1, fd))
        .Ins(Mov64Reg(R2, R10))
        .Ins(Alu64Imm(BPF_ADD, R2, -4))
        .Ins(CallHelper(kHelperMapLookupElem))
        .JmpTo(BPF_JEQ, R0, 0, "out")
        .Ins(Mov64Reg(R9, R0))
        .Ins(LdxMem(BPF_W, R7, R9, 0))
        .Ins(LdxMem(BPF_W, R8, R9, 4))
        .JmpTo(BPF_JGT, R8, 8, "out");  // r8 in [0, 8]
    if (test_case.taken_is_bad) {
      b.JmpRegTo(test_case.op, R7, R8, "out");
    } else {
      b.JmpRegTo(test_case.op, R7, R8, "ok").JaTo("out").Bind("ok");
    }
    b.Ins(Alu64Reg(BPF_ADD, R9, R7))
        .Ins(LdxMem(BPF_B, R0, R9, 0))  // needs r7 <= 7
        .Bind("out")
        .Ins(Mov64Imm(R0, 0))
        .Ins(Exit());
    auto prog = Must(b.Build());
    auto result = VerifyProg(prog);
    EXPECT_TRUE(result.ok())
        << "op " << int{test_case.op} << ": " << result.status().ToString();
  }
}

TEST_F(VerifierTest, RegRegRefinementIsNotOffByOne) {
  // Same shape, but the access needs r7 <= 7 while the compare only
  // proves r7 <= r8 <= 8 (non-strict): must still be rejected. Guards the
  // strict/non-strict distinction the injected
  // verifier.reg_reg_refine_off_by_one fault breaks.
  const int fd = MakeArrayMap(8, 4);
  ProgramBuilder b("regreg_nonstrict", ProgType::kXdp);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R9, R0))
      .Ins(LdxMem(BPF_W, R7, R9, 0))
      .Ins(LdxMem(BPF_W, R8, R9, 4))
      .JmpTo(BPF_JGT, R8, 8, "out")     // r8 in [0, 8]
      .JmpRegTo(BPF_JGT, R7, R8, "out")  // else r7 <= r8, so r7 <= 8: too wide
      .Ins(Alu64Reg(BPF_ADD, R9, R7))
      .Ins(LdxMem(BPF_B, R0, R9, 0))    // needs r7 <= 7
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "invalid access to map value");
}

// ---- helper argument checking ------------------------------------------------------------

TEST_F(VerifierTest, RejectsScalarWhereMapPtrExpected) {
  ProgramBuilder b("badmap", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(Mov64Imm(R1, 1234))  // not a map handle
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "expected=map_ptr");
}

TEST_F(VerifierTest, RejectsUnboundedMemSize) {
  ProgramBuilder b("unboundedsz", ProgType::kXdp);
  b.Ins(LdxMem(BPF_W, R6, R1, 0))
      .Ins(Mov64Reg(R1, R10))
      .Ins(Alu64Imm(BPF_ADD, R1, -8))
      .Ins(StMemImm(BPF_DW, R10, -8, 0))
      .Ins(Mov64Reg(R2, R6))
      .Ins(Alu64Imm(BPF_LSH, R2, 16))  // size can be enormous
      .Ins(CallHelper(kHelperTracePrintk))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "unbounded memory access");
}

TEST_F(VerifierTest, RejectsStaleMapFd) {
  ProgramBuilder b("stale", ProgType::kKprobe);
  b.Ins(LdMapFd(R1, 999))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "not pointing to a valid bpf_map");
}

TEST_F(VerifierTest, HelperClobbersCallerSavedRegs) {
  ProgramBuilder b("clobbered", ProgType::kKprobe);
  b.Ins(Mov64Imm(R3, 7))
      .Ins(CallHelper(kHelperKtimeGetNs))
      .Ins(Mov64Reg(R0, R3))  // r3 died across the call
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "R3 !read_ok");
}

// ---- references & locks -------------------------------------------------------------------

TEST_F(VerifierTest, RejectsUnreleasedSocketReference) {
  ExpectRejected(Must(analysis::BuildSkLookupNoRelease()),
                 "Unreleased reference");
}

TEST_F(VerifierTest, AcceptsBalancedLookupRelease) {
  ExpectAccepted(Must(analysis::BuildSkLookupWithRelease()));
}

TEST_F(VerifierTest, RejectsUseAfterRelease) {
  ProgramBuilder b("uar", ProgType::kXdp);
  b.Ins(Mov64Reg(R6, R1))
      .Ins(StMemImm(BPF_W, R10, -12, 0x0a000001))
      .Ins(StMemImm(BPF_W, R10, -8, 0x0a000002))
      .Ins(StMemImm(BPF_H, R10, -4, 8080))
      .Ins(StMemImm(BPF_H, R10, -2, 40000))
      .Ins(Mov64Reg(R1, R6))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -12))
      .Ins(Mov64Imm(R3, 12))
      .Ins(Mov64Imm(R4, 0))
      .Ins(Mov64Imm(R5, 0))
      .Ins(CallHelper(kHelperSkLookupTcp))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R7, R0))
      .Ins(Mov64Reg(R1, R7))
      .Ins(CallHelper(kHelperSkRelease))
      .Ins(LdxMem(BPF_W, R0, R7, 0))  // released pointer!
      .Ins(Exit())
      .Bind("out")
      .Ins(Mov64Imm(R0, 2))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "scalar");
}

TEST_F(VerifierTest, RejectsDoubleLock) {
  const int fd = MakeArrayMap(16, 1);
  ExpectRejected(Must(analysis::BuildDoubleSpinLock(fd)),
                 "holding a lock");
}

TEST_F(VerifierTest, RejectsExitWithLockHeld) {
  const int fd = MakeArrayMap(16, 1);
  ProgramBuilder b("lockexit", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R1, R0))
      .Ins(CallHelper(kHelperSpinLock))
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "not released");
}

// ---- version gating matrix -------------------------------------------------------------------

TEST_F(VerifierTest, VersionMatrix) {
  const int fd = MakeArrayMap(8, 4);
  // Bounded loop: rejected before v5.3.
  auto loop = analysis::BuildCountedLoop(10);
  EXPECT_FALSE(VerifyProg(loop.value(), simkern::kV4_20).ok());
  EXPECT_FALSE(VerifyProg(loop.value(), simkern::kV5_2).ok());
  EXPECT_TRUE(VerifyProg(loop.value(), simkern::kV5_3).ok());
  EXPECT_TRUE(VerifyProg(loop.value(), simkern::kV5_18).ok());

  // bpf_loop helper: v5.17.
  auto nested = analysis::BuildNestedLoopStall(fd, 1, 4);
  EXPECT_FALSE(VerifyProg(nested.value(), simkern::kV5_15).ok());
  EXPECT_TRUE(VerifyProg(nested.value(), simkern::kV5_17).ok());

  // JMP32: v5.1 (gated with the 32-bit bounds feature at v5.10 here).
  ProgramBuilder b32("jmp32", ProgType::kKprobe);
  b32.Ins(Mov64Imm(R0, 1))
      .Ins(Jmp32Imm(BPF_JEQ, R0, 1, 1))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog32 = b32.Build();
  EXPECT_FALSE(VerifyProg(prog32.value(), simkern::kV5_4).ok());
  EXPECT_TRUE(VerifyProg(prog32.value(), simkern::kV5_18).ok());

  // Insn budget growth: 200k-insn exploration passes only at 1M budget.
  auto big_loop = analysis::BuildCountedLoop(50000);
  EXPECT_FALSE(VerifyProg(big_loop.value(), simkern::kV4_14).ok());
}

// ---- bpf_loop callback verification ---------------------------------------------------------

TEST_F(VerifierTest, CallbackBodyIsVerified) {
  // A callback that dereferences its scalar argument must be rejected even
  // though the main body is clean.
  ProgramBuilder b("badcb", ProgType::kKprobe);
  b.Ins(Mov64Imm(R1, 3))
      .LdFuncTo(R2, "cb")
      .Ins(Mov64Imm(R3, 0))
      .Ins(Mov64Imm(R4, 0))
      .Ins(CallHelper(kHelperLoop))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit())
      .Bind("cb")
      .Ins(LdxMem(BPF_DW, R0, R1, 0))  // r1 is the loop index: a scalar!
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "scalar");
}

TEST_F(VerifierTest, RejectsNonFuncCallbackArg) {
  ProgramBuilder b("scalarcb", ProgType::kKprobe);
  b.Ins(Mov64Imm(R1, 3))
      .Ins(Mov64Imm(R2, 7))  // plain scalar, not a func ref
      .Ins(Mov64Imm(R3, 0))
      .Ins(Mov64Imm(R4, 0))
      .Ins(CallHelper(kHelperLoop))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "expected=func");
}

// ---- BPF-to-BPF calls ------------------------------------------------------------------------

TEST_F(VerifierTest, RejectsTooManyFrames) {
  // 9 nested calls exceed the 8-frame limit.
  ProgramBuilder b("deep", ProgType::kKprobe);
  b.Ins(Mov64Imm(R1, 0)).CallTo("f1").Ins(Exit());
  for (int i = 1; i <= 8; ++i) {
    b.Bind("f" + std::to_string(i));
    if (i < 8) {
      b.CallTo("f" + std::to_string(i + 1));
    } else {
      b.CallTo("f1");  // cycle also trips the frame limit before looping
    }
    b.Ins(Mov64Imm(R0, 0)).Ins(Exit());
  }
  ExpectRejected(Must(b.Build()), "too deep");
}

// ---- leak checks (unprivileged) -----------------------------------------------------------------

TEST_F(VerifierTest, UnprivilegedCannotReturnPointer) {
  const int fd = MakeArrayMap(8, 4);
  auto prog = analysis::BuildPtrLeakExploit(fd);
  ExpectRejected(prog.value(), "leaks addr", simkern::kV5_18,
                 /*privileged=*/false);
  // Privileged programs may (tracing reads kernel addresses routinely).
  ExpectAccepted(prog.value());
}

TEST_F(VerifierTest, UnprivilegedCannotStorePointerToMap) {
  const int fd = MakeArrayMap(8, 4);
  ProgramBuilder b("store", ProgType::kSocketFilter);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(StxMem(BPF_DW, R0, R10, 0))  // store fp into the map value
      .Bind("out")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  ExpectRejected(Must(b.Build()), "leaks addr", simkern::kV5_18,
                 /*privileged=*/false);
}

// ---- soundness property: accepted => safe -----------------------------------------------------

// Random-program fuzz: generate arbitrary instruction sequences; whenever
// the verifier accepts one, executing it must never crash the kernel.
// This is THE verifier contract, tested wholesale.
class VerifierSoundnessTest : public ::testing::TestWithParam<xbase::u64> {};

Insn RandomInsn(xbase::Rng& rng) {
  Insn insn;
  switch (rng.NextBelow(10)) {
    case 0:
      return Mov64Imm(static_cast<u8>(rng.NextBelow(10)),
                      static_cast<s32>(rng.NextU32()));
    case 1:
      return Mov64Reg(static_cast<u8>(rng.NextBelow(10)),
                      static_cast<u8>(rng.NextBelow(11)));
    case 2: {
      static constexpr u8 kOps[] = {BPF_ADD, BPF_SUB, BPF_MUL, BPF_AND,
                                    BPF_OR, BPF_XOR, BPF_RSH, BPF_LSH};
      return Alu64Imm(kOps[rng.NextBelow(8)],
                      static_cast<u8>(rng.NextBelow(10)),
                      static_cast<s32>(rng.NextBelow(63) + 1));
    }
    case 3:
      return Alu64Reg(BPF_ADD, static_cast<u8>(rng.NextBelow(10)),
                      static_cast<u8>(rng.NextBelow(10)));
    case 4:
      return StxMem(BPF_DW, R10, static_cast<u8>(rng.NextBelow(10)),
                    static_cast<s16>(-8 * (1 + rng.NextBelow(8))));
    case 5:
      return LdxMem(BPF_DW, static_cast<u8>(rng.NextBelow(10)), R10,
                    static_cast<s16>(-8 * (1 + rng.NextBelow(8))));
    case 6:
      return LdxMem(BPF_W, static_cast<u8>(rng.NextBelow(10)), R1,
                    static_cast<s16>(4 * rng.NextBelow(20)));
    case 7:
      return JmpImm(BPF_JEQ, static_cast<u8>(rng.NextBelow(10)),
                    static_cast<s32>(rng.NextBelow(16)),
                    static_cast<s16>(rng.NextBelow(6) + 1));
    case 8:
      return StMemImm(BPF_DW, R10,
                      static_cast<s16>(-8 * (1 + rng.NextBelow(8))),
                      static_cast<s32>(rng.NextU32()));
    default:
      return Alu32Imm(BPF_ADD, static_cast<u8>(rng.NextBelow(10)),
                      static_cast<s32>(rng.NextU32()));
  }
}

TEST_P(VerifierSoundnessTest, AcceptedProgramsNeverCrashTheKernel) {
  xbase::Rng rng(GetParam());
  SCOPED_TRACE(::testing::Message() << "rng seed " << rng.seed());
  int accepted = 0;
  for (int trial = 0; trial < 400; ++trial) {
    simkern::Kernel kernel;
    Bpf bpf(kernel);
    Loader loader(bpf);
    ASSERT_TRUE(kernel.BootstrapWorkload().ok());

    Program prog;
    prog.name = "fuzz";
    prog.type = ProgType::kXdp;
    // Validity preamble: initialize every register and stack slot so the
    // random body mostly trips *interesting* checks (bounds, types,
    // control flow) rather than use-before-init.
    for (u8 regno = R0; regno <= R9; ++regno) {
      if (regno != R1) {  // keep the ctx pointer
        prog.insns.push_back(
            Mov64Imm(regno, static_cast<s32>(rng.NextBelow(64))));
      }
    }
    for (int slot = 1; slot <= 8; ++slot) {
      prog.insns.push_back(StMemImm(BPF_DW, R10,
                                    static_cast<s16>(-8 * slot), 0));
    }
    const xbase::u64 len = 4 + rng.NextBelow(28);
    for (xbase::u64 i = 0; i < len; ++i) {
      prog.insns.push_back(RandomInsn(rng));
    }
    prog.insns.push_back(Mov64Imm(R0, 0));
    prog.insns.push_back(Exit());

    auto id = loader.Load(prog);
    if (!id.ok()) {
      continue;  // rejection is always fine
    }
    ++accepted;
    auto loaded = loader.Find(id.value());
    xbase::u8 payload[64] = {};
    auto skb = kernel.net().CreateSkBuff(kernel.mem(), payload);
    ExecOptions opts;
    opts.max_insns = 100000;
    auto result = ebpf::Execute(bpf, *loaded.value(),
                                skb.value().meta_addr, opts, &loader);
    EXPECT_FALSE(kernel.crashed())
        << "VERIFIER SOUNDNESS VIOLATION in trial " << trial << ":\n"
        << DisasmProgram(prog);
    (void)result;
  }
  // The generator must actually exercise the accept path.
  EXPECT_GT(accepted, 5) << "generator produced no verifiable programs";
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierSoundnessTest,
                         ::testing::Values(11, 222, 3333, 44444));

}  // namespace
}  // namespace ebpf

// Exhaustive soundness properties for the tnum algebra (tnum.cc), the
// domain both the verifier and (independently re-derived) staticcheck lean
// on for every bounds claim. For small bit-widths the whole abstract and
// concrete spaces are enumerable: every valid tnum of width W (value/mask
// pairs with value & mask == 0), and for each tnum its full concretization
// via the subset-enumeration identity sub = (sub - mask) & mask.
//
// The property checked everywhere is the soundness contract from
// Vishwanathan et al. (CGO '22): for all va in gamma(a), vb in gamma(b),
// gamma(op#(a, b)) contains op(va, vb) — over genuine 64-bit concrete
// arithmetic, since the small-width values are just 64-bit values that
// happen to be small (carries past bit W must still be covered).
//
// Binary ops run at width 6 by default (729^2 tnum pairs) and at width 8
// (43M pairs, a few minutes) when TNUM_EXHAUSTIVE_8BIT is set in the
// environment; unary ops and TnumRange minimality always run at width 8.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/ebpf/tnum.h"

namespace ebpf {
namespace {

using xbase::s32;
using xbase::s64;
using xbase::u32;
using xbase::u64;
using xbase::u8;

// All valid tnums of the given bit width.
std::vector<Tnum> AllTnums(u32 width) {
  const u64 limit = u64{1} << width;
  std::vector<Tnum> out;
  for (u64 mask = 0; mask < limit; ++mask) {
    for (u64 value = 0; value < limit; ++value) {
      if ((value & mask) == 0) {
        out.push_back(Tnum{value, mask});
      }
    }
  }
  return out;
}

// Every concrete value a tnum admits (2^popcount(mask) members).
std::vector<u64> Concretize(const Tnum& t) {
  std::vector<u64> out;
  u64 sub = 0;
  do {
    out.push_back(t.value | sub);
    sub = (sub - t.mask) & t.mask;
  } while (sub != 0);
  return out;
}

u32 BinaryOpWidth() {
  return std::getenv("TNUM_EXHAUSTIVE_8BIT") != nullptr ? 8 : 6;
}

// Checks gamma(op#(a,b)) ⊇ op(gamma(a), gamma(b)) for one binary op over
// every tnum pair of the width. Reports the first counterexample.
template <typename AbstractOp, typename ConcreteOp>
void CheckBinaryOp(const char* name, AbstractOp abs_op, ConcreteOp conc_op) {
  const std::vector<Tnum> tnums = AllTnums(BinaryOpWidth());
  for (const Tnum& a : tnums) {
    const std::vector<u64> as = Concretize(a);
    for (const Tnum& b : tnums) {
      const Tnum r = abs_op(a, b);
      for (const u64 va : as) {
        for (const u64 vb : Concretize(b)) {
          const u64 cv = conc_op(va, vb);
          if (!r.Contains(cv)) {
            FAIL() << name << "(" << a.ToString() << ", " << b.ToString()
                   << ") = " << r.ToString() << " misses " << name << "("
                   << va << ", " << vb << ") = " << cv;
          }
        }
      }
    }
  }
}

TEST(TnumPropertyTest, AddSound) {
  CheckBinaryOp("add", TnumAdd, [](u64 x, u64 y) { return x + y; });
}

TEST(TnumPropertyTest, SubSound) {
  CheckBinaryOp("sub", TnumSub, [](u64 x, u64 y) { return x - y; });
}

TEST(TnumPropertyTest, AndSound) {
  CheckBinaryOp("and", TnumAnd, [](u64 x, u64 y) { return x & y; });
}

TEST(TnumPropertyTest, OrSound) {
  CheckBinaryOp("or", TnumOr, [](u64 x, u64 y) { return x | y; });
}

TEST(TnumPropertyTest, XorSound) {
  CheckBinaryOp("xor", TnumXor, [](u64 x, u64 y) { return x ^ y; });
}

TEST(TnumPropertyTest, MulSound) {
  CheckBinaryOp("mul", TnumMul, [](u64 x, u64 y) { return x * y; });
}

TEST(TnumPropertyTest, ShiftsSound) {
  const std::vector<Tnum> tnums = AllTnums(8);
  for (const Tnum& a : tnums) {
    const std::vector<u64> as = Concretize(a);
    for (const u8 shift : {0, 1, 2, 3, 7, 8, 31, 63}) {
      const Tnum shl = TnumLshift(a, shift);
      const Tnum shr = TnumRshift(a, shift);
      for (const u64 va : as) {
        EXPECT_TRUE(shl.Contains(va << shift))
            << "lsh " << a.ToString() << " << " << int{shift} << " at " << va;
        EXPECT_TRUE(shr.Contains(va >> shift))
            << "rsh " << a.ToString() << " >> " << int{shift} << " at " << va;
      }
    }
  }
}

TEST(TnumPropertyTest, ArshiftSound) {
  // Left-align the 8-bit patterns so bit 7 becomes the real sign bit —
  // otherwise an exhaustive small-width sweep never exercises the
  // sign-extension path the CVE-2017-16995 class lives in.
  const std::vector<Tnum> tnums = AllTnums(8);
  for (const Tnum& a : tnums) {
    const Tnum hi64 = TnumLshift(a, 56);
    const Tnum hi32 = TnumLshift(a, 24);
    for (const u8 shift : {0, 1, 7, 8, 31}) {
      const Tnum r64 = TnumArshift(hi64, shift, 64);
      const Tnum r32 = TnumArshift(hi32, shift, 32);
      for (const u64 va : Concretize(a)) {
        const u64 c64 = static_cast<u64>(static_cast<s64>(va << 56) >> shift);
        const u64 c32 = static_cast<u32>(
            static_cast<s32>(static_cast<u32>(va << 24)) >> shift);
        EXPECT_TRUE(r64.Contains(c64))
            << "arsh64 " << hi64.ToString() << " >> " << int{shift};
        EXPECT_TRUE(r32.Contains(c32))
            << "arsh32 " << hi32.ToString() << " >> " << int{shift};
      }
    }
  }
}

TEST(TnumPropertyTest, CastSound) {
  const std::vector<Tnum> tnums = AllTnums(8);
  for (const Tnum& a : tnums) {
    // Lift the 8-bit pattern across a byte boundary so casts truncate.
    const Tnum wide = TnumLshift(a, 4);
    for (const u8 size : {1, 2, 4}) {
      const Tnum r = TnumCast(wide, size);
      const u64 keep = (u64{1} << (size * 8)) - 1;
      for (const u64 va : Concretize(a)) {
        EXPECT_TRUE(r.Contains((va << 4) & keep))
            << "cast" << int{size} << " " << wide.ToString();
      }
    }
  }
}

TEST(TnumPropertyTest, IntersectSoundOnConsistentPairs) {
  // Whenever a value is in both concretizations, it must survive the
  // intersection (TnumIntersect's contract only covers consistent pairs).
  const std::vector<Tnum> tnums = AllTnums(6);
  for (const Tnum& a : tnums) {
    for (const Tnum& b : tnums) {
      const Tnum r = TnumIntersect(a, b);
      for (const u64 v : Concretize(a)) {
        if (b.Contains(v)) {
          EXPECT_TRUE(r.Contains(v))
              << "intersect(" << a.ToString() << ", " << b.ToString()
              << ") dropped " << v;
        }
      }
    }
  }
}

TEST(TnumPropertyTest, TnumInMatchesSubsetRelation) {
  const std::vector<Tnum> tnums = AllTnums(6);
  for (const Tnum& a : tnums) {
    for (const Tnum& b : tnums) {
      bool subset = true;
      for (const u64 v : Concretize(b)) {
        if (!a.Contains(v)) {
          subset = false;
          break;
        }
      }
      EXPECT_EQ(TnumIn(a, b), subset)
          << "TnumIn(" << a.ToString() << ", " << b.ToString() << ")";
    }
  }
}

TEST(TnumPropertyTest, RangeSoundAndMinimal) {
  // TnumRange(min, max) must admit every value in [min, max], and must be
  // the *smallest* such tnum: high bits above the first min/max divergence
  // are known, everything below is unknown (any tighter tnum would exclude
  // some value in the interval).
  for (u64 min = 0; min < 256; ++min) {
    for (u64 max = min; max < 256; ++max) {
      const Tnum r = TnumRange(min, max);
      for (u64 v = min; v <= max; ++v) {
        ASSERT_TRUE(r.Contains(v))
            << "range[" << min << "," << max << "] misses " << v;
      }
      u64 expect_mask = 0;
      u64 diff = min ^ max;
      while (diff != 0) {
        expect_mask = (expect_mask << 1) | 1;
        diff >>= 1;
      }
      EXPECT_EQ(r.mask, expect_mask) << "range[" << min << "," << max << "]";
      EXPECT_EQ(r.value, min & ~expect_mask)
          << "range[" << min << "," << max << "]";
    }
  }
}

}  // namespace
}  // namespace ebpf

// Regression tests for the load-path correctness fixes that rode along with
// the admission pipeline:
//
//   - Unload refuses while hook attachments reference the program (the
//     use-after-unload bug: the registry used to erase the entry and leave
//     the attachment dangling);
//   - the staticcheck gate fails closed on an inconsistent Report (errors()
//     counted > 0 but no finding carries Severity::kError);
//   - FaultRegistry bumps its epoch on every membership change (the verdict
//     cache's invalidation signal);
//   - program id allocation survives wraparound without handing out 0 or a
//     live id.
#include <gtest/gtest.h>

#include <set>

#include "src/core/hooks.h"
#include "src/ebpf/asm.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/fault.h"
#include "src/ebpf/loader.h"

namespace ebpf {
namespace {

ebpf::Program ConstProg(s32 verdict) {
  ProgramBuilder b("const", ProgType::kSyscall);
  b.Ins(Mov64Imm(R0, verdict)).Ins(Exit());
  return b.Build().value();
}

class LoaderGuardTest : public ::testing::Test {
 protected:
  LoaderGuardTest() : bpf_(kernel_), loader_(bpf_) {
    EXPECT_TRUE(kernel_.BootstrapWorkload().ok());
  }

  simkern::Kernel kernel_;
  Bpf bpf_;
  Loader loader_;
};

// The use-after-unload regression: before the fix, Unload erased the
// program while a hook attachment still referenced its id, so the next
// Fire dispatched into a dead entry.
TEST_F(LoaderGuardTest, UnloadRefusesWhileAttached) {
  auto runtime = safex::Runtime::Create(kernel_, bpf_).value();
  safex::ExtLoader ext_loader(*runtime);
  safex::HookRegistry hooks(bpf_, loader_, ext_loader);

  const u32 id = loader_.Load(ConstProg(7)).value();
  const u32 attachment =
      hooks.AttachProgram(safex::HookPoint::kSyscallEnter, id).value();

  // Attached: unload must refuse, and the program must stay loaded.
  const xbase::Status refused = loader_.Unload(id);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), xbase::Code::kFailedPrecondition);
  EXPECT_TRUE(loader_.Find(id).ok());

  // The attachment still fires against a live program after the refused
  // unload — this is the dangling dispatch the guard exists to prevent.
  auto ctx = kernel_.mem()
                 .Map(64, simkern::MemPerm::kReadWrite,
                      simkern::RegionKind::kKernelData, "guard-ctx")
                 .value();
  auto report = hooks.Fire(safex::HookPoint::kSyscallEnter, ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().served, 1u);

  // Detached: unload proceeds and the id becomes unreachable.
  EXPECT_TRUE(hooks.Detach(attachment).ok());
  EXPECT_TRUE(loader_.Unload(id).ok());
  EXPECT_FALSE(loader_.Find(id).ok());
}

TEST_F(LoaderGuardTest, DoubleAttachCountsBothPins) {
  auto runtime = safex::Runtime::Create(kernel_, bpf_).value();
  safex::ExtLoader ext_loader(*runtime);
  safex::HookRegistry hooks(bpf_, loader_, ext_loader);

  const u32 id = loader_.Load(ConstProg(1)).value();
  const u32 a1 =
      hooks.AttachProgram(safex::HookPoint::kSyscallEnter, id).value();
  const u32 a2 =
      hooks.AttachProgram(safex::HookPoint::kXdpIngress, id).value();

  EXPECT_FALSE(loader_.Unload(id).ok());
  EXPECT_TRUE(hooks.Detach(a1).ok());
  EXPECT_FALSE(loader_.Unload(id).ok());  // one attachment remains
  EXPECT_TRUE(hooks.Detach(a2).ok());
  EXPECT_TRUE(loader_.Unload(id).ok());
}

// The inconsistent-Report regression: a Report whose errors() count is
// positive but whose findings list carries no kError entry used to slip
// past the gate (the code looked for the first kError finding and, not
// finding one, fell through to "accepted").
TEST(StaticcheckGateTest, InconsistentReportFailsClosed) {
  std::vector<staticcheck::Finding> findings;
  staticcheck::Finding warning;
  warning.severity = staticcheck::Severity::kWarning;
  warning.message = "advisory only";
  findings.push_back(warning);

  // errors() claims one error, but no finding is error-severity.
  const xbase::Status status = StaticcheckGate(1, findings);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("inconsistent"), std::string::npos);

  // Same shape with an empty findings list.
  EXPECT_FALSE(StaticcheckGate(1, {}).ok());
}

TEST(StaticcheckGateTest, CleanAndErrorReports) {
  EXPECT_TRUE(StaticcheckGate(0, {}).ok());

  std::vector<staticcheck::Finding> findings;
  staticcheck::Finding error;
  error.severity = staticcheck::Severity::kError;
  error.message = "stack depth exceeded";
  findings.push_back(error);
  const xbase::Status status = StaticcheckGate(1, findings);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("stack depth exceeded"),
            std::string::npos);
}

// The epoch regression: FaultRegistry had no generation counter, so a
// verdict cache keyed only on program bytes served stale "safe" verdicts
// across fault toggles. Every membership change must move the epoch;
// redundant operations must not.
TEST(FaultEpochTest, EpochMovesOnEveryMembershipChange) {
  FaultRegistry faults;
  const xbase::u64 e0 = faults.epoch();

  faults.Inject(kFaultVerifierScalarBounds);
  const xbase::u64 e1 = faults.epoch();
  EXPECT_NE(e1, e0);

  faults.Inject(kFaultVerifierScalarBounds);  // already active: no change
  EXPECT_EQ(faults.epoch(), e1);

  faults.Clear(kFaultVerifierScalarBounds);
  const xbase::u64 e2 = faults.epoch();
  EXPECT_NE(e2, e1);

  faults.Clear(kFaultVerifierScalarBounds);  // already clear: no change
  EXPECT_EQ(faults.epoch(), e2);

  faults.Inject(kFaultJitBranchOffByOne);
  faults.Inject(kFaultHelperArrayOverflow);
  const xbase::u64 e3 = faults.epoch();
  EXPECT_EQ(faults.active_count(), 2u);
  faults.ClearAll();
  EXPECT_NE(faults.epoch(), e3);
  EXPECT_EQ(faults.active_count(), 0u);
  faults.ClearAll();  // already empty: no change
  EXPECT_EQ(faults.epoch(), e3 + 1);

  // Non-catalog ids take the fallback path but obey the same contract.
  faults.Inject("verifier.some_future_defect");
  const xbase::u64 e4 = faults.epoch();
  EXPECT_NE(e4, e3 + 1);
  EXPECT_TRUE(faults.IsActive("verifier.some_future_defect"));
  faults.Clear("verifier.some_future_defect");
  EXPECT_NE(faults.epoch(), e4);
}

// The wraparound regression: next_id_ was a bare counter. Positioned just
// below the 32-bit ceiling it must wrap past 0, and never re-issue an id
// that is still loaded.
TEST_F(LoaderGuardTest, IdAllocationSurvivesWraparound) {
  const ebpf::Program prog = ConstProg(3);

  // Park a program at id 1 — after the wrap, the allocator must skip it.
  const u32 first = loader_.Load(prog).value();
  EXPECT_EQ(first, 1u);

  loader_.SetNextIdForTest(0xFFFFFFFE);
  const u32 a = loader_.Load(prog).value();
  const u32 b = loader_.Load(prog).value();
  const u32 c = loader_.Load(prog).value();
  EXPECT_EQ(a, 0xFFFFFFFEu);
  EXPECT_EQ(b, 0xFFFFFFFFu);
  // Wrapped: 0 is never issued, and 1 is still live, so the next free id
  // is 2.
  EXPECT_EQ(c, 2u);

  const std::set<u32> ids = {first, a, b, c};
  EXPECT_EQ(ids.size(), 4u);
  for (const u32 id : ids) {
    EXPECT_TRUE(loader_.Find(id).ok());
  }
}

TEST_F(LoaderGuardTest, IdChurnNeverCollidesWithLiveIds) {
  const ebpf::Program prog = ConstProg(4);
  std::set<u32> live;
  // Churn across the wrap point: load two, unload the older, repeatedly.
  loader_.SetNextIdForTest(0xFFFFFFF0);
  std::vector<u32> window;
  for (int i = 0; i < 64; ++i) {
    const u32 id = loader_.Load(prog).value();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(live.insert(id).second)
        << "id " << id << " issued while still live";
    window.push_back(id);
    if (window.size() > 8) {
      const u32 victim = window.front();
      window.erase(window.begin());
      EXPECT_TRUE(loader_.Unload(victim).ok());
      live.erase(victim);
    }
  }
  EXPECT_EQ(loader_.size(), live.size());
}

}  // namespace
}  // namespace ebpf

// Interpreter semantics: every ALU op (64- and 32-bit), byteswaps, jump
// comparators, division corner cases, tail-call limits, register poisoning
// across helper calls, and the harness fuel cap.
#include <gtest/gtest.h>

#include "src/ebpf/asm.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/interp.h"
#include "src/ebpf/loader.h"
#include "src/xbase/bytes.h"

namespace ebpf {
namespace {

class InterpTest : public ::testing::Test {
 protected:
  InterpTest() : bpf_(kernel_), loader_(bpf_) {
    EXPECT_TRUE(kernel_.BootstrapWorkload().ok());
    ctx_ = kernel_.mem()
               .Map(64, simkern::MemPerm::kReadWrite,
                    simkern::RegionKind::kKernelData, "ctx")
               .value();
  }

  // Runs a program fragment that leaves its answer in r0.
  u64 Run(ProgramBuilder& b) {
    auto prog = b.Build();
    EXPECT_TRUE(prog.ok());
    auto id = loader_.Load(prog.value());
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    auto loaded = loader_.Find(id.value());
    auto result = Execute(bpf_, *loaded.value(), ctx_, {}, &loader_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result.value().r0 : ~u64{0};
  }

  simkern::Kernel kernel_;
  Bpf bpf_;
  Loader loader_;
  simkern::Addr ctx_ = 0;
};

struct AluCase {
  u8 op;
  s64 lhs;
  s64 rhs;
  u64 expect64;
  u64 expect32;
};

class AluTest : public InterpTest,
                public ::testing::WithParamInterface<AluCase> {};

TEST_P(AluTest, Alu64AndAlu32Semantics) {
  const AluCase& test_case = GetParam();
  // A zero divisor is loaded through the (zeroed) ctx so the verifier's
  // constant-folding cannot see it — div-by-zero is a *runtime* semantic
  // here, like the kernel's patched runtime check.
  const bool rhs_via_ctx =
      test_case.rhs == 0 &&
      (test_case.op == BPF_DIV || test_case.op == BPF_MOD);
  const bool is_shift = test_case.op == BPF_LSH ||
                        test_case.op == BPF_RSH ||
                        test_case.op == BPF_ARSH;
  for (const bool is64 : {true, false}) {
    if (!is64 && is_shift && test_case.rhs >= 32) {
      // A 32-bit shift by >= 32 is rejected by the verifier (correctly);
      // there is nothing to execute.
      continue;
    }
    ProgramBuilder b("alu", ProgType::kKprobe);
    b.Ins(Mov64Reg(R6, R1));
    b.Ins(LdImm64(R0, static_cast<u64>(test_case.lhs)));
    if (rhs_via_ctx) {
      b.Ins(LdxMem(BPF_DW, R1, R6, 0));  // reads 0, unknown to verifier
    } else {
      b.Ins(LdImm64(R1, static_cast<u64>(test_case.rhs)));
    }
    b.Ins(is64 ? Alu64Reg(test_case.op, R0, R1)
               : Alu32Reg(test_case.op, R0, R1))
        .Ins(Exit());
    EXPECT_EQ(Run(b), is64 ? test_case.expect64 : test_case.expect32)
        << (is64 ? "64" : "32") << "-bit op " << int{test_case.op};
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluTest,
    ::testing::Values(
        // op, lhs, rhs, 64-bit result, 32-bit result (zero-extended)
        AluCase{BPF_ADD, 7, 5, 12, 12},
        AluCase{BPF_ADD, -1, 1, 0, 0},  // wrap in 32-bit: 0xffffffff+1 = 0
        AluCase{BPF_SUB, 5, 7, static_cast<u64>(-2), 0xfffffffeu},
        AluCase{BPF_MUL, 1 << 20, 1 << 20, 1ULL << 40, 0},
        AluCase{BPF_DIV, 42, 5, 8, 8},
        AluCase{BPF_DIV, 42, 0, 0, 0},  // div by zero yields 0
        AluCase{BPF_MOD, 42, 5, 2, 2},
        AluCase{BPF_MOD, 42, 0, 42, 42},  // mod by zero: dst unchanged
        AluCase{BPF_AND, 0xff00ff, 0x0ff0f0, 0x0f00f0, 0x0f00f0},
        AluCase{BPF_OR, 0xf0, 0x0f, 0xff, 0xff},
        AluCase{BPF_XOR, 0xff, 0x0f, 0xf0, 0xf0},
        AluCase{BPF_LSH, 1, 40, 1ULL << 40, 1 << 8},  // 32-bit masks shift
        AluCase{BPF_RSH, -1, 60, 15, 0xf},
        AluCase{BPF_ARSH, -16, 2, static_cast<u64>(-4), 0xfffffffcu}));

TEST_F(InterpTest, NegAndByteswap) {
  {
    ProgramBuilder b("neg", ProgType::kKprobe);
    b.Ins(Mov64Imm(R0, 5)).Ins(Neg64(R0)).Ins(Exit());
    EXPECT_EQ(Run(b), static_cast<u64>(-5));
  }
  {
    // to-be16 of 0x1234 -> 0x3412.
    ProgramBuilder b("be16", ProgType::kKprobe);
    b.Ins(Mov64Imm(R0, 0x1234))
        .Ins(Insn{static_cast<u8>(BPF_ALU | BPF_END | BPF_X), R0, 0, 0, 16})
        .Ins(Exit());
    EXPECT_EQ(Run(b), 0x3412u);
  }
  {
    // to-le32 truncates on the little-endian simulation.
    ProgramBuilder b("le32", ProgType::kKprobe);
    b.Ins(LdImm64(R0, 0x1122334455667788ULL))
        .Ins(Insn{static_cast<u8>(BPF_ALU | BPF_END | BPF_K), R0, 0, 0, 32})
        .Ins(Exit());
    EXPECT_EQ(Run(b), 0x55667788u);
  }
}

struct JmpCase {
  u8 op;
  s64 lhs;
  s64 rhs;
  bool taken;
};

class JmpTest : public InterpTest,
                public ::testing::WithParamInterface<JmpCase> {};

TEST_P(JmpTest, ComparatorSemantics) {
  const JmpCase& test_case = GetParam();
  ProgramBuilder b("jmp", ProgType::kKprobe);
  b.Ins(LdImm64(R1, static_cast<u64>(test_case.lhs)))
      .Ins(LdImm64(R2, static_cast<u64>(test_case.rhs)))
      .JmpRegTo(test_case.op, R1, R2, "taken")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit())
      .Bind("taken")
      .Ins(Mov64Imm(R0, 1))
      .Ins(Exit());
  EXPECT_EQ(Run(b), test_case.taken ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, JmpTest,
    ::testing::Values(JmpCase{BPF_JEQ, 5, 5, true},
                      JmpCase{BPF_JEQ, 5, 6, false},
                      JmpCase{BPF_JNE, 5, 6, true},
                      JmpCase{BPF_JGT, -1, 1, true},   // unsigned!
                      JmpCase{BPF_JSGT, -1, 1, false}, // signed
                      JmpCase{BPF_JGE, 5, 5, true},
                      JmpCase{BPF_JLT, 1, -1, true},
                      JmpCase{BPF_JLE, 5, 5, true},
                      JmpCase{BPF_JSLT, -2, -1, true},
                      JmpCase{BPF_JSLE, -1, -1, true},
                      JmpCase{BPF_JSET, 0b1010, 0b0010, true},
                      JmpCase{BPF_JSET, 0b1010, 0b0101, false}));

TEST_F(InterpTest, ScratchRegistersArePoisonedAcrossHelperCalls) {
  // The verifier rejects reads of r1-r5 after a call; the interpreter also
  // poisons them so a (hypothetically mis-verified) program fails loudly.
  ProgramBuilder b("poison", ProgType::kKprobe);
  b.Ins(CallHelper(kHelperKtimeGetNs))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  auto id = loader_.Load(prog.value());
  ASSERT_TRUE(id.ok());
  auto loaded = loader_.Find(id.value());
  auto result = Execute(bpf_, *loaded.value(), ctx_, {}, &loader_);
  ASSERT_TRUE(result.ok());
}

TEST_F(InterpTest, FuelCapTerminatesRunawayProgram) {
  ProgramBuilder b("spin", ProgType::kKprobe);
  b.Ins(Mov64Imm(R0, 0)).Bind("top").JaTo("top");
  auto prog = b.Build();
  auto id = loader_.Load(prog.value());
  ASSERT_FALSE(id.ok());  // v5.18 rejects: infinite loop, budget blown

  // Load at a "buggy" state: disable the budget by using a tiny program
  // that the verifier accepts but runs long (bpf_loop).
  // Covered by sec22; here assert the cap status code directly.
  ExecOptions opts;
  opts.max_insns = 100;
  ProgramBuilder ok_b("finite", ProgType::kKprobe);
  ok_b.Ins(Mov64Imm(R6, 0))
      .Ins(Mov64Imm(R0, 0))
      .Bind("top")
      .JmpTo(BPF_JGE, R6, 1000, "done")
      .Ins(Alu64Imm(BPF_ADD, R6, 1))
      .JaTo("top")
      .Bind("done")
      .Ins(Exit());
  auto ok_prog = ok_b.Build();
  auto ok_id = loader_.Load(ok_prog.value());
  ASSERT_TRUE(ok_id.ok());
  auto loaded = loader_.Find(ok_id.value());
  auto result = Execute(bpf_, *loaded.value(), ctx_, opts, &loader_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), xbase::Code::kTerminated);
}

TEST_F(InterpTest, SimulatedTimeAdvancesWithExecution) {
  const u64 before = kernel_.clock().now_ns();
  ProgramBuilder b("clocked", ProgType::kKprobe);
  b.Ins(Mov64Imm(R6, 0))
      .Ins(Mov64Imm(R0, 0))
      .Bind("top")
      .JmpTo(BPF_JGE, R6, 100, "done")
      .Ins(Alu64Imm(BPF_ADD, R6, 1))
      .JaTo("top")
      .Bind("done")
      .Ins(Exit());
  Run(b);
  EXPECT_GT(kernel_.clock().now_ns(), before + 300);
}

TEST_F(InterpTest, TailCallLimitFallsThrough) {
  // A program that tail-calls itself: the 33-call limit makes the helper
  // fail eventually and execution falls through to exit.
  MapSpec spec;
  spec.type = MapType::kProgArray;
  spec.key_size = 4;
  spec.value_size = 4;
  spec.max_entries = 1;
  spec.name = "selfjmp";
  const int fd = bpf_.maps().Create(spec).value();

  ProgramBuilder b("self", ProgType::kKprobe);
  b.Ins(Mov64Reg(R1, R1))
      .Ins(LdMapFd(R2, fd))
      .Ins(Mov64Imm(R3, 0))
      .Ins(CallHelper(kHelperTailCall))
      .Ins(Mov64Imm(R0, 77))
      .Ins(Exit());
  auto prog = b.Build();
  auto id = loader_.Load(prog.value());
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Point the slot at itself.
  auto map = bpf_.maps().Find(fd);
  xbase::u8 key[4] = {};
  xbase::u8 value[4];
  xbase::StoreLe32(value, id.value());
  ASSERT_TRUE(map.value()->Update(kernel_, key, value, kBpfAny).ok());

  auto loaded = loader_.Find(id.value());
  auto result = Execute(bpf_, *loaded.value(), ctx_, {}, &loader_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().r0, 77u);
  EXPECT_EQ(result.value().stats.tail_calls, kMaxTailCallDepth);
}

TEST_F(InterpTest, RunsUnderRcuReadLock) {
  ProgramBuilder b("rcu", ProgType::kKprobe);
  b.Ins(Mov64Imm(R0, 0)).Ins(Exit());
  Run(b);
  EXPECT_FALSE(kernel_.rcu().InCriticalSection())
      << "lock must be released after execution";
}

TEST_F(InterpTest, ExecStatsAreAccurate) {
  ProgramBuilder b("stats", ProgType::kKprobe);
  b.Ins(Mov64Imm(R0, 0))
      .Ins(CallHelper(kHelperKtimeGetNs))
      .Ins(CallHelper(kHelperGetSmpProcessorId))
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit());
  auto prog = b.Build();
  auto id = loader_.Load(prog.value());
  auto loaded = loader_.Find(id.value());
  auto result = Execute(bpf_, *loaded.value(), ctx_, {}, &loader_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.insns, 5u);
  EXPECT_EQ(result.value().stats.helper_calls, 2u);
}

TEST_F(InterpTest, PercpuSlotsDoNotAliasAcrossExecutingCpus) {
  // Regression for the LookupAddr cpu-0 hardcode: an execution pinned to
  // cpu N must read and write cpu N's slot, on both engines.
  MapSpec spec;
  spec.type = MapType::kPercpuArray;
  spec.key_size = 4;
  spec.value_size = 8;
  spec.max_entries = 1;
  spec.name = "percpu";
  const int fd = bpf_.maps().Create(spec).value();

  // Writes (smp_processor_id + 1) into this CPU's slot; returns the same.
  ProgramBuilder b("percpu", ProgType::kKprobe);
  b.Ins(StMemImm(BPF_W, R10, -4, 0))
      .Ins(LdMapFd(R1, fd))
      .Ins(Mov64Reg(R2, R10))
      .Ins(Alu64Imm(BPF_ADD, R2, -4))
      .Ins(CallHelper(kHelperMapLookupElem))
      .JmpTo(BPF_JEQ, R0, 0, "out")
      .Ins(Mov64Reg(R6, R0))
      .Ins(CallHelper(kHelperGetSmpProcessorId))
      .Ins(Alu64Imm(BPF_ADD, R0, 1))
      .Ins(StxMem(BPF_DW, R6, R0, 0))
      .Bind("out")
      .Ins(Exit());
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  auto id = loader_.Load(prog.value());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto loaded = loader_.Find(id.value());

  for (const ExecEngine engine : {ExecEngine::kThreaded, ExecEngine::kLegacy}) {
    for (u32 cpu = 0; cpu < kernel_.config().num_cpus; ++cpu) {
      ExecOptions opts;
      opts.engine = engine;
      opts.cpu = cpu;
      auto result = Execute(bpf_, *loaded.value(), ctx_, opts, &loader_);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result.value().r0, cpu + 1u);
    }
    auto* map = dynamic_cast<PercpuArrayMap*>(bpf_.maps().Find(fd).value());
    ASSERT_NE(map, nullptr);
    xbase::u8 key[4] = {};
    for (u32 cpu = 0; cpu < kernel_.config().num_cpus; ++cpu) {
      const auto addr = map->LookupAddrForCpu(key, cpu);
      ASSERT_TRUE(addr.ok());
      const auto value = kernel_.mem().ReadU64(addr.value());
      ASSERT_TRUE(value.ok());
      EXPECT_EQ(value.value(), cpu + 1u)
          << "cpu " << cpu << " slot aliased under engine "
          << static_cast<int>(engine);
    }
  }
}

}  // namespace
}  // namespace ebpf

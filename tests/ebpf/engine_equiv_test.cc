// Differential test for the two execution engines: the pre-decoded
// threaded engine must be observationally identical to the legacy
// decode-per-step interpreter. Identical means *everything* the harness
// can observe: load verdict, execution status, r0, the full ExecStats
// block (instruction count, helper calls, simulated time, frame depth),
// map end-state bytes, and the per-instruction tracer stream (pc plus all
// eleven registers before each instruction executes).
//
// The corpus is the rangefuzz generator's — boundary-biased ALU, forward
// branches, stack spills and map accesses — so the spine the threaded
// engine optimizes is exactly what gets cross-checked.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "src/analysis/rangefuzz.h"
#include "src/analysis/workloads.h"
#include "src/ebpf/asm.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/interp.h"
#include "src/ebpf/jit.h"
#include "src/ebpf/loader.h"
#include "src/xbase/strfmt.h"

namespace ebpf {
namespace {

using xbase::u32;
using xbase::u64;
using xbase::u8;

constexpr u64 kMasterSeeds[] = {1, 42, 1337};
constexpr u32 kProgramsPerSeed = 200;  // 600 generated; >= 500 must execute
constexpr u32 kBodyLen = 24;

u64 Mix(u64 x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  return x ^ (x >> 33);
}

struct TraceEntry {
  u32 pc = 0;
  std::array<u64, kNumRegs> regs{};

  bool operator==(const TraceEntry& other) const = default;
};

class RecordingTracer : public InsnTracer {
 public:
  void OnInsn(u32 pc, const u64* regs) override {
    TraceEntry entry;
    entry.pc = pc;
    std::copy(regs, regs + kNumRegs, entry.regs.begin());
    trace.push_back(entry);
  }

  std::vector<TraceEntry> trace;
};

// Everything one engine run exposes to the harness.
struct EngineRun {
  bool load_ok = false;
  std::string load_status;
  bool exec_ok = false;
  std::string exec_status;
  u64 r0 = 0;
  ExecStats stats;
  std::array<u8, analysis::kRangeFuzzValueSize> map_end{};
  std::vector<TraceEntry> trace;
};

EngineRun RunOn(u64 program_seed, ExecEngine engine) {
  EngineRun run;
  simkern::Kernel kernel;
  Bpf bpf(kernel);
  Loader loader(bpf);
  EXPECT_TRUE(kernel.BootstrapWorkload().ok());

  MapSpec spec;
  spec.type = MapType::kArray;
  spec.key_size = 4;
  spec.value_size = analysis::kRangeFuzzValueSize;
  spec.max_entries = 1;
  spec.name = "equiv";
  const int fd = bpf.maps().Create(spec).value();

  // Deterministic per-program initial map value: both engines start from
  // the same unknown-scalar world.
  std::array<u8, analysis::kRangeFuzzValueSize> value{};
  for (xbase::usize i = 0; i < value.size(); i += 8) {
    const u64 word = Mix(program_seed + i);
    std::memcpy(value.data() + i, &word, 8);
  }
  Map* map = bpf.maps().Find(fd).value();
  const u32 key = 0;
  EXPECT_TRUE(map->Update(kernel,
                          std::span<const u8>(
                              reinterpret_cast<const u8*>(&key), sizeof(key)),
                          value, kBpfAny)
                  .ok());

  auto prog = analysis::BuildFuzzProgram(program_seed, fd, kBodyLen, "equiv");
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  auto id = loader.Load(prog.value());
  run.load_ok = id.ok();
  run.load_status = id.ok() ? "" : id.status().ToString();
  if (!id.ok()) {
    return run;
  }

  auto ctx = kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                              simkern::RegionKind::kKernelData, "ctx");
  RecordingTracer tracer;
  ExecOptions opts;
  opts.engine = engine;
  opts.tracer = &tracer;
  auto loaded = loader.Find(id.value());
  auto result = Execute(bpf, *loaded.value(), ctx.value(), opts, &loader);
  run.exec_ok = result.ok();
  run.exec_status = result.ok() ? "" : result.status().ToString();
  if (result.ok()) {
    run.r0 = result.value().r0;
    run.stats = result.value().stats;
  }
  run.trace = std::move(tracer.trace);

  auto addr = map->LookupAddr(
      kernel,
      std::span<const u8>(reinterpret_cast<const u8*>(&key), sizeof(key)));
  EXPECT_TRUE(addr.ok());
  EXPECT_TRUE(kernel.mem().Read(addr.value(), run.map_end).ok());
  return run;
}

// The full corpus: every observable of the threaded run must equal the
// legacy run, byte for byte.
TEST(EngineEquivalence, RangefuzzCorpusIsObservationallyIdentical) {
  u32 generated = 0;
  u32 executed = 0;
  for (const u64 master_seed : kMasterSeeds) {
    for (const u64 program_seed :
         analysis::FuzzProgramSeeds(master_seed, kProgramsPerSeed)) {
      ++generated;
      const EngineRun threaded = RunOn(program_seed, ExecEngine::kThreaded);
      const EngineRun legacy = RunOn(program_seed, ExecEngine::kLegacy);
      const std::string label = xbase::StrFormat(
          "program_seed=%llu", static_cast<unsigned long long>(program_seed));

      ASSERT_EQ(threaded.load_ok, legacy.load_ok) << label;
      ASSERT_EQ(threaded.load_status, legacy.load_status) << label;
      if (!threaded.load_ok) {
        continue;  // same rejection on both sides: equivalent
      }
      ++executed;
      ASSERT_EQ(threaded.exec_ok, legacy.exec_ok) << label;
      ASSERT_EQ(threaded.exec_status, legacy.exec_status) << label;
      ASSERT_EQ(threaded.r0, legacy.r0) << label;
      ASSERT_EQ(threaded.stats.insns, legacy.stats.insns) << label;
      ASSERT_EQ(threaded.stats.helper_calls, legacy.stats.helper_calls)
          << label;
      ASSERT_EQ(threaded.stats.sim_time_charged_ns,
                legacy.stats.sim_time_charged_ns)
          << label;
      ASSERT_EQ(threaded.stats.tail_calls, legacy.stats.tail_calls) << label;
      ASSERT_EQ(threaded.stats.max_frame_depth, legacy.stats.max_frame_depth)
          << label;
      ASSERT_EQ(threaded.stats.open_refs_at_exit,
                legacy.stats.open_refs_at_exit)
          << label;
      ASSERT_EQ(threaded.map_end, legacy.map_end) << label;
      ASSERT_EQ(threaded.trace.size(), legacy.trace.size()) << label;
      for (xbase::usize i = 0; i < threaded.trace.size(); ++i) {
        ASSERT_EQ(threaded.trace[i], legacy.trace[i])
            << label << " trace index " << i;
      }
    }
  }
  EXPECT_EQ(generated, kProgramsPerSeed * 3);
  EXPECT_GE(executed, 500u) << "corpus too small to claim equivalence";
}

// The CVE-2021-29154 branch-displacement fault operates on the lowered
// form: the pre-relocated target in the decoded image is the corrupted
// one, and the threaded engine produces the same documented witness
// (verified program, hijacked control flow, kernel crash) as the legacy
// engine does.
TEST(EngineEquivalence, JitBranchFaultWitnessOnBothEngines) {
  const Program victim = analysis::BuildJitHijackVictim().value();
  for (const ExecEngine engine :
       {ExecEngine::kThreaded, ExecEngine::kLegacy}) {
    for (const bool inject : {false, true}) {
      simkern::Kernel kernel;
      Bpf bpf(kernel);
      Loader loader(bpf);
      ASSERT_TRUE(kernel.BootstrapWorkload().ok());
      if (inject) {
        bpf.faults().Inject(kFaultJitBranchOffByOne);
      }
      auto id = loader.Load(victim);
      ASSERT_TRUE(id.ok()) << "verifier passed it; the JIT broke it";
      auto loaded = loader.Find(id.value());
      auto ctx = kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                  simkern::RegionKind::kKernelData, "ctx");
      ExecOptions opts;
      opts.engine = engine;
      auto result = Execute(bpf, *loaded.value(), ctx.value(), opts, &loader);
      if (!inject) {
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(result.value().r0, 42u);
        EXPECT_FALSE(kernel.crashed());
      } else {
        EXPECT_TRUE(kernel.crashed())
            << "corrupted displacement must hijack verified control flow";
      }
    }
  }
}

// The corrupted displacement is visible in the lowered form itself: under
// the fault the decoded image's pre-relocated target differs from the
// clean lowering of the same program.
TEST(EngineEquivalence, BranchFaultCorruptsPreRelocatedTargets) {
  const Program victim = analysis::BuildJitHijackVictim().value();
  FaultRegistry clean_faults;
  FaultRegistry buggy_faults;
  buggy_faults.Inject(kFaultJitBranchOffByOne);
  auto clean = JitCompile(victim, clean_faults);
  auto buggy = JitCompile(victim, buggy_faults);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(buggy.ok());
  EXPECT_EQ(clean.value().stats.branches_corrupted, 0u);
  EXPECT_GT(buggy.value().stats.branches_corrupted, 0u);
  ASSERT_EQ(clean.value().decoded.ops.size(), buggy.value().decoded.ops.size());
  u32 diverging_targets = 0;
  for (xbase::usize pc = 0; pc < clean.value().decoded.ops.size(); ++pc) {
    const MicroOp& a = clean.value().decoded.ops[pc];
    const MicroOp& b = buggy.value().decoded.ops[pc];
    EXPECT_EQ(a.handler, b.handler) << "fault must only move targets";
    if (a.jump != b.jump) {
      ++diverging_targets;
    }
  }
  EXPECT_GT(diverging_targets, 0u);
}

}  // namespace
}  // namespace ebpf

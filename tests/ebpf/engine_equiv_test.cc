// Differential test for the two execution engines: the pre-decoded
// threaded engine must be observationally identical to the legacy
// decode-per-step interpreter. Identical means *everything* the harness
// can observe: load verdict, execution status, r0, the full ExecStats
// block (instruction count, helper calls, simulated time, frame depth),
// map end-state bytes, and the per-instruction tracer stream (pc plus all
// eleven registers before each instruction executes).
//
// The corpus is the rangefuzz generator's — boundary-biased ALU, forward
// branches, stack spills and map accesses — so the spine the threaded
// engine optimizes is exactly what gets cross-checked.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "src/analysis/rangefuzz.h"
#include "src/analysis/workloads.h"
#include "src/ebpf/asm.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/interp.h"
#include "src/ebpf/jit.h"
#include "src/ebpf/loader.h"
#include "src/xbase/strfmt.h"

namespace ebpf {
namespace {

using xbase::u32;
using xbase::u64;
using xbase::u8;

constexpr u64 kMasterSeeds[] = {1, 42, 1337};
constexpr u32 kProgramsPerSeed = 200;  // 600 generated; >= 500 must execute
constexpr u32 kBodyLen = 24;

u64 Mix(u64 x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  return x ^ (x >> 33);
}

struct TraceEntry {
  u32 pc = 0;
  std::array<u64, kNumRegs> regs{};

  bool operator==(const TraceEntry& other) const = default;
};

class RecordingTracer : public InsnTracer {
 public:
  void OnInsn(u32 pc, const u64* regs) override {
    TraceEntry entry;
    entry.pc = pc;
    std::copy(regs, regs + kNumRegs, entry.regs.begin());
    trace.push_back(entry);
  }

  std::vector<TraceEntry> trace;
};

// Everything one engine run exposes to the harness.
struct EngineRun {
  bool load_ok = false;
  std::string load_status;
  bool exec_ok = false;
  std::string exec_status;
  u64 r0 = 0;
  ExecStats stats;
  std::array<u8, analysis::kRangeFuzzValueSize> map_end{};
  std::vector<TraceEntry> trace;
};

EngineRun RunOn(u64 program_seed, ExecEngine engine, bool elide = true) {
  EngineRun run;
  simkern::Kernel kernel;
  Bpf bpf(kernel);
  Loader loader(bpf);
  EXPECT_TRUE(kernel.BootstrapWorkload().ok());

  MapSpec spec;
  spec.type = MapType::kArray;
  spec.key_size = 4;
  spec.value_size = analysis::kRangeFuzzValueSize;
  spec.max_entries = 1;
  spec.name = "equiv";
  const int fd = bpf.maps().Create(spec).value();

  // Deterministic per-program initial map value: both engines start from
  // the same unknown-scalar world.
  std::array<u8, analysis::kRangeFuzzValueSize> value{};
  for (xbase::usize i = 0; i < value.size(); i += 8) {
    const u64 word = Mix(program_seed + i);
    std::memcpy(value.data() + i, &word, 8);
  }
  Map* map = bpf.maps().Find(fd).value();
  const u32 key = 0;
  EXPECT_TRUE(map->Update(kernel,
                          std::span<const u8>(
                              reinterpret_cast<const u8*>(&key), sizeof(key)),
                          value, kBpfAny)
                  .ok());

  auto prog = analysis::BuildFuzzProgram(program_seed, fd, kBodyLen, "equiv");
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  LoadOptions lopts;
  lopts.elide_checks = elide;
  auto id = loader.Load(prog.value(), lopts);
  run.load_ok = id.ok();
  run.load_status = id.ok() ? "" : id.status().ToString();
  if (!id.ok()) {
    return run;
  }

  auto ctx = kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                              simkern::RegionKind::kKernelData, "ctx");
  RecordingTracer tracer;
  ExecOptions opts;
  opts.engine = engine;
  opts.tracer = &tracer;
  auto loaded = loader.Find(id.value());
  auto result = Execute(bpf, *loaded.value(), ctx.value(), opts, &loader);
  run.exec_ok = result.ok();
  run.exec_status = result.ok() ? "" : result.status().ToString();
  if (result.ok()) {
    run.r0 = result.value().r0;
    run.stats = result.value().stats;
  }
  run.trace = std::move(tracer.trace);

  auto addr = map->LookupAddr(
      kernel,
      std::span<const u8>(reinterpret_cast<const u8*>(&key), sizeof(key)));
  EXPECT_TRUE(addr.ok());
  EXPECT_TRUE(kernel.mem().Read(addr.value(), run.map_end).ok());
  return run;
}

// The full corpus: every observable of the threaded run must equal the
// legacy run, byte for byte.
TEST(EngineEquivalence, RangefuzzCorpusIsObservationallyIdentical) {
  u32 generated = 0;
  u32 executed = 0;
  for (const u64 master_seed : kMasterSeeds) {
    for (const u64 program_seed :
         analysis::FuzzProgramSeeds(master_seed, kProgramsPerSeed)) {
      ++generated;
      const EngineRun threaded = RunOn(program_seed, ExecEngine::kThreaded);
      const EngineRun legacy = RunOn(program_seed, ExecEngine::kLegacy);
      const std::string label = xbase::StrFormat(
          "program_seed=%llu", static_cast<unsigned long long>(program_seed));

      ASSERT_EQ(threaded.load_ok, legacy.load_ok) << label;
      ASSERT_EQ(threaded.load_status, legacy.load_status) << label;
      if (!threaded.load_ok) {
        continue;  // same rejection on both sides: equivalent
      }
      ++executed;
      ASSERT_EQ(threaded.exec_ok, legacy.exec_ok) << label;
      ASSERT_EQ(threaded.exec_status, legacy.exec_status) << label;
      ASSERT_EQ(threaded.r0, legacy.r0) << label;
      ASSERT_EQ(threaded.stats.insns, legacy.stats.insns) << label;
      ASSERT_EQ(threaded.stats.helper_calls, legacy.stats.helper_calls)
          << label;
      ASSERT_EQ(threaded.stats.sim_time_charged_ns,
                legacy.stats.sim_time_charged_ns)
          << label;
      ASSERT_EQ(threaded.stats.tail_calls, legacy.stats.tail_calls) << label;
      ASSERT_EQ(threaded.stats.max_frame_depth, legacy.stats.max_frame_depth)
          << label;
      ASSERT_EQ(threaded.stats.open_refs_at_exit,
                legacy.stats.open_refs_at_exit)
          << label;
      ASSERT_EQ(threaded.map_end, legacy.map_end) << label;
      ASSERT_EQ(threaded.trace.size(), legacy.trace.size()) << label;
      for (xbase::usize i = 0; i < threaded.trace.size(); ++i) {
        ASSERT_EQ(threaded.trace[i], legacy.trace[i])
            << label << " trace index " << i;
      }
    }
  }
  EXPECT_EQ(generated, kProgramsPerSeed * 3);
  EXPECT_GE(executed, 500u) << "corpus too small to claim equivalence";
}

// The same corpus with elision disabled: turning the optimization off must
// not change a single observable either. Together with the test above
// (threaded-with-elision ≡ legacy) this pins the three-way equivalence
// threaded+elide ≡ threaded-no-elide ≡ legacy over the full corpus.
TEST(EngineEquivalence, RangefuzzCorpusElisionOffIsObservationallyIdentical) {
  u32 executed = 0;
  for (const u64 master_seed : kMasterSeeds) {
    for (const u64 program_seed :
         analysis::FuzzProgramSeeds(master_seed, kProgramsPerSeed)) {
      const EngineRun elided =
          RunOn(program_seed, ExecEngine::kThreaded, /*elide=*/true);
      const EngineRun unelided =
          RunOn(program_seed, ExecEngine::kThreaded, /*elide=*/false);
      const std::string label = xbase::StrFormat(
          "program_seed=%llu", static_cast<unsigned long long>(program_seed));

      ASSERT_EQ(elided.load_ok, unelided.load_ok) << label;
      ASSERT_EQ(elided.load_status, unelided.load_status) << label;
      if (!elided.load_ok) {
        continue;
      }
      ++executed;
      ASSERT_EQ(elided.exec_ok, unelided.exec_ok) << label;
      ASSERT_EQ(elided.exec_status, unelided.exec_status) << label;
      ASSERT_EQ(elided.r0, unelided.r0) << label;
      ASSERT_EQ(elided.stats.insns, unelided.stats.insns) << label;
      ASSERT_EQ(elided.stats.helper_calls, unelided.stats.helper_calls)
          << label;
      ASSERT_EQ(elided.stats.sim_time_charged_ns,
                unelided.stats.sim_time_charged_ns)
          << label;
      ASSERT_EQ(elided.map_end, unelided.map_end) << label;
      ASSERT_EQ(elided.trace.size(), unelided.trace.size()) << label;
      for (xbase::usize i = 0; i < elided.trace.size(); ++i) {
        ASSERT_EQ(elided.trace[i], unelided.trace[i])
            << label << " trace index " << i;
      }
    }
  }
  EXPECT_GE(executed, 500u) << "corpus too small to claim equivalence";
}

// ---- insn-cap / RCU-probe boundary parity ---------------------------------
// The threaded engine batches its per-insn bookkeeping (EBPF_NEXT counts in
// a local, flushes at EBPF_SYNC points) while the legacy loop counts and
// charges eagerly; superblocks batch even harder (block cost at entry) and
// fused pairs count their tail insn inside the handler. All of that must be
// invisible at the two boundary events: the RCU stall probe every 4096
// insns and the harness cap at exactly max_insns. One observable run per
// (engine × elision) at each boundary: status, r0, trace stream, and the
// simulated-time charge (read off the kernel clock, so it is visible even
// when the run terminates and no ExecStats are returned).
struct BoundaryRun {
  bool exec_ok = false;
  std::string exec_status;
  u64 r0 = 0;
  u64 insns = 0;
  u64 clock_delta_ns = 0;
  std::vector<TraceEntry> trace;
};

BoundaryRun RunStraightLineAt(u32 len, u64 max_insns, bool with_tracer,
                              ExecEngine engine, bool elide) {
  BoundaryRun run;
  simkern::Kernel kernel;
  Bpf bpf(kernel);
  Loader loader(bpf);
  EXPECT_TRUE(kernel.BootstrapWorkload().ok());
  auto prog = analysis::BuildStraightLine(len);
  EXPECT_TRUE(prog.ok());
  LoadOptions lopts;
  lopts.elide_checks = elide;
  auto id = loader.Load(prog.value(), lopts);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  auto loaded = loader.Find(id.value());
  auto ctx = kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                              simkern::RegionKind::kKernelData, "ctx");
  RecordingTracer tracer;
  ExecOptions opts;
  opts.engine = engine;
  opts.max_insns = max_insns;
  if (with_tracer) {
    opts.tracer = &tracer;
  }
  const u64 clock_before = kernel.clock().now_ns();
  auto result = Execute(bpf, *loaded.value(), ctx.value(), opts, &loader);
  run.clock_delta_ns = kernel.clock().now_ns() - clock_before;
  run.exec_ok = result.ok();
  run.exec_status = result.ok() ? "" : result.status().ToString();
  if (result.ok()) {
    run.r0 = result.value().r0;
    run.insns = result.value().stats.insns;
  }
  run.trace = std::move(tracer.trace);
  return run;
}

TEST(EngineEquivalence, InsnCapAndProbeBoundariesMatchAcrossEngines) {
  // A straight-line program of length L executes exactly L instructions
  // (mov, L-2 adds, exit) — with elision on it lowers into superblocks, so
  // these cases also cross-check the superblock entry's cap/probe bail.
  const struct {
    u32 len;
    u64 max_insns;
  } kCases[] = {
      {64, 63},      // cap one short of completion, no probe involved
      {64, 64},      // cap exactly at the executed count: must complete
      {4200, 4095},  // cap boundary coincides with the 4096 stall probe
      {4200, 4096},  // capped on the insn right after the probe fires
      {4200, 4097},
      {4200, 4199},  // capped at the exit insn
      {4200, 4200},  // exact fit across a probe boundary
      {9000, 8191},  // second probe multiple
      {9000, 8192},
  };
  for (const auto& test_case : kCases) {
    for (const bool with_tracer : {false, true}) {
      const std::string label = xbase::StrFormat(
          "len=%u max_insns=%llu tracer=%d", test_case.len,
          static_cast<unsigned long long>(test_case.max_insns),
          with_tracer ? 1 : 0);
      const BoundaryRun legacy = RunStraightLineAt(
          test_case.len, test_case.max_insns, with_tracer,
          ExecEngine::kLegacy, /*elide=*/true);
      for (const bool elide : {true, false}) {
        const BoundaryRun threaded = RunStraightLineAt(
            test_case.len, test_case.max_insns, with_tracer,
            ExecEngine::kThreaded, elide);
        const std::string sub = label + (elide ? " elide=1" : " elide=0");
        ASSERT_EQ(threaded.exec_ok, legacy.exec_ok) << sub;
        ASSERT_EQ(threaded.exec_status, legacy.exec_status) << sub;
        ASSERT_EQ(threaded.r0, legacy.r0) << sub;
        ASSERT_EQ(threaded.insns, legacy.insns) << sub;
        ASSERT_EQ(threaded.clock_delta_ns, legacy.clock_delta_ns) << sub;
        ASSERT_EQ(threaded.trace.size(), legacy.trace.size()) << sub;
        for (xbase::usize i = 0; i < threaded.trace.size(); ++i) {
          ASSERT_EQ(threaded.trace[i], legacy.trace[i])
              << sub << " trace index " << i;
        }
      }
    }
  }
}

// ---- stale pre-resolved CallSite::fn audit --------------------------------
// The DecodedImage pins helper fn pointers and costs at lowering time. The
// registry is append-only and node-stable (std::map), so a pinned pointer
// can never dangle — but helper *behaviour* must still be read at invoke
// time. Toggling injected faults after load bumps the fault epoch without
// re-lowering; both engines must keep agreeing because they consult the
// live FaultRegistry through HelperCtx, not anything baked into the image.
TEST(EngineEquivalence, FaultEpochToggleAfterLoadCannotDivergeEngines) {
  auto run = [](ExecEngine engine) {
    simkern::Kernel kernel;
    Bpf bpf(kernel);
    Loader loader(bpf);
    EXPECT_TRUE(kernel.BootstrapWorkload().ok());
    MapSpec spec;
    spec.type = MapType::kArray;
    spec.key_size = 4;
    spec.value_size = 8;
    spec.max_entries = 1;
    spec.name = "epoch";
    const int fd = bpf.maps().Create(spec).value();
    const u32 key = 0;
    const u64 seeded = 0x1122334455667788ULL;
    std::array<u8, 8> value{};
    std::memcpy(value.data(), &seeded, 8);
    Map* map = bpf.maps().Find(fd).value();
    EXPECT_TRUE(map->Update(kernel,
                            std::span<const u8>(
                                reinterpret_cast<const u8*>(&key),
                                sizeof(key)),
                            value, kBpfAny)
                    .ok());
    ProgramBuilder b("epoch", ProgType::kKprobe);
    b.Ins(StMemImm(BPF_W, R10, -4, 0))
        .Ins(LdMapFd(R1, fd))
        .Ins(Mov64Reg(R2, R10))
        .Ins(Alu64Imm(BPF_ADD, R2, -4))
        .Ins(CallHelper(kHelperMapLookupElem))
        .JmpTo(BPF_JEQ, R0, 0, "out")
        .Ins(LdxMem(BPF_DW, R0, R0, 0))
        .Bind("out")
        .Ins(Exit());
    auto id = loader.Load(b.Build().value());
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    // Epoch churn between load and execute: inject a verifier-stage fault
    // (inert at runtime) and a lowering-stage fault (lowering already
    // happened), then clear one — four epoch bumps against a pinned image.
    bpf.faults().Inject(kFaultVerifierScalarBounds);
    bpf.faults().Inject(kFaultJitElideUnproven);
    bpf.faults().Clear(kFaultVerifierScalarBounds);
    auto loaded = loader.Find(id.value());
    auto ctx = kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                simkern::RegionKind::kKernelData, "ctx");
    ExecOptions opts;
    opts.engine = engine;
    auto result = Execute(bpf, *loaded.value(), ctx.value(), opts, &loader);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result.value() : ExecResult{};
  };
  const ExecResult threaded = run(ExecEngine::kThreaded);
  const ExecResult legacy = run(ExecEngine::kLegacy);
  EXPECT_EQ(threaded.r0, 0x1122334455667788ULL);
  EXPECT_EQ(threaded.r0, legacy.r0);
  EXPECT_EQ(threaded.stats.insns, legacy.stats.insns);
  EXPECT_EQ(threaded.stats.helper_calls, legacy.stats.helper_calls);
  EXPECT_EQ(threaded.stats.sim_time_charged_ns,
            legacy.stats.sim_time_charged_ns);
}

// A decoded image lowered without registries leaves CallSite::fn null; the
// threaded engine must then resolve at runtime exactly like legacy — same
// helper result and cost for a known id, the same fault message for an
// unknown one.
TEST(EngineEquivalence, NullCallSiteFnFallbackMatchesLegacy) {
  for (const s32 helper_id :
       {static_cast<s32>(kHelperKtimeGetNs), s32{9999}}) {
    std::string status_by_engine[2];
    u64 r0_by_engine[2] = {};
    u64 charged_by_engine[2] = {};
    int slot = 0;
    for (const ExecEngine engine :
         {ExecEngine::kThreaded, ExecEngine::kLegacy}) {
      simkern::Kernel kernel;
      Bpf bpf(kernel);
      EXPECT_TRUE(kernel.BootstrapWorkload().ok());
      LoadedProgram raw;
      raw.image.type = ProgType::kKprobe;
      raw.image.name = "nullfn";
      raw.image.insns = {CallHelper(helper_id), Exit()};
      // Lower without registries: every call site keeps fn == nullptr and
      // takes the runtime-resolution path in the threaded engine.
      raw.decoded = DecodeProgram(raw.image, nullptr, nullptr);
      auto ctx = kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                  simkern::RegionKind::kKernelData, "ctx");
      ExecOptions opts;
      opts.engine = engine;
      const u64 clock_before = kernel.clock().now_ns();
      auto result = Execute(bpf, raw, ctx.value(), opts, nullptr);
      charged_by_engine[slot] = kernel.clock().now_ns() - clock_before;
      status_by_engine[slot] =
          result.ok() ? "" : result.status().ToString();
      r0_by_engine[slot] = result.ok() ? result.value().r0 : 0;
      if (helper_id == 9999) {
        EXPECT_FALSE(result.ok());
      } else {
        EXPECT_TRUE(result.ok()) << result.status().ToString();
      }
      ++slot;
    }
    EXPECT_EQ(status_by_engine[0], status_by_engine[1])
        << "helper_id=" << helper_id;
    EXPECT_EQ(r0_by_engine[0], r0_by_engine[1]) << "helper_id=" << helper_id;
    EXPECT_EQ(charged_by_engine[0], charged_by_engine[1])
        << "helper_id=" << helper_id;
  }
}

// ---- EBPF_MEM_OFF round-trip at the s16 extremes --------------------------
// Memory micro-ops carry insn.off through the u32 `jump` field and widen it
// back at dispatch; these raw programs pin the widening against the legacy
// `regs[x] + (s64)insn.off` at both extremes (−32768 and +32767) for loads,
// stores and atomics, including the wrap-exact out-of-bounds case.
struct RawMemRun {
  bool exec_ok = false;
  std::string exec_status;
  u64 r0 = 0;
  std::array<u8, 16> arena_head{};
  std::array<u8, 16> arena_tail{};
};

RawMemRun RunRawOnArena(const std::vector<Insn>& insns, u64 arena_bytes,
                        ExecEngine engine) {
  RawMemRun run;
  simkern::Kernel kernel;
  Bpf bpf(kernel);
  EXPECT_TRUE(kernel.BootstrapWorkload().ok());
  auto arena = kernel.mem().Map(arena_bytes, simkern::MemPerm::kReadWrite,
                                simkern::RegionKind::kKernelData, "arena");
  EXPECT_TRUE(arena.ok());
  // Deterministic nonzero fill so loads have something to find.
  for (u64 i = 0; i < arena_bytes; i += 8) {
    const u64 word = Mix(i + 1);
    EXPECT_TRUE(kernel.mem().WriteU64(arena.value() + i, word).ok());
  }
  LoadedProgram raw;
  raw.image.type = ProgType::kKprobe;
  raw.image.name = "memoff";
  raw.image.insns = insns;
  ExecOptions opts;
  opts.engine = engine;
  auto result = Execute(bpf, raw, arena.value(), opts, nullptr);
  run.exec_ok = result.ok();
  run.exec_status = result.ok() ? "" : result.status().ToString();
  if (result.ok()) {
    run.r0 = result.value().r0;
  }
  EXPECT_TRUE(kernel.mem().Read(arena.value(), run.arena_head).ok());
  EXPECT_TRUE(
      kernel.mem().Read(arena.value() + arena_bytes - 16, run.arena_tail)
          .ok());
  return run;
}

TEST(EngineEquivalence, MemOffsetS16ExtremesRoundTripOnBothEngines) {
  constexpr u64 kArena = 65536;  // 32768 + 32767 + 8 fits with room
  struct Case {
    const char* name;
    std::vector<Insn> insns;
    bool expect_ok;
  };
  std::vector<Case> cases;
  auto with_base = [](s32 base_add, std::vector<Insn> tail) {
    std::vector<Insn> insns = {Mov64Reg(R6, R1)};
    if (base_add != 0) {
      insns.push_back(Alu64Imm(BPF_ADD, R6, base_add));
    }
    insns.insert(insns.end(), tail.begin(), tail.end());
    insns.push_back(Exit());
    return insns;
  };
  // Loads at both extremes, every width at −32768, DW at +32767.
  for (const u8 size : {BPF_B, BPF_H, BPF_W, BPF_DW}) {
    cases.push_back({"ldx_neg", with_base(32768, {LdxMem(size, R0, R6,
                                                         -32768)}),
                     true});
  }
  cases.push_back(
      {"ldx_pos", with_base(0, {LdxMem(BPF_DW, R0, R6, 32767)}), true});
  // Stores at both extremes, read back through r0.
  {
    auto ldimm = LdImm64(R7, 0xa5a5a5a5deadbeefULL);
    std::vector<Insn> tail(ldimm.begin(), ldimm.end());
    tail.push_back(StxMem(BPF_DW, R6, R7, -32768));
    tail.push_back(LdxMem(BPF_DW, R0, R6, -32768));
    cases.push_back({"stx_neg", with_base(32768, tail), true});
    tail.assign(ldimm.begin(), ldimm.end());
    tail.push_back(StxMem(BPF_DW, R6, R7, 32767));
    tail.push_back(LdxMem(BPF_DW, R0, R6, 32767));
    cases.push_back({"stx_pos", with_base(0, tail), true});
  }
  // St-immediate and atomic fetch-add at both extremes.
  cases.push_back({"st_neg",
                   with_base(32768, {StMemImm(BPF_W, R6, -32768, -7),
                                     LdxMem(BPF_W, R0, R6, -32768)}),
                   true});
  cases.push_back({"atomic_neg",
                   with_base(32768, {Mov64Imm(R7, 3),
                                     AtomicAdd(BPF_DW, R6, R7, -32768),
                                     LdxMem(BPF_DW, R0, R6, -32768)}),
                   true});
  cases.push_back({"atomic_pos",
                   with_base(0, {Mov64Imm(R7, 11),
                                 AtomicAdd(BPF_DW, R6, R7, 32767),
                                 LdxMem(BPF_DW, R0, R6, 32767)}),
                   true});
  // Out of bounds: base at the region end plus the max positive offset —
  // both engines must fault with the identical message.
  cases.push_back({"ldx_oob",
                   with_base(static_cast<s32>(kArena),
                             {LdxMem(BPF_DW, R0, R6, 32767)}),
                   false});

  for (const Case& test_case : cases) {
    const RawMemRun threaded =
        RunRawOnArena(test_case.insns, kArena, ExecEngine::kThreaded);
    const RawMemRun legacy =
        RunRawOnArena(test_case.insns, kArena, ExecEngine::kLegacy);
    EXPECT_EQ(threaded.exec_ok, test_case.expect_ok) << test_case.name;
    EXPECT_EQ(threaded.exec_ok, legacy.exec_ok) << test_case.name;
    EXPECT_EQ(threaded.exec_status, legacy.exec_status) << test_case.name;
    EXPECT_EQ(threaded.r0, legacy.r0) << test_case.name;
    EXPECT_EQ(threaded.arena_head, legacy.arena_head) << test_case.name;
    EXPECT_EQ(threaded.arena_tail, legacy.arena_tail) << test_case.name;
  }
}

// The CVE-2021-29154 branch-displacement fault operates on the lowered
// form: the pre-relocated target in the decoded image is the corrupted
// one, and the threaded engine produces the same documented witness
// (verified program, hijacked control flow, kernel crash) as the legacy
// engine does.
TEST(EngineEquivalence, JitBranchFaultWitnessOnBothEngines) {
  const Program victim = analysis::BuildJitHijackVictim().value();
  for (const ExecEngine engine :
       {ExecEngine::kThreaded, ExecEngine::kLegacy}) {
    for (const bool inject : {false, true}) {
      simkern::Kernel kernel;
      Bpf bpf(kernel);
      Loader loader(bpf);
      ASSERT_TRUE(kernel.BootstrapWorkload().ok());
      if (inject) {
        bpf.faults().Inject(kFaultJitBranchOffByOne);
      }
      auto id = loader.Load(victim);
      ASSERT_TRUE(id.ok()) << "verifier passed it; the JIT broke it";
      auto loaded = loader.Find(id.value());
      auto ctx = kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                  simkern::RegionKind::kKernelData, "ctx");
      ExecOptions opts;
      opts.engine = engine;
      auto result = Execute(bpf, *loaded.value(), ctx.value(), opts, &loader);
      if (!inject) {
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(result.value().r0, 42u);
        EXPECT_FALSE(kernel.crashed());
      } else {
        EXPECT_TRUE(kernel.crashed())
            << "corrupted displacement must hijack verified control flow";
      }
    }
  }
}

// The corrupted displacement is visible in the lowered form itself: under
// the fault the decoded image's pre-relocated target differs from the
// clean lowering of the same program.
TEST(EngineEquivalence, BranchFaultCorruptsPreRelocatedTargets) {
  const Program victim = analysis::BuildJitHijackVictim().value();
  FaultRegistry clean_faults;
  FaultRegistry buggy_faults;
  buggy_faults.Inject(kFaultJitBranchOffByOne);
  auto clean = JitCompile(victim, clean_faults);
  auto buggy = JitCompile(victim, buggy_faults);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(buggy.ok());
  EXPECT_EQ(clean.value().stats.branches_corrupted, 0u);
  EXPECT_GT(buggy.value().stats.branches_corrupted, 0u);
  ASSERT_EQ(clean.value().decoded.ops.size(), buggy.value().decoded.ops.size());
  u32 diverging_targets = 0;
  for (xbase::usize pc = 0; pc < clean.value().decoded.ops.size(); ++pc) {
    const MicroOp& a = clean.value().decoded.ops[pc];
    const MicroOp& b = buggy.value().decoded.ops[pc];
    EXPECT_EQ(a.handler, b.handler) << "fault must only move targets";
    if (a.jump != b.jump) {
      ++diverging_targets;
    }
  }
  EXPECT_GT(diverging_targets, 0u);
}

}  // namespace
}  // namespace ebpf

// Runtime dispatch gate tests, end to end: when an injected verifier
// defect admits a program the contract forbids, the dispatch-time
// re-check computed at lowering must still refuse to run the helper call
// — identically on both execution engines. Only stacking the runtime
// dispatch fault on top of the verifier fault lets the call through,
// which is exactly the two-layer failure the census attributes per layer
// (pinned here via RunPermFaultChecks).
#include <gtest/gtest.h>

#include "src/analysis/permaudit.h"
#include "src/ebpf/asm.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/fault.h"
#include "src/ebpf/interp.h"
#include "src/ebpf/loader.h"

namespace ebpf {
namespace {

class PermGateTest : public ::testing::Test {
 protected:
  PermGateTest() {
    simkern::KernelConfig config;
    config.version = simkern::kV6_12;
    config.unprivileged_bpf_disabled = false;
    kernel_ = std::make_unique<simkern::Kernel>(config);
    EXPECT_TRUE(kernel_->BootstrapWorkload().ok());
    bpf_ = std::make_unique<Bpf>(*kernel_);
    loader_ = std::make_unique<Loader>(*bpf_);
    ctx_ = kernel_->mem()
               .Map(64, simkern::MemPerm::kReadWrite,
                    simkern::RegionKind::kKernelData, "permctx")
               .value();
  }

  Program YieldCaller(ProgType type) {
    ProgramBuilder b("yield-caller", type);
    b.Ins(CallHelper(kHelperSchedYield)).Ins(Exit());
    return b.Build().value();
  }

  // Runs `id` on one engine and returns the raw result.
  xbase::Result<ExecResult> Run(u32 id, ExecEngine engine) {
    ExecOptions opts;
    opts.engine = engine;
    return Execute(*bpf_, *loader_->Find(id).value(), ctx_, opts,
                   loader_.get());
  }

  std::unique_ptr<simkern::Kernel> kernel_;
  std::unique_ptr<Bpf> bpf_;
  std::unique_ptr<Loader> loader_;
  simkern::Addr ctx_ = 0;
};

TEST_F(PermGateTest, DispatchGateCatchesFamilyGateSkip) {
  // The verifier defect admits a sched helper into a socket filter; the
  // dispatch re-check, derived independently from the same contract, must
  // refuse to execute the call — on both engines, with the same message.
  bpf_->faults().Inject(kFaultVerifierFamilyGateSkip);
  auto id = loader_->Load(YieldCaller(ProgType::kSocketFilter));
  ASSERT_TRUE(id.ok()) << "the injected defect must admit the program";
  EXPECT_EQ(loader_->Find(id.value()).value()->jit.call_sites_gate_denied,
            1u);

  for (ExecEngine engine : {ExecEngine::kThreaded, ExecEngine::kLegacy}) {
    auto result = Run(id.value(), engine);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find(
                  "helper call #236 denied by access contract at dispatch"),
              std::string::npos)
        << result.status().message();
  }
}

TEST_F(PermGateTest, DispatchGateCatchesVersionOffByOne) {
  // One minor release before the helper's introduction: the off-by-one
  // defect makes the verifier admit the predecessor cell, but the
  // dispatch gate still compares against the true load version.
  bpf_->faults().Inject(kFaultVerifierVersionGateOffByOne);
  LoadOptions opts;
  opts.version_override = simkern::KernelVersion{6, 11};
  auto id = loader_->Load(YieldCaller(ProgType::kSchedExt), opts);
  ASSERT_TRUE(id.ok()) << "the off-by-one defect must admit the program";

  for (ExecEngine engine : {ExecEngine::kThreaded, ExecEngine::kLegacy}) {
    auto result = Run(id.value(), engine);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find(
                  "denied by access contract at dispatch"),
              std::string::npos)
        << result.status().message();
  }
}

TEST_F(PermGateTest, StackedDispatchFaultLetsTheCallThrough) {
  // Both layers broken at once: the verifier admits and the dispatch
  // re-check is skipped, so the forbidden helper actually runs. This is
  // the defect pair the census charges to the runtime layer.
  bpf_->faults().Inject(kFaultVerifierFamilyGateSkip);
  bpf_->faults().Inject(kFaultRuntimeDispatchUnverified);
  auto id = loader_->Load(YieldCaller(ProgType::kSocketFilter));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(loader_->Find(id.value()).value()->jit.call_sites_gate_denied,
            0u)
      << "the dispatch fault must skip the lowering-time re-check";

  for (ExecEngine engine : {ExecEngine::kThreaded, ExecEngine::kLegacy}) {
    auto result = Run(id.value(), engine);
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(result.value().stats.helper_calls, 1u);
  }
}

TEST_F(PermGateTest, CleanContractCompliantCallExecutesNormally) {
  auto id = loader_->Load(YieldCaller(ProgType::kSchedExt));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(loader_->Find(id.value()).value()->jit.call_sites_gate_denied,
            0u);
  for (ExecEngine engine : {ExecEngine::kThreaded, ExecEngine::kLegacy}) {
    auto result = Run(id.value(), engine);
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(result.value().r0, 0u);
    EXPECT_EQ(result.value().stats.helper_calls, 1u);
  }
}

TEST_F(PermGateTest, FaultMatrixAttributesEveryDefectToItsLayer) {
  // The census-side statement of the same property: each injectable
  // missing-permission-check defect must surface as gaps in exactly its
  // own layer, and clean rigs must census gap-free before and after.
  const std::vector<analysis::PermFaultCheck> checks =
      analysis::RunPermFaultChecks();
  ASSERT_EQ(checks.size(), 5u);
  for (const analysis::PermFaultCheck& check : checks) {
    EXPECT_TRUE(check.passed) << check.name << ": " << check.detail;
  }
  EXPECT_EQ(checks.front().name, "clean.census");
  EXPECT_EQ(checks.back().name, "clean.recheck");
}

}  // namespace
}  // namespace ebpf

// Unit tests for the foundation library: Status/Result plumbing, the
// deterministic PRNG, byte encoding and formatting.
#include <gtest/gtest.h>

#include <set>

#include "src/xbase/bytes.h"
#include "src/xbase/log.h"
#include "src/xbase/rand.h"
#include "src/xbase/status.h"
#include "src/xbase/strfmt.h"

namespace xbase {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), Code::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(InvalidArgument("x").code(), Code::kInvalidArgument);
  EXPECT_EQ(NotFound("x").code(), Code::kNotFound);
  EXPECT_EQ(AlreadyExists("x").code(), Code::kAlreadyExists);
  EXPECT_EQ(OutOfRange("x").code(), Code::kOutOfRange);
  EXPECT_EQ(PermissionDenied("x").code(), Code::kPermissionDenied);
  EXPECT_EQ(ResourceExhausted("x").code(), Code::kResourceExhausted);
  EXPECT_EQ(FailedPrecondition("x").code(), Code::kFailedPrecondition);
  EXPECT_EQ(Unimplemented("x").code(), Code::kUnimplemented);
  EXPECT_EQ(Rejected("x").code(), Code::kRejected);
  EXPECT_EQ(Terminated("x").code(), Code::kTerminated);
  EXPECT_EQ(KernelFault("x").code(), Code::kKernelFault);
  EXPECT_EQ(Internal("x").code(), Code::kInternal);
  EXPECT_EQ(Rejected("why").ToString(), "REJECTED: why");
}

TEST(ResultTest, ValueCarriesOkStatus) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, ErrorCarriesStatus) {
  Result<int> result(NotFound("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Code::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

Status FailsThrough() {
  XB_RETURN_IF_ERROR(OutOfRange("inner"));
  return Status::Ok();
}

TEST(MacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), Code::kOutOfRange);
}

Result<int> Doubles(Result<int> input) {
  XB_ASSIGN_OR_RETURN(const int value, std::move(input));
  return value * 2;
}

TEST(MacroTest, AssignOrReturnBindsAndPropagates) {
  EXPECT_EQ(Doubles(21).value(), 42);
  EXPECT_EQ(Doubles(Internal("bad")).status().code(), Code::kInternal);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysBelow) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  std::set<s64> seen;
  for (int i = 0; i < 200; ++i) {
    const s64 value = rng.NextInRange(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(BytesTest, LittleEndianRoundTrip) {
  u8 buf[8];
  StoreLe64(buf, 0x1122334455667788ULL);
  EXPECT_EQ(buf[0], 0x88);
  EXPECT_EQ(buf[7], 0x11);
  EXPECT_EQ(LoadLe64(buf), 0x1122334455667788ULL);
  StoreLe32(buf, 0xdeadbeef);
  EXPECT_EQ(LoadLe32(buf), 0xdeadbeefu);
  StoreLe16(buf, 0xcafe);
  EXPECT_EQ(LoadLe16(buf), 0xcafe);
}

TEST(BytesTest, BigEndianRoundTrip) {
  u8 buf[8];
  StoreBe32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(LoadBe32(buf), 0x01020304u);
  StoreBe64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[7], 8);
}

TEST(BytesTest, HexEncoding) {
  const u8 data[] = {0x00, 0xff, 0x0a, 0xb1};
  EXPECT_EQ(ToHex(data), "00ff0ab1");
  EXPECT_EQ(ToHex(std::span<const u8>()), "");
}

TEST(BytesTest, Fnv1aMatchesKnownValues) {
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(Fnv1a(std::span<const u8>()), 0xcbf29ce484222325ULL);
  const u8 a[] = {'a'};
  EXPECT_EQ(Fnv1a(a), 0xaf63dc4c8601ec8cULL);
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%04x", 0xab), "00ab");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(LogTest, LevelFiltering) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  XB_DEBUG << "should be dropped silently";
  SetLogLevel(LogLevel::kWarn);
}

}  // namespace
}  // namespace xbase

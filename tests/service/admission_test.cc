// Admission pipeline unit tests: verdict-cache identity (a hit is
// observationally the original verification), key separation across
// privilege/version/epoch, bounded-queue backpressure (blocking, never
// dropping), and thundering-herd coalescing (N duplicate submissions, one
// verification).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/ebpf/asm.h"
#include "src/service/admission.h"

namespace service {
namespace {

using ebpf::ProgramBuilder;

ebpf::Program BusyProg(xbase::u32 iters) {
  // A counted loop: verification cost scales with iters, so concurrent
  // duplicate submissions genuinely overlap in the verifier. Distinct trip
  // counts give distinct content hashes.
  ProgramBuilder b("busy", ebpf::ProgType::kSyscall);
  b.Ins(ebpf::Mov64Imm(ebpf::R6, 0))
      .Ins(ebpf::Mov64Imm(ebpf::R0, 0))
      .Bind("top")
      .JmpTo(ebpf::BPF_JGE, ebpf::R6, static_cast<xbase::s32>(iters), "done")
      .Ins(ebpf::Alu64Reg(ebpf::BPF_ADD, ebpf::R0, ebpf::R6))
      .Ins(ebpf::Alu64Imm(ebpf::BPF_ADD, ebpf::R6, 1))
      .JaTo("top")
      .Bind("done")
      .Ins(ebpf::Exit());
  return b.Build().value();
}

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest()
      : kernel_(UnprivFriendlyConfig()), bpf_(kernel_), loader_(bpf_) {
    EXPECT_TRUE(kernel_.BootstrapWorkload().ok());
  }

  static simkern::KernelConfig UnprivFriendlyConfig() {
    simkern::KernelConfig config;
    config.unprivileged_bpf_disabled = false;
    return config;
  }

  AdmissionConfig SmallConfig(xbase::usize workers,
                              xbase::usize queue = 128) {
    AdmissionConfig config;
    config.workers = workers;
    config.queue_capacity = queue;
    return config;
  }

  simkern::Kernel kernel_;
  ebpf::Bpf bpf_;
  ebpf::Loader loader_;
};

void ExpectSameVerifyStats(const ebpf::VerifyStats& a,
                           const ebpf::VerifyStats& b) {
  // Memberwise, not just the headline counters: a cache hit must return
  // the stored VerifyResult byte-identically, wall time included.
  EXPECT_EQ(a.insns_processed, b.insns_processed);
  EXPECT_EQ(a.states_explored, b.states_explored);
  EXPECT_EQ(a.states_pruned, b.states_pruned);
  EXPECT_EQ(a.peak_states, b.peak_states);
  EXPECT_EQ(a.states_leaked, b.states_leaked);
  EXPECT_EQ(a.verification_wall_ns, b.verification_wall_ns);
  EXPECT_EQ(a.prog_len, b.prog_len);
  EXPECT_EQ(a.subprog_count, b.subprog_count);
  EXPECT_EQ(a.max_stack_depth, b.max_stack_depth);
}

TEST_F(AdmissionTest, CacheHitReturnsIdenticalVerifyResult) {
  AdmissionService svc(SmallConfig(1), bpf_, loader_);
  const ebpf::Program prog = BusyProg(64);

  const auto first = svc.Wait(svc.Load(prog));
  const auto second = svc.Wait(svc.Load(prog));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_NE(first.value(), second.value());  // distinct registrations

  const auto* a = loader_.Find(first.value()).value();
  const auto* b = loader_.Find(second.value()).value();
  ExpectSameVerifyStats(a->verify.stats, b->verify.stats);
  EXPECT_EQ(a->verify.subprog_starts, b->verify.subprog_starts);

  const AdmissionMetrics m = svc.Metrics();
  EXPECT_EQ(m.verify_runs, 1u);  // the second load never touched the verifier
  EXPECT_EQ(m.jit_runs, 1u);
  EXPECT_EQ(m.cache.hits, 1u);
  EXPECT_EQ(m.cache.misses, 1u);
  EXPECT_EQ(m.admitted, 2u);
}

TEST_F(AdmissionTest, PrivilegeAndVersionKeysDoNotCollide) {
  AdmissionService svc(SmallConfig(1), bpf_, loader_);
  const ebpf::Program prog = BusyProg(32);

  ebpf::LoadOptions privileged;
  ebpf::LoadOptions unprivileged;
  unprivileged.privileged = false;
  ebpf::LoadOptions old_kernel;
  old_kernel.version_override = simkern::KernelVersion{4, 19};

  (void)svc.Wait(svc.Load(prog, privileged));
  (void)svc.Wait(svc.Load(prog, unprivileged));
  (void)svc.Wait(svc.Load(prog, old_kernel));
  AdmissionMetrics m = svc.Metrics();
  // Three distinct keys: no cross-privilege or cross-version hits.
  EXPECT_EQ(m.cache.misses, 3u);
  EXPECT_EQ(m.cache.hits, 0u);

  // Re-submitting each variant hits its own entry.
  (void)svc.Wait(svc.Load(prog, privileged));
  (void)svc.Wait(svc.Load(prog, unprivileged));
  (void)svc.Wait(svc.Load(prog, old_kernel));
  m = svc.Metrics();
  EXPECT_EQ(m.cache.misses, 3u);
  EXPECT_EQ(m.cache.hits, 3u);
}

TEST_F(AdmissionTest, PrepassFlagIsPartOfTheKey) {
  AdmissionService svc(SmallConfig(1), bpf_, loader_);
  const ebpf::Program prog = BusyProg(16);

  ebpf::LoadOptions plain;
  ebpf::LoadOptions with_prepass;
  with_prepass.staticcheck_prepass = true;

  (void)svc.Wait(svc.Load(prog, plain));
  (void)svc.Wait(svc.Load(prog, with_prepass));
  const AdmissionMetrics m = svc.Metrics();
  EXPECT_EQ(m.cache.misses, 2u);
  EXPECT_EQ(m.prepass_runs, 1u);
}

// The bounded queue applies backpressure by blocking the submitter — no
// request is ever dropped. 64 submissions through a 2-deep queue must all
// resolve.
TEST_F(AdmissionTest, TinyQueueBlocksButNeverDrops) {
  AdmissionConfig config = SmallConfig(1, /*queue=*/2);
  AdmissionService svc(config, bpf_, loader_);
  const ebpf::Program prog = BusyProg(128);

  ebpf::LoadOptions async;
  async.async = true;
  std::vector<AdmissionService::Ticket> tickets;
  for (int i = 0; i < 64; ++i) {
    tickets.push_back(svc.Load(prog, async));
  }
  xbase::u64 resolved = 0;
  for (const auto& ticket : tickets) {
    resolved += svc.Wait(ticket).ok() ? 1 : 0;
  }
  EXPECT_EQ(resolved, 64u);

  const AdmissionMetrics m = svc.Metrics();
  EXPECT_EQ(m.submitted, 64u);
  EXPECT_EQ(m.completed, 64u);
  EXPECT_LE(m.queue_depth_peak, 2u);
}

// Thundering herd: many concurrent submissions of the same program must
// verify exactly once — the first arrival owns the computation, everyone
// else coalesces on the in-flight entry or hits the published verdict.
TEST_F(AdmissionTest, DuplicateHerdVerifiesExactlyOnce) {
  AdmissionService svc(SmallConfig(4), bpf_, loader_);
  const ebpf::Program prog = BusyProg(20000);  // heavy enough to overlap
  constexpr int kHerd = 32;

  ebpf::LoadOptions async;
  async.async = true;
  std::vector<AdmissionService::Ticket> tickets;
  tickets.reserve(kHerd);
  for (int i = 0; i < kHerd; ++i) {
    tickets.push_back(svc.Load(prog, async));
  }
  for (const auto& ticket : tickets) {
    EXPECT_TRUE(svc.Wait(ticket).ok());
  }

  const AdmissionMetrics m = svc.Metrics();
  EXPECT_EQ(m.verify_runs, 1u);
  EXPECT_EQ(m.jit_runs, 1u);
  EXPECT_EQ(m.cache.misses, 1u);
  EXPECT_EQ(m.cache.hits, static_cast<xbase::u64>(kHerd - 1));
  EXPECT_EQ(m.admitted, static_cast<xbase::u64>(kHerd));
  EXPECT_EQ(loader_.size(), static_cast<xbase::usize>(kHerd));
}

// The epoch regression at the service level: with the cache keyed only on
// content (no fault epoch), toggling a verifier defect between two
// identical loads served the stale pre-toggle verdict. The toggle must
// force a fresh verification even though the fault set ends up identical.
TEST_F(AdmissionTest, FaultToggleBetweenIdenticalLoadsForcesReverify) {
  AdmissionService svc(SmallConfig(1), bpf_, loader_);
  const ebpf::Program prog = BusyProg(64);

  ASSERT_TRUE(svc.Wait(svc.Load(prog)).ok());
  EXPECT_EQ(svc.Metrics().verify_runs, 1u);

  // Toggle on and straight back off: the active set is identical again,
  // but the epoch moved — the cached verdict is unreachable by design.
  bpf_.faults().Inject(ebpf::kFaultVerifierScalarBounds);
  bpf_.faults().Clear(ebpf::kFaultVerifierScalarBounds);

  ASSERT_TRUE(svc.Wait(svc.Load(prog)).ok());
  const AdmissionMetrics m = svc.Metrics();
  EXPECT_EQ(m.verify_runs, 2u) << "stale verdict served across fault toggle";
  EXPECT_EQ(m.cache.misses, 2u);
  EXPECT_EQ(m.cache.hits, 0u);
}

TEST_F(AdmissionTest, BatchPreservesSubmissionOrder) {
  AdmissionService svc(SmallConfig(4), bpf_, loader_);

  // Index 1 is rejected (load through an uninitialized register).
  ProgramBuilder bad("bad", ebpf::ProgType::kSyscall);
  bad.Ins(ebpf::LdxMem(ebpf::BPF_DW, ebpf::R0, ebpf::R5, 0)).Ins(ebpf::Exit());

  std::vector<ebpf::Program> batch;
  batch.push_back(BusyProg(8));
  batch.push_back(bad.Build().value());
  batch.push_back(BusyProg(24));

  const auto results = svc.LoadBatch(batch);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
}

TEST_F(AdmissionTest, ShutdownResolvesLateSubmissions) {
  AdmissionService svc(SmallConfig(2), bpf_, loader_);
  const ebpf::Program prog = BusyProg(8);
  ASSERT_TRUE(svc.Wait(svc.Load(prog)).ok());
  svc.Shutdown();

  const auto late = svc.Wait(svc.Load(prog));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), xbase::Code::kFailedPrecondition);
}

}  // namespace
}  // namespace service

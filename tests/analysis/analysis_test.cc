// Analysis-layer tests: the figure/table generators must reproduce the
// paper's published numbers (exactly for Table 1, within tolerance for the
// Figure 3 distribution, in shape for the growth curves).
#include <gtest/gtest.h>

#include "src/analysis/bugdb.h"
#include "src/analysis/callgraph.h"
#include "src/analysis/growth.h"
#include "src/analysis/matrix.h"
#include "src/analysis/workloads.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/verifier.h"

namespace analysis {
namespace {

TEST(BugDbTest, CensusMatchesPaperTable1Exactly) {
  const auto census = BugCensus();
  const auto row = [&](const char* category) {
    return census.at(category);
  };
  EXPECT_EQ(row("Arbitrary read/write").total, 3);
  EXPECT_EQ(row("Arbitrary read/write").helper, 1);
  EXPECT_EQ(row("Arbitrary read/write").verifier, 2);
  EXPECT_EQ(row("Deadlock/Hang").total, 2);
  EXPECT_EQ(row("Integer overflow/underflow").total, 2);
  EXPECT_EQ(row("Integer overflow/underflow").helper, 2);
  EXPECT_EQ(row("Kernel pointer leak").total, 5);
  EXPECT_EQ(row("Kernel pointer leak").verifier, 5);
  EXPECT_EQ(row("Memory leak").total, 2);
  EXPECT_EQ(row("Null-pointer dereference").total, 7);
  EXPECT_EQ(row("Null-pointer dereference").helper, 6);
  EXPECT_EQ(row("Out-of-bound access").total, 7);
  EXPECT_EQ(row("Out-of-bound access").verifier, 6);
  EXPECT_EQ(row("Reference count leak").total, 1);
  EXPECT_EQ(row("Use-after-free").total, 2);
  EXPECT_EQ(row("Misc").total, 9);
  EXPECT_EQ(row("Total").total, 40);
  EXPECT_EQ(row("Total").helper, 18);
  EXPECT_EQ(row("Total").verifier, 22);
}

TEST(BugDbTest, EveryBugYearInStudyWindow) {
  for (const BugEntry& bug : BugDatabase()) {
    EXPECT_GE(bug.year, 2021) << bug.reference;
    EXPECT_LE(bug.year, 2022) << bug.reference;
  }
}

TEST(BugDbTest, ModeledBugsReferenceRealFaultIds) {
  const auto modeled = ModeledBugs();
  EXPECT_GE(modeled.size(), 10u);
  for (const BugEntry& bug : modeled) {
    bool found = false;
    for (const ebpf::FaultInfo& info : ebpf::FaultRegistry::Catalog()) {
      if (info.id == bug.fault_id) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << bug.fault_id;
  }
}

TEST(GrowthTest, VerifierLocSeriesMatchesFig2Shape) {
  const auto series = VerifierLocSeries();
  ASSERT_EQ(series.size(), 10u);
  // Monotone.
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].value, series[i - 1].value);
  }
  // Endpoint magnitudes: ~2k in 2014 (paper), extended past the paper's
  // 2022 window (~12k) to the v6.12 sched_ext point.
  EXPECT_NEAR(static_cast<double>(series.front().value), 2400, 600);
  EXPECT_NEAR(static_cast<double>(series.back().value), 12500, 1500);
  EXPECT_EQ(series.front().year, 2014);
  EXPECT_EQ(series.back().year, 2024);
}

TEST(GrowthTest, HelperSeriesGrowsSteadily) {
  simkern::Kernel kernel;
  ebpf::Bpf bpf(kernel);
  const auto series = HelperCountSeries(bpf.helpers());
  ASSERT_EQ(series.size(), 10u);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].value, series[i - 1].value);
  }
  // Paper: ~50 per two years at 1:1; our registry is ~1:3 scale.
  const double rate = HelpersPerTwoYears(series);
  EXPECT_GT(rate, 10.0);
  EXPECT_LT(rate, 30.0);
}

TEST(CallgraphTest, DistributionMatchesFig3) {
  simkern::Kernel kernel;
  ebpf::Bpf bpf(kernel);
  const ComplexitySummary summary =
      AnalyzeHelperComplexity(bpf.helpers(), kernel);
  ASSERT_GE(summary.total_helpers, 75u);
  // Paper: 52.2 % of helpers reach >= 30 functions; 34.5 % reach >= 500.
  EXPECT_NEAR(summary.fraction_ge_30, 0.522, 0.06);
  EXPECT_NEAR(summary.fraction_ge_500, 0.345, 0.04);
  // bpf_sys_bpf is the heaviest (paper: 4845 nodes; ours 4801).
  EXPECT_EQ(summary.helpers.front().name, "bpf_sys_bpf");
  EXPECT_NEAR(static_cast<double>(summary.max_nodes), 4845, 100);
  // Trivial helpers exist (bpf_get_current_pid_tgid calls nothing).
  EXPECT_EQ(summary.min_nodes, 1u);
}

TEST(MatrixTest, PropertiesSplitLanguageRuntimeSupervision) {
  const auto& matrix = SafetyMatrix();
  ASSERT_EQ(matrix.size(), 7u);
  int language = 0, runtime = 0, supervision = 0;
  for (const SafetyProperty& row : matrix) {
    if (row.enforcement == "Language safety") {
      ++language;
    } else if (row.enforcement == "Runtime protection") {
      ++runtime;
    } else if (row.enforcement == "Supervision") {
      ++supervision;
    }
    EXPECT_FALSE(row.probe.empty());
  }
  EXPECT_EQ(language, 3);  // exactly the paper's split...
  EXPECT_EQ(runtime, 3);
  EXPECT_EQ(supervision, 1);  // ...plus the availability row beyond it
}

TEST(WorkloadsTest, AllBuildersProduceVerifiableOrIntentionallyBadProgs) {
  simkern::Kernel kernel;
  ebpf::Bpf bpf(kernel);
  ASSERT_TRUE(kernel.BootstrapWorkload().ok());
  ebpf::MapSpec spec;
  spec.type = ebpf::MapType::kArray;
  spec.key_size = 4;
  spec.value_size = 8;
  spec.max_entries = 4;
  spec.name = "w";
  const int fd = bpf.maps().Create(spec).value();

  // These must all at least *build*.
  EXPECT_TRUE(BuildSysBpfNullCrash().ok());
  EXPECT_TRUE(BuildNestedLoopStall(fd, 3, 16).ok());
  EXPECT_TRUE(BuildArbitraryReadExploit(fd, 64).ok());
  EXPECT_TRUE(BuildJmp32BoundsExploit(fd).ok());
  EXPECT_TRUE(BuildPtrLeakExploit(fd).ok());
  EXPECT_TRUE(BuildDoubleSpinLock(fd).ok());
  EXPECT_TRUE(BuildSkLookupNoRelease().ok());
  EXPECT_TRUE(BuildSkLookupWithRelease().ok());
  EXPECT_TRUE(BuildGetTaskStackErrorPath().ok());
  EXPECT_TRUE(BuildTaskStorageNullOwner(fd).ok());
  EXPECT_TRUE(BuildArrayOverflowExploit(fd, 3).ok());
  EXPECT_TRUE(BuildJitHijackVictim().ok());
  EXPECT_TRUE(BuildStraightLine(100).ok());
  EXPECT_TRUE(BuildBranchDiamonds(4).ok());
  EXPECT_TRUE(BuildCountedLoop(10).ok());
  EXPECT_TRUE(BuildPacketCounter(fd).ok());

  // And the well-formed ones must verify on a default kernel.
  ebpf::VerifyOptions opts;
  opts.version = kernel.version();
  opts.faults = &bpf.faults();
  for (const auto& prog :
       {BuildSysBpfNullCrash(), BuildNestedLoopStall(fd, 2, 8),
        BuildGetTaskStackErrorPath(), BuildTaskStorageNullOwner(fd),
        BuildArrayOverflowExploit(fd, 3), BuildJitHijackVictim(),
        BuildStraightLine(64), BuildBranchDiamonds(6),
        BuildCountedLoop(32), BuildPacketCounter(fd),
        BuildSkLookupWithRelease()}) {
    ASSERT_TRUE(prog.ok());
    auto result = ebpf::Verify(prog.value(), bpf.maps(), bpf.helpers(),
                               opts);
    EXPECT_TRUE(result.ok())
        << prog.value().name << ": " << result.status().ToString();
  }
}

TEST(VerifierFeatureTest, TablePropertiesHold) {
  const auto& table = ebpf::VerifierFeatureTable();
  EXPECT_EQ(table.size(), 17u);
  // Versions are sorted.
  for (size_t i = 1; i < table.size(); ++i) {
    EXPECT_LE(table[i - 1].introduced, table[i].introduced);
  }
  // The bpf2bpf pass carries the "500 lines" the paper quotes [45].
  bool found = false;
  for (const auto& info : table) {
    if (info.name == "bpf2bpf") {
      EXPECT_EQ(info.linux_loc, 500u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Budget steps at the documented versions.
  EXPECT_EQ(ebpf::InsnBudgetAtVersion(simkern::kV3_18), 65'536u);
  EXPECT_EQ(ebpf::InsnBudgetAtVersion(simkern::kV4_14), 131'072u);
  EXPECT_EQ(ebpf::InsnBudgetAtVersion(simkern::kV5_2), 1'000'000u);
}

}  // namespace
}  // namespace analysis

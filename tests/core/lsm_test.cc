// LSM hook family tests: the privilege model (lsm helpers only from lsm
// programs, lsm programs only from privileged loaders, lsm programs only
// on the lsm_file_open hook), the six decision-context helpers against a
// populated context block, and the family's fail-closed fallback — a
// policy that dies must deny (EPERM), never allow, which is the opposite
// of the tracing hooks' fail-open default.
#include <gtest/gtest.h>

#include "src/core/hooks.h"
#include "src/core/toolchain.h"
#include "src/ebpf/asm.h"
#include "src/ebpf/loader.h"
#include "src/simkern/lsm.h"

namespace safex {
namespace {

using simkern::LsmCtxLayout;

class LsmTest : public ::testing::Test {
 protected:
  LsmTest() {
    simkern::KernelConfig config;
    config.version = simkern::kV6_12;
    // Expose the per-type privilege gate instead of the blanket
    // unprivileged-bpf sysctl that would fire first.
    config.unprivileged_bpf_disabled = false;
    kernel_ = std::make_unique<simkern::Kernel>(config);
    EXPECT_TRUE(kernel_->BootstrapWorkload().ok());
    bpf_ = std::make_unique<ebpf::Bpf>(*kernel_);
    bpf_loader_ = std::make_unique<ebpf::Loader>(*bpf_);
    runtime_ = Runtime::Create(*kernel_, *bpf_).value();
    key_ = std::make_unique<crypto::SigningKey>(
        crypto::SigningKey::FromPassphrase("lsm", "pw"));
    (void)runtime_->keyring().Enroll(*key_);
    ext_loader_ = std::make_unique<ExtLoader>(*runtime_);
    hooks_ = std::make_unique<HookRegistry>(*bpf_, *bpf_loader_,
                                            *ext_loader_);
    ctx_ = kernel_->mem()
               .Map(LsmCtxLayout::kSize, simkern::MemPerm::kReadWrite,
                    simkern::RegionKind::kKernelData, "lsmctx")
               .value();
  }

  // Populates the lsm_file_open decision context the helpers read.
  void FillCtx(xbase::u32 pid, xbase::u32 uid, xbase::u64 inode,
               xbase::u32 flags, std::string_view path) {
    ASSERT_TRUE(kernel_->mem().WriteU32(ctx_ + LsmCtxLayout::kPid, pid).ok());
    ASSERT_TRUE(kernel_->mem().WriteU32(ctx_ + LsmCtxLayout::kUid, uid).ok());
    ASSERT_TRUE(
        kernel_->mem().WriteU64(ctx_ + LsmCtxLayout::kInodeId, inode).ok());
    ASSERT_TRUE(
        kernel_->mem().WriteU32(ctx_ + LsmCtxLayout::kOpenFlags, flags).ok());
    ASSERT_TRUE(kernel_->mem()
                    .WriteU32(ctx_ + LsmCtxLayout::kPathLen,
                              static_cast<xbase::u32>(path.size()))
                    .ok());
    ASSERT_TRUE(
        kernel_->mem()
            .Write(ctx_ + LsmCtxLayout::kPath,
                   {reinterpret_cast<const xbase::u8*>(path.data()),
                    path.size()})
            .ok());
  }

  // Loads an lsm program whose verdict is the given helper's return value.
  xbase::u32 LoadHelperEcho(xbase::u32 helper_id) {
    ebpf::ProgramBuilder b("echo", ebpf::ProgType::kLsm);
    b.Ins(ebpf::CallHelper(helper_id)).Ins(ebpf::Exit());
    return bpf_loader_->Load(b.Build().value()).value();
  }

  std::unique_ptr<simkern::Kernel> kernel_;
  std::unique_ptr<ebpf::Bpf> bpf_;
  std::unique_ptr<ebpf::Loader> bpf_loader_;
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<crypto::SigningKey> key_;
  std::unique_ptr<ExtLoader> ext_loader_;
  std::unique_ptr<HookRegistry> hooks_;
  simkern::Addr ctx_ = 0;
};

// ---- privilege + pairing ---------------------------------------------------

TEST_F(LsmTest, LsmLoadRequiresPrivilegedLoader) {
  ebpf::ProgramBuilder b("policy", ebpf::ProgType::kLsm);
  b.Ins(ebpf::Mov64Imm(ebpf::R0, 0)).Ins(ebpf::Exit());
  ebpf::LoadOptions unpriv;
  unpriv.privileged = false;
  auto id = bpf_loader_->Load(b.Build().value(), unpriv);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), xbase::Code::kPermissionDenied);
  EXPECT_NE(
      id.status().message().find("lsm programs require a privileged loader"),
      std::string::npos)
      << id.status().message();
}

TEST_F(LsmTest, LsmProgramsPairOnlyWithTheLsmHook) {
  const xbase::u32 lsm_prog = LoadHelperEcho(ebpf::kHelperLsmCurrentUid);
  auto wrong_hook = hooks_->AttachProgram(HookPoint::kSyscallEnter, lsm_prog);
  ASSERT_FALSE(wrong_hook.ok());
  EXPECT_NE(wrong_hook.status().message().find(
                "can only attach to lsm_file_open"),
            std::string::npos)
      << wrong_hook.status().message();

  ebpf::ProgramBuilder b("tracer", ebpf::ProgType::kSyscall);
  b.Ins(ebpf::Mov64Imm(ebpf::R0, 0)).Ins(ebpf::Exit());
  const xbase::u32 syscall_prog =
      bpf_loader_->Load(b.Build().value()).value();
  auto wrong_type =
      hooks_->AttachProgram(HookPoint::kLsmFileOpen, syscall_prog);
  ASSERT_FALSE(wrong_type.ok());
  EXPECT_NE(wrong_type.status().message().find("is not lsm-typed"),
            std::string::npos)
      << wrong_type.status().message();

  EXPECT_TRUE(hooks_->AttachProgram(HookPoint::kLsmFileOpen, lsm_prog).ok());
}

TEST_F(LsmTest, LsmHelpersAreFamilyAndVersionGated) {
  // The family gate: an lsm helper from a non-lsm program never verifies.
  ebpf::ProgramBuilder b("thief", ebpf::ProgType::kSyscall);
  b.Ins(ebpf::CallHelper(ebpf::kHelperLsmInodeId)).Ins(ebpf::Exit());
  auto stolen = bpf_loader_->Load(b.Build().value());
  ASSERT_FALSE(stolen.ok());
  EXPECT_NE(stolen.status().message().find("restricted to lsm"),
            std::string::npos)
      << stolen.status().message();

  // The version gate: the whole family lands in 6.12.
  ebpf::ProgramBuilder old("early", ebpf::ProgType::kLsm);
  old.Ins(ebpf::CallHelper(ebpf::kHelperLsmInodeId)).Ins(ebpf::Exit());
  ebpf::LoadOptions opts;
  opts.version_override = simkern::KernelVersion{6, 11};
  auto early = bpf_loader_->Load(old.Build().value(), opts);
  ASSERT_FALSE(early.ok());
  EXPECT_NE(early.status().message().find("introduced in"),
            std::string::npos)
      << early.status().message();
}

// ---- the helpers against a populated decision context ----------------------

TEST_F(LsmTest, ContextHelpersReadTheDecisionContext) {
  FillCtx(/*pid=*/41, /*uid=*/1000, /*inode=*/977, /*flags=*/3, "/etc/x");
  (void)hooks_->AttachProgram(HookPoint::kLsmFileOpen,
                              LoadHelperEcho(ebpf::kHelperLsmInodeId));
  auto report = hooks_->Fire(HookPoint::kLsmFileOpen, ctx_);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().verdicts.size(), 1u);
  EXPECT_EQ(report.value().verdicts[0].value, 977u);

  // Swap in the flags reader: same context block, different field.
  ASSERT_TRUE(hooks_->Detach(report.value().verdicts[0].attachment_id).ok());
  (void)hooks_->AttachProgram(HookPoint::kLsmFileOpen,
                              LoadHelperEcho(ebpf::kHelperLsmOpenFlags));
  report = hooks_->Fire(HookPoint::kLsmFileOpen, ctx_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().verdicts[0].value, 3u);
}

TEST_F(LsmTest, UidPolicyAllowsAndDeniesByCredential) {
  // A real policy shape: allow uid 1000, deny everyone else with EPERM.
  ebpf::ProgramBuilder b("uid-policy", ebpf::ProgType::kLsm);
  b.Ins(ebpf::CallHelper(ebpf::kHelperLsmCurrentUid))
      .JmpTo(ebpf::BPF_JEQ, ebpf::R0, 1000, "allow")
      .Ins(ebpf::Mov64Imm(ebpf::R0, 1))
      .Ins(ebpf::Exit())
      .Bind("allow")
      .Ins(ebpf::Mov64Imm(ebpf::R0, 0))
      .Ins(ebpf::Exit());
  (void)hooks_->AttachProgram(HookPoint::kLsmFileOpen,
                              bpf_loader_->Load(b.Build().value()).value());

  FillCtx(41, /*uid=*/1000, 977, 0, "/ok");
  auto report = hooks_->Fire(HookPoint::kLsmFileOpen, ctx_);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().denied);

  FillCtx(41, /*uid=*/0, 977, 0, "/ok");
  report = hooks_->Fire(HookPoint::kLsmFileOpen, ctx_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().denied);
  EXPECT_EQ(report.value().verdict, 1u);
}

TEST_F(LsmTest, ReadPathCopiesBoundedPathBytes) {
  // bpf_lsm_read_path(buf, n) returns min(n, path_len, kPathMax).
  ebpf::ProgramBuilder b("pathread", ebpf::ProgType::kLsm);
  b.Ins(ebpf::Mov64Reg(ebpf::R1, ebpf::R10))
      .Ins(ebpf::Alu64Imm(ebpf::BPF_ADD, ebpf::R1, -16))
      .Ins(ebpf::Mov64Imm(ebpf::R2, 16))
      .Ins(ebpf::CallHelper(ebpf::kHelperLsmReadPath))
      .Ins(ebpf::Exit());
  (void)hooks_->AttachProgram(HookPoint::kLsmFileOpen,
                              bpf_loader_->Load(b.Build().value()).value());
  FillCtx(41, 1000, 977, 0, "hello");
  auto report = hooks_->Fire(HookPoint::kLsmFileOpen, ctx_);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().verdicts.size(), 1u);
  EXPECT_TRUE(report.value().verdicts[0].status.ok());
  EXPECT_EQ(report.value().verdicts[0].value, 5u) << "5 valid path bytes";
}

TEST_F(LsmTest, AuditAndRatelimitComposeIntoAThrottledSink) {
  // Audit the event, then let the rate limiter decide the verdict: after
  // the 16-token bucket for this key drains, the policy denies.
  ebpf::ProgramBuilder b("throttle", ebpf::ProgType::kLsm);
  b.Ins(ebpf::StMemImm(ebpf::BPF_DW, ebpf::R10, -8, 0x5f5f))
      .Ins(ebpf::Mov64Reg(ebpf::R1, ebpf::R10))
      .Ins(ebpf::Alu64Imm(ebpf::BPF_ADD, ebpf::R1, -8))
      .Ins(ebpf::Mov64Imm(ebpf::R2, 8))
      .Ins(ebpf::CallHelper(ebpf::kHelperLsmAudit))
      .Ins(ebpf::Mov64Imm(ebpf::R1, 7))  // bucket key
      .Ins(ebpf::CallHelper(ebpf::kHelperLsmRatelimit))
      .JmpTo(ebpf::BPF_JEQ, ebpf::R0, 1, "allowed")
      .Ins(ebpf::Mov64Imm(ebpf::R0, 1))  // bucket empty: deny
      .Ins(ebpf::Exit())
      .Bind("allowed")
      .Ins(ebpf::Mov64Imm(ebpf::R0, 0))
      .Ins(ebpf::Exit());
  (void)hooks_->AttachProgram(HookPoint::kLsmFileOpen,
                              bpf_loader_->Load(b.Build().value()).value());
  FillCtx(41, 1000, 977, 0, "/var/log");

  for (int fire = 0; fire < 16; ++fire) {
    auto report = hooks_->Fire(HookPoint::kLsmFileOpen, ctx_);
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report.value().denied) << "token " << fire << " available";
  }
  auto report = hooks_->Fire(HookPoint::kLsmFileOpen, ctx_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().denied) << "bucket drained";
  EXPECT_EQ(report.value().verdict, 1u);
}

// ---- fail-closed fallback --------------------------------------------------

TEST_F(LsmTest, DeadPolicyFailsClosedWithEperm) {
  // On tracing hooks a dead attachment contributes nothing (fail open);
  // an access-control hook must instead substitute a denial — a crashed
  // policy that silently allowed every open would be a privilege defect.
  class Panicker : public Extension {
   public:
    xbase::Result<xbase::u64> Run(Ctx& ctx) override {
      ctx.Panic("lsm policy died");
      return xbase::u64{0};
    }
  };
  Toolchain toolchain(*key_);
  ExtensionManifest manifest;
  manifest.name = "dying-policy";
  manifest.version = "1";
  auto artifact = toolchain.Build(
      manifest, []() { return std::make_unique<Panicker>(); },
      std::span<const xbase::u8>());
  const auto ext_id = ext_loader_->Load(artifact.value()).value();
  (void)hooks_->AttachExtension(HookPoint::kLsmFileOpen, ext_id);

  FillCtx(41, 1000, 977, 0, "/etc/shadow");
  auto report = hooks_->Fire(HookPoint::kLsmFileOpen, ctx_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().denied) << "fail closed, never open";
  EXPECT_EQ(report.value().verdict, 1u) << "EPERM";
  ASSERT_EQ(report.value().verdicts.size(), 1u);
  EXPECT_FALSE(report.value().verdicts[0].status.ok());
  EXPECT_FALSE(kernel_->crashed());
}

}  // namespace
}  // namespace safex

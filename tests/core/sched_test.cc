// Scheduler hook family tests: the RunQueue substrate, the privilege model
// (sched helpers only from sched_ext, sched_ext only from privileged
// loaders, sched_ext only on the scheduler hook), and the SchedCore
// containment ladder — every injectable scheduler fault must be detected,
// attributed to the offending attachment, and survived by fail-over to the
// built-in round-robin policy, while the unsupervised loop demonstrably
// stalls or starves under the same faults.
#include <gtest/gtest.h>

#include "src/analysis/workloads.h"
#include "src/core/sched.h"
#include "src/core/toolchain.h"
#include "src/ebpf/loader.h"

namespace safex {
namespace {

constexpr xbase::u64 kMs = simkern::kNsPerMs;

// ---- RunQueue unit tests ---------------------------------------------------

TEST(RunQueueUnit, EnqueueDequeueContains) {
  simkern::RunQueue rq;
  EXPECT_TRUE(rq.Enqueue(10, 0).ok());
  EXPECT_TRUE(rq.Enqueue(20, 5).ok());
  EXPECT_EQ(rq.Enqueue(10, 6).code(), xbase::Code::kAlreadyExists);
  EXPECT_TRUE(rq.Contains(10));
  EXPECT_EQ(rq.runnable_count(), 2u);
  EXPECT_TRUE(rq.Dequeue(10).ok());
  EXPECT_FALSE(rq.Contains(10));
  EXPECT_EQ(rq.Dequeue(10).code(), xbase::Code::kNotFound);
}

TEST(RunQueueUnit, DispatchCycleIsRoundRobin) {
  simkern::RunQueue rq;
  (void)rq.Enqueue(1, 0);
  (void)rq.Enqueue(2, 0);
  (void)rq.Enqueue(3, 0);
  std::vector<xbase::u32> order;
  for (int i = 0; i < 6; ++i) {
    const xbase::u32 pid = rq.PickDefault().value();
    order.push_back(pid);
    ASSERT_TRUE(rq.MarkRan(pid, i).ok());
    ASSERT_TRUE(rq.Enqueue(pid, i).ok());
  }
  EXPECT_EQ(order, (std::vector<xbase::u32>{1, 2, 3, 1, 2, 3}));
  EXPECT_EQ(rq.StatsOf(1).runs, 2u);
}

TEST(RunQueueUnit, WaitTracksEnqueueTime) {
  simkern::RunQueue rq;
  (void)rq.Enqueue(7, 100);
  EXPECT_EQ(rq.WaitNs(7, 250).value(), 150u);
  EXPECT_EQ(rq.MaxWaitNs(250), 150u);
  EXPECT_FALSE(rq.WaitNs(8, 250).ok());
}

TEST(RunQueueUnit, StarvationScanIsEdgeTriggeredPerBound) {
  simkern::RunQueue rq;
  (void)rq.Enqueue(5, 0);
  EXPECT_TRUE(rq.ScanStarved(100, 50).empty()) << "below the bound";
  EXPECT_EQ(rq.ScanStarved(100, 120), std::vector<xbase::u32>{5});
  EXPECT_TRUE(rq.ScanStarved(100, 130).empty())
      << "already flagged for this bound";
  EXPECT_EQ(rq.ScanStarved(100, 225), std::vector<xbase::u32>{5})
      << "re-flagged one bound later";
  // Running clears the flag and the wait.
  ASSERT_TRUE(rq.MarkRan(5, 230).ok());
  (void)rq.Enqueue(5, 230);
  EXPECT_TRUE(rq.ScanStarved(100, 300).empty());
}

TEST(RunQueueUnit, DropErasesQueueEntryAndStats) {
  simkern::RunQueue rq;
  (void)rq.Enqueue(9, 0);
  (void)rq.MarkRan(9, 10);
  (void)rq.Enqueue(9, 10);
  rq.Drop(9);
  EXPECT_FALSE(rq.Contains(9));
  EXPECT_EQ(rq.StatsOf(9).runs, 0u) << "stats gone with the task";
}

// ---- privilege model -------------------------------------------------------

class SchedGatingTest : public ::testing::Test {
 protected:
  SchedGatingTest() {
    simkern::KernelConfig config;
    config.version = simkern::kV6_12;
    config.unprivileged_bpf_disabled = false;
    kernel_ = std::make_unique<simkern::Kernel>(config);
    bpf_ = std::make_unique<ebpf::Bpf>(*kernel_);
    loader_ = std::make_unique<ebpf::Loader>(*bpf_);
    EXPECT_TRUE(kernel_->BootstrapWorkload().ok());
  }

  std::unique_ptr<simkern::Kernel> kernel_;
  std::unique_ptr<ebpf::Bpf> bpf_;
  std::unique_ptr<ebpf::Loader> loader_;
};

TEST_F(SchedGatingTest, SchedHelpersRejectedOutsideSchedExt) {
  // An XDP program calling a sched-family helper must not verify.
  ebpf::ProgramBuilder b("xdp_calls_sched", ebpf::ProgType::kXdp);
  b.Ins(ebpf::CallHelper(ebpf::kHelperSchedYield))
      .Ins(ebpf::Mov64Imm(ebpf::R0, 2))
      .Ins(ebpf::Exit());
  auto id = loader_->Load(b.Build().value());
  ASSERT_FALSE(id.ok());
  EXPECT_NE(id.status().message().find("restricted to sched_ext"),
            std::string::npos)
      << id.status().message();
}

TEST_F(SchedGatingTest, NetHelpersRejectedInsideSchedExt) {
  // A sched_ext program has no packet; the net family is off limits.
  ebpf::ProgramBuilder b("sched_calls_net", ebpf::ProgType::kSchedExt);
  b.Ins(ebpf::Mov64Imm(ebpf::R1, 1))
      .Ins(ebpf::Mov64Imm(ebpf::R2, 0))
      .Ins(ebpf::CallHelper(ebpf::kHelperRedirect))
      .Ins(ebpf::Mov64Imm(ebpf::R0, 0))
      .Ins(ebpf::Exit());
  auto id = loader_->Load(b.Build().value());
  ASSERT_FALSE(id.ok());
  EXPECT_NE(id.status().message().find("not available to sched_ext"),
            std::string::npos)
      << id.status().message();
}

TEST_F(SchedGatingTest, SchedHelpersVersionGatedAt612) {
  // The same clean policy fails to verify as-of v6.1: the helpers do not
  // exist yet.
  const ebpf::Program prog = analysis::BuildSchedPickFirst().value();
  ebpf::LoadOptions old_opts;
  old_opts.version_override = simkern::kV6_1;
  EXPECT_FALSE(loader_->Load(prog, old_opts).ok());
  EXPECT_TRUE(loader_->Load(prog).ok());
}

TEST_F(SchedGatingTest, SchedExtRequiresPrivilegedLoader) {
  const ebpf::Program prog = analysis::BuildSchedPickFirst().value();
  ebpf::LoadOptions unpriv;
  unpriv.privileged = false;
  auto id = loader_->Load(prog, unpriv);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), xbase::Code::kPermissionDenied);
}

// ---- SchedCore -------------------------------------------------------------

SupervisorConfig SchedSupConfig() {
  SupervisorConfig config;
  config.window_ns = 100 * kMs;
  config.crash_budget = 3;
  config.base_backoff_ns = 10 * kMs;
  config.probation_successes = 3;
  config.max_trips = 4;
  return config;
}

class SchedCoreTest : public ::testing::Test {
 protected:
  void Build(bool supervised) {
    simkern::KernelConfig kconfig;
    kconfig.version = simkern::kV6_12;
    kconfig.unprivileged_bpf_disabled = false;
    kernel_ = std::make_unique<simkern::Kernel>(kconfig);
    kernel_->set_oops_recovery(true);
    EXPECT_TRUE(kernel_->BootstrapWorkload().ok());
    bpf_ = std::make_unique<ebpf::Bpf>(*kernel_);
    bpf_loader_ = std::make_unique<ebpf::Loader>(*bpf_);
    runtime_ = Runtime::Create(*kernel_, *bpf_).value();
    key_ = std::make_unique<crypto::SigningKey>(
        crypto::SigningKey::FromPassphrase("sched", "pw"));
    (void)runtime_->keyring().Enroll(*key_);
    ext_loader_ = std::make_unique<ExtLoader>(*runtime_);
    supervisor_ = std::make_unique<Supervisor>(SchedSupConfig());
    HookRegistryConfig hconfig;
    if (supervised) {
      hconfig.supervisor = supervisor_.get();
    }
    hooks_ = std::make_unique<HookRegistry>(*bpf_, *bpf_loader_,
                                            *ext_loader_, hconfig);
    SchedConfig sconfig;
    sconfig.supervised = supervised;
    sconfig.starvation_bound_ns = 10 * kMs;  // quick starvation detection
    sched_ = std::make_unique<SchedCore>(*kernel_, *hooks_, sconfig);
    ASSERT_TRUE(sched_->Init().ok());
  }

  // Loads a sched_ext policy and attaches it to the pick-next hook.
  xbase::u32 Attach(const ebpf::Program& prog) {
    auto prog_id = bpf_loader_->Load(prog);
    EXPECT_TRUE(prog_id.ok()) << prog_id.status().message();
    auto attach_id =
        hooks_->AttachProgram(HookPoint::kSchedPickNext, prog_id.value());
    EXPECT_TRUE(attach_id.ok()) << attach_id.status().message();
    return attach_id.value();
  }

  std::unique_ptr<simkern::Kernel> kernel_;
  std::unique_ptr<ebpf::Bpf> bpf_;
  std::unique_ptr<ebpf::Loader> bpf_loader_;
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<crypto::SigningKey> key_;
  std::unique_ptr<ExtLoader> ext_loader_;
  std::unique_ptr<Supervisor> supervisor_;
  std::unique_ptr<HookRegistry> hooks_;
  std::unique_ptr<SchedCore> sched_;
};

TEST_F(SchedCoreTest, SchedExtOnlyAttachesToSchedHookAndViceVersa) {
  Build(/*supervised=*/true);
  const auto sched_prog =
      bpf_loader_->Load(analysis::BuildSchedPickFirst().value());
  ASSERT_TRUE(sched_prog.ok());
  auto wrong_hook =
      hooks_->AttachProgram(HookPoint::kXdpIngress, sched_prog.value());
  EXPECT_EQ(wrong_hook.status().code(), xbase::Code::kFailedPrecondition);

  const auto xdp_prog =
      bpf_loader_->Load(analysis::BuildSkLookupWithRelease().value());
  ASSERT_TRUE(xdp_prog.ok());
  auto wrong_type =
      hooks_->AttachProgram(HookPoint::kSchedPickNext, xdp_prog.value());
  EXPECT_EQ(wrong_type.status().code(), xbase::Code::kFailedPrecondition);
}

TEST_F(SchedCoreTest, DefaultPolicyRoundRobinsAllTasks) {
  Build(/*supervised=*/true);
  // No extension attached; supervised reclaim makes every live task
  // runnable and the built-in policy round-robins them.
  for (int i = 0; i < 9; ++i) {
    const SchedTickOutcome outcome = sched_->Tick();
    EXPECT_NE(outcome.ran_pid, 0u);
    EXPECT_FALSE(outcome.from_extension);
  }
  const simkern::RunQueue& rq = kernel_->runqueue();
  for (xbase::u32 pid : kernel_->tasks().Pids()) {
    EXPECT_EQ(rq.StatsOf(pid).runs, 3u) << "pid " << pid;
  }
  EXPECT_EQ(sched_->stats().default_picks, 9u);
}

TEST_F(SchedCoreTest, HonestExtensionPolicyDrivesDispatch) {
  Build(/*supervised=*/true);
  const xbase::u32 attachment =
      Attach(analysis::BuildSchedPickLongestWaiting().value());
  for (int i = 0; i < 30; ++i) {
    const SchedTickOutcome outcome = sched_->Tick();
    EXPECT_NE(outcome.ran_pid, 0u);
    EXPECT_TRUE(outcome.from_extension);
  }
  EXPECT_EQ(sched_->stats().ext_picks, 30u);
  EXPECT_EQ(sched_->stats().fallback_picks, 0u);
  EXPECT_EQ(sched_->stats().starvation_events, 0u)
      << "longest-waiting is fair";
  EXPECT_EQ(supervisor_->HealthOf(attachment), ExtHealth::kHealthy);
  // Every task progressed.
  for (xbase::u32 pid : kernel_->tasks().Pids()) {
    EXPECT_GT(kernel_->runqueue().StatsOf(pid).runs, 0u) << "pid " << pid;
  }
}

TEST_F(SchedCoreTest, YieldingPolicyHandsOffToDefault) {
  Build(/*supervised=*/true);
  const xbase::u32 attachment = Attach(analysis::BuildSchedYield().value());
  for (int i = 0; i < 6; ++i) {
    const SchedTickOutcome outcome = sched_->Tick();
    EXPECT_TRUE(outcome.yielded);
    EXPECT_NE(outcome.ran_pid, 0u) << "yield still dispatches";
    EXPECT_FALSE(outcome.fell_back) << "a yield is not a rescue";
  }
  EXPECT_EQ(sched_->stats().yields, 6u);
  EXPECT_EQ(supervisor_->HealthOf(attachment), ExtHealth::kHealthy)
      << "yielding is not a failure";
}

TEST_F(SchedCoreTest, StallingPickMissesDeadlineAndStillDispatches) {
  Build(/*supervised=*/true);
  bpf_->faults().Inject(ebpf::kFaultSchedStallLoop);
  const xbase::u32 attachment =
      Attach(analysis::BuildSchedPickViaDefault().value());
  bool tripped = false;
  for (int i = 0; i < 10; ++i) {
    const SchedTickOutcome outcome = sched_->Tick();
    EXPECT_NE(outcome.ran_pid, 0u)
        << "tick " << i << ": a stalling policy must not stall the CPU";
    tripped |= supervisor_->HealthOf(attachment) == ExtHealth::kQuarantined;
  }
  EXPECT_GT(sched_->stats().deadline_misses, 0u);
  EXPECT_GT(sched_->stats().fallback_picks, 0u);
  EXPECT_TRUE(tripped) << "repeated deadline misses must trip the breaker";
  const ExtRecord* record = supervisor_->Find(attachment);
  ASSERT_NE(record, nullptr);
  EXPECT_GT(record->failures_by_kind[static_cast<xbase::usize>(
                FailureKind::kDeadlineMiss)],
            0u);
  EXPECT_EQ(sched_->stats().dispatches, sched_->stats().ticks);
}

TEST_F(SchedCoreTest, InvalidPidPickIsContainedAndCharged) {
  Build(/*supervised=*/true);
  bpf_->faults().Inject(ebpf::kFaultSchedPickInvalidPid);
  const xbase::u32 attachment =
      Attach(analysis::BuildSchedPickFirst().value());
  for (int i = 0; i < 5; ++i) {
    const SchedTickOutcome outcome = sched_->Tick();
    EXPECT_NE(outcome.ran_pid, 0u) << "fallback must still dispatch";
    EXPECT_FALSE(outcome.from_extension);
  }
  EXPECT_GT(sched_->stats().invalid_picks, 0u);
  const ExtRecord* record = supervisor_->Find(attachment);
  ASSERT_NE(record, nullptr);
  EXPECT_GT(record->failures_by_kind[static_cast<xbase::usize>(
                FailureKind::kInvalidPick)],
            0u);
}

TEST_F(SchedCoreTest, ConstantGarbagePolicyIsContained) {
  Build(/*supervised=*/true);
  (void)Attach(analysis::BuildSchedPickConstant(0xbeef).value());
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(sched_->Tick().ran_pid, 0u);
  }
  EXPECT_GT(sched_->stats().invalid_picks, 0u);
  EXPECT_EQ(sched_->stats().dispatches, sched_->stats().ticks);
}

TEST_F(SchedCoreTest, DoublePickVictimIsDetectedAndReclaimed) {
  Build(/*supervised=*/true);
  const xbase::u32 attachment =
      Attach(analysis::BuildSchedDoublePick().value());
  for (int i = 0; i < 6; ++i) {
    (void)sched_->Tick();
  }
  EXPECT_GT(sched_->stats().invalid_picks, 0u)
      << "a dequeued pick is non-runnable at dispatch";
  const ExtRecord* record = supervisor_->Find(attachment);
  ASSERT_NE(record, nullptr);
  EXPECT_GT(record->failures_by_kind[static_cast<xbase::usize>(
                FailureKind::kInvalidPick)],
            0u);
  // The reclaim pass re-admitted every victim: all live tasks runnable.
  for (xbase::u32 pid : kernel_->tasks().Pids()) {
    EXPECT_TRUE(kernel_->runqueue().Contains(pid)) << "pid " << pid;
  }
}

TEST_F(SchedCoreTest, HiddenTaskStarvationIsDetectedChargedAndRescued) {
  Build(/*supervised=*/true);
  bpf_->faults().Inject(ebpf::kFaultSchedRunnableFilter);
  const xbase::u32 attachment =
      Attach(analysis::BuildSchedPickLongestWaiting().value());
  // The filter hides the highest pid from every enumeration; the policy
  // itself is honest but can only serve what it can see.
  const std::vector<xbase::u32> pids = kernel_->tasks().Pids();
  const xbase::u32 hidden = pids.back();
  for (int i = 0; i < 120 &&
                  supervisor_->HealthOf(attachment) == ExtHealth::kHealthy;
       ++i) {
    (void)sched_->Tick();
  }
  EXPECT_GT(sched_->stats().starvation_events, 0u);
  const ExtRecord* record = supervisor_->Find(attachment);
  ASSERT_NE(record, nullptr);
  EXPECT_GT(record->failures_by_kind[static_cast<xbase::usize>(
                FailureKind::kStarvation)],
            0u);
  EXPECT_EQ(record->health, ExtHealth::kQuarantined);
  // With the policy quarantined the fallback round-robin serves the
  // starved task again.
  const xbase::u64 runs_before = kernel_->runqueue().StatsOf(hidden).runs;
  for (int i = 0; i < 8; ++i) {
    (void)sched_->Tick();
  }
  EXPECT_GT(kernel_->runqueue().StatsOf(hidden).runs, runs_before)
      << "fail-over must rescue the starved task";
}

TEST_F(SchedCoreTest, CrashOnPickIsAttributedAndSurvived) {
  Build(/*supervised=*/true);
  bpf_->faults().Inject(ebpf::kFaultSchedCrashOnPick);
  const xbase::u32 attachment =
      Attach(analysis::BuildSchedPickLongestWaiting().value());
  for (int i = 0; i < 5; ++i) {
    const SchedTickOutcome outcome = sched_->Tick();
    EXPECT_NE(outcome.ran_pid, 0u) << "oops on pick must not stop dispatch";
  }
  EXPECT_EQ(kernel_->state(), simkern::KernelState::kRunning)
      << "the oops is contained, not fatal";
  EXPECT_FALSE(kernel_->oopses().empty());
  EXPECT_NE(kernel_->oopses().front().attribution.find("bpf:"),
            std::string::npos)
      << "the oops is attributed to the extension, not the scheduler";
  const ExtRecord* record = supervisor_->Find(attachment);
  ASSERT_NE(record, nullptr);
  EXPECT_GT(record->failures_by_kind[static_cast<xbase::usize>(
                FailureKind::kOops)],
            0u);
}

TEST_F(SchedCoreTest, UnsupervisedInvalidPicksStallTheCpu) {
  Build(/*supervised=*/false);
  bpf_->faults().Inject(ebpf::kFaultSchedPickInvalidPid);
  (void)Attach(analysis::BuildSchedPickFirst().value());
  // Seed the queue manually: unsupervised mode has no reclaim pass.
  for (xbase::u32 pid : kernel_->tasks().Pids()) {
    (void)kernel_->runqueue().Enqueue(pid, kernel_->clock().now_ns());
  }
  for (int i = 0; i < 10; ++i) {
    const SchedTickOutcome outcome = sched_->Tick();
    EXPECT_TRUE(outcome.stalled);
    EXPECT_EQ(outcome.ran_pid, 0u);
  }
  EXPECT_EQ(sched_->stats().stalls, 10u);
  EXPECT_EQ(sched_->stats().dispatches, 0u)
      << "without supervision nothing runs: the availability gap";
}

TEST_F(SchedCoreTest, UnsupervisedHiddenTaskStarvesForever) {
  Build(/*supervised=*/false);
  bpf_->faults().Inject(ebpf::kFaultSchedRunnableFilter);
  (void)Attach(analysis::BuildSchedPickLongestWaiting().value());
  for (xbase::u32 pid : kernel_->tasks().Pids()) {
    (void)kernel_->runqueue().Enqueue(pid, kernel_->clock().now_ns());
  }
  const xbase::u32 hidden = kernel_->tasks().Pids().back();
  for (int i = 0; i < 120; ++i) {
    (void)sched_->Tick();
  }
  EXPECT_EQ(kernel_->runqueue().StatsOf(hidden).runs, 0u)
      << "nobody rescues the hidden task";
  EXPECT_GT(sched_->stats().starvation_events, 0u)
      << "the detector still *counts* in unsupervised mode";
  EXPECT_GT(sched_->stats().dispatches, 0u)
      << "the visible tasks keep running; exactly one starves";
}

TEST_F(SchedCoreTest, QuarantineProbationRestoreLadder) {
  // Deadline-miss ladder end to end: stall faults trip the breaker; the
  // fault is then cleared, the backoff served, and clean probation picks
  // restore the policy to healthy, steering dispatch again.
  Build(/*supervised=*/true);
  bpf_->faults().Inject(ebpf::kFaultSchedStallLoop);
  const xbase::u32 attachment =
      Attach(analysis::BuildSchedPickViaDefault().value());
  while (supervisor_->HealthOf(attachment) == ExtHealth::kHealthy) {
    ASSERT_NE(sched_->Tick().ran_pid, 0u);
  }
  ASSERT_EQ(supervisor_->HealthOf(attachment), ExtHealth::kQuarantined);

  // While quarantined: every tick is a fallback dispatch.
  const xbase::u64 fallback_before = sched_->stats().fallback_picks;
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(sched_->Tick().ran_pid, 0u);
  }
  EXPECT_EQ(sched_->stats().fallback_picks, fallback_before + 3);

  // The operator fixes the helper (clears the fault); the scheduler keeps
  // ticking. Once the 10ms backoff is served the breaker half-opens,
  // probation trials run the real policy again, and clean picks close it.
  bpf_->faults().Clear(ebpf::kFaultSchedStallLoop);
  xbase::u64 ext_picks = 0;
  for (int i = 0; i < 16; ++i) {
    const SchedTickOutcome outcome = sched_->Tick();
    ASSERT_NE(outcome.ran_pid, 0u);
    ext_picks += outcome.from_extension ? 1 : 0;
  }
  EXPECT_EQ(supervisor_->HealthOf(attachment), ExtHealth::kHealthy)
      << "clean probation picks must close the breaker";
  EXPECT_GT(ext_picks, 0u) << "probation trials steer dispatch again";
  EXPECT_TRUE(sched_->Tick().from_extension)
      << "restored policy steers dispatch again";
  EXPECT_EQ(supervisor_->readmissions(), 1u);
  EXPECT_TRUE(
      supervisor_->CheckConsistent(kernel_->clock().now_ns()).ok());
}

}  // namespace
}  // namespace safex

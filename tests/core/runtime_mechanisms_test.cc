// Unit tests for the safex runtime mechanisms in isolation: memory pool,
// cleanup registry, watchdog, canonical artifact encoding, and the §4
// protection-domain ablation.
#include <gtest/gtest.h>

#include "src/core/loader.h"
#include "src/core/toolchain.h"

namespace safex {
namespace {

// ---- memory pool -----------------------------------------------------------

class PoolTest : public ::testing::Test {
 protected:
  simkern::Kernel kernel_;
};

TEST_F(PoolTest, AllocFreeCycle) {
  auto pool = MemoryPool::Create(kernel_, "t", 64, 4, 0).value();
  auto a = pool.Alloc(kernel_);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(pool.Owns(a.value()));
  EXPECT_EQ(pool.stats().chunks_in_use, 1u);
  ASSERT_TRUE(pool.Free(a.value()).ok());
  EXPECT_EQ(pool.stats().chunks_in_use, 0u);
}

TEST_F(PoolTest, ExhaustionAndRecovery) {
  auto pool = MemoryPool::Create(kernel_, "t", 64, 2, 0).value();
  auto a = pool.Alloc(kernel_);
  auto b = pool.Alloc(kernel_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(pool.Alloc(kernel_).status().code(),
            xbase::Code::kResourceExhausted);
  EXPECT_EQ(pool.stats().failed_allocs, 1u);
  ASSERT_TRUE(pool.Free(a.value()).ok());
  EXPECT_TRUE(pool.Alloc(kernel_).ok());
  EXPECT_EQ(pool.stats().peak_in_use, 2u);
}

TEST_F(PoolTest, DoubleFreeAndForeignFreeRejected) {
  auto pool = MemoryPool::Create(kernel_, "t", 64, 2, 0).value();
  auto chunk = pool.Alloc(kernel_).value();
  ASSERT_TRUE(pool.Free(chunk).ok());
  EXPECT_EQ(pool.Free(chunk).code(), xbase::Code::kFailedPrecondition);
  EXPECT_EQ(pool.Free(0x1234).code(), xbase::Code::kInvalidArgument);
  EXPECT_EQ(pool.Free(chunk + 7).code(), xbase::Code::kInvalidArgument)
      << "interior pointers are not chunks";
}

TEST_F(PoolTest, ChunksAreZeroedOnAlloc) {
  auto pool = MemoryPool::Create(kernel_, "t", 8, 1, 0).value();
  auto chunk = pool.Alloc(kernel_).value();
  ASSERT_TRUE(kernel_.mem().WriteU64(chunk, 0xdeadbeef).ok());
  ASSERT_TRUE(pool.Free(chunk).ok());
  auto again = pool.Alloc(kernel_).value();
  EXPECT_EQ(again, chunk);
  EXPECT_EQ(kernel_.mem().ReadU64(again).value(), 0u);
}

TEST_F(PoolTest, ResetFreesEverything) {
  auto pool = MemoryPool::Create(kernel_, "t", 8, 4, 0).value();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.Alloc(kernel_).ok());
  }
  pool.Reset();
  EXPECT_EQ(pool.stats().chunks_in_use, 0u);
  EXPECT_TRUE(pool.Alloc(kernel_).ok());
}

TEST_F(PoolTest, PerCpuPoolsAreDisjoint) {
  auto pools = PerCpuPools::Create(kernel_, 64, 2, 0).value();
  const auto a = pools.ForCpu(0).Alloc(kernel_).value();
  const auto b = pools.ForCpu(1).Alloc(kernel_).value();
  EXPECT_FALSE(pools.ForCpu(0).Owns(b));
  EXPECT_FALSE(pools.ForCpu(1).Owns(a));
}

// ---- cleanup registry ----------------------------------------------------------

TEST(CleanupTest, RunsLifoAndReleasesEveryKind) {
  simkern::Kernel kernel;
  auto pool = MemoryPool::Create(kernel, "c", 32, 4, 0).value();
  const auto chunk = pool.Alloc(kernel).value();
  const auto obj = kernel.objects().Create(simkern::ObjectType::kSock, "s");
  ASSERT_TRUE(kernel.objects().Acquire(obj).ok());
  const auto lock = kernel.locks().Create("l");
  ASSERT_TRUE(kernel.locks().Acquire(lock, "t").ok());

  CleanupRegistry registry;
  ASSERT_TRUE(registry.Record(CleanupKind::kReleaseObject, obj).ok());
  ASSERT_TRUE(registry.Record(CleanupKind::kReleaseLock, lock).ok());
  ASSERT_TRUE(registry.Record(CleanupKind::kFreePoolChunk, chunk).ok());
  EXPECT_EQ(registry.outstanding(), 3u);

  const CleanupReport report = registry.RunAll(kernel, &pool);
  EXPECT_EQ(report.entries_run, 3u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(kernel.objects().RefcountOf(obj), 1);
  EXPECT_FALSE(kernel.locks().IsHeld(lock));
  EXPECT_EQ(pool.stats().chunks_in_use, 0u);
  EXPECT_EQ(registry.outstanding(), 0u);
}

TEST(CleanupTest, DischargeRemovesMatchingEntry) {
  simkern::Kernel kernel;
  CleanupRegistry registry;
  ASSERT_TRUE(registry.Record(CleanupKind::kReleaseObject, 1).ok());
  ASSERT_TRUE(registry.Record(CleanupKind::kReleaseObject, 2).ok());
  registry.Discharge(CleanupKind::kReleaseObject, 1);
  EXPECT_EQ(registry.outstanding(), 1u);
  registry.Discharge(CleanupKind::kReleaseObject, 42);  // no-op
  EXPECT_EQ(registry.outstanding(), 1u);
}

TEST(CleanupTest, CapacityRefusesNewAcquisitions) {
  CleanupRegistry registry;
  for (xbase::u32 i = 0; i < CleanupRegistry::kCapacity; ++i) {
    ASSERT_TRUE(registry.Record(CleanupKind::kReleaseObject, i).ok());
  }
  EXPECT_EQ(registry.Record(CleanupKind::kReleaseObject, 999).code(),
            xbase::Code::kResourceExhausted)
      << "acquisition must be refused, never the release";
}

// ---- watchdog ----------------------------------------------------------------------

TEST(WatchdogTest, FiresAtDeadline) {
  simkern::SimClock clock;
  Watchdog watchdog;
  watchdog.Arm(clock, 1000);
  EXPECT_FALSE(watchdog.Expired(clock));
  clock.Advance(999);
  EXPECT_FALSE(watchdog.Expired(clock));
  clock.Advance(1);
  EXPECT_TRUE(watchdog.Expired(clock));
  watchdog.Disarm();
  EXPECT_FALSE(watchdog.Expired(clock));
}

TEST(WatchdogTest, HugeBudgetSaturatesInsteadOfWrapping) {
  simkern::SimClock clock;
  clock.Advance(1000);
  Watchdog watchdog;
  // now + budget overflows u64; a wrapping add would land the deadline in
  // the past and kill the invocation instantly.
  watchdog.Arm(clock, ~xbase::u64{0} - 10);
  EXPECT_FALSE(watchdog.Expired(clock));
  EXPECT_EQ(watchdog.deadline_ns(), ~xbase::u64{0});
  clock.Advance(1'000'000'000);
  EXPECT_FALSE(watchdog.Expired(clock)) << "pinned at the far future";
}

TEST(WatchdogTest, RemainingTracksClockAndZeroesWhenDone) {
  simkern::SimClock clock;
  Watchdog watchdog;
  EXPECT_EQ(watchdog.remaining_ns(clock), 0u) << "disarmed";
  watchdog.Arm(clock, 1000);
  EXPECT_EQ(watchdog.remaining_ns(clock), 1000u);
  clock.Advance(400);
  EXPECT_EQ(watchdog.remaining_ns(clock), 600u);
  clock.Advance(600);
  EXPECT_EQ(watchdog.remaining_ns(clock), 0u) << "expired";
  clock.Advance(100);
  EXPECT_EQ(watchdog.remaining_ns(clock), 0u) << "stays zero past expiry";
  watchdog.Disarm();
  EXPECT_EQ(watchdog.remaining_ns(clock), 0u);
}

// ---- canonical encoding ----------------------------------------------------------------

TEST(ArtifactTest, CanonicalEncodingIsDeterministic) {
  ExtensionManifest manifest;
  manifest.name = "ext";
  manifest.version = "1.0";
  manifest.caps = {Capability::kMapAccess};
  manifest.imports = {"kcrate.map_lookup"};
  const crypto::Digest256 hash = crypto::Sha256::HashString("code");
  EXPECT_EQ(CanonicalEncode(manifest, hash), CanonicalEncode(manifest, hash));
}

TEST(ArtifactTest, EveryFieldChangesTheEncoding) {
  ExtensionManifest base;
  base.name = "ext";
  base.version = "1.0";
  base.caps = {Capability::kMapAccess};
  base.imports = {"kcrate.map_lookup"};
  const crypto::Digest256 hash = crypto::Sha256::HashString("code");
  const auto reference = CanonicalEncode(base, hash);

  {
    ExtensionManifest m = base;
    m.name = "ext2";
    EXPECT_NE(CanonicalEncode(m, hash), reference);
  }
  {
    ExtensionManifest m = base;
    m.version = "1.1";
    EXPECT_NE(CanonicalEncode(m, hash), reference);
  }
  {
    ExtensionManifest m = base;
    m.caps.push_back(Capability::kSysBpf);
    EXPECT_NE(CanonicalEncode(m, hash), reference);
  }
  {
    ExtensionManifest m = base;
    m.uses_unsafe = true;
    EXPECT_NE(CanonicalEncode(m, hash), reference);
  }
  {
    ExtensionManifest m = base;
    m.imports.push_back("kcrate.trace");
    EXPECT_NE(CanonicalEncode(m, hash), reference);
  }
  {
    const crypto::Digest256 other = crypto::Sha256::HashString("code2");
    EXPECT_NE(CanonicalEncode(base, other), reference);
  }
}

TEST(ArtifactTest, KnownImportsAllCarryCapabilities) {
  for (const auto& [symbol, cap] : KnownImports()) {
    EXPECT_EQ(symbol.rfind("kcrate.", 0), 0u) << symbol;
    EXPECT_FALSE(CapabilityName(cap).empty());
  }
  EXPECT_GE(KnownImports().size(), 14u);
}

// ---- protection domains (§4 ablation) ------------------------------------------------------

class DomainProbe : public Extension {
 public:
  explicit DomainProbe(simkern::Addr target) : target_(target) {}
  xbase::Result<xbase::u64> Run(Ctx& ctx) override {
    auto value = ctx.UnsafeReadKernel(target_);
    XB_RETURN_IF_ERROR(value.status());
    return value.value();
  }

 private:
  simkern::Addr target_;
};

struct DomainRig {
  explicit DomainRig(xbase::u32 protection_key) : bpf(kernel) {
    (void)kernel.BootstrapWorkload();
    RuntimeConfig config;
    config.protection_key = protection_key;
    config.allow_unsafe_extensions = true;
    runtime = Runtime::Create(kernel, bpf, config).value();
  }
  simkern::Kernel kernel;
  ebpf::Bpf bpf;
  std::unique_ptr<Runtime> runtime;
};

TEST(DomainTest, PksContainsUnsafeCode) {
  DomainRig rig(/*protection_key=*/2);
  // Key the current task's struct as kernel-domain (key 1).
  const simkern::Task* task = rig.kernel.tasks().current();
  rig.kernel.mem().SetRegionKey(task->struct_addr, 1);

  DomainProbe probe(task->struct_addr);
  const InvokeOutcome outcome = rig.runtime->Invoke(
      probe, {Capability::kUnsafeRaw}, {});
  EXPECT_TRUE(outcome.panicked);
  EXPECT_NE(outcome.panic_reason.find("pkey"), std::string::npos);
  EXPECT_FALSE(rig.kernel.crashed())
      << "the domain contains even unsafe code (§4)";
}

TEST(DomainTest, WithoutPksUnsafeCodeReadsKernelData) {
  DomainRig rig(/*protection_key=*/2);
  // Task struct left at key 0: ambient kernel data, readable — the paper's
  // point that unsafe code undermines everything without hardware help.
  const simkern::Task* task = rig.kernel.tasks().current();
  DomainProbe probe(task->struct_addr);
  const InvokeOutcome outcome = rig.runtime->Invoke(
      probe, {Capability::kUnsafeRaw}, {});
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.ret & 0xffffffff, 1234u) << "read the real pid";
}

TEST(DomainTest, WildUnsafeReadStillOopses) {
  DomainRig rig(/*protection_key=*/2);
  DomainProbe probe(simkern::kKernelBase + 0xdead0000);
  const InvokeOutcome outcome = rig.runtime->Invoke(
      probe, {Capability::kUnsafeRaw}, {});
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_TRUE(rig.kernel.crashed())
      << "unmapped wild reads are kernel crashes, with or without PKS";
}

// ---- runtime counters ---------------------------------------------------------------------------

TEST(RuntimeTest, CountersAccumulate) {
  DomainRig rig(2);
  struct Panicker : Extension {
    xbase::Result<xbase::u64> Run(Ctx& ctx) override {
      ctx.Panic("deliberate");
      return xbase::u64{0};
    }
  } panicker;
  struct Fine : Extension {
    xbase::Result<xbase::u64> Run(Ctx&) override { return xbase::u64{1}; }
  } fine;
  (void)rig.runtime->Invoke(fine, {}, {});
  (void)rig.runtime->Invoke(panicker, {}, {});
  (void)rig.runtime->Invoke(panicker, {}, {});
  EXPECT_EQ(rig.runtime->invocations(), 3u);
  EXPECT_EQ(rig.runtime->panics(), 2u);
  EXPECT_EQ(rig.runtime->watchdog_fires(), 0u);
}

TEST(RuntimeTest, LockIdsAreStablePerSite) {
  DomainRig rig(2);
  const auto a = rig.runtime->LockIdFor(3, 0);
  const auto b = rig.runtime->LockIdFor(3, 0);
  const auto c = rig.runtime->LockIdFor(3, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(LoaderTest, UnknownExtensionIdFails) {
  DomainRig rig(2);
  ExtLoader loader(*rig.runtime);
  EXPECT_EQ(loader.Find(7).status().code(), xbase::Code::kNotFound);
  EXPECT_EQ(loader.Invoke(7).status().code(), xbase::Code::kNotFound);
}

}  // namespace
}  // namespace safex

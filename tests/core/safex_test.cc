// End-to-end tests of the safex framework: toolchain → sign → load → invoke,
// the runtime protection mechanisms, and the kernel-crate API guarantees
// (Table 2 of the paper).
#include <gtest/gtest.h>

#include <new>

#include "src/core/loader.h"
#include "src/core/toolchain.h"
#include "src/xbase/bytes.h"

namespace safex {
namespace {

using simkern::SockTuple;

// A configurable test extension driven by a lambda.
class LambdaExt : public Extension {
 public:
  using Body = std::function<xbase::Result<xbase::u64>(Ctx&)>;
  explicit LambdaExt(Body body) : body_(std::move(body)) {}
  xbase::Result<xbase::u64> Run(Ctx& ctx) override { return body_(ctx); }

 private:
  Body body_;
};

class SafexTest : public ::testing::Test {
 protected:
  SafexTest() : bpf_(kernel_) {
    EXPECT_TRUE(kernel_.BootstrapWorkload().ok());
    auto runtime = Runtime::Create(kernel_, bpf_);
    EXPECT_TRUE(runtime.ok());
    runtime_ = std::move(runtime).value();
    signing_key_ = std::make_unique<crypto::SigningKey>(
        crypto::SigningKey::FromPassphrase("vendor-key", "hunter2"));
    EXPECT_TRUE(runtime_->keyring().Enroll(*signing_key_).ok());
    runtime_->keyring().Seal();
    loader_ = std::make_unique<ExtLoader>(*runtime_);
  }

  SignedArtifact MustBuild(ExtensionManifest manifest, LambdaExt::Body body,
                           const std::string& code_text = "code-v1",
                           ToolchainPolicy policy = {}) {
    Toolchain toolchain(*signing_key_, policy);
    auto artifact = toolchain.Build(
        std::move(manifest),
        [body]() { return std::make_unique<LambdaExt>(body); },
        std::span<const xbase::u8>(
            reinterpret_cast<const xbase::u8*>(code_text.data()),
            code_text.size()));
    EXPECT_TRUE(artifact.ok()) << artifact.status().ToString();
    return std::move(artifact).value();
  }

  InvokeOutcome LoadAndInvoke(const SignedArtifact& artifact,
                              InvokeOptions options = {}) {
    auto id = loader_->Load(artifact);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    auto outcome = loader_->Invoke(id.value(), options);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return std::move(outcome).value();
  }

  void MapSpecSetup() {
    ebpf::MapSpec spec;
    spec.type = ebpf::MapType::kArray;
    spec.key_size = 4;
    spec.value_size = 8;
    spec.max_entries = 4;
    spec.name = "safex-test-map";
    auto fd = bpf_.maps().Create(spec);
    ASSERT_TRUE(fd.ok());
    map_fd_ = fd.value();
  }

  simkern::Kernel kernel_;
  ebpf::Bpf bpf_;
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<crypto::SigningKey> signing_key_;
  std::unique_ptr<ExtLoader> loader_;
  int map_fd_ = -1;
};

ExtensionManifest BasicManifest(CapSet caps = {}) {
  ExtensionManifest manifest;
  manifest.name = "test-ext";
  manifest.version = "1.0";
  manifest.caps = std::move(caps);
  return manifest;
}

// ---- trust chain -----------------------------------------------------------

TEST_F(SafexTest, SignedExtensionLoadsAndRuns) {
  auto artifact = MustBuild(BasicManifest(), [](Ctx&) {
    return xbase::Result<xbase::u64>(7);
  });
  const InvokeOutcome outcome = LoadAndInvoke(artifact);
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.ret, 7u);
  EXPECT_FALSE(outcome.panicked);
}

TEST_F(SafexTest, TamperedManifestIsRejected) {
  auto artifact = MustBuild(BasicManifest(), [](Ctx&) {
    return xbase::Result<xbase::u64>(0);
  });
  artifact.manifest.caps.push_back(Capability::kSysBpf);  // escalate!
  auto id = loader_->Load(artifact);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), xbase::Code::kPermissionDenied);
}

TEST_F(SafexTest, TamperedCodeHashIsRejected) {
  auto artifact = MustBuild(BasicManifest(), [](Ctx&) {
    return xbase::Result<xbase::u64>(0);
  });
  artifact.code_hash[0] ^= 0xff;
  auto id = loader_->Load(artifact);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), xbase::Code::kPermissionDenied);
}

TEST_F(SafexTest, UnknownSigningKeyIsRejected) {
  crypto::SigningKey rogue =
      crypto::SigningKey::FromPassphrase("rogue", "evil");
  Toolchain toolchain(rogue);
  auto artifact = toolchain.Build(
      BasicManifest(),
      []() {
        return std::make_unique<LambdaExt>(
            [](Ctx&) { return xbase::Result<xbase::u64>(0); });
      },
      std::span<const xbase::u8>());
  ASSERT_TRUE(artifact.ok());
  auto id = loader_->Load(artifact.value());
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), xbase::Code::kPermissionDenied);
}

TEST_F(SafexTest, ToolchainRefusesUnsafeByDefault) {
  ExtensionManifest manifest = BasicManifest({Capability::kUnsafeRaw});
  manifest.uses_unsafe = true;
  Toolchain toolchain(*signing_key_);
  auto artifact = toolchain.Build(
      std::move(manifest),
      []() {
        return std::make_unique<LambdaExt>(
            [](Ctx&) { return xbase::Result<xbase::u64>(0); });
      },
      std::span<const xbase::u8>());
  ASSERT_FALSE(artifact.ok());
  EXPECT_EQ(artifact.status().code(), xbase::Code::kRejected);
}

TEST_F(SafexTest, KernelPolicyRefusesSignedUnsafeExtension) {
  ExtensionManifest manifest = BasicManifest({Capability::kUnsafeRaw});
  manifest.uses_unsafe = true;
  ToolchainPolicy lax;
  lax.allow_unsafe = true;
  auto artifact = MustBuild(std::move(manifest),
                            [](Ctx&) { return xbase::Result<xbase::u64>(0); },
                            "unsafe-code", lax);
  auto id = loader_->Load(artifact);  // kernel policy still says no
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), xbase::Code::kPermissionDenied);
}

TEST_F(SafexTest, ToolchainRefusesUnknownImport) {
  ExtensionManifest manifest = BasicManifest();
  manifest.imports.push_back("kcrate.does_not_exist");
  Toolchain toolchain(*signing_key_);
  auto artifact = toolchain.Build(
      std::move(manifest),
      []() {
        return std::make_unique<LambdaExt>(
            [](Ctx&) { return xbase::Result<xbase::u64>(0); });
      },
      std::span<const xbase::u8>());
  ASSERT_FALSE(artifact.ok());
}

TEST_F(SafexTest, ToolchainRefusesImportWithoutCapability) {
  ExtensionManifest manifest = BasicManifest();  // no caps
  manifest.imports.push_back("kcrate.map_lookup");
  Toolchain toolchain(*signing_key_);
  auto artifact = toolchain.Build(
      std::move(manifest),
      []() {
        return std::make_unique<LambdaExt>(
            [](Ctx&) { return xbase::Result<xbase::u64>(0); });
      },
      std::span<const xbase::u8>());
  ASSERT_FALSE(artifact.ok());
}

TEST_F(SafexTest, LoaderBindsImportsDuringFixup) {
  ExtensionManifest manifest =
      BasicManifest({Capability::kMapAccess, Capability::kTracing});
  manifest.imports = {"kcrate.map_lookup", "kcrate.map_update",
                      "kcrate.trace"};
  auto artifact = MustBuild(std::move(manifest), [](Ctx&) {
    return xbase::Result<xbase::u64>(0);
  });
  auto id = loader_->Load(artifact);
  ASSERT_TRUE(id.ok());
  auto loaded = loader_->Find(id.value());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->relocations, 3u);
}

// ---- language-safety analogues (Table 2 rows 1-3) --------------------------

TEST_F(SafexTest, SliceOutOfBoundsPanicsWithoutTouchingKernel) {
  MapSpecSetup();
  auto artifact = MustBuild(
      BasicManifest({Capability::kMapAccess}),
      [this](Ctx& ctx) -> xbase::Result<xbase::u64> {
        auto map = ctx.Map(map_fd_);
        XB_RETURN_IF_ERROR(map.status());
        auto value = map.value().LookupIndex(0);
        XB_RETURN_IF_ERROR(value.status());
        // 8-byte value; read at offset 100: Rust would panic, and so do we.
        auto oob = value.value().ReadU64(100);
        return oob.ok() ? oob.value() : xbase::u64{1};
      });
  const InvokeOutcome outcome = LoadAndInvoke(artifact);
  EXPECT_TRUE(outcome.panicked);
  EXPECT_NE(outcome.panic_reason.find("out of bounds"), std::string::npos);
  EXPECT_FALSE(kernel_.crashed()) << "the violation must never reach memory";
}

TEST_F(SafexTest, CapabilityViolationTerminates) {
  auto artifact = MustBuild(BasicManifest(),  // no caps at all
                            [](Ctx& ctx) -> xbase::Result<xbase::u64> {
                              auto task = ctx.CurrentTask();
                              return task.ok() ? 1 : 0;
                            });
  const InvokeOutcome outcome = LoadAndInvoke(artifact);
  EXPECT_TRUE(outcome.panicked);
  EXPECT_NE(outcome.panic_reason.find("capability"), std::string::npos);
}

TEST_F(SafexTest, CheckedArithmeticCatchesOverflow) {
  EXPECT_FALSE(CheckedAdd(std::numeric_limits<xbase::s64>::max(), 1)
                   .has_value());
  EXPECT_FALSE(CheckedMul(std::numeric_limits<xbase::s64>::min(), -1)
                   .has_value());
  EXPECT_EQ(CheckedAdd(40, 2).value_or(0), 42);
  EXPECT_EQ(CheckedSub(40, 2).value_or(0), 38);
}

TEST_F(SafexTest, ParseIntReplacesStrtolHelper) {
  auto artifact = MustBuild(
      BasicManifest(), [](Ctx& ctx) -> xbase::Result<xbase::u64> {
        auto good = ctx.ParseInt("-1234");
        if (!good.ok() || good.value() != -1234) {
          return xbase::u64{1};
        }
        if (ctx.ParseInt("12x4").ok()) {
          return xbase::u64{2};  // trailing garbage must fail
        }
        if (ctx.ParseInt("99999999999999999999").ok()) {
          return xbase::u64{3};  // overflow must fail, not wrap
        }
        return xbase::u64{0};
      });
  const InvokeOutcome outcome = LoadAndInvoke(artifact);
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.ret, 0u);
}

// ---- runtime protection (Table 2 rows 4-6) -----------------------------------

TEST_F(SafexTest, WatchdogTerminatesInfiniteLoop) {
  auto artifact = MustBuild(
      BasicManifest(), [](Ctx& ctx) -> xbase::Result<xbase::u64> {
        // An unbounded loop — inexpressible in verified eBPF, trivial here.
        // The watchdog, not a verifier, bounds it.
        for (;;) {
          XB_RETURN_IF_ERROR(ctx.Tick());
        }
      });
  const InvokeOutcome outcome = LoadAndInvoke(artifact);
  EXPECT_TRUE(outcome.panicked);
  EXPECT_NE(outcome.panic_reason.find("watchdog"), std::string::npos);
  EXPECT_EQ(runtime_->watchdog_fires(), 1u);
  EXPECT_FALSE(kernel_.crashed());
  EXPECT_TRUE(kernel_.rcu().stalls().empty())
      << "terminated long before an RCU stall";
}

TEST_F(SafexTest, CleanupRegistryReleasesLeakedSocket) {
  const auto before = kernel_.objects().Snapshot();
  auto artifact = MustBuild(
      BasicManifest({Capability::kSockLookup}),
      [](Ctx& ctx) -> xbase::Result<xbase::u64> {
        SockTuple tuple{0x0a000001, 0x0a000002, 8080, 40000};
        auto sock = ctx.LookupTcp(tuple);
        XB_RETURN_IF_ERROR(sock.status());
        // Deliberately leak the handle: no destructor will ever run.
        // (Placement new into static storage so LeakSanitizer stays quiet —
        // the point is the skipped destructor, not the heap block.)
        alignas(SockRef) static unsigned char slot[sizeof(SockRef)];
        auto* leaked = new (slot) SockRef(std::move(sock).value());
        (void)leaked;
        return xbase::u64{0};
      });
  const InvokeOutcome outcome = LoadAndInvoke(artifact);
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_GE(outcome.cleanup.entries_run, 1u);
  EXPECT_TRUE(kernel_.objects().DiffSince(before).empty())
      << "refcounts must be restored by the cleanup registry";
}

TEST_F(SafexTest, WatchdogFiringStillReleasesHeldLock) {
  MapSpecSetup();
  auto artifact = MustBuild(
      BasicManifest({Capability::kSpinLock}),
      [this](Ctx& ctx) -> xbase::Result<xbase::u64> {
        auto guard = ctx.Lock(map_fd_, 0);
        XB_RETURN_IF_ERROR(guard.status());
        alignas(LockGuard) static unsigned char slot[sizeof(LockGuard)];
        auto* leaked = new (slot) LockGuard(std::move(guard).value());
        (void)leaked;  // even a leaked guard must not wedge the kernel
        for (;;) {
          XB_RETURN_IF_ERROR(ctx.Tick());
        }
      });
  const InvokeOutcome outcome = LoadAndInvoke(artifact);
  EXPECT_TRUE(outcome.panicked);
  EXPECT_TRUE(kernel_.locks().HeldLocks().empty())
      << "lock must be force-released during safe termination";
}

TEST_F(SafexTest, DoubleLockIsRefusedNotDeadlocked) {
  MapSpecSetup();
  auto artifact = MustBuild(
      BasicManifest({Capability::kSpinLock}),
      [this](Ctx& ctx) -> xbase::Result<xbase::u64> {
        auto first = ctx.Lock(map_fd_, 0);
        XB_RETURN_IF_ERROR(first.status());
        auto second = ctx.Lock(map_fd_, 0);
        return second.ok() ? xbase::u64{1} : xbase::u64{0};
      });
  const InvokeOutcome outcome = LoadAndInvoke(artifact);
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.ret, 0u);
  EXPECT_FALSE(kernel_.crashed());
  EXPECT_TRUE(kernel_.locks().HeldLocks().empty());
}

TEST_F(SafexTest, PoolAllocationsAreFreedOnExit) {
  auto artifact = MustBuild(
      BasicManifest({Capability::kDynAlloc}),
      [](Ctx& ctx) -> xbase::Result<xbase::u64> {
        for (int i = 0; i < 5; ++i) {
          auto chunk = ctx.Alloc(64);
          XB_RETURN_IF_ERROR(chunk.status());
          XB_RETURN_IF_ERROR(chunk.value().WriteU64(0, 0x1122334455667788));
        }
        return xbase::u64{0};  // never freed explicitly
      });
  const InvokeOutcome outcome = LoadAndInvoke(artifact);
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(runtime_->pool_for_cpu(0).stats().chunks_in_use, 0u);
  EXPECT_EQ(outcome.cleanup.entries_run, 5u);
}

TEST_F(SafexTest, StackGuardTerminatesRunawayRecursion) {
  std::function<xbase::Status(Ctx&, int)> recurse =
      [&recurse](Ctx& ctx, int depth) -> xbase::Status {
    XB_RETURN_IF_ERROR(ctx.EnterFrame());
    if (depth > 0) {
      XB_RETURN_IF_ERROR(recurse(ctx, depth - 1));
    }
    ctx.LeaveFrame();
    return xbase::Status::Ok();
  };
  auto artifact = MustBuild(
      BasicManifest(), [&recurse](Ctx& ctx) -> xbase::Result<xbase::u64> {
        XB_RETURN_IF_ERROR(recurse(ctx, 100));
        return xbase::u64{0};
      });
  const InvokeOutcome outcome = LoadAndInvoke(artifact);
  EXPECT_TRUE(outcome.panicked);
  EXPECT_NE(outcome.panic_reason.find("stack guard"), std::string::npos);
}

// ---- the hardened sys_bpf wrapper (§3.2 / §2.2) ---------------------------------

TEST_F(SafexTest, SysBpfWrapperCreatesMaps) {
  auto artifact = MustBuild(
      BasicManifest({Capability::kSysBpf, Capability::kDynAlloc}),
      [](Ctx& ctx) -> xbase::Result<xbase::u64> {
        auto fd = ctx.SysBpfMapCreate(8, 4);
        XB_RETURN_IF_ERROR(fd.status());
        return static_cast<xbase::u64>(fd.value());
      });
  const InvokeOutcome outcome = LoadAndInvoke(artifact);
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_GT(outcome.ret, 0u);
}

TEST_F(SafexTest, SysBpfWrapperCannotExpressNullInsnsPointer) {
  auto artifact = MustBuild(
      BasicManifest({Capability::kSysBpf, Capability::kDynAlloc}),
      [](Ctx& ctx) -> xbase::Result<xbase::u64> {
        Slice dead;  // never allocated — the closest thing to NULL
        auto ret = ctx.SysBpfProgLoad(dead);
        return ret.ok() ? xbase::u64{1} : xbase::u64{0};
      });
  const InvokeOutcome outcome = LoadAndInvoke(artifact);
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.ret, 0u) << "the call must fail cleanly";
  EXPECT_FALSE(kernel_.crashed())
      << "the §2.2 crash must be unrepresentable through the wrapper";
}

TEST_F(SafexTest, SysBpfWrapperLoadsProgramsThroughValidSlice) {
  auto artifact = MustBuild(
      BasicManifest({Capability::kSysBpf, Capability::kDynAlloc}),
      [](Ctx& ctx) -> xbase::Result<xbase::u64> {
        auto insns = ctx.Alloc(16);
        XB_RETURN_IF_ERROR(insns.status());
        auto ret = ctx.SysBpfProgLoad(insns.value());
        XB_RETURN_IF_ERROR(ret.status());
        return static_cast<xbase::u64>(ret.value() == 0 ? 0 : 1);
      });
  const InvokeOutcome outcome = LoadAndInvoke(artifact);
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.ret, 0u);
  EXPECT_FALSE(kernel_.crashed());
}

}  // namespace
}  // namespace safex

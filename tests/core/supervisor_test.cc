// Supervisor tests: circuit-breaker state machine unit tests plus the
// lifecycle edges through the hook registry — double attach, detach while
// quarantined, invoke after eviction, re-admission after backoff expiry,
// and a leak audit across a thousand quarantine/re-admit cycles.
#include <gtest/gtest.h>

#include "src/core/hooks.h"
#include "src/core/toolchain.h"

namespace safex {
namespace {

constexpr xbase::u64 kMs = 1'000'000ULL;

SupervisorConfig TestConfig() {
  SupervisorConfig config;
  config.window_ns = 100 * kMs;
  config.crash_budget = 3;
  config.base_backoff_ns = 10 * kMs;
  config.backoff_multiplier = 2;
  config.max_backoff_ns = 10'000 * kMs;
  config.probation_successes = 2;
  config.max_trips = 3;
  return config;
}

TEST(SupervisorUnit, TripsWhenCrashBudgetExhaustedInWindow) {
  Supervisor supervisor(TestConfig());
  EXPECT_TRUE(supervisor.Admit(1, 0).allow);
  supervisor.RecordFailure(1, FailureKind::kPanic, "a", 1 * kMs);
  supervisor.RecordFailure(1, FailureKind::kPanic, "b", 2 * kMs);
  EXPECT_EQ(supervisor.HealthOf(1), ExtHealth::kHealthy);
  supervisor.RecordFailure(1, FailureKind::kPanic, "c", 3 * kMs);
  EXPECT_EQ(supervisor.HealthOf(1), ExtHealth::kQuarantined);
  EXPECT_EQ(supervisor.trips(), 1u);
  EXPECT_FALSE(supervisor.Admit(1, 4 * kMs).allow);
  EXPECT_EQ(supervisor.skips(), 1u);
  EXPECT_TRUE(supervisor.CheckConsistent(4 * kMs).ok());
}

TEST(SupervisorUnit, SlidingWindowForgivesOldFailures) {
  Supervisor supervisor(TestConfig());
  EXPECT_TRUE(supervisor.Admit(1, 0).allow);
  supervisor.RecordFailure(1, FailureKind::kPanic, "a", 0);
  supervisor.RecordFailure(1, FailureKind::kPanic, "b", 1 * kMs);
  // 200ms later both events have aged out of the 100ms window; two more
  // failures should not trip.
  supervisor.RecordFailure(1, FailureKind::kPanic, "c", 200 * kMs);
  supervisor.RecordFailure(1, FailureKind::kPanic, "d", 201 * kMs);
  EXPECT_EQ(supervisor.HealthOf(1), ExtHealth::kHealthy);
  EXPECT_EQ(supervisor.trips(), 0u);
}

TEST(SupervisorUnit, BackoffDoublesPerTripAndIsCapped) {
  SupervisorConfig config = TestConfig();
  config.max_trips = 100;  // keep tripping without eviction
  config.max_backoff_ns = 35 * kMs;
  Supervisor supervisor(config);
  xbase::u64 now = 0;
  xbase::u64 expected[] = {10 * kMs, 20 * kMs, 35 * kMs, 35 * kMs};
  for (const xbase::u64 backoff : expected) {
    (void)supervisor.Admit(1, now);
    for (xbase::u32 i = 0; i < config.crash_budget; ++i) {
      supervisor.RecordFailure(1, FailureKind::kPanic, "x", now);
    }
    const ExtRecord* record = supervisor.Find(1);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->health, ExtHealth::kQuarantined);
    EXPECT_EQ(record->quarantined_until_ns - now, backoff);
    // Serve the backoff, then fail through probation to trip again.
    now = record->quarantined_until_ns + 1;
    EXPECT_TRUE(supervisor.Admit(1, now).probation_trial);
  }
}

TEST(SupervisorUnit, ProbationSuccessesCloseTheBreaker) {
  Supervisor supervisor(TestConfig());
  (void)supervisor.Admit(1, 0);
  for (xbase::u32 i = 0; i < 3; ++i) {
    supervisor.RecordFailure(1, FailureKind::kWatchdog, "hog", 1 * kMs);
  }
  ASSERT_EQ(supervisor.HealthOf(1), ExtHealth::kQuarantined);
  // Backoff (10ms) served: half-open trials begin.
  const xbase::u64 after = 12 * kMs;
  AdmitDecision trial = supervisor.Admit(1, after);
  EXPECT_TRUE(trial.allow);
  EXPECT_TRUE(trial.probation_trial);
  supervisor.RecordSuccess(1, after);
  EXPECT_EQ(supervisor.HealthOf(1), ExtHealth::kProbation);
  supervisor.RecordSuccess(1, after + 1);
  EXPECT_EQ(supervisor.HealthOf(1), ExtHealth::kHealthy);
  EXPECT_EQ(supervisor.readmissions(), 1u);
  EXPECT_TRUE(supervisor.CheckConsistent(after + 2).ok());
}

TEST(SupervisorUnit, FailureDuringProbationRetripsImmediately) {
  Supervisor supervisor(TestConfig());
  (void)supervisor.Admit(1, 0);
  for (xbase::u32 i = 0; i < 3; ++i) {
    supervisor.RecordFailure(1, FailureKind::kPanic, "x", 0);
  }
  (void)supervisor.Admit(1, 11 * kMs);  // enters probation
  supervisor.RecordFailure(1, FailureKind::kPanic, "again", 11 * kMs);
  EXPECT_EQ(supervisor.HealthOf(1), ExtHealth::kQuarantined);
  EXPECT_EQ(supervisor.trips(), 2u);
}

TEST(SupervisorUnit, EvictionAfterMaxTripsIsPermanent) {
  Supervisor supervisor(TestConfig());
  xbase::u64 now = 0;
  for (xbase::u32 trip = 0; trip < 3; ++trip) {
    (void)supervisor.Admit(1, now);
    for (xbase::u32 i = 0; i < 3; ++i) {
      supervisor.RecordFailure(1, FailureKind::kPanic, "x", now);
    }
    now = supervisor.Find(1)->health == ExtHealth::kEvicted
              ? now
              : supervisor.Find(1)->quarantined_until_ns + 1;
  }
  EXPECT_EQ(supervisor.HealthOf(1), ExtHealth::kEvicted);
  EXPECT_EQ(supervisor.evictions(), 1u);
  // No amount of time re-admits an evicted extension.
  EXPECT_FALSE(supervisor.Admit(1, now + 1'000'000 * kMs).allow);
  EXPECT_TRUE(supervisor.CheckConsistent(now + 1'000'000 * kMs).ok());
}

TEST(SupervisorUnit, PerKindFailureAccounting) {
  Supervisor supervisor(TestConfig());
  (void)supervisor.Admit(1, 0);
  supervisor.RecordFailure(1, FailureKind::kWatchdog, "w", 0);
  supervisor.RecordFailure(1, FailureKind::kOops, "o", 1);
  const ExtRecord* record = supervisor.Find(1);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(
      record->failures_by_kind[static_cast<xbase::usize>(
          FailureKind::kWatchdog)],
      1u);
  EXPECT_EQ(
      record->failures_by_kind[static_cast<xbase::usize>(FailureKind::kOops)],
      1u);
  EXPECT_EQ(record->failures_total, 2u);
}

// ---- lifecycle edges through the hook registry ---------------------------

// Panics whenever *panic points at true; healthy otherwise.
class TogglePanicExt : public Extension {
 public:
  explicit TogglePanicExt(const bool* panic) : panic_(panic) {}
  xbase::Result<xbase::u64> Run(Ctx& ctx) override {
    if (*panic_) {
      ctx.Panic("toggled failure");
    }
    return xbase::u64{0};
  }

 private:
  const bool* panic_;
};

class SupervisedHooksTest : public ::testing::Test {
 protected:
  SupervisedHooksTest() : bpf_(kernel_), bpf_loader_(bpf_) {
    EXPECT_TRUE(kernel_.BootstrapWorkload().ok());
    kernel_.set_oops_recovery(true);
    runtime_ = Runtime::Create(kernel_, bpf_).value();
    key_ = std::make_unique<crypto::SigningKey>(
        crypto::SigningKey::FromPassphrase("sup", "pw"));
    (void)runtime_->keyring().Enroll(*key_);
    ext_loader_ = std::make_unique<ExtLoader>(*runtime_);
    supervisor_ = std::make_unique<Supervisor>(TestConfig());
    HookRegistryConfig config;
    config.supervisor = supervisor_.get();
    hooks_ = std::make_unique<HookRegistry>(bpf_, bpf_loader_, *ext_loader_,
                                            config);
    ctx_ = kernel_.mem()
               .Map(64, simkern::MemPerm::kReadWrite,
                    simkern::RegionKind::kKernelData, "supctx")
               .value();
  }

  // Swaps in a supervisor with a different config (records are dropped).
  void Reconfigure(const SupervisorConfig& config) {
    supervisor_ = std::make_unique<Supervisor>(config);
    HookRegistryConfig hook_config;
    hook_config.supervisor = supervisor_.get();
    hooks_ = std::make_unique<HookRegistry>(bpf_, bpf_loader_, *ext_loader_,
                                            hook_config);
  }

  xbase::u32 LoadToggleExt(const bool* panic) {
    Toolchain toolchain(*key_);
    ExtensionManifest manifest;
    manifest.name = "toggle";
    manifest.version = "1";
    auto artifact = toolchain.Build(
        manifest,
        [panic]() { return std::make_unique<TogglePanicExt>(panic); },
        std::span<const xbase::u8>());
    return ext_loader_->Load(artifact.value()).value();
  }

  // Fires the syscall hook once and returns its report.
  HookFireReport FireOnce() {
    return hooks_->Fire(HookPoint::kSyscallEnter, ctx_).value();
  }

  simkern::Kernel kernel_;
  ebpf::Bpf bpf_;
  ebpf::Loader bpf_loader_;
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<crypto::SigningKey> key_;
  std::unique_ptr<ExtLoader> ext_loader_;
  std::unique_ptr<Supervisor> supervisor_;
  std::unique_ptr<HookRegistry> hooks_;
  simkern::Addr ctx_ = 0;
  bool panic_flag_ = false;
};

TEST_F(SupervisedHooksTest, DoubleAttachIsRejected) {
  const xbase::u32 ext = LoadToggleExt(&panic_flag_);
  ASSERT_TRUE(hooks_->AttachExtension(HookPoint::kSyscallEnter, ext).ok());
  auto again = hooks_->AttachExtension(HookPoint::kSyscallEnter, ext);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), xbase::Code::kAlreadyExists);
  // The same target on a different hook is fine.
  EXPECT_TRUE(hooks_->AttachExtension(HookPoint::kSchedSwitch, ext).ok());
}

TEST_F(SupervisedHooksTest, CrashBudgetQuarantinesAndSkips) {
  panic_flag_ = true;
  (void)hooks_->AttachExtension(HookPoint::kSyscallEnter,
                                LoadToggleExt(&panic_flag_));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(FireOnce().failed, 1u);
  }
  EXPECT_EQ(supervisor_->trips(), 1u);
  const HookFireReport report = FireOnce();
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.failed, 0u) << "quarantined: never invoked";
}

TEST_F(SupervisedHooksTest, DetachWhileQuarantinedDropsTheRecord) {
  panic_flag_ = true;
  auto id = hooks_->AttachExtension(HookPoint::kSyscallEnter,
                                    LoadToggleExt(&panic_flag_));
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 3; ++i) {
    (void)FireOnce();
  }
  const xbase::u32 attachment = id.value();
  ASSERT_EQ(supervisor_->HealthOf(attachment), ExtHealth::kQuarantined);
  EXPECT_TRUE(hooks_->Detach(attachment).ok());
  EXPECT_EQ(supervisor_->Find(attachment), nullptr);
  EXPECT_TRUE(
      supervisor_->CheckConsistent(kernel_.clock().now_ns()).ok());
}

TEST_F(SupervisedHooksTest, InvokeAfterEvictionIsAlwaysSkipped) {
  panic_flag_ = true;
  (void)hooks_->AttachExtension(HookPoint::kSyscallEnter,
                                LoadToggleExt(&panic_flag_));
  // Fail through every trip: a burst of failures inside one window trips
  // the breaker, then the advance serves the backoff so the next burst
  // lands during probation (where one failure re-trips immediately).
  while (supervisor_->evictions() == 0) {
    for (int i = 0; i < 3; ++i) {
      (void)FireOnce();
    }
    kernel_.clock().Advance(500 * kMs);
  }
  panic_flag_ = false;  // even a now-healthy body stays out
  for (int i = 0; i < 5; ++i) {
    kernel_.clock().Advance(10'000 * kMs);
    const HookFireReport report = FireOnce();
    EXPECT_EQ(report.skipped, 1u);
    EXPECT_EQ(report.served, 0u);
  }
}

TEST_F(SupervisedHooksTest, ReadmissionAfterBackoffExpiry) {
  panic_flag_ = true;
  auto id = hooks_->AttachExtension(HookPoint::kSyscallEnter,
                                    LoadToggleExt(&panic_flag_));
  for (int i = 0; i < 3; ++i) {
    (void)FireOnce();
  }
  ASSERT_EQ(supervisor_->HealthOf(id.value()), ExtHealth::kQuarantined);
  // Still inside the backoff: skipped.
  EXPECT_EQ(FireOnce().skipped, 1u);
  // Serve the 10ms backoff; the extension behaves now.
  panic_flag_ = false;
  kernel_.clock().Advance(11 * kMs);
  EXPECT_EQ(FireOnce().served, 1u);  // probation trial 1
  EXPECT_EQ(supervisor_->HealthOf(id.value()), ExtHealth::kProbation);
  EXPECT_EQ(FireOnce().served, 1u);  // probation trial 2 closes the breaker
  EXPECT_EQ(supervisor_->HealthOf(id.value()), ExtHealth::kHealthy);
  EXPECT_EQ(supervisor_->readmissions(), 1u);
}

TEST_F(SupervisedHooksTest, LeakAuditAcrossThousandQuarantineCycles) {
  // Lifetime trips normally evict; raise the ceiling so the breaker can
  // cycle quarantine -> probation -> healthy a thousand times.
  SupervisorConfig config = TestConfig();
  config.max_trips = 2000;
  Reconfigure(config);
  panic_flag_ = true;
  const xbase::u32 ext = LoadToggleExt(&panic_flag_);
  auto id = hooks_->AttachExtension(HookPoint::kSyscallEnter, ext);
  ASSERT_TRUE(id.ok());
  const simkern::RefcountSnapshot baseline = kernel_.objects().Snapshot();
  for (int cycle = 0; cycle < 1000; ++cycle) {
    // Trip the breaker...
    panic_flag_ = true;
    for (int i = 0; i < 3; ++i) {
      (void)FireOnce();
    }
    // ...serve the backoff (exponential, capped at max_backoff_ns),
    // behave, earn re-admission.
    panic_flag_ = false;
    kernel_.clock().Advance(20'000 * kMs);
    (void)FireOnce();
    (void)FireOnce();
    ASSERT_EQ(supervisor_->HealthOf(id.value()), ExtHealth::kHealthy)
        << "cycle " << cycle;
    // Old failures must age out rather than accumulate.
    const ExtRecord* record = supervisor_->Find(id.value());
    ASSERT_NE(record, nullptr);
    ASSERT_LE(record->window.size(), 3u);
  }
  EXPECT_EQ(supervisor_->readmissions(), 1000u);
  EXPECT_TRUE(kernel_.objects().DiffSince(baseline).empty())
      << "quarantine cycling must not leak kernel object references";
  EXPECT_TRUE(kernel_.locks().HeldLocks().empty());
  EXPECT_EQ(kernel_.rcu().depth(), 0);
  EXPECT_TRUE(supervisor_->CheckConsistent(kernel_.clock().now_ns()).ok());
  EXPECT_EQ(supervisor_->tracked(), 1u)
      << "one attachment must map to exactly one health record";
}

TEST_F(SupervisedHooksTest, FallbackVerdictsArePerHookFamily) {
  // One failing extension on the packet hook and one on the syscall hook;
  // the families must degrade independently — XDP failing closed must not
  // force syscalls closed too, and vice versa.
  panic_flag_ = true;
  (void)hooks_->AttachExtension(HookPoint::kXdpIngress,
                                LoadToggleExt(&panic_flag_));
  (void)hooks_->AttachExtension(HookPoint::kSyscallEnter,
                                LoadToggleExt(&panic_flag_));
  auto& fallback = hooks_->config().fallback;
  fallback[static_cast<xbase::usize>(HookPoint::kXdpIngress)] =
      HookFallback{FallbackAction::kFailClosed, 0};
  fallback[static_cast<xbase::usize>(HookPoint::kSyscallEnter)] =
      HookFallback{FallbackAction::kFailOpen, 0};

  HookFireReport xdp = hooks_->Fire(HookPoint::kXdpIngress, ctx_).value();
  EXPECT_EQ(xdp.failed, 1u);
  EXPECT_EQ(xdp.verdict, 1u) << "fail-closed packet family: XDP_DROP";
  HookFireReport sys = hooks_->Fire(HookPoint::kSyscallEnter, ctx_).value();
  EXPECT_EQ(sys.failed, 1u);
  EXPECT_FALSE(sys.denied) << "fail-open syscall family: allow";

  // Swap the polarity per family; the other family must not move.
  fallback[static_cast<xbase::usize>(HookPoint::kXdpIngress)] =
      HookFallback{FallbackAction::kFailOpen, 0};
  fallback[static_cast<xbase::usize>(HookPoint::kSyscallEnter)] =
      HookFallback{FallbackAction::kFailClosed, 13};
  xdp = hooks_->Fire(HookPoint::kXdpIngress, ctx_).value();
  EXPECT_EQ(xdp.verdict, 2u) << "fail-open packet family: XDP_PASS";
  sys = hooks_->Fire(HookPoint::kSyscallEnter, ctx_).value();
  EXPECT_TRUE(sys.denied) << "fail-closed syscall family: deny";
  EXPECT_EQ(sys.verdict, 13u) << "with the configured errno";
}

TEST(SupervisorUnit, DeadlineMissLadderClosesViaProbation) {
  // The scheduler's kDeadlineMiss failures drive the same breaker ladder
  // as a panic: budget exhaustion -> quarantine -> half-open probation ->
  // clean trials close the breaker.
  Supervisor supervisor(TestConfig());
  (void)supervisor.Admit(1, 0);
  for (int i = 0; i < 3; ++i) {
    supervisor.RecordFailure(1, FailureKind::kDeadlineMiss, "slow pick",
                             i * kMs);
  }
  ASSERT_EQ(supervisor.HealthOf(1), ExtHealth::kQuarantined);
  EXPECT_FALSE(supervisor.Admit(1, 5 * kMs).allow) << "inside the backoff";
  const AdmitDecision trial = supervisor.Admit(1, 15 * kMs);
  EXPECT_TRUE(trial.allow);
  EXPECT_TRUE(trial.probation_trial);
  supervisor.RecordSuccess(1, 15 * kMs);
  EXPECT_EQ(supervisor.HealthOf(1), ExtHealth::kProbation);
  supervisor.RecordSuccess(1, 16 * kMs);
  EXPECT_EQ(supervisor.HealthOf(1), ExtHealth::kHealthy);
  EXPECT_EQ(supervisor.readmissions(), 1u);
  const ExtRecord* record = supervisor.Find(1);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->failures_by_kind[static_cast<xbase::usize>(
                FailureKind::kDeadlineMiss)],
            3u);
  EXPECT_TRUE(supervisor.CheckConsistent(17 * kMs).ok());
}

}  // namespace
}  // namespace safex

// Hook registry tests: attach/detach, per-hook verdict aggregation, and
// mixed eBPF/safex dispatch over one event stream.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/core/hooks.h"
#include "src/core/toolchain.h"
#include "src/ebpf/asm.h"

namespace safex {
namespace {

class ConstExt : public Extension {
 public:
  explicit ConstExt(xbase::u64 verdict) : verdict_(verdict) {}
  xbase::Result<xbase::u64> Run(Ctx&) override { return verdict_; }

 private:
  xbase::u64 verdict_;
};

class HooksTest : public ::testing::Test {
 protected:
  HooksTest() : bpf_(kernel_), bpf_loader_(bpf_) {
    EXPECT_TRUE(kernel_.BootstrapWorkload().ok());
    runtime_ = Runtime::Create(kernel_, bpf_).value();
    key_ = std::make_unique<crypto::SigningKey>(
        crypto::SigningKey::FromPassphrase("hooks", "pw"));
    (void)runtime_->keyring().Enroll(*key_);
    ext_loader_ = std::make_unique<ExtLoader>(*runtime_);
    hooks_ = std::make_unique<HookRegistry>(bpf_, bpf_loader_, *ext_loader_);
    ctx_ = kernel_.mem()
               .Map(64, simkern::MemPerm::kReadWrite,
                    simkern::RegionKind::kKernelData, "hookctx")
               .value();
  }

  xbase::u32 LoadConstProg(xbase::u64 verdict) {
    ebpf::ProgramBuilder b("const", ebpf::ProgType::kSyscall);
    b.Ins(ebpf::Mov64Imm(ebpf::R0, static_cast<xbase::s32>(verdict)))
        .Ins(ebpf::Exit());
    return bpf_loader_.Load(b.Build().value()).value();
  }

  xbase::u32 LoadConstExt(xbase::u64 verdict) {
    Toolchain toolchain(*key_);
    ExtensionManifest manifest;
    manifest.name = "const-ext";
    manifest.version = std::to_string(verdict);
    auto artifact = toolchain.Build(
        manifest,
        [verdict]() { return std::make_unique<ConstExt>(verdict); },
        std::span<const xbase::u8>());
    return ext_loader_->Load(artifact.value()).value();
  }

  simkern::Kernel kernel_;
  ebpf::Bpf bpf_;
  ebpf::Loader bpf_loader_;
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<crypto::SigningKey> key_;
  std::unique_ptr<ExtLoader> ext_loader_;
  std::unique_ptr<HookRegistry> hooks_;
  simkern::Addr ctx_ = 0;
};

TEST_F(HooksTest, AttachRequiresLoadedTargets) {
  EXPECT_FALSE(hooks_->AttachProgram(HookPoint::kSyscallEnter, 99).ok());
  EXPECT_FALSE(hooks_->AttachExtension(HookPoint::kSyscallEnter, 99).ok());
}

TEST_F(HooksTest, FireRunsAttachmentsInOrder) {
  (void)hooks_->AttachProgram(HookPoint::kSyscallEnter, LoadConstProg(0));
  (void)hooks_->AttachExtension(HookPoint::kSyscallEnter, LoadConstExt(0));
  auto report = hooks_->Fire(HookPoint::kSyscallEnter, ctx_);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().verdicts.size(), 2u);
  EXPECT_FALSE(report.value().verdicts[0].from_safex);
  EXPECT_TRUE(report.value().verdicts[1].from_safex);
  EXPECT_FALSE(report.value().denied);
}

TEST_F(HooksTest, SyscallDenyAggregation) {
  (void)hooks_->AttachProgram(HookPoint::kSyscallEnter, LoadConstProg(0));
  (void)hooks_->AttachExtension(HookPoint::kSyscallEnter, LoadConstExt(13));
  auto report = hooks_->Fire(HookPoint::kSyscallEnter, ctx_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().denied);
  EXPECT_EQ(report.value().verdict, 13u);
}

TEST_F(HooksTest, XdpDropWins) {
  (void)hooks_->AttachExtension(HookPoint::kXdpIngress, LoadConstExt(2));
  (void)hooks_->AttachExtension(HookPoint::kXdpIngress, LoadConstExt(1));
  xbase::u8 payload[32] = {};
  auto skb = kernel_.net().CreateSkBuff(kernel_.mem(), payload).value();
  auto report = hooks_->Fire(HookPoint::kXdpIngress, skb.meta_addr);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().verdict, 1u) << "any DROP wins";
}

TEST_F(HooksTest, DetachStopsDispatch) {
  auto id = hooks_->AttachProgram(HookPoint::kSyscallEnter,
                                  LoadConstProg(7));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(hooks_->AttachedCount(HookPoint::kSyscallEnter), 1u);
  ASSERT_TRUE(hooks_->Detach(id.value()).ok());
  EXPECT_EQ(hooks_->AttachedCount(HookPoint::kSyscallEnter), 0u);
  EXPECT_FALSE(hooks_->Detach(id.value()).ok());
  auto report = hooks_->Fire(HookPoint::kSyscallEnter, ctx_);
  EXPECT_TRUE(report.value().verdicts.empty());
}

TEST_F(HooksTest, FailedAttachmentFailsOpenWithStatus) {
  // An extension that panics contributes no verdict but its status shows.
  Toolchain toolchain(*key_);
  ExtensionManifest manifest;
  manifest.name = "panicker";
  manifest.version = "1";
  class Panicker : public Extension {
   public:
    xbase::Result<xbase::u64> Run(Ctx& ctx) override {
      ctx.Panic("boom");
      return xbase::u64{1};
    }
  };
  auto artifact = toolchain.Build(
      manifest, []() { return std::make_unique<Panicker>(); },
      std::span<const xbase::u8>());
  const auto ext_id = ext_loader_->Load(artifact.value()).value();
  (void)hooks_->AttachExtension(HookPoint::kSyscallEnter, ext_id);

  auto report = hooks_->Fire(HookPoint::kSyscallEnter, ctx_);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().denied) << "a dead policy cannot deny";
  ASSERT_EQ(report.value().verdicts.size(), 1u);
  EXPECT_FALSE(report.value().verdicts[0].status.ok());
  EXPECT_FALSE(kernel_.crashed());
}

TEST_F(HooksTest, ForeignExceptionCannotAbortRemainingAttachments) {
  // Regression: an extension body throwing a non-TerminationSignal
  // exception used to unwind through Runtime::Invoke — skipping the
  // cleanup registry and the RCU read-side unlock — and abort the hook
  // walk, so attachments after it were silently never fired.
  class Thrower : public Extension {
   public:
    xbase::Result<xbase::u64> Run(Ctx&) override {
      throw std::runtime_error("rogue exception");
    }
  };
  Toolchain toolchain(*key_);
  ExtensionManifest manifest;
  manifest.name = "thrower";
  manifest.version = "1";
  auto artifact = toolchain.Build(
      manifest, []() { return std::make_unique<Thrower>(); },
      std::span<const xbase::u8>());
  const auto thrower_id = ext_loader_->Load(artifact.value()).value();
  (void)hooks_->AttachExtension(HookPoint::kSyscallEnter, thrower_id);
  (void)hooks_->AttachExtension(HookPoint::kSyscallEnter, LoadConstExt(13));

  auto report = hooks_->Fire(HookPoint::kSyscallEnter, ctx_);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().verdicts.size(), 2u)
      << "the attachment after the thrower must still fire";
  EXPECT_FALSE(report.value().verdicts[0].status.ok());
  EXPECT_TRUE(report.value().verdicts[1].status.ok());
  EXPECT_TRUE(report.value().denied) << "the healthy policy still denies";
  EXPECT_EQ(report.value().verdict, 13u);
  EXPECT_EQ(runtime_->foreign_exceptions(), 1u);
  EXPECT_EQ(kernel_.rcu().depth(), 0)
      << "the contained exception must not leak the RCU read lock";
  EXPECT_FALSE(kernel_.crashed());
}

TEST_F(HooksTest, DuplicateAttachmentRejected) {
  const xbase::u32 prog = LoadConstProg(0);
  ASSERT_TRUE(hooks_->AttachProgram(HookPoint::kSyscallEnter, prog).ok());
  auto again = hooks_->AttachProgram(HookPoint::kSyscallEnter, prog);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), xbase::Code::kAlreadyExists);
  EXPECT_TRUE(hooks_->AttachProgram(HookPoint::kXdpIngress, prog).ok());
}

}  // namespace
}  // namespace safex

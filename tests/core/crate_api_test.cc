// Deep coverage of the kernel-crate API surface: Slice windows, MapRef
// conveniences, packet views, and — the §3.2 evidence — property-based
// parity between retired helpers and their language replacements
// (bpf_strtol vs ParseInt, bpf_strncmp vs StrCmp) on randomized inputs.
#include <gtest/gtest.h>

#include "src/core/loader.h"
#include "src/core/toolchain.h"
#include "src/ebpf/runtime.h"
#include "src/xbase/bytes.h"
#include "src/xbase/rand.h"

namespace safex {
namespace {

using xbase::u32;
using xbase::u64;
using xbase::u8;

class LambdaExt : public Extension {
 public:
  using Body = std::function<xbase::Result<u64>(Ctx&)>;
  explicit LambdaExt(Body body) : body_(std::move(body)) {}
  xbase::Result<u64> Run(Ctx& ctx) override { return body_(ctx); }

 private:
  Body body_;
};

class CrateApiTest : public ::testing::Test {
 protected:
  CrateApiTest() : bpf_(kernel_) {
    EXPECT_TRUE(kernel_.BootstrapWorkload().ok());
    runtime_ = Runtime::Create(kernel_, bpf_).value();
  }

  InvokeOutcome Run(LambdaExt::Body body, CapSet caps,
                    InvokeOptions options = {}) {
    LambdaExt ext(std::move(body));
    return runtime_->Invoke(ext, caps, options);
  }

  int MakeMap(ebpf::MapType type, u32 key_size, u32 value_size,
              u32 entries) {
    ebpf::MapSpec spec;
    spec.type = type;
    spec.key_size = key_size;
    spec.value_size = value_size;
    spec.max_entries = entries;
    spec.name = "crate";
    return bpf_.maps().Create(spec).value();
  }

  simkern::Kernel kernel_;
  ebpf::Bpf bpf_;
  std::unique_ptr<Runtime> runtime_;
};

// ---- Slice ---------------------------------------------------------------

TEST_F(CrateApiTest, SliceTypedAccessorsRoundTrip) {
  const int fd = MakeMap(ebpf::MapType::kArray, 4, 32, 1);
  const auto outcome = Run(
      [fd](Ctx& ctx) -> xbase::Result<u64> {
        auto map = ctx.Map(fd);
        XB_RETURN_IF_ERROR(map.status());
        auto slot = map.value().LookupIndex(0);
        XB_RETURN_IF_ERROR(slot.status());
        Slice& s = slot.value();
        XB_RETURN_IF_ERROR(s.WriteU64(0, 0x1122334455667788ULL));
        XB_RETURN_IF_ERROR(s.WriteU32(8, 0xa1b2c3d4));
        XB_RETURN_IF_ERROR(s.WriteU16(12, 0xbeef));
        XB_RETURN_IF_ERROR(s.WriteU8(14, 0x7f));
        auto q = s.ReadU64(0);
        auto d = s.ReadU32(8);
        auto h = s.ReadU16(12);
        auto b = s.ReadU8(14);
        XB_RETURN_IF_ERROR(q.status());
        XB_RETURN_IF_ERROR(d.status());
        XB_RETURN_IF_ERROR(h.status());
        XB_RETURN_IF_ERROR(b.status());
        if (q.value() != 0x1122334455667788ULL || d.value() != 0xa1b2c3d4 ||
            h.value() != 0xbeef || b.value() != 0x7f) {
          return u64{1};
        }
        // Endianness: the u64 low byte must be the first byte.
        auto first = s.ReadU8(0);
        return first.value() == 0x88 ? u64{0} : u64{2};
      },
      {Capability::kMapAccess});
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.ret, 0u);
}

TEST_F(CrateApiTest, SubSliceWindowsAreRelative) {
  const int fd = MakeMap(ebpf::MapType::kArray, 4, 32, 1);
  const auto outcome = Run(
      [fd](Ctx& ctx) -> xbase::Result<u64> {
        auto slot = ctx.Map(fd).value().LookupIndex(0);
        XB_RETURN_IF_ERROR(slot.status());
        XB_RETURN_IF_ERROR(slot.value().WriteU64(16, 0xfeed));
        auto window = slot.value().SubSlice(16, 8);
        XB_RETURN_IF_ERROR(window.status());
        auto value = window.value().ReadU64(0);
        XB_RETURN_IF_ERROR(value.status());
        if (value.value() != 0xfeed) {
          return u64{1};
        }
        // A window cannot reach past itself even though the parent could.
        return window.value().ReadU64(8).ok() ? u64{2} : u64{0};
      },
      {Capability::kMapAccess});
  EXPECT_TRUE(outcome.panicked) << "over-read must panic";
  EXPECT_NE(outcome.panic_reason.find("out of bounds"), std::string::npos);
}

TEST_F(CrateApiTest, SubSliceCannotEscapeParent) {
  const int fd = MakeMap(ebpf::MapType::kArray, 4, 32, 1);
  const auto outcome = Run(
      [fd](Ctx& ctx) -> xbase::Result<u64> {
        auto slot = ctx.Map(fd).value().LookupIndex(0);
        XB_RETURN_IF_ERROR(slot.status());
        auto escape = slot.value().SubSlice(16, 64);
        return escape.ok() ? u64{1} : u64{0};
      },
      {Capability::kMapAccess});
  EXPECT_TRUE(outcome.panicked);
}

TEST_F(CrateApiTest, BulkBytesRoundTrip) {
  const int fd = MakeMap(ebpf::MapType::kArray, 4, 32, 1);
  const auto outcome = Run(
      [fd](Ctx& ctx) -> xbase::Result<u64> {
        auto slot = ctx.Map(fd).value().LookupIndex(0);
        XB_RETURN_IF_ERROR(slot.status());
        const u8 payload[] = {9, 8, 7, 6, 5};
        XB_RETURN_IF_ERROR(slot.value().WriteBytes(3, payload));
        auto read_back = slot.value().ReadBytes(3, 5);
        XB_RETURN_IF_ERROR(read_back.status());
        return read_back.value() == std::vector<u8>({9, 8, 7, 6, 5})
                   ? u64{0}
                   : u64{1};
      },
      {Capability::kMapAccess});
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.ret, 0u);
}

// ---- MapRef ---------------------------------------------------------------

TEST_F(CrateApiTest, LookupOrInitCreatesHashEntries) {
  const int fd = MakeMap(ebpf::MapType::kHash, 4, 8, 8);
  const auto outcome = Run(
      [fd](Ctx& ctx) -> xbase::Result<u64> {
        auto map = ctx.Map(fd);
        XB_RETURN_IF_ERROR(map.status());
        u8 key[4] = {1, 2, 3, 4};
        if (map.value().Lookup(key).ok()) {
          return u64{1};  // must start absent
        }
        auto created = map.value().LookupOrInit(key);
        XB_RETURN_IF_ERROR(created.status());
        XB_RETURN_IF_ERROR(created.value().WriteU64(0, 55));
        auto again = map.value().LookupOrInit(key);
        XB_RETURN_IF_ERROR(again.status());
        auto value = again.value().ReadU64(0);
        return value.value() == 55 ? u64{0} : u64{2};
      },
      {Capability::kMapAccess});
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.ret, 0u);
}

TEST_F(CrateApiTest, MapDeleteThroughCrate) {
  const int fd = MakeMap(ebpf::MapType::kHash, 4, 8, 8);
  const auto outcome = Run(
      [fd](Ctx& ctx) -> xbase::Result<u64> {
        auto map = ctx.Map(fd);
        XB_RETURN_IF_ERROR(map.status());
        u8 key[4] = {7, 0, 0, 0};
        u8 value[8] = {1};
        XB_RETURN_IF_ERROR(map.value().Update(key, value, 0));
        XB_RETURN_IF_ERROR(map.value().Delete(key));
        return map.value().Lookup(key).ok() ? u64{1} : u64{0};
      },
      {Capability::kMapAccess});
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.ret, 0u);
}

TEST_F(CrateApiTest, InvalidMapFdIsCleanError) {
  const auto outcome = Run(
      [](Ctx& ctx) -> xbase::Result<u64> {
        return ctx.Map(12345).ok() ? u64{1} : u64{0};
      },
      {Capability::kMapAccess});
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.ret, 0u);
  EXPECT_FALSE(outcome.panicked) << "a bad fd is an error, not a panic";
}

// ---- packet view -------------------------------------------------------------

TEST_F(CrateApiTest, PacketViewReadsAndWritesPayload) {
  u8 payload[24] = {};
  payload[0] = 0xab;
  auto skb = kernel_.net().CreateSkBuff(kernel_.mem(), payload).value();
  InvokeOptions options;
  options.skb_meta = skb.meta_addr;
  const auto outcome = Run(
      [](Ctx& ctx) -> xbase::Result<u64> {
        auto packet = ctx.Packet();
        XB_RETURN_IF_ERROR(packet.status());
        auto first = packet.value().ReadU8(0);
        XB_RETURN_IF_ERROR(first.status());
        XB_RETURN_IF_ERROR(packet.value().WriteU8(1, 0xcd));
        auto len = ctx.PacketLen();
        XB_RETURN_IF_ERROR(len.status());
        return (static_cast<u64>(first.value()) << 32) | len.value();
      },
      {Capability::kPacketAccess}, options);
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.ret >> 32, 0xabu);
  EXPECT_EQ(outcome.ret & 0xffffffff, 24u);
  // The write is visible in the real packet bytes.
  u8 byte;
  ASSERT_TRUE(kernel_.mem().Read(skb.data_addr + 1, {&byte, 1}).ok());
  EXPECT_EQ(byte, 0xcd);
}

TEST_F(CrateApiTest, PacketWithoutSkbHookIsCleanError) {
  const auto outcome = Run(
      [](Ctx& ctx) -> xbase::Result<u64> {
        return ctx.Packet().ok() ? u64{1} : u64{0};
      },
      {Capability::kPacketAccess});
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.ret, 0u);
}

// ---- §3.2 retirement parity (property-based) -----------------------------------

// ParseInt must agree with the bpf_strtol helper wherever both are defined
// (the helper parses a prefix; the language parses the whole string — so
// compare on exactly-consumed inputs).
class RetirementParityTest : public ::testing::TestWithParam<u64> {};

TEST_P(RetirementParityTest, ParseIntMatchesStrtolHelper) {
  simkern::Kernel kernel;
  ebpf::Bpf bpf(kernel);
  ASSERT_TRUE(kernel.BootstrapWorkload().ok());
  auto runtime = Runtime::Create(kernel, bpf).value();

  const simkern::Addr text_buf =
      kernel.mem()
          .Map(32, simkern::MemPerm::kReadWrite,
               simkern::RegionKind::kKernelData, "text")
          .value();
  const simkern::Addr out_buf =
      kernel.mem()
          .Map(8, simkern::MemPerm::kReadWrite,
               simkern::RegionKind::kKernelData, "out")
          .value();
  auto strtol_fn = bpf.helpers().FindFn(ebpf::kHelperStrtol).value();

  xbase::Rng rng(GetParam());
  SCOPED_TRACE(::testing::Message() << "rng seed " << rng.seed());
  for (int trial = 0; trial < 300; ++trial) {
    // Random decimal string with optional sign.
    std::string text;
    if (rng.NextBool()) {
      text.push_back(rng.NextBool() ? '-' : '+');
    }
    const int digits = 1 + static_cast<int>(rng.NextBelow(15));
    for (int i = 0; i < digits; ++i) {
      text.push_back(static_cast<char>('0' + rng.NextBelow(10)));
    }

    // Helper path.
    ASSERT_TRUE(kernel.mem()
                    .Write(text_buf,
                           std::span<const u8>(
                               reinterpret_cast<const u8*>(text.data()),
                               text.size()))
                    .ok());
    ebpf::HelperCtx hctx = bpf.MakeHelperCtx(nullptr);
    const ebpf::HelperArgs args = {text_buf, text.size(), 0, out_buf, 0};
    auto helper_ret = (*strtol_fn)(hctx, args);
    ASSERT_TRUE(helper_ret.ok());

    // Language path.
    Ctx ctx(*runtime, {}, kDefaultWatchdogBudgetNs, 0);
    auto lang = ctx.ParseInt(text);

    const bool helper_parsed =
        static_cast<xbase::s64>(helper_ret.value()) ==
        static_cast<xbase::s64>(text.size());
    if (helper_parsed && lang.ok()) {
      const u64 helper_value = kernel.mem().ReadU64(out_buf).value();
      EXPECT_EQ(static_cast<xbase::s64>(helper_value), lang.value())
          << "disagree on '" << text << "'";
    } else if (helper_parsed != lang.ok()) {
      // '+' sign: the helper consumes it only as part of a full parse;
      // overflow: language refuses, helper wraps. Both differences are
      // documented; anything else is a real divergence.
      const bool overflow_case = digits >= 15;
      EXPECT_TRUE(overflow_case) << "unexplained divergence on '" << text
                                 << "'";
    }
  }
}

TEST_P(RetirementParityTest, StrCmpMatchesStrncmpHelper) {
  simkern::Kernel kernel;
  ebpf::Bpf bpf(kernel);
  ASSERT_TRUE(kernel.BootstrapWorkload().ok());
  const simkern::Addr a_buf =
      kernel.mem()
          .Map(16, simkern::MemPerm::kReadWrite,
               simkern::RegionKind::kKernelData, "a")
          .value();
  const simkern::Addr b_buf =
      kernel.mem()
          .Map(16, simkern::MemPerm::kReadWrite,
               simkern::RegionKind::kKernelData, "b")
          .value();
  auto strncmp_fn = bpf.helpers().FindFn(ebpf::kHelperStrncmp).value();

  xbase::Rng rng(GetParam() ^ 0xf00);
  SCOPED_TRACE(::testing::Message() << "rng seed " << rng.seed());
  for (int trial = 0; trial < 300; ++trial) {
    const u32 len = 1 + static_cast<u32>(rng.NextBelow(8));
    std::string s1, s2;
    for (u32 i = 0; i < len; ++i) {
      s1.push_back(static_cast<char>('a' + rng.NextBelow(3)));
      s2.push_back(static_cast<char>('a' + rng.NextBelow(3)));
    }
    std::vector<u8> raw1(16, 0), raw2(16, 0);
    std::copy(s1.begin(), s1.end(), raw1.begin());
    std::copy(s2.begin(), s2.end(), raw2.begin());
    ASSERT_TRUE(kernel.mem().Write(a_buf, raw1).ok());
    ASSERT_TRUE(kernel.mem().Write(b_buf, raw2).ok());

    ebpf::HelperCtx hctx = bpf.MakeHelperCtx(nullptr);
    const ebpf::HelperArgs args = {a_buf, len, b_buf, 0, 0};
    auto helper_ret = (*strncmp_fn)(hctx, args);
    ASSERT_TRUE(helper_ret.ok());
    const int helper_sign =
        static_cast<xbase::s64>(helper_ret.value()) == 0
            ? 0
            : (static_cast<xbase::s64>(helper_ret.value()) < 0 ? -1 : 1);

    const int lang = Ctx::StrCmp(s1, s2, len);
    const int lang_sign = lang == 0 ? 0 : (lang < 0 ? -1 : 1);
    EXPECT_EQ(helper_sign, lang_sign)
        << "'" << s1 << "' vs '" << s2 << "' len " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetirementParityTest,
                         ::testing::Values(17, 4242, 90001));

}  // namespace
}  // namespace safex

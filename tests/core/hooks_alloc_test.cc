// Zero-allocation dispatch: after warm-up, the HookRegistry::FireInto
// happy path (admission check, extension scope, eBPF execution with a map
// lookup, leak audit, supervisor success accounting, verdict aggregation)
// must not touch the heap. The check is a counting global operator
// new/delete — any steady-state allocation anywhere under a fire fails the
// test, which is the property that makes per-packet dispatch viable.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "src/analysis/workloads.h"
#include "src/core/hooks.h"
#include "src/ebpf/asm.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<xbase::u64> g_allocations{0};

}  // namespace

// Counting overloads. Deallocation stays uncounted (frees are fine; it is
// *acquiring* heap on the hot path that the design forbids — and a happy
// path that never allocates has nothing of its own to free either).
void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// GCC's -Wmismatched-new-delete heuristic can't see that the replaced
// operator new above is malloc-backed, so the free() here trips it at
// inlined call sites; the pairing is correct by construction.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
#pragma GCC diagnostic pop

namespace safex {
namespace {

class HooksAllocTest : public ::testing::Test {
 protected:
  HooksAllocTest() : bpf_(kernel_), bpf_loader_(bpf_) {
    EXPECT_TRUE(kernel_.BootstrapWorkload().ok());
    runtime_ = Runtime::Create(kernel_, bpf_).value();
    ext_loader_ = std::make_unique<ExtLoader>(*runtime_);
    ctx_ = kernel_.mem()
               .Map(64, simkern::MemPerm::kReadWrite,
                    simkern::RegionKind::kKernelData, "hookctx")
               .value();
    // A 64-byte frame behind the xdp_md-style ctx (data / data_end at
    // offsets 8 / 16), protocol byte zeroed: the counter takes its
    // map-increment PASS path instead of the runt-frame drop.
    const simkern::Addr pkt =
        kernel_.mem()
            .Map(64, simkern::MemPerm::kReadWrite,
                 simkern::RegionKind::kKernelData, "pkt")
            .value();
    EXPECT_TRUE(kernel_.mem().WriteU64(ctx_ + 8, pkt).ok());
    EXPECT_TRUE(kernel_.mem().WriteU64(ctx_ + 16, pkt + 64).ok());
  }

  // An XDP-ish counter: array-map lookup (the engine's inline fast path)
  // plus a read-modify-write on the value — the realistic per-packet
  // steady state, not a bare `return 2`.
  xbase::u32 LoadCounterProg() {
    ebpf::MapSpec spec;
    spec.type = ebpf::MapType::kArray;
    spec.key_size = 4;
    spec.value_size = 8;
    spec.max_entries = 4;
    spec.name = "counter";
    const int fd = bpf_.maps().Create(spec).value();
    return bpf_loader_.Load(analysis::BuildPacketCounter(fd).value()).value();
  }

  void RunSteadyStateCheck(HookRegistry& hooks) {
    ASSERT_TRUE(
        hooks.AttachProgram(HookPoint::kXdpIngress, LoadCounterProg()).ok());

    HookFireReport report;
    // Warm-up: establishes every reusable capacity (report verdict vector,
    // scope-label string, exec-stack lease, supervisor record).
    for (int i = 0; i < 8; ++i) {
      hooks.FireInto(HookPoint::kXdpIngress, ctx_, report);
      ASSERT_EQ(report.served, 1u);
      ASSERT_EQ(report.failed, 0u);
    }

    g_allocations.store(0);
    g_counting.store(true);
    for (int i = 0; i < 64; ++i) {
      hooks.FireInto(HookPoint::kXdpIngress, ctx_, report);
    }
    g_counting.store(false);
    EXPECT_EQ(report.served, 1u);
    EXPECT_EQ(report.verdict, 2u);
    EXPECT_EQ(g_allocations.load(), 0u)
        << "steady-state FireInto must not touch the heap";
  }

  simkern::Kernel kernel_;
  ebpf::Bpf bpf_;
  ebpf::Loader bpf_loader_;
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<ExtLoader> ext_loader_;
  simkern::Addr ctx_ = 0;
};

TEST_F(HooksAllocTest, SteadyStateFireIsAllocationFreeUnsupervised) {
  HookRegistry hooks(bpf_, bpf_loader_, *ext_loader_);
  RunSteadyStateCheck(hooks);
}

TEST_F(HooksAllocTest, SteadyStateFireIsAllocationFreeSupervised) {
  Supervisor supervisor;
  HookRegistryConfig config;
  config.supervisor = &supervisor;
  HookRegistry hooks(bpf_, bpf_loader_, *ext_loader_, config);
  RunSteadyStateCheck(hooks);
  // The supervisor saw every fire and counted them as successes.
  EXPECT_EQ(supervisor.failures(), 0u);
  EXPECT_EQ(supervisor.tracked(), 1u);
}

TEST_F(HooksAllocTest, EngineSelectionFlowsThroughConfig) {
  // config.exec_options reaches Execute: the legacy engine runs the same
  // attachment to the same verdict (no zero-alloc claim for it — the
  // legacy interpreter's own call stack is heap-backed by design).
  HookRegistryConfig config;
  config.exec_options.engine = ebpf::ExecEngine::kLegacy;
  HookRegistry hooks(bpf_, bpf_loader_, *ext_loader_, config);
  ASSERT_TRUE(
      hooks.AttachProgram(HookPoint::kXdpIngress, LoadCounterProg()).ok());
  HookFireReport report;
  hooks.FireInto(HookPoint::kXdpIngress, ctx_, report);
  EXPECT_EQ(report.served, 1u);
  EXPECT_EQ(report.verdict, 2u);
}

}  // namespace
}  // namespace safex

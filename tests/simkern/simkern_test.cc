// Unit tests for the simulated kernel substrate: memory model, objects,
// RCU, locks, tasks, networking, call graph and the kernel façade.
#include <gtest/gtest.h>

#include "src/simkern/kernel.h"

namespace simkern {
namespace {

using xbase::u8;

// ---- memory ------------------------------------------------------------------

TEST(SimMemoryTest, MapReadWriteRoundTrip) {
  SimMemory mem;
  auto base = mem.Map(64, MemPerm::kReadWrite, RegionKind::kKernelData, "r");
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(mem.WriteU64(base.value(), 0xabcdef).ok());
  EXPECT_EQ(mem.ReadU64(base.value()).value(), 0xabcdefu);
}

TEST(SimMemoryTest, RegionsGetGuardGaps) {
  SimMemory mem;
  const Addr a =
      mem.Map(64, MemPerm::kReadWrite, RegionKind::kKernelData, "a").value();
  const Addr b =
      mem.Map(64, MemPerm::kReadWrite, RegionKind::kKernelData, "b").value();
  EXPECT_GE(b - a, 64u + 0x1000u);
  // The gap faults.
  u8 buf[1];
  EXPECT_EQ(mem.ReadChecked(a + 64, buf, 0).code(),
            xbase::Code::kKernelFault);
}

TEST(SimMemoryTest, NullGuardPage) {
  SimMemory mem;
  u8 buf[4];
  const xbase::Status status = mem.ReadChecked(0, buf, 0);
  EXPECT_EQ(status.code(), xbase::Code::kKernelFault);
  const auto fault = mem.TakeFault();
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, FaultKind::kNullDeref);
  EXPECT_FALSE(mem.TakeFault().has_value()) << "fault is consumed";
}

TEST(SimMemoryTest, ReadOnlyRegionRejectsWrites) {
  SimMemory mem;
  const Addr base =
      mem.Map(32, MemPerm::kRead, RegionKind::kTaskStruct, "ro").value();
  const u8 data[] = {1};
  EXPECT_EQ(mem.WriteChecked(base, data, 0).code(),
            xbase::Code::kKernelFault);
  EXPECT_EQ(mem.TakeFault()->kind, FaultKind::kPermission);
  // Trusted kernel writes bypass the permission model.
  EXPECT_TRUE(mem.Write(base, data).ok());
}

TEST(SimMemoryTest, CrossRegionAccessFaults) {
  SimMemory mem;
  const Addr base =
      mem.Map(16, MemPerm::kReadWrite, RegionKind::kKernelData, "r").value();
  u8 buf[8];
  // 8-byte read starting at the 12th byte crosses the region end.
  EXPECT_EQ(mem.ReadChecked(base + 12, buf, 0).code(),
            xbase::Code::kKernelFault);
}

TEST(SimMemoryTest, ProtectionKeys) {
  SimMemory mem;
  const Addr base =
      mem.Map(16, MemPerm::kReadWrite, RegionKind::kExtensionPool, "p")
          .value();
  mem.SetRegionKey(base, 7);
  u8 buf[4];
  EXPECT_TRUE(mem.ReadChecked(base, buf, 7).ok());   // matching key
  EXPECT_TRUE(mem.ReadChecked(base, buf, 0).ok());   // supervisor
  EXPECT_EQ(mem.ReadChecked(base, buf, 3).code(),    // foreign domain
            xbase::Code::kKernelFault);
  EXPECT_EQ(mem.TakeFault()->kind, FaultKind::kProtectionKey);
}

TEST(SimMemoryTest, UnmapInvalidatesAddresses) {
  SimMemory mem;
  const Addr base =
      mem.Map(16, MemPerm::kReadWrite, RegionKind::kMapData, "m").value();
  ASSERT_TRUE(mem.Unmap(base).ok());
  u8 buf[4];
  EXPECT_EQ(mem.ReadChecked(base, buf, 0).code(),
            xbase::Code::kKernelFault);
  EXPECT_EQ(mem.Unmap(base).code(), xbase::Code::kNotFound);
}

TEST(SimMemoryTest, OverlapRejected) {
  SimMemory mem;
  const Addr base =
      mem.Map(64, MemPerm::kReadWrite, RegionKind::kKernelData, "a").value();
  EXPECT_EQ(mem.Map(64, MemPerm::kReadWrite, RegionKind::kKernelData, "b",
                    base + 8)
                .status()
                .code(),
            xbase::Code::kAlreadyExists);
}

// ---- objects -------------------------------------------------------------------

TEST(ObjectTableTest, AcquireReleaseLifecycle) {
  ObjectTable objects;
  const ObjectId id = objects.Create(ObjectType::kSock, "s");
  EXPECT_EQ(objects.RefcountOf(id), 1);
  EXPECT_TRUE(objects.Acquire(id).ok());
  EXPECT_EQ(objects.RefcountOf(id), 2);
  EXPECT_TRUE(objects.Release(id).ok());
  EXPECT_TRUE(objects.Release(id).ok());
  EXPECT_FALSE(objects.IsLive(id));  // refcount hit zero -> freed
}

TEST(ObjectTableTest, UseAfterFreeDetected) {
  ObjectTable objects;
  const ObjectId id = objects.Create(ObjectType::kSock, "s");
  ASSERT_TRUE(objects.Release(id).ok());
  EXPECT_EQ(objects.Acquire(id).code(), xbase::Code::kKernelFault);
  EXPECT_EQ(objects.Release(id).code(), xbase::Code::kKernelFault);
}

TEST(ObjectTableTest, SnapshotDiffFindsLeaks) {
  ObjectTable objects;
  const ObjectId id = objects.Create(ObjectType::kTask, "t");
  const RefcountSnapshot before = objects.Snapshot();
  ASSERT_TRUE(objects.Acquire(id).ok());
  const auto leaks = objects.DiffSince(before);
  ASSERT_EQ(leaks.size(), 1u);
  EXPECT_EQ(leaks[0].id, id);
  EXPECT_EQ(leaks[0].before, 1);
  EXPECT_EQ(leaks[0].after, 2);
  ASSERT_TRUE(objects.Release(id).ok());
  EXPECT_TRUE(objects.DiffSince(before).empty());
}

TEST(ObjectTableTest, NewObjectsSinceSnapshotCount) {
  ObjectTable objects;
  const RefcountSnapshot before = objects.Snapshot();
  objects.Create(ObjectType::kRequestSock, "leaked");
  EXPECT_EQ(objects.DiffSince(before).size(), 1u);
}

// ---- RCU -----------------------------------------------------------------------

TEST(RcuTest, StallDetectedAfterTimeout) {
  SimClock clock;
  RcuState rcu;
  rcu.ReadLock(clock, "test");
  clock.Advance(kRcuStallTimeoutNs - 1);
  rcu.CheckStall(clock);
  EXPECT_TRUE(rcu.stalls().empty());
  clock.Advance(2);
  rcu.CheckStall(clock);
  ASSERT_EQ(rcu.stalls().size(), 1u);
  EXPECT_GE(rcu.stalls()[0].held_for_ns, kRcuStallTimeoutNs);
  // Reported once per critical section.
  clock.Advance(kRcuStallTimeoutNs);
  rcu.CheckStall(clock);
  EXPECT_EQ(rcu.stalls().size(), 1u);
  EXPECT_TRUE(rcu.ReadUnlock().ok());
}

TEST(RcuTest, NestingTracksOutermost) {
  SimClock clock;
  RcuState rcu;
  rcu.ReadLock(clock, "outer");
  clock.Advance(100);
  rcu.ReadLock(clock, "inner");
  EXPECT_EQ(rcu.depth(), 2);
  clock.Advance(100);
  EXPECT_EQ(rcu.HeldForNs(clock), 200u);
  EXPECT_TRUE(rcu.ReadUnlock().ok());
  EXPECT_TRUE(rcu.ReadUnlock().ok());
  EXPECT_FALSE(rcu.InCriticalSection());
}

TEST(RcuTest, UnbalancedUnlockFaults) {
  RcuState rcu;
  EXPECT_EQ(rcu.ReadUnlock().code(), xbase::Code::kKernelFault);
}

TEST(RcuTest, SynchronizeInsideReaderDeadlocks) {
  SimClock clock;
  RcuState rcu;
  rcu.ReadLock(clock, "r");
  EXPECT_EQ(rcu.SynchronizeRcu().code(), xbase::Code::kKernelFault);
  ASSERT_TRUE(rcu.ReadUnlock().ok());
  EXPECT_TRUE(rcu.SynchronizeRcu().ok());
}

// ---- locks ---------------------------------------------------------------------

TEST(LockTest, AcquireReleaseAndDeadlock) {
  LockTable locks;
  const LockId id = locks.Create("l");
  EXPECT_TRUE(locks.Acquire(id, "a").ok());
  EXPECT_TRUE(locks.IsHeld(id));
  EXPECT_EQ(locks.Acquire(id, "b").code(), xbase::Code::kKernelFault);
  EXPECT_TRUE(locks.Release(id).ok());
  EXPECT_EQ(locks.Release(id).code(), xbase::Code::kKernelFault);
}

TEST(LockTest, HeldLocksEnumerates) {
  LockTable locks;
  const LockId a = locks.Create("a");
  const LockId b = locks.Create("b");
  ASSERT_TRUE(locks.Acquire(a, "x").ok());
  ASSERT_TRUE(locks.Acquire(b, "x").ok());
  EXPECT_EQ(locks.HeldLocks().size(), 2u);
  locks.ForceRelease(a);
  EXPECT_EQ(locks.HeldLocks().size(), 1u);
}

// ---- tasks & net -----------------------------------------------------------------

TEST(TaskTest, CreateAndReadBack) {
  Kernel kernel;
  const auto pid =
      kernel.tasks().Create(kernel.mem(), kernel.objects(), 42, 40, "demo");
  ASSERT_TRUE(pid.ok());
  const auto task = kernel.tasks().FindByPid(42);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task.value()->tgid, 40u);
  // The struct bytes are live in simulated memory.
  const auto stored_pid =
      kernel.mem().ReadU32(task.value()->struct_addr + TaskLayout::kPid);
  EXPECT_EQ(stored_pid.value(), 42u);
  EXPECT_TRUE(kernel.tasks().FindByAddr(task.value()->struct_addr).ok());
  EXPECT_EQ(kernel.tasks().Create(kernel.mem(), kernel.objects(), 42, 1,
                                  "dup")
                .status()
                .code(),
            xbase::Code::kAlreadyExists);
}

TEST(TaskTest, RemoveMakesFindFailCleanly) {
  Kernel kernel;
  ASSERT_TRUE(kernel.tasks()
                  .Create(kernel.mem(), kernel.objects(), 7, 7, "worker")
                  .ok());
  const Addr struct_addr = kernel.tasks().FindByPid(7).value()->struct_addr;
  ASSERT_TRUE(kernel.tasks().SetCurrent(7).ok());
  ASSERT_TRUE(kernel.tasks().Remove(kernel.mem(), kernel.objects(), 7).ok());
  // The regression this pins: a lookup after removal must fail cleanly —
  // NotFound, not a stale pointer into unmapped memory.
  EXPECT_EQ(kernel.tasks().FindByPid(7).status().code(),
            xbase::Code::kNotFound);
  EXPECT_EQ(kernel.tasks().FindByAddr(struct_addr).status().code(),
            xbase::Code::kNotFound);
  EXPECT_EQ(kernel.tasks().current(), nullptr)
      << "current must not dangle past the exit";
  EXPECT_FALSE(kernel.mem().ReadU32(struct_addr + TaskLayout::kPid).ok())
      << "the struct region is unmapped";
  EXPECT_EQ(kernel.tasks().Remove(kernel.mem(), kernel.objects(), 7).code(),
            xbase::Code::kNotFound);
  // The pid is reusable after exit.
  EXPECT_TRUE(kernel.tasks()
                  .Create(kernel.mem(), kernel.objects(), 7, 7, "reborn")
                  .ok());
}

TEST(TaskTest, KernelRemoveTaskAlsoDropsRunqueueEntry) {
  Kernel kernel;
  ASSERT_TRUE(kernel.BootstrapWorkload().ok());
  ASSERT_TRUE(kernel.runqueue().Enqueue(4321, kernel.clock().now_ns()).ok());
  ASSERT_TRUE(kernel.RemoveTask(4321).ok());
  EXPECT_FALSE(kernel.runqueue().Contains(4321));
  EXPECT_EQ(kernel.tasks().FindByPid(4321).status().code(),
            xbase::Code::kNotFound);
}

TEST(TaskTest, CurrentTaskSwitches) {
  Kernel kernel;
  ASSERT_TRUE(kernel.BootstrapWorkload().ok());
  ASSERT_TRUE(kernel.tasks().SetCurrent(4321).ok());
  EXPECT_EQ(kernel.tasks().current()->comm, "nginx");
  EXPECT_EQ(kernel.tasks().SetCurrent(99999).code(), xbase::Code::kNotFound);
}

TEST(NetTest, SockLookupByTuple) {
  Kernel kernel;
  ASSERT_TRUE(kernel.BootstrapWorkload().ok());
  const SockTuple tuple{0x0a000001, 0x0a000002, 8080, 40000};
  const auto sock = kernel.net().Lookup(tuple);
  ASSERT_TRUE(sock.has_value());
  EXPECT_EQ(sock->protocol, 6u);
  EXPECT_FALSE(kernel.net().Lookup(SockTuple{1, 2, 3, 4}).has_value());
}

TEST(NetTest, SkBuffLayout) {
  Kernel kernel;
  const u8 payload[] = {0xaa, 0xbb, 0xcc};
  const auto skb = kernel.net().CreateSkBuff(kernel.mem(), payload);
  ASSERT_TRUE(skb.ok());
  EXPECT_EQ(skb.value().len, 3u);
  const auto len = kernel.mem().ReadU32(skb.value().meta_addr +
                                        SkBuffLayout::kLen);
  EXPECT_EQ(len.value(), 3u);
  const auto data_ptr = kernel.mem().ReadU64(skb.value().meta_addr +
                                             SkBuffLayout::kDataPtr);
  EXPECT_EQ(data_ptr.value(), skb.value().data_addr);
  u8 byte;
  ASSERT_TRUE(kernel.mem().Read(skb.value().data_addr, {&byte, 1}).ok());
  EXPECT_EQ(byte, 0xaa);
}

// ---- call graph ---------------------------------------------------------------------

TEST(CallGraphTest, ReachabilityCountsUniqueNodes) {
  CallGraph graph;
  graph.AddEdge("a", "b");
  graph.AddEdge("a", "c");
  graph.AddEdge("b", "c");
  graph.AddEdge("c", "d");
  EXPECT_EQ(graph.ReachableCount("a").value(), 4u);
  EXPECT_EQ(graph.ReachableCount("c").value(), 2u);
  EXPECT_EQ(graph.ReachableCount("missing").status().code(),
            xbase::Code::kNotFound);
}

TEST(CallGraphTest, DuplicateEdgesIgnored) {
  CallGraph graph;
  graph.AddEdge("a", "b");
  graph.AddEdge("a", "b");
  EXPECT_EQ(graph.edge_count(), 1u);
}

TEST(SubsysTest, SpineGuaranteesExactReach) {
  CallGraph graph;
  BuildSubsystems(graph, {{"test", 100, 2}}, 1);
  EXPECT_EQ(graph.ReachableCount("test.f0").value(), 100u);
  EXPECT_EQ(graph.ReachableCount("test.f50").value(), 50u);
  EXPECT_EQ(graph.ReachableCount("test.f99").value(), 1u);
  EXPECT_EQ(SubsystemEntry("test", 100, 30), "test.f70");
}

TEST(SubsysTest, DefaultSubsystemsBuildDeterministically) {
  CallGraph a, b;
  BuildSubsystems(a, DefaultSubsystems(), 7);
  BuildSubsystems(b, DefaultSubsystems(), 7);
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.edge_count(), b.edge_count());
  EXPECT_GT(a.node_count(), 9000u);  // the scale model is nontrivial
}

// ---- kernel façade --------------------------------------------------------------------

TEST(KernelTest, OopsTransitionsState) {
  Kernel kernel;
  EXPECT_FALSE(kernel.crashed());
  kernel.Oops("BUG: test oops");
  EXPECT_EQ(kernel.state(), KernelState::kOopsed);
  EXPECT_TRUE(kernel.crashed());
  ASSERT_EQ(kernel.oopses().size(), 1u);
  kernel.Panic("fatal");
  EXPECT_EQ(kernel.state(), KernelState::kPanicked);
}

TEST(KernelTest, RouteConvertsKernelFaults) {
  Kernel kernel;
  const xbase::Status passthrough = kernel.Route(xbase::NotFound("x"));
  EXPECT_EQ(passthrough.code(), xbase::Code::kNotFound);
  EXPECT_FALSE(kernel.crashed());
  (void)kernel.Route(xbase::KernelFault("BUG: routed"));
  EXPECT_TRUE(kernel.crashed());
}

TEST(KernelTest, DmesgRingIsBounded) {
  Kernel kernel;
  for (int i = 0; i < 2000; ++i) {
    kernel.Printk("spam");
  }
  EXPECT_LE(kernel.dmesg().size(), 1024u);
}

TEST(KernelTest, VersionedConfig) {
  KernelConfig config;
  config.version = kV4_9;
  config.unprivileged_bpf_disabled = false;
  Kernel kernel(config);
  EXPECT_EQ(kernel.version(), kV4_9);
  EXPECT_FALSE(kernel.config().unprivileged_bpf_disabled);
}

TEST(VersionTest, OrderingAndYears) {
  EXPECT_LT(kV3_18, kV4_3);
  EXPECT_LT(kV4_20, kV5_2);
  EXPECT_LT(kV5_18, kV6_1);
  EXPECT_EQ(ReleaseYear(kV3_18), 2014);
  EXPECT_EQ(ReleaseYear(kV5_10), 2020);
  EXPECT_EQ(ReleaseYear(kV6_1), 2022);
  EXPECT_EQ(kV5_18.ToString(), "v5.18");
}

}  // namespace
}  // namespace simkern

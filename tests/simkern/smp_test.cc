// Cross-CPU tests for the SMP substrate: per-thread CPU binding, per-CPU
// clocks, genuine cross-CPU RCU grace periods, spinlock contention
// accounting, work stealing, and genuinely per-CPU map storage. CI runs
// this suite under TSan — every test that spawns threads doubles as a data
// race regression test for the machinery it touches (the shared
// `Kernel::current_cpu_` field these tests replaced was itself a race).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/ebpf/bpf.h"
#include "src/simkern/kernel.h"
#include "src/xbase/bytes.h"

namespace simkern {
namespace {

using xbase::u32;
using xbase::u64;

KernelConfig SmpConfig(u32 cpus) {
  KernelConfig config;
  config.num_cpus = cpus;
  return config;
}

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Restores the calling thread's binding on scope exit, so tests that bind
// the main thread cannot leak the binding into later tests.
class BindingSaver {
 public:
  BindingSaver() : saved_(ThisThreadCpuBinding()) {}
  ~BindingSaver() { ThisThreadCpuBinding() = saved_; }

 private:
  CpuBinding saved_;
};

// ---- binding resolution -----------------------------------------------------

TEST(CpuBindingTest, ResolvesOnlyForOwnerAndInRange) {
  BindingSaver saver;
  Kernel a(SmpConfig(4));
  Kernel b(SmpConfig(4));
  ThisThreadCpuBinding() = CpuBinding{&a, 3};
  EXPECT_EQ(BoundCpuFor(&a, 4), 3u);
  // A foreign kernel never inherits another kernel's binding.
  EXPECT_EQ(BoundCpuFor(&b, 4), 0u);
  // An out-of-range binding (the owner shrank) degrades to cpu0.
  EXPECT_EQ(BoundCpuFor(&a, 2), 0u);
  EXPECT_EQ(a.current_cpu(), 3u);
  EXPECT_EQ(b.current_cpu(), 0u);
}

TEST(CpuBindingTest, NumCpusIsClampedToMax) {
  EXPECT_EQ(Kernel(SmpConfig(64)).num_cpus(), kMaxCpus);
  EXPECT_EQ(Kernel(SmpConfig(0)).num_cpus(), 1u);
  EXPECT_EQ(Kernel(SmpConfig(7)).num_cpus(), 7u);
}

TEST(CpuBindingTest, WorkersExecuteWithTheirOwnBinding) {
  Kernel kernel(SmpConfig(4));
  kernel.StartCpus();
  CpuPool& pool = *kernel.cpus();
  // Each task reads the kernel's CPU resolution twice; both reads must
  // agree (the binding is thread-local state, not a shared field another
  // concurrent execution can clobber mid-task) and be a real CPU.
  constexpr int kTasks = 64;
  std::vector<std::atomic<u32>> seen(kTasks);
  std::atomic<int> torn{0};
  for (int i = 0; i < kTasks; ++i) {
    std::atomic<u32>* slot = &seen[i];
    pool.SubmitAny([&kernel, slot, &torn] {
      const u32 first = kernel.current_cpu();
      SleepMs(1);
      if (kernel.current_cpu() != first) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
      slot->store(first, std::memory_order_relaxed);
    });
  }
  pool.Drain();
  EXPECT_EQ(torn.load(), 0);
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_LT(seen[i].load(), kernel.num_cpus());
  }
  kernel.StopCpus();
}

// ---- per-CPU clocks ---------------------------------------------------------

TEST(SmpClockTest, PerCpuClocksAdvanceIndependently) {
  Kernel kernel(SmpConfig(4));
  const u64 base = kernel.clock().now_ns(0);
  kernel.clock().Advance(1, 100);
  kernel.clock().Advance(2, 250);
  EXPECT_EQ(kernel.clock().now_ns(0), base);
  EXPECT_EQ(kernel.clock().now_ns(1), base + 100);
  EXPECT_EQ(kernel.clock().now_ns(2), base + 250);
  EXPECT_EQ(kernel.clock().now_ns(3), base);
  EXPECT_EQ(kernel.clock().max_now_ns(), base + 250);
  // The no-argument overloads resolve to the calling thread's CPU.
  BindingSaver saver;
  kernel.set_current_cpu(1);
  EXPECT_EQ(kernel.clock().now_ns(), base + 100);
  kernel.clock().Advance(7);
  EXPECT_EQ(kernel.clock().now_ns(1), base + 107);
  EXPECT_EQ(kernel.clock().now_ns(2), base + 250);
}

// ---- cross-CPU RCU ----------------------------------------------------------

TEST(SmpRcuTest, RemoteReaderBlocksSynchronize) {
  Kernel kernel(SmpConfig(4));
  std::atomic<bool> reader_in{false};
  std::atomic<bool> release{false};
  std::atomic<bool> reader_done{false};

  // A genuine remote reader: a thread bound to cpu1 parks inside its
  // read-side critical section until told to leave.
  std::thread reader([&] {
    ThisThreadCpuBinding() = CpuBinding{&kernel, 1};
    kernel.rcu().ReadLock(kernel.clock(), "cpu1-reader");
    reader_in.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      SleepMs(1);
    }
    ASSERT_TRUE(kernel.rcu().ReadUnlock().ok());
    reader_done.store(true, std::memory_order_release);
  });

  while (!reader_in.load(std::memory_order_acquire)) {
    SleepMs(1);
  }
  EXPECT_TRUE(kernel.rcu().AnyReader());
  const u64 gp_before = kernel.rcu().grace_periods();

  // Schedule the release strictly later, then block in the grace period.
  // If SynchronizeRcu failed to wait for the remote CPU it would return
  // while reader_done is still false.
  std::thread releaser([&] {
    SleepMs(50);
    release.store(true, std::memory_order_release);
  });
  ASSERT_TRUE(kernel.rcu().SynchronizeRcu().ok());
  EXPECT_TRUE(reader_done.load(std::memory_order_acquire));
  EXPECT_EQ(kernel.rcu().grace_periods(), gp_before + 1);
  EXPECT_FALSE(kernel.rcu().AnyReader());
  reader.join();
  releaser.join();
}

TEST(SmpRcuTest, SynchronizeInsideOwnReaderFaultsOnWorkerCpu) {
  // The self-deadlock diagnosis must hold per-CPU, not just on cpu0.
  Kernel kernel(SmpConfig(4));
  std::thread worker([&] {
    ThisThreadCpuBinding() = CpuBinding{&kernel, 2};
    kernel.rcu().ReadLock(kernel.clock(), "cpu2-self");
    const xbase::Status status = kernel.rcu().SynchronizeRcu();
    EXPECT_EQ(status.code(), xbase::Code::kKernelFault);
    EXPECT_TRUE(kernel.rcu().ReadUnlock().ok());
  });
  worker.join();
}

TEST(SmpRcuTest, SynchronizeWithNoReadersCompletesImmediately) {
  Kernel kernel(SmpConfig(4));
  const u64 gp_before = kernel.rcu().grace_periods();
  ASSERT_TRUE(kernel.rcu().SynchronizeRcu().ok());
  EXPECT_EQ(kernel.rcu().grace_periods(), gp_before + 1);
}

// ---- spinlock contention ----------------------------------------------------

TEST(SmpLockTest, CrossCpuAcquireSpinsAndRecordsContention) {
  Kernel kernel(SmpConfig(4));
  const LockId id = kernel.locks().Create("contended");
  std::atomic<bool> held{false};

  std::thread holder([&] {
    ThisThreadCpuBinding() = CpuBinding{&kernel, 0};
    ASSERT_TRUE(kernel.locks().Acquire(id, "cpu0").ok());
    kernel.clock().Advance(0, 500);  // simulated hold time
    held.store(true, std::memory_order_release);
    SleepMs(30);  // wall-clock window the contender spins through
    ASSERT_TRUE(kernel.locks().Release(id).ok());
  });
  std::thread contender([&] {
    ThisThreadCpuBinding() = CpuBinding{&kernel, 1};
    while (!held.load(std::memory_order_acquire)) {
      SleepMs(1);
    }
    // Cross-CPU: this genuinely waits for cpu0's release instead of
    // reporting the same-CPU self-deadlock fault.
    ASSERT_TRUE(kernel.locks().Acquire(id, "cpu1").ok());
    ASSERT_TRUE(kernel.locks().Release(id).ok());
  });
  holder.join();
  contender.join();

  const LockStats stats = kernel.locks().StatsOf(id);
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_GE(stats.contended_acquires, 1u);
  EXPECT_GT(stats.spin_wall_ns, 0u);
  EXPECT_GE(stats.hold_sim_ns, 500u);
  EXPECT_EQ(kernel.locks().held_count_total(), 0);
}

TEST(SmpLockTest, SameCpuReacquireIsStillImmediateDeadlock) {
  Kernel kernel(SmpConfig(4));
  const LockId id = kernel.locks().Create("self");
  std::thread worker([&] {
    ThisThreadCpuBinding() = CpuBinding{&kernel, 3};
    ASSERT_TRUE(kernel.locks().Acquire(id, "first").ok());
    // Preemption-off semantics: the same CPU can never win this spin, so
    // it is diagnosed as a deadlock immediately rather than wedging.
    EXPECT_EQ(kernel.locks().Acquire(id, "second").code(),
              xbase::Code::kKernelFault);
    ASSERT_TRUE(kernel.locks().Release(id).ok());
  });
  worker.join();
  EXPECT_EQ(kernel.locks().held_count_total(), 0);
}

// ---- work stealing ----------------------------------------------------------

TEST(SmpPoolTest, IdleCpusStealFromLoadedSiblings) {
  Kernel kernel(SmpConfig(4));
  kernel.StartCpus();
  CpuPool& pool = *kernel.cpus();
  // Pile everything on cpu0's queue; the other workers are idle and must
  // take from it. Each task burns a little wall time so cpu0 cannot drain
  // its own queue before the siblings wake.
  constexpr int kTasks = 200;
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit(0, [&ran] {
      SleepMs(1);
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), kTasks);
  u64 executed_total = 0;
  u64 stolen_total = 0;
  for (u32 cpu = 0; cpu < kernel.num_cpus(); ++cpu) {
    executed_total += pool.executed_on(cpu);
    stolen_total += pool.stolen_by(cpu);
  }
  EXPECT_EQ(executed_total, static_cast<u64>(kTasks));
  EXPECT_GT(stolen_total, 0u);
  kernel.StopCpus();
}

TEST(SmpPoolTest, DrainIsAQuiescenceBarrier) {
  Kernel kernel(SmpConfig(4));
  kernel.StartCpus();
  CpuPool& pool = *kernel.cpus();
  std::atomic<int> done{0};
  for (int round = 0; round < 10; ++round) {
    for (u32 cpu = 0; cpu < kernel.num_cpus(); ++cpu) {
      pool.Submit(cpu, [&done] { done.fetch_add(1); });
    }
    pool.Drain();
    EXPECT_EQ(done.load(), static_cast<int>((round + 1) * kernel.num_cpus()));
  }
  kernel.StopCpus();
}

// ---- genuinely per-CPU map storage ------------------------------------------

TEST(SmpMapTest, PercpuArraySlotsAccumulateIndependentlyAcrossCpus) {
  Kernel kernel(SmpConfig(4));
  ebpf::Bpf bpf(kernel);
  ebpf::MapSpec spec;
  spec.type = ebpf::MapType::kPercpuArray;
  spec.key_size = 4;
  spec.value_size = 8;
  spec.max_entries = 1;
  spec.name = "smp_counter";
  auto fd = bpf.maps().Create(spec);
  ASSERT_TRUE(fd.ok());
  auto* map =
      dynamic_cast<ebpf::PercpuArrayMap*>(bpf.maps().Find(fd.value()).value());
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->num_cpus(), kernel.num_cpus());

  std::vector<xbase::u8> key(4, 0);
  kernel.StartCpus();
  CpuPool& pool = *kernel.cpus();
  // Every CPU hammers the same key concurrently. LookupAddr resolves to
  // the *executing* CPU's slot, so with genuinely per-CPU backing storage
  // no increment is ever lost despite there being no lock on the value.
  constexpr int kIncrementsPerTask = 50;
  constexpr int kTasksPerCpu = 8;
  for (u32 cpu = 0; cpu < kernel.num_cpus(); ++cpu) {
    for (int t = 0; t < kTasksPerCpu; ++t) {
      pool.Submit(cpu, [&kernel, map, &key] {
        for (int i = 0; i < kIncrementsPerTask; ++i) {
          const simkern::Addr addr =
              map->LookupAddr(kernel, key).value();
          const u64 value = kernel.mem().ReadU64(addr).value();
          ASSERT_TRUE(kernel.mem().WriteU64(addr, value + 1).ok());
        }
      });
    }
  }
  pool.Drain();
  kernel.StopCpus();

  // Tasks may have been stolen across CPUs, but the *sum* over slots must
  // be exact: same-CPU accesses are serialized by the worker thread, and
  // distinct CPUs write distinct slots.
  u64 sum = 0;
  for (u32 cpu = 0; cpu < kernel.num_cpus(); ++cpu) {
    sum += kernel.mem().ReadU64(map->LookupAddrForCpu(key, cpu).value())
               .value();
  }
  EXPECT_EQ(sum, static_cast<u64>(kernel.num_cpus()) * kTasksPerCpu *
                     kIncrementsPerTask);
}

}  // namespace
}  // namespace simkern

// Crypto validation: SHA-256 against the FIPS 180-4 / NIST example vectors,
// HMAC-SHA256 against RFC 4231 test cases, and the keyring's trust
// decisions.
#include <gtest/gtest.h>

#include "src/crypto/hmac.h"
#include "src/crypto/keyring.h"
#include "src/crypto/sha256.h"
#include "src/xbase/bytes.h"

namespace crypto {
namespace {

using xbase::u8;

std::string HexDigest(const Digest256& digest) {
  return xbase::ToHex(std::span<const u8>(digest.data(), digest.size()));
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexDigest(Sha256::HashString("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexDigest(Sha256::HashString("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HexDigest(Sha256::HashString(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.Update(std::span<const u8>(
        reinterpret_cast<const u8*>(chunk.data()), chunk.size()));
  }
  EXPECT_EQ(HexDigest(hasher.Finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  const std::string text = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= text.size(); split += 7) {
    Sha256 hasher;
    hasher.Update(std::span<const u8>(
        reinterpret_cast<const u8*>(text.data()), split));
    hasher.Update(std::span<const u8>(
        reinterpret_cast<const u8*>(text.data()) + split,
        text.size() - split));
    EXPECT_EQ(hasher.Finalize(), Sha256::HashString(text));
  }
}

TEST(Sha256Test, BoundaryLengths) {
  // 55/56/63/64/65 bytes cross the padding boundaries.
  for (const size_t len : {55u, 56u, 63u, 64u, 65u}) {
    const std::string text(len, 'x');
    Sha256 hasher;
    hasher.Update(std::span<const u8>(
        reinterpret_cast<const u8*>(text.data()), text.size()));
    EXPECT_EQ(hasher.Finalize(), Sha256::HashString(text)) << len;
  }
}

TEST(Sha256Test, ConstantTimeCompare) {
  const Digest256 a = Sha256::HashString("a");
  Digest256 b = a;
  EXPECT_TRUE(DigestEqualConstantTime(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(DigestEqualConstantTime(a, b));
}

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  std::vector<u8> key(20, 0x0b);
  const std::string data = "Hi There";
  const Digest256 mac = HmacSha256(
      key, std::span<const u8>(reinterpret_cast<const u8*>(data.data()),
                               data.size()));
  EXPECT_EQ(HexDigest(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacTest, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string data = "what do ya want for nothing?";
  const Digest256 mac = HmacSha256(
      key, std::span<const u8>(reinterpret_cast<const u8*>(data.data()),
                               data.size()));
  EXPECT_EQ(HexDigest(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3 (0xaa key, 0xdd data).
TEST(HmacTest, Rfc4231Case3) {
  std::vector<u8> key(20, 0xaa);
  std::vector<u8> data(50, 0xdd);
  EXPECT_EQ(HexDigest(HmacSha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size.
TEST(HmacTest, Rfc4231Case6LongKey) {
  std::vector<u8> key(131, 0xaa);
  const std::string data =
      "Test Using Larger Than Block-Size Key - Hash Key First";
  EXPECT_EQ(HexDigest(HmacSha256(
                key, std::span<const u8>(
                         reinterpret_cast<const u8*>(data.data()),
                         data.size()))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DifferentKeysDifferentMacs) {
  const std::string msg = "message";
  const auto span = std::span<const u8>(
      reinterpret_cast<const u8*>(msg.data()), msg.size());
  EXPECT_NE(HmacSha256(std::string("k1"), span),
            HmacSha256(std::string("k2"), span));
}

TEST(KeyringTest, EnrollVerifyRoundTrip) {
  const SigningKey key = SigningKey::FromPassphrase("vendor", "pw");
  Keyring keyring;
  ASSERT_TRUE(keyring.Enroll(key).ok());
  const u8 msg[] = {1, 2, 3};
  const Signature sig = key.Sign(msg);
  EXPECT_TRUE(keyring.Verify(msg, sig).ok());
}

TEST(KeyringTest, RejectsTamperedMessage) {
  const SigningKey key = SigningKey::FromPassphrase("vendor", "pw");
  Keyring keyring;
  ASSERT_TRUE(keyring.Enroll(key).ok());
  const u8 msg[] = {1, 2, 3};
  Signature sig = key.Sign(msg);
  const u8 other[] = {1, 2, 4};
  EXPECT_EQ(keyring.Verify(other, sig).code(),
            xbase::Code::kPermissionDenied);
}

TEST(KeyringTest, RejectsUnknownKeyId) {
  const SigningKey trusted = SigningKey::FromPassphrase("vendor", "pw");
  const SigningKey rogue = SigningKey::FromPassphrase("rogue", "pw2");
  Keyring keyring;
  ASSERT_TRUE(keyring.Enroll(trusted).ok());
  const u8 msg[] = {9};
  EXPECT_EQ(keyring.Verify(msg, rogue.Sign(msg)).code(),
            xbase::Code::kPermissionDenied);
}

TEST(KeyringTest, RejectsForgedKeyIdWithWrongSecret) {
  // A rogue key claiming the trusted id still fails: the MAC won't match.
  const SigningKey trusted = SigningKey::FromPassphrase("vendor", "pw");
  const SigningKey rogue = SigningKey::FromPassphrase("vendor", "guess");
  Keyring keyring;
  ASSERT_TRUE(keyring.Enroll(trusted).ok());
  const u8 msg[] = {9};
  EXPECT_FALSE(keyring.Verify(msg, rogue.Sign(msg)).ok());
}

TEST(KeyringTest, SealBlocksEnrollment) {
  Keyring keyring;
  keyring.Seal();
  const SigningKey key = SigningKey::FromPassphrase("late", "pw");
  EXPECT_EQ(keyring.Enroll(key).code(), xbase::Code::kPermissionDenied);
}

TEST(KeyringTest, DuplicateEnrollmentRefused) {
  Keyring keyring;
  const SigningKey key = SigningKey::FromPassphrase("vendor", "pw");
  ASSERT_TRUE(keyring.Enroll(key).ok());
  EXPECT_EQ(keyring.Enroll(key).code(), xbase::Code::kAlreadyExists);
}

TEST(KeyringTest, PassphraseDerivationIsDeterministic) {
  const SigningKey a = SigningKey::FromPassphrase("k", "same");
  const SigningKey b = SigningKey::FromPassphrase("k", "same");
  const u8 msg[] = {42};
  EXPECT_EQ(a.Sign(msg).mac, b.Sign(msg).mac);
}

}  // namespace
}  // namespace crypto

// B-RUN — runtime-mechanism overhead ablation (§3.1): what do the watchdog,
// cleanup registry and protection domain cost per invocation, and how does
// a safex extension compare against the eBPF equivalent of the same
// workload (a packet counter) on both execution engines? Host wall-time is
// what google-benchmark reports; the simulated-time accounting is identical
// across variants by construction.
//
// Default: google-benchmark timing. With `--json PATH` it runs a
// fixed-iteration measurement pass over the packet-counter variants and
// writes the BENCH_runtime.json CI artifact.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

#include "bench/benchutil.h"
#include "src/analysis/workloads.h"

namespace {

struct PacketRig : benchutil::Rig {
  PacketRig() {
    map_fd = benchutil::MustCreateArrayMap(*this, "counters", 8, 4);
    xbase::u8 payload[64] = {};
    payload[12] = 2;  // "protocol" byte the filter reads
    auto skb_result = kernel.net().CreateSkBuff(kernel.mem(), payload);
    skb = skb_result.ok() ? skb_result.value() : simkern::SkBuff{};
  }

  int map_fd = -1;
  simkern::SkBuff skb;
};

class PacketCounterExt : public safex::Extension {
 public:
  explicit PacketCounterExt(int map_fd) : map_fd_(map_fd) {}
  xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
    auto packet = ctx.Packet();
    XB_RETURN_IF_ERROR(packet.status());
    if (packet.value().size() < 14) {
      return xbase::u64{2};
    }
    auto proto = packet.value().ReadU8(12);
    XB_RETURN_IF_ERROR(proto.status());
    auto map = ctx.Map(map_fd_);
    XB_RETURN_IF_ERROR(map.status());
    auto slot = map.value().LookupIndex(proto.value() & 3);
    XB_RETURN_IF_ERROR(slot.status());
    auto count = slot.value().ReadU64(0);
    XB_RETURN_IF_ERROR(count.status());
    XB_RETURN_IF_ERROR(slot.value().WriteU64(0, count.value() + 1));
    return xbase::u64{2};  // XDP_PASS
  }

 private:
  int map_fd_;
};

void RunEbpfPacketCounter(benchmark::State& state, ebpf::ExecEngine engine) {
  PacketRig rig;
  auto prog = analysis::BuildPacketCounter(rig.map_fd);
  auto id = rig.loader.Load(prog.value());
  if (!id.ok()) {
    state.SkipWithError(id.status().ToString().c_str());
    return;
  }
  auto loaded = rig.loader.Find(id.value());
  ebpf::ExecOptions opts;
  opts.engine = engine;
  for (auto _ : state) {
    auto result = ebpf::Execute(rig.bpf, *loaded.value(), rig.skb.meta_addr,
                                opts, &rig.loader);
    benchmark::DoNotOptimize(result);
  }
}

void BM_EbpfThreadedPacketCounter(benchmark::State& state) {
  RunEbpfPacketCounter(state, ebpf::ExecEngine::kThreaded);
}
BENCHMARK(BM_EbpfThreadedPacketCounter);

void BM_EbpfLegacyPacketCounter(benchmark::State& state) {
  RunEbpfPacketCounter(state, ebpf::ExecEngine::kLegacy);
}
BENCHMARK(BM_EbpfLegacyPacketCounter);

void BM_SafexPacketCounter(benchmark::State& state) {
  PacketRig rig;
  PacketCounterExt ext(rig.map_fd);
  safex::InvokeOptions opts;
  opts.skb_meta = rig.skb.meta_addr;
  const safex::CapSet caps = {safex::Capability::kPacketAccess,
                              safex::Capability::kMapAccess};
  for (auto _ : state) {
    auto outcome = rig.safex_runtime->Invoke(ext, caps, opts);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_SafexPacketCounter);

// Ablations: empty invocation with mechanisms individually exercised.
void BM_SafexInvokeEmpty(benchmark::State& state) {
  benchutil::Rig rig;
  struct Nop : safex::Extension {
    xbase::Result<xbase::u64> Run(safex::Ctx&) override {
      return xbase::u64{0};
    }
  } ext;
  for (auto _ : state) {
    auto outcome = rig.safex_runtime->Invoke(ext, {}, {});
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_SafexInvokeEmpty);

void BM_SafexCleanupHeavy(benchmark::State& state) {
  benchutil::Rig rig;
  struct AllocHeavy : safex::Extension {
    xbase::s64 n;
    explicit AllocHeavy(xbase::s64 count) : n(count) {}
    xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
      for (xbase::s64 i = 0; i < n; ++i) {
        auto chunk = ctx.Alloc(32);
        XB_RETURN_IF_ERROR(chunk.status());
      }
      return xbase::u64{0};  // all freed by the cleanup registry
    }
  } ext(state.range(0));
  const safex::CapSet caps = {safex::Capability::kDynAlloc};
  for (auto _ : state) {
    auto outcome = rig.safex_runtime->Invoke(ext, caps, {});
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["cleanups_per_invoke"] =
      static_cast<double>(state.range(0));
}
BENCHMARK(BM_SafexCleanupHeavy)->Arg(1)->Arg(16)->Arg(63);

void BM_SafexWatchdogFire(benchmark::State& state) {
  benchutil::Rig rig;
  struct Spin : safex::Extension {
    xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
      for (;;) {
        XB_RETURN_IF_ERROR(ctx.Tick());
      }
    }
  } ext;
  safex::InvokeOptions opts;
  opts.watchdog_budget_ns = 10'000;  // fires after ~10k ticks
  for (auto _ : state) {
    auto outcome = rig.safex_runtime->Invoke(ext, {}, opts);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_SafexWatchdogFire);

// Reference acquire/release through RAII vs the cleanup registry.
void BM_SafexSockRefScope(benchmark::State& state) {
  benchutil::Rig rig;
  struct Lookup : safex::Extension {
    xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
      auto sock = ctx.LookupTcp(
          simkern::SockTuple{0x0a000001, 0x0a000002, 8080, 40000});
      XB_RETURN_IF_ERROR(sock.status());
      return static_cast<xbase::u64>(sock.value().src_port());
    }
  } ext;
  const safex::CapSet caps = {safex::Capability::kSockLookup};
  for (auto _ : state) {
    auto outcome = rig.safex_runtime->Invoke(ext, caps, {});
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_SafexSockRefScope);

// Fixed-iteration JSON pass over the per-invocation packet-counter
// variants (the availability-layer comparison the README quotes).
int RunJson(const char* path) {
  constexpr int kIters = 2000;
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "runtime_overhead: cannot write %s\n", path);
    return 2;
  }
  const auto mean_ns = [](auto&& fn) {
    fn();  // warm-up: decode, exec-stack lease, map state
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      fn();
    }
    const auto end = std::chrono::steady_clock::now();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                    start)
                   .count()) /
           kIters;
  };

  PacketRig rig;
  auto id = rig.loader.Load(analysis::BuildPacketCounter(rig.map_fd).value());
  if (!id.ok()) {
    std::fprintf(stderr, "runtime_overhead: %s\n",
                 id.status().ToString().c_str());
    std::fclose(out);
    return 2;
  }
  auto loaded = rig.loader.Find(id.value());
  const auto exec_mean = [&](ebpf::ExecEngine engine) {
    ebpf::ExecOptions opts;
    opts.engine = engine;
    return mean_ns([&] {
      auto result = ebpf::Execute(rig.bpf, *loaded.value(),
                                  rig.skb.meta_addr, opts, &rig.loader);
      benchmark::DoNotOptimize(result);
    });
  };
  const double threaded_ns = exec_mean(ebpf::ExecEngine::kThreaded);
  const double legacy_ns = exec_mean(ebpf::ExecEngine::kLegacy);

  PacketCounterExt ext(rig.map_fd);
  safex::InvokeOptions opts;
  opts.skb_meta = rig.skb.meta_addr;
  const safex::CapSet caps = {safex::Capability::kPacketAccess,
                              safex::Capability::kMapAccess};
  const double safex_ns = mean_ns([&] {
    auto outcome = rig.safex_runtime->Invoke(ext, caps, opts);
    benchmark::DoNotOptimize(outcome);
  });

  std::fprintf(out, "{\n  \"bench\": \"runtime_overhead\",\n");
  std::fprintf(out, "  \"iterations\": %d,\n", kIters);
  std::fprintf(out, "  \"workload\": \"packet-counter\",\n");
  std::fprintf(out, "  \"ebpf_threaded_ns\": %.0f,\n", threaded_ns);
  std::fprintf(out, "  \"ebpf_legacy_ns\": %.0f,\n", legacy_ns);
  std::fprintf(out, "  \"safex_ns\": %.0f,\n", safex_ns);
  std::fprintf(out, "  \"threaded_vs_legacy_speedup\": %.2f\n}\n",
               threaded_ns > 0 ? legacy_ns / threaded_ns : 0.0);
  std::fclose(out);
  std::printf(
      "runtime_overhead: wrote %s (threaded %.0f ns, legacy %.0f ns, "
      "safex %.0f ns per invocation)\n",
      path, threaded_ns, legacy_ns, safex_ns);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return RunJson(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

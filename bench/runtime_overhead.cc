// B-RUN — runtime-mechanism overhead ablation (§3.1): what do the watchdog,
// cleanup registry and protection domain cost per invocation, and how does
// a safex extension compare against the interpreted and JITed eBPF
// equivalent of the same workload (a packet counter)? Host wall-time is
// what google-benchmark reports; the simulated-time accounting is identical
// across variants by construction.
#include <benchmark/benchmark.h>

#include "bench/benchutil.h"
#include "src/analysis/workloads.h"

namespace {

struct PacketRig : benchutil::Rig {
  PacketRig() {
    map_fd = benchutil::MustCreateArrayMap(*this, "counters", 8, 4);
    xbase::u8 payload[64] = {};
    payload[12] = 2;  // "protocol" byte the filter reads
    auto skb_result = kernel.net().CreateSkBuff(kernel.mem(), payload);
    skb = skb_result.ok() ? skb_result.value() : simkern::SkBuff{};
  }

  int map_fd = -1;
  simkern::SkBuff skb;
};

class PacketCounterExt : public safex::Extension {
 public:
  explicit PacketCounterExt(int map_fd) : map_fd_(map_fd) {}
  xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
    auto packet = ctx.Packet();
    XB_RETURN_IF_ERROR(packet.status());
    if (packet.value().size() < 14) {
      return xbase::u64{2};
    }
    auto proto = packet.value().ReadU8(12);
    XB_RETURN_IF_ERROR(proto.status());
    auto map = ctx.Map(map_fd_);
    XB_RETURN_IF_ERROR(map.status());
    auto slot = map.value().LookupIndex(proto.value() & 3);
    XB_RETURN_IF_ERROR(slot.status());
    auto count = slot.value().ReadU64(0);
    XB_RETURN_IF_ERROR(count.status());
    XB_RETURN_IF_ERROR(slot.value().WriteU64(0, count.value() + 1));
    return xbase::u64{2};  // XDP_PASS
  }

 private:
  int map_fd_;
};

void BM_EbpfInterpreterPacketCounter(benchmark::State& state) {
  PacketRig rig;
  auto prog = analysis::BuildPacketCounter(rig.map_fd);
  auto id = rig.loader.Load(prog.value());
  if (!id.ok()) {
    state.SkipWithError(id.status().ToString().c_str());
    return;
  }
  auto loaded = rig.loader.Find(id.value());
  for (auto _ : state) {
    auto result = ebpf::Execute(rig.bpf, *loaded.value(),
                                rig.skb.meta_addr, {}, &rig.loader);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EbpfInterpreterPacketCounter);

void BM_SafexPacketCounter(benchmark::State& state) {
  PacketRig rig;
  PacketCounterExt ext(rig.map_fd);
  safex::InvokeOptions opts;
  opts.skb_meta = rig.skb.meta_addr;
  const safex::CapSet caps = {safex::Capability::kPacketAccess,
                              safex::Capability::kMapAccess};
  for (auto _ : state) {
    auto outcome = rig.safex_runtime->Invoke(ext, caps, opts);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_SafexPacketCounter);

// Ablations: empty invocation with mechanisms individually exercised.
void BM_SafexInvokeEmpty(benchmark::State& state) {
  benchutil::Rig rig;
  struct Nop : safex::Extension {
    xbase::Result<xbase::u64> Run(safex::Ctx&) override {
      return xbase::u64{0};
    }
  } ext;
  for (auto _ : state) {
    auto outcome = rig.safex_runtime->Invoke(ext, {}, {});
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_SafexInvokeEmpty);

void BM_SafexCleanupHeavy(benchmark::State& state) {
  benchutil::Rig rig;
  struct AllocHeavy : safex::Extension {
    xbase::s64 n;
    explicit AllocHeavy(xbase::s64 count) : n(count) {}
    xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
      for (xbase::s64 i = 0; i < n; ++i) {
        auto chunk = ctx.Alloc(32);
        XB_RETURN_IF_ERROR(chunk.status());
      }
      return xbase::u64{0};  // all freed by the cleanup registry
    }
  } ext(state.range(0));
  const safex::CapSet caps = {safex::Capability::kDynAlloc};
  for (auto _ : state) {
    auto outcome = rig.safex_runtime->Invoke(ext, caps, {});
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["cleanups_per_invoke"] =
      static_cast<double>(state.range(0));
}
BENCHMARK(BM_SafexCleanupHeavy)->Arg(1)->Arg(16)->Arg(63);

void BM_SafexWatchdogFire(benchmark::State& state) {
  benchutil::Rig rig;
  struct Spin : safex::Extension {
    xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
      for (;;) {
        XB_RETURN_IF_ERROR(ctx.Tick());
      }
    }
  } ext;
  safex::InvokeOptions opts;
  opts.watchdog_budget_ns = 10'000;  // fires after ~10k ticks
  for (auto _ : state) {
    auto outcome = rig.safex_runtime->Invoke(ext, {}, opts);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_SafexWatchdogFire);

// Reference acquire/release through RAII vs the cleanup registry.
void BM_SafexSockRefScope(benchmark::State& state) {
  benchutil::Rig rig;
  struct Lookup : safex::Extension {
    xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
      auto sock = ctx.LookupTcp(
          simkern::SockTuple{0x0a000001, 0x0a000002, 8080, 40000});
      XB_RETURN_IF_ERROR(sock.status());
      return static_cast<xbase::u64>(sock.value().src_port());
    }
  } ext;
  const safex::CapSet caps = {safex::Capability::kSockLookup};
  for (auto _ : state) {
    auto outcome = rig.safex_runtime->Invoke(ext, caps, {});
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_SafexSockRefScope);

}  // namespace

BENCHMARK_MAIN();

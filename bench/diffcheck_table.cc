// DIFFCHECK — the differential oracle artifact: every injectable defect
// from ebpf/fault.h, its paired exploit, the clean and broken verifier
// verdicts, and whether the verifier-independent staticcheck analysis
// flags the program anyway. The YES rows are mis-verifications caught by
// cross-checking two analyses that share no code; the "no" rows with an
// accepting buggy verifier are the paper's argument that bytecode
// analysis alone (either one!) cannot carry the safety case.
#include <cstdio>

#include "bench/benchutil.h"
#include "src/analysis/diffcheck.h"

int main() {
  benchutil::Title(
      "Differential oracle: broken verifier vs independent staticcheck");
  auto report = analysis::RunDiffCheck();
  if (!report.ok()) {
    std::fprintf(stderr, "diffcheck failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::fputs(
      analysis::FormatDiffTable(report.value(), /*machine_readable=*/true)
          .c_str(),
      stdout);
  benchutil::Note(
      "cleanV/buggyV: verifier verdict without/with the defect injected; "
      "caught: staticcheck reports an error-severity finding");
  benchutil::Note(
      "helper-internal defects are below every bytecode analysis; only "
      "the program-visible rows can ever be caught");
  return 0;
}

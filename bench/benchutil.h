// Shared plumbing for the reproduction benches: a standard experiment rig
// (kernel + eBPF stack + safex runtime with an enrolled signing key) and
// small table-printing helpers so every bench emits the same layout the
// paper's tables/figures use.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "src/core/loader.h"
#include "src/core/toolchain.h"
#include "src/ebpf/interp.h"
#include "src/ebpf/loader.h"

namespace benchutil {

struct Rig {
  explicit Rig(simkern::KernelConfig config = {})
      : kernel(config), bpf(kernel), loader(bpf) {
    if (!kernel.BootstrapWorkload().ok()) {
      std::fprintf(stderr, "rig: bootstrap failed\n");
    }
    auto runtime = safex::Runtime::Create(kernel, bpf);
    if (runtime.ok()) {
      safex_runtime = std::move(runtime).value();
      signing_key = std::make_unique<crypto::SigningKey>(
          crypto::SigningKey::FromPassphrase("bench-vendor", "bench"));
      (void)safex_runtime->keyring().Enroll(*signing_key);
      safex_runtime->keyring().Seal();
      ext_loader = std::make_unique<safex::ExtLoader>(*safex_runtime);
    }
  }

  simkern::Kernel kernel;
  ebpf::Bpf bpf;
  ebpf::Loader loader;
  std::unique_ptr<safex::Runtime> safex_runtime;
  std::unique_ptr<crypto::SigningKey> signing_key;
  std::unique_ptr<safex::ExtLoader> ext_loader;
};

inline void Title(const std::string& text) {
  std::printf("\n=== %s ===\n", text.c_str());
}

inline void Rule(int width = 78) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

inline void Note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

// Creates an array map of the given geometry, exiting on failure.
inline int MustCreateArrayMap(Rig& rig, const std::string& name,
                              xbase::u32 value_size, xbase::u32 entries) {
  ebpf::MapSpec spec;
  spec.type = ebpf::MapType::kArray;
  spec.key_size = 4;
  spec.value_size = value_size;
  spec.max_entries = entries;
  spec.name = name;
  auto fd = rig.bpf.maps().Create(spec);
  if (!fd.ok()) {
    std::fprintf(stderr, "map create failed: %s\n",
                 fd.status().ToString().c_str());
    std::exit(1);
  }
  return fd.value();
}

}  // namespace benchutil

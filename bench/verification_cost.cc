// B-VER — quantifies §2.1 "Verification is expensive": verification cost
// scales with program size and path count (the verifier simulates every
// execution path), and the limits that keep it tractable are exactly the
// expressiveness restrictions the paper complains about. The comparator is
// the safex load path: one signature check + import fixup, independent of
// program size or shape.
//
// `verification_cost --json PATH` skips the timing benchmarks and instead
// writes the relational cost study (BENCH_relational.json): verifier
// explored-state counts vs staticcheck fixpoint iterations on the
// branch-diamond and spill-heavy families, with staticcheck run both with
// and without the zone/memory domains so the precision and cost of
// relational reasoning are visible per family.
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/benchutil.h"
#include "src/analysis/workloads.h"
#include "src/ebpf/verifier.h"
#include "src/staticcheck/check.h"
#include "src/xbase/strfmt.h"

namespace {

ebpf::VerifyOptions DefaultVerifyOptions(benchutil::Rig& rig) {
  ebpf::VerifyOptions opts;
  opts.version = rig.kernel.version();
  opts.privileged = true;
  opts.faults = &rig.bpf.faults();
  return opts;
}

void BM_VerifyStraightLine(benchmark::State& state) {
  benchutil::Rig rig;
  auto prog = analysis::BuildStraightLine(
      static_cast<xbase::u32>(state.range(0)));
  const auto opts = DefaultVerifyOptions(rig);
  xbase::u64 insns = 0;
  for (auto _ : state) {
    auto result =
        ebpf::Verify(prog.value(), rig.bpf.maps(), rig.bpf.helpers(), opts);
    insns = result.ok() ? result.value().stats.insns_processed : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["insns_processed"] = static_cast<double>(insns);
}
BENCHMARK(BM_VerifyStraightLine)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);

void BM_VerifyBranchDiamonds(benchmark::State& state) {
  benchutil::Rig rig;
  auto prog = analysis::BuildBranchDiamonds(
      static_cast<xbase::u32>(state.range(0)));
  const auto opts = DefaultVerifyOptions(rig);
  xbase::u64 states_explored = 0;
  xbase::u64 insns = 0;
  bool accepted = true;
  for (auto _ : state) {
    auto result =
        ebpf::Verify(prog.value(), rig.bpf.maps(), rig.bpf.helpers(), opts);
    accepted = result.ok();
    if (result.ok()) {
      states_explored = result.value().stats.states_explored;
      insns = result.value().stats.insns_processed;
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths_explored"] = static_cast<double>(states_explored);
  state.counters["insns_processed"] = static_cast<double>(insns);
  state.counters["accepted"] = accepted ? 1 : 0;
}
// 2^20 paths exceeds the 1M insn budget: the verifier gives up — a correct
// program rejected purely for its shape (the paper's scalability wall).
BENCHMARK(BM_VerifyBranchDiamonds)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_VerifyCountedLoop(benchmark::State& state) {
  benchutil::Rig rig;
  auto prog = analysis::BuildCountedLoop(
      static_cast<xbase::u32>(state.range(0)));
  const auto opts = DefaultVerifyOptions(rig);
  xbase::u64 insns = 0;
  bool accepted = true;
  for (auto _ : state) {
    auto result =
        ebpf::Verify(prog.value(), rig.bpf.maps(), rig.bpf.helpers(), opts);
    accepted = result.ok();
    if (result.ok()) {
      insns = result.value().stats.insns_processed;
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["insns_processed"] = static_cast<double>(insns);
  state.counters["accepted"] = accepted ? 1 : 0;
}
// The verifier walks every loop iteration: cost is linear in the trip
// count even though the program is 8 instructions long. 300000 iterations
// blow the budget.
BENCHMARK(BM_VerifyCountedLoop)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(300000);

// The safex comparator: signature validation + load-time fixup. Constant,
// regardless of what the extension does.
void BM_SafexSignedLoad(benchmark::State& state) {
  benchutil::Rig rig;
  safex::Toolchain toolchain(*rig.signing_key);
  safex::ExtensionManifest manifest;
  manifest.name = "bench-ext";
  manifest.version = "1.0";
  manifest.caps = {safex::Capability::kMapAccess,
                   safex::Capability::kTracing};
  manifest.imports = {"kcrate.map_lookup", "kcrate.map_update",
                      "kcrate.trace"};
  // Code identity scaled with the "program size" arg: hashing is the only
  // size-dependent cost in the whole load path.
  std::vector<xbase::u8> code(static_cast<size_t>(state.range(0)) * 8, 0xab);
  auto artifact = toolchain.Build(
      manifest,
      []() {
        struct Nop : safex::Extension {
          xbase::Result<xbase::u64> Run(safex::Ctx&) override {
            return xbase::u64{0};
          }
        };
        return std::make_unique<Nop>();
      },
      code);
  for (auto _ : state) {
    auto id = rig.ext_loader->Load(artifact.value());
    benchmark::DoNotOptimize(id);
  }
}
BENCHMARK(BM_SafexSignedLoad)->Arg(64)->Arg(4096)->Arg(32768);

// Toolchain-side cost (runs in userspace, off the kernel's critical path).
void BM_SafexToolchainBuild(benchmark::State& state) {
  benchutil::Rig rig;
  safex::Toolchain toolchain(*rig.signing_key);
  safex::ExtensionManifest manifest;
  manifest.name = "bench-ext";
  manifest.version = "1.0";
  std::vector<xbase::u8> code(static_cast<size_t>(state.range(0)) * 8, 0xab);
  for (auto _ : state) {
    auto artifact = toolchain.Build(
        manifest,
        []() {
          struct Nop : safex::Extension {
            xbase::Result<xbase::u64> Run(safex::Ctx&) override {
              return xbase::u64{0};
            }
          };
          return std::make_unique<Nop>();
        },
        code);
    benchmark::DoNotOptimize(artifact);
  }
}
BENCHMARK(BM_SafexToolchainBuild)->Arg(64)->Arg(32768);

// ---- relational cost study (--json) ----------------------------------------

struct RelCostRow {
  std::string family;
  xbase::u32 param = 0;
  xbase::u32 insns = 0;
  // Verifier: path-sensitive exploration.
  bool verifier_accepts = false;
  xbase::u64 states_explored = 0;
  xbase::u64 insns_processed = 0;
  // staticcheck with zones + memory domain.
  bool rel_complete = false;
  xbase::u32 rel_iterations = 0;
  xbase::usize rel_errors = 0;
  xbase::usize rel_warnings = 0;
  // staticcheck intervals only (enable_relational = false).
  bool intv_complete = false;
  xbase::u32 intv_iterations = 0;
  xbase::usize intv_errors = 0;
  xbase::usize intv_warnings = 0;
};

xbase::Result<RelCostRow> MeasureRelCost(
    const std::string& family, xbase::u32 param,
    xbase::Result<ebpf::Program> (*build)(xbase::u32, int)) {
  benchutil::Rig rig;
  const int fd = benchutil::MustCreateArrayMap(rig, "relcost", 64, 4);
  XB_ASSIGN_OR_RETURN(ebpf::Program prog, build(param, fd));

  RelCostRow row;
  row.family = family;
  row.param = param;
  row.insns = static_cast<xbase::u32>(prog.insns.size());

  ebpf::VerifyOptions vopts;
  vopts.version = rig.kernel.version();
  vopts.privileged = true;
  vopts.faults = &rig.bpf.faults();
  auto verdict = ebpf::Verify(prog, rig.bpf.maps(), rig.bpf.helpers(), vopts);
  row.verifier_accepts = verdict.ok();
  if (verdict.ok()) {
    row.states_explored = verdict.value().stats.states_explored;
    row.insns_processed = verdict.value().stats.insns_processed;
  }

  for (const bool relational : {true, false}) {
    staticcheck::CheckOptions copts;
    copts.maps = &rig.bpf.maps();
    copts.helpers = &rig.bpf.helpers();
    copts.callgraph = &rig.kernel.callgraph();
    copts.enable_relational = relational;
    XB_ASSIGN_OR_RETURN(staticcheck::Report report,
                        staticcheck::RunChecks(prog, copts));
    if (relational) {
      row.rel_complete = report.analysis_complete;
      row.rel_iterations = report.dataflow_iterations;
      row.rel_errors = report.errors();
      row.rel_warnings = report.findings.size() - report.errors();
    } else {
      row.intv_complete = report.analysis_complete;
      row.intv_iterations = report.dataflow_iterations;
      row.intv_errors = report.errors();
      row.intv_warnings = report.findings.size() - report.errors();
    }
  }
  return row;
}

xbase::Result<ebpf::Program> BuildRelGuardFamily(xbase::u32, int fd) {
  return analysis::BuildRelGuard(fd);
}

int RunRelCostStudy(const char* path) {
  struct Family {
    const char* name;
    xbase::Result<ebpf::Program> (*build)(xbase::u32, int);
    std::vector<xbase::u32> params;
  };
  // rel-guard is the precision witness (provable by zones, not by
  // intervals on either side); the two scaling families contrast the
  // verifier's per-path state count with staticcheck's per-join iteration
  // count on branch-heavy and spill-heavy shapes.
  const Family kFamilies[] = {
      {"rel-guard", BuildRelGuardFamily, {0}},
      {"reg-reg-diamonds", analysis::BuildRegRegDiamonds, {4, 8, 12, 16}},
      {"spill-heavy", analysis::BuildSpillHeavy, {4, 8, 16, 32}},
  };

  std::vector<RelCostRow> rows;
  for (const Family& family : kFamilies) {
    for (const xbase::u32 param : family.params) {
      auto row = MeasureRelCost(family.name, param, family.build);
      if (!row.ok()) {
        std::fprintf(stderr, "verification_cost: %s/%u: %s\n", family.name,
                     param, row.status().ToString().c_str());
        return 1;
      }
      rows.push_back(std::move(row).value());
    }
  }

  std::string json = "{\n  \"bench\": \"relational_cost\",\n  \"rows\": [\n";
  for (xbase::usize i = 0; i < rows.size(); ++i) {
    const RelCostRow& r = rows[i];
    json += xbase::StrFormat(
        "    {\"family\": \"%s\", \"param\": %u, \"insns\": %u, "
        "\"verifier\": {\"accepts\": %s, \"states_explored\": %llu, "
        "\"insns_processed\": %llu}, "
        "\"staticcheck_relational\": {\"complete\": %s, \"iterations\": %u, "
        "\"errors\": %zu, \"warnings\": %zu}, "
        "\"staticcheck_intervals\": {\"complete\": %s, \"iterations\": %u, "
        "\"errors\": %zu, \"warnings\": %zu}}%s\n",
        r.family.c_str(), r.param, r.insns,
        r.verifier_accepts ? "true" : "false",
        static_cast<unsigned long long>(r.states_explored),
        static_cast<unsigned long long>(r.insns_processed),
        r.rel_complete ? "true" : "false", r.rel_iterations, r.rel_errors,
        r.rel_warnings, r.intv_complete ? "true" : "false",
        r.intv_iterations, r.intv_errors, r.intv_warnings,
        i + 1 < rows.size() ? "," : "");
  }
  json += "  ]\n}\n";

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "verification_cost: cannot write %s\n", path);
    return 1;
  }
  out << json;
  std::printf("%-18s %5s %6s %9s %9s %12s %12s %9s %9s\n", "family", "param",
              "insns", "verifier", "states", "rel-iters", "intv-iters",
              "rel-err", "intv-err");
  for (const RelCostRow& r : rows) {
    std::printf("%-18s %5u %6u %9s %9llu %12u %12u %9zu %9zu\n",
                r.family.c_str(), r.param, r.insns,
                r.verifier_accepts ? "accept" : "reject",
                static_cast<unsigned long long>(r.states_explored),
                r.rel_iterations, r.intv_iterations, r.rel_errors,
                r.intv_errors);
  }
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--json") == 0) {
    return RunRelCostStudy(argv[2]);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// B-VER — quantifies §2.1 "Verification is expensive": verification cost
// scales with program size and path count (the verifier simulates every
// execution path), and the limits that keep it tractable are exactly the
// expressiveness restrictions the paper complains about. The comparator is
// the safex load path: one signature check + import fixup, independent of
// program size or shape.
#include <benchmark/benchmark.h>

#include "bench/benchutil.h"
#include "src/analysis/workloads.h"
#include "src/ebpf/verifier.h"

namespace {

ebpf::VerifyOptions DefaultVerifyOptions(benchutil::Rig& rig) {
  ebpf::VerifyOptions opts;
  opts.version = rig.kernel.version();
  opts.privileged = true;
  opts.faults = &rig.bpf.faults();
  return opts;
}

void BM_VerifyStraightLine(benchmark::State& state) {
  benchutil::Rig rig;
  auto prog = analysis::BuildStraightLine(
      static_cast<xbase::u32>(state.range(0)));
  const auto opts = DefaultVerifyOptions(rig);
  xbase::u64 insns = 0;
  for (auto _ : state) {
    auto result =
        ebpf::Verify(prog.value(), rig.bpf.maps(), rig.bpf.helpers(), opts);
    insns = result.ok() ? result.value().stats.insns_processed : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["insns_processed"] = static_cast<double>(insns);
}
BENCHMARK(BM_VerifyStraightLine)->Arg(64)->Arg(512)->Arg(4096)->Arg(32768);

void BM_VerifyBranchDiamonds(benchmark::State& state) {
  benchutil::Rig rig;
  auto prog = analysis::BuildBranchDiamonds(
      static_cast<xbase::u32>(state.range(0)));
  const auto opts = DefaultVerifyOptions(rig);
  xbase::u64 states_explored = 0;
  xbase::u64 insns = 0;
  bool accepted = true;
  for (auto _ : state) {
    auto result =
        ebpf::Verify(prog.value(), rig.bpf.maps(), rig.bpf.helpers(), opts);
    accepted = result.ok();
    if (result.ok()) {
      states_explored = result.value().stats.states_explored;
      insns = result.value().stats.insns_processed;
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths_explored"] = static_cast<double>(states_explored);
  state.counters["insns_processed"] = static_cast<double>(insns);
  state.counters["accepted"] = accepted ? 1 : 0;
}
// 2^20 paths exceeds the 1M insn budget: the verifier gives up — a correct
// program rejected purely for its shape (the paper's scalability wall).
BENCHMARK(BM_VerifyBranchDiamonds)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_VerifyCountedLoop(benchmark::State& state) {
  benchutil::Rig rig;
  auto prog = analysis::BuildCountedLoop(
      static_cast<xbase::u32>(state.range(0)));
  const auto opts = DefaultVerifyOptions(rig);
  xbase::u64 insns = 0;
  bool accepted = true;
  for (auto _ : state) {
    auto result =
        ebpf::Verify(prog.value(), rig.bpf.maps(), rig.bpf.helpers(), opts);
    accepted = result.ok();
    if (result.ok()) {
      insns = result.value().stats.insns_processed;
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["insns_processed"] = static_cast<double>(insns);
  state.counters["accepted"] = accepted ? 1 : 0;
}
// The verifier walks every loop iteration: cost is linear in the trip
// count even though the program is 8 instructions long. 300000 iterations
// blow the budget.
BENCHMARK(BM_VerifyCountedLoop)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(300000);

// The safex comparator: signature validation + load-time fixup. Constant,
// regardless of what the extension does.
void BM_SafexSignedLoad(benchmark::State& state) {
  benchutil::Rig rig;
  safex::Toolchain toolchain(*rig.signing_key);
  safex::ExtensionManifest manifest;
  manifest.name = "bench-ext";
  manifest.version = "1.0";
  manifest.caps = {safex::Capability::kMapAccess,
                   safex::Capability::kTracing};
  manifest.imports = {"kcrate.map_lookup", "kcrate.map_update",
                      "kcrate.trace"};
  // Code identity scaled with the "program size" arg: hashing is the only
  // size-dependent cost in the whole load path.
  std::vector<xbase::u8> code(static_cast<size_t>(state.range(0)) * 8, 0xab);
  auto artifact = toolchain.Build(
      manifest,
      []() {
        struct Nop : safex::Extension {
          xbase::Result<xbase::u64> Run(safex::Ctx&) override {
            return xbase::u64{0};
          }
        };
        return std::make_unique<Nop>();
      },
      code);
  for (auto _ : state) {
    auto id = rig.ext_loader->Load(artifact.value());
    benchmark::DoNotOptimize(id);
  }
}
BENCHMARK(BM_SafexSignedLoad)->Arg(64)->Arg(4096)->Arg(32768);

// Toolchain-side cost (runs in userspace, off the kernel's critical path).
void BM_SafexToolchainBuild(benchmark::State& state) {
  benchutil::Rig rig;
  safex::Toolchain toolchain(*rig.signing_key);
  safex::ExtensionManifest manifest;
  manifest.name = "bench-ext";
  manifest.version = "1.0";
  std::vector<xbase::u8> code(static_cast<size_t>(state.range(0)) * 8, 0xab);
  for (auto _ : state) {
    auto artifact = toolchain.Build(
        manifest,
        []() {
          struct Nop : safex::Extension {
            xbase::Result<xbase::u64> Run(safex::Ctx&) override {
              return xbase::u64{0};
            }
          };
          return std::make_unique<Nop>();
        },
        code);
    benchmark::DoNotOptimize(artifact);
  }
}
BENCHMARK(BM_SafexToolchainBuild)->Arg(64)->Arg(32768);

}  // namespace

BENCHMARK_MAIN();

// TAB2 — reproduces Table 2: "Safety properties and the enforcement
// mechanisms of the proposed extension framework". Beyond printing the
// matrix, each row is demonstrated live: a hostile probe extension attempts
// the violation and the bench reports which mechanism stopped it. The
// paper's point — achieved "without restrictions on loop and program size"
// — is checked by the probes themselves being ordinary unbounded C++.
#include "bench/benchutil.h"
#include "src/analysis/matrix.h"
#include "src/core/hooks.h"
#include "src/xbase/strfmt.h"

namespace {

using safex::Capability;
using safex::Ctx;
using safex::InvokeOutcome;

class LambdaExt : public safex::Extension {
 public:
  using Body = std::function<xbase::Result<xbase::u64>(Ctx&)>;
  explicit LambdaExt(Body body) : body_(std::move(body)) {}
  xbase::Result<xbase::u64> Run(Ctx& ctx) override { return body_(ctx); }

 private:
  Body body_;
};

struct ProbeResult {
  std::string property;
  std::string mechanism_fired;
  bool contained = false;
};

ProbeResult RunProbe(const std::string& property, LambdaExt::Body body,
                     safex::CapSet caps) {
  benchutil::Rig rig;
  const int fd = benchutil::MustCreateArrayMap(rig, "probe", 8, 4);
  (void)fd;
  LambdaExt ext(std::move(body));
  const InvokeOutcome outcome = rig.safex_runtime->Invoke(ext, caps, {});
  ProbeResult result;
  result.property = property;
  result.contained = !rig.kernel.crashed();
  if (outcome.panicked) {
    result.mechanism_fired = outcome.panic_reason;
  } else if (!outcome.status.ok()) {
    result.mechanism_fired = "refused: " + outcome.status.message();
  } else if (outcome.cleanup.entries_run > 0) {
    result.mechanism_fired = xbase::StrFormat(
        "cleanup registry released %u leaked resource(s)",
        outcome.cleanup.entries_run);
  } else {
    result.mechanism_fired = "no violation possible through the API";
  }
  return result;
}

// The "Fault containment / availability" row needs a hook, not a single
// invocation: a supervised registry carries a persistent panicker next to a
// healthy policy, and the row reports whether the breaker quarantined the
// offender while the healthy attachment kept serving.
ProbeResult RunContainmentProbe() {
  benchutil::Rig rig;
  rig.safex_runtime->keyring().Seal();
  safex::Supervisor supervisor;
  safex::HookRegistryConfig hook_config;
  hook_config.supervisor = &supervisor;
  safex::HookRegistry hooks(rig.bpf, rig.loader, *rig.ext_loader,
                            hook_config);
  safex::Toolchain toolchain(*rig.signing_key);
  auto build = [&toolchain](const char* name, LambdaExt::Body body) {
    safex::ExtensionManifest manifest;
    manifest.name = name;
    manifest.version = "1";
    return toolchain.Build(
        manifest,
        [body]() { return std::make_unique<LambdaExt>(body); },
        std::span<const xbase::u8>());
  };
  auto crasher = build("crasher", [](Ctx& ctx) -> xbase::Result<xbase::u64> {
    ctx.Panic("always down");
    return xbase::u64{0};
  });
  auto healthy = build("healthy", [](Ctx&) -> xbase::Result<xbase::u64> {
    return xbase::u64{0};
  });
  const auto crasher_id = rig.ext_loader->Load(crasher.value()).value();
  const auto healthy_id = rig.ext_loader->Load(healthy.value()).value();
  const auto crasher_attachment =
      hooks.AttachExtension(safex::HookPoint::kSyscallEnter, crasher_id)
          .value();
  (void)hooks.AttachExtension(safex::HookPoint::kSyscallEnter, healthy_id);
  const simkern::Addr ctx = rig.kernel.mem()
                                .Map(64, simkern::MemPerm::kReadWrite,
                                     simkern::RegionKind::kKernelData,
                                     "tab2ctx")
                                .value();
  xbase::u32 healthy_served = 0;
  const int fires = 20;
  for (int i = 0; i < fires; ++i) {
    auto report = hooks.Fire(safex::HookPoint::kSyscallEnter, ctx);
    if (report.ok() && report.value().served > 0) {
      ++healthy_served;
    }
  }
  ProbeResult result;
  result.property = "Fault containment / availability";
  result.contained =
      !rig.kernel.crashed() &&
      supervisor.HealthOf(crasher_attachment) == safex::ExtHealth::kQuarantined &&
      healthy_served == fires;
  result.mechanism_fired = xbase::StrFormat(
      "breaker tripped after %llu failure(s): crasher %s, healthy policy "
      "served %u/%d fires",
      static_cast<unsigned long long>(supervisor.failures()),
      std::string(ExtHealthName(supervisor.HealthOf(crasher_attachment)))
          .c_str(),
      healthy_served, fires);
  return result;
}

}  // namespace

int main() {
  benchutil::Title("Table 2: safety properties and enforcement mechanisms");
  std::printf("%-36s %s\n", "Safety properties", "Enforcement");
  benchutil::Rule(64);
  for (const analysis::SafetyProperty& row : analysis::SafetyMatrix()) {
    std::printf("%-36s %s\n", row.property.c_str(),
                row.enforcement.c_str());
  }
  benchutil::Rule(64);

  benchutil::Title("Live probes (hostile extension per row)");
  std::vector<ProbeResult> probes;

  probes.push_back(RunProbe(
      "No arbitrary memory access",
      [](Ctx& ctx) -> xbase::Result<xbase::u64> {
        auto map = ctx.Map(3);
        XB_RETURN_IF_ERROR(map.status());
        auto value = map.value().LookupIndex(0);
        XB_RETURN_IF_ERROR(value.status());
        // 8-byte value, read at +4096: must die before touching memory.
        return value.value().ReadU64(4096).ok() ? 1 : 0;
      },
      {Capability::kMapAccess}));

  probes.push_back(RunProbe(
      "No arbitrary control-flow transfer",
      [](Ctx& ctx) -> xbase::Result<xbase::u64> {
        // There is nothing to probe: the crate has no jump primitive, no
        // function-pointer import, no way to name an address. The strongest
        // attempt is asking for memory the extension could overwrite code
        // with — which is the previous row's probe.
        (void)ctx;
        return xbase::u64{0};
      },
      {}));

  probes.push_back(RunProbe(
      "Type safety",
      [](Ctx& ctx) -> xbase::Result<xbase::u64> {
        // Use a capability outside the signed manifest: typed/capability
        // confusion is caught at the crate boundary.
        auto sock = ctx.LookupTcp(simkern::SockTuple{1, 2, 3, 4});
        return sock.ok() ? 1 : 0;
      },
      {Capability::kMapAccess}));  // kSockLookup deliberately missing

  probes.push_back(RunProbe(
      "Safe resource management",
      [](Ctx& ctx) -> xbase::Result<xbase::u64> {
        auto sock = ctx.LookupTcp(
            simkern::SockTuple{0x0a000001, 0x0a000002, 8080, 40000});
        XB_RETURN_IF_ERROR(sock.status());
        auto* leak = new safex::SockRef(std::move(sock).value());
        (void)leak;  // leaked on purpose; cleanup registry must cover it
        return xbase::u64{0};
      },
      {Capability::kSockLookup}));

  probes.push_back(RunProbe(
      "Termination",
      [](Ctx& ctx) -> xbase::Result<xbase::u64> {
        for (;;) {
          XB_RETURN_IF_ERROR(ctx.Tick());
        }
      },
      {}));

  probes.push_back(RunProbe(
      "Stack protection",
      [](Ctx& ctx) -> xbase::Result<xbase::u64> {
        std::function<xbase::Status(int)> recurse =
            [&](int depth) -> xbase::Status {
          XB_RETURN_IF_ERROR(ctx.EnterFrame());
          if (depth > 0) {
            XB_RETURN_IF_ERROR(recurse(depth - 1));
          }
          ctx.LeaveFrame();
          return xbase::Status::Ok();
        };
        XB_RETURN_IF_ERROR(recurse(1000));
        return xbase::u64{0};
      },
      {}));

  probes.push_back(RunContainmentProbe());

  std::printf("%-36s | %-9s | %s\n", "property probed", "kernel",
              "what stopped the violation");
  benchutil::Rule(110);
  for (const ProbeResult& probe : probes) {
    std::printf("%-36s | %-9s | %s\n", probe.property.c_str(),
                probe.contained ? "intact" : "CRASHED",
                probe.mechanism_fired.c_str());
  }
  benchutil::Rule(110);
  benchutil::Note("all probes are plain C++ with unbounded loops and "
                  "recursion — no program-size or loop restrictions were "
                  "needed to contain them (Table 2's closing claim)");
  return 0;
}

// E-TERM — reproduces the §2.2 "Termination" demonstration: nested bpf_loop
// gives a verified program "linear control over total runtime"; held inside
// the RCU read-side critical section this produces RCU stalls (the paper
// ran 800 s and extrapolates to millions of years with more nesting). The
// safex half shows the watchdog terminating the same workload in about a
// millisecond of simulated time, with every resource restored.
//
// Scaling note (EXPERIMENTS.md): the stall run charges simulated time at
// cost_multiplier=1000 so the 21-simulated-second stall threshold is
// reached in ~1e6 interpreted instructions instead of ~1e9. The linearity
// table below runs at multiplier 1 — the control the paper claims is
// measured unscaled.
#include <cmath>

#include "bench/benchutil.h"
#include "src/analysis/workloads.h"

namespace {

class BusyLoopExt : public safex::Extension {
 public:
  explicit BusyLoopExt(int map_fd) : map_fd_(map_fd) {}
  xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
    // The same shape as the exploit: unbounded iteration of map updates.
    auto map = ctx.Map(map_fd_);
    XB_RETURN_IF_ERROR(map.status());
    xbase::u8 value[8] = {};
    for (xbase::u64 i = 0;; ++i) {
      value[0] = static_cast<xbase::u8>(i);
      XB_RETURN_IF_ERROR(map.value().UpdateIndex(0, value));
    }
  }

 private:
  int map_fd_;
};

}  // namespace

int main() {
  benchutil::Title(
      "§2.2 Termination: linear runtime control via nested bpf_loop");
  std::printf("%-9s %-12s %16s %14s\n", "nesting", "iters/level",
              "insns executed", "sim time");
  benchutil::Rule(56);

  for (xbase::u32 nesting = 1; nesting <= 3; ++nesting) {
    for (xbase::u32 iters : {64u, 128u}) {
      benchutil::Rig rig;
      const int fd = benchutil::MustCreateArrayMap(rig, "loop", 8, 4);
      auto prog = analysis::BuildNestedLoopStall(fd, nesting, iters);
      auto id = rig.loader.Load(prog.value());
      if (!id.ok()) {
        std::printf("load failed: %s\n", id.status().ToString().c_str());
        continue;
      }
      auto loaded = rig.loader.Find(id.value());
      auto ctx = rig.kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                      simkern::RegionKind::kKernelData,
                                      "ctx");
      auto result = ebpf::Execute(rig.bpf, *loaded.value(), ctx.value(), {},
                                  &rig.loader);
      if (!result.ok()) {
        std::printf("run failed: %s\n", result.status().ToString().c_str());
        continue;
      }
      std::printf("%-9u %-12u %16llu %11.3f ms\n", nesting, iters,
                  static_cast<unsigned long long>(result.value().stats.insns),
                  static_cast<double>(
                      result.value().stats.sim_time_charged_ns) /
                      1e6);
    }
  }
  benchutil::Rule(56);
  benchutil::Note("runtime scales linearly in iters and exponentially in "
                  "nesting (iters^nesting) — the paper's 'linear control "
                  "over total runtime'");

  benchutil::Title("Driving it to an RCU stall (cost multiplier 1000)");
  {
    benchutil::Rig rig;
    const int fd = benchutil::MustCreateArrayMap(rig, "loop", 8, 4);
    // 3 levels x 256 iters = 16.7M inner updates at multiplier 1000:
    // crosses the 21 s stall threshold early in the run.
    auto prog = analysis::BuildNestedLoopStall(fd, 3, 256);
    auto id = rig.loader.Load(prog.value());
    auto loaded = rig.loader.Find(id.value());
    auto ctx = rig.kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                    simkern::RegionKind::kKernelData, "ctx");
    ebpf::ExecOptions opts;
    opts.cost_multiplier = 1000;
    opts.max_insns = 10'000'000;  // harness cap: enough to cross the stall
    auto result = ebpf::Execute(rig.bpf, *loaded.value(), ctx.value(), opts,
                                &rig.loader);
    const auto& stalls = rig.kernel.rcu().stalls();
    if (!stalls.empty()) {
      std::printf("RCU STALL DETECTED: read-side critical section held "
                  "%.1f simulated seconds by %s\n",
                  static_cast<double>(stalls[0].held_for_ns) / 1e9,
                  stalls[0].holder.c_str());
    } else {
      std::printf("no stall (unexpected): %s\n",
                  result.ok() ? "ran to completion"
                              : result.status().ToString().c_str());
    }
    std::printf("program state: still runnable — eBPF has no runtime kill "
                "mechanism; only the harness cap stopped the experiment\n");
    std::printf("extrapolation: at 256 iters/level, each extra nesting "
                "level multiplies runtime by 256; 9 levels ~ %.0e years of "
                "simulated runtime (paper: 'millions of years')\n",
                std::pow(256.0, 9) * 70e-9 / 3.15e7);
  }

  benchutil::Title("The same workload under safex");
  {
    benchutil::Rig rig;
    const int fd = benchutil::MustCreateArrayMap(rig, "loop", 8, 4);
    BusyLoopExt ext(fd);
    safex::InvokeOptions opts;  // default 1 ms watchdog
    auto outcome = rig.safex_runtime->Invoke(
        ext, {safex::Capability::kMapAccess}, opts);
    std::printf("watchdog verdict: %s after %.3f ms simulated "
                "(%llu crate calls)\n",
                outcome.panicked ? outcome.panic_reason.c_str() : "none",
                static_cast<double>(outcome.sim_time_ns) / 1e6,
                static_cast<unsigned long long>(outcome.crate_calls));
    std::printf("RCU stalls: %zu, kernel: %s, cleanup actions: %u\n",
                rig.kernel.rcu().stalls().size(),
                rig.kernel.crashed() ? "crashed" : "intact",
                outcome.cleanup.entries_run);
  }

  std::printf("\nPaper parity: eBPF runs unbounded (RCU stall at 21 s, "
              "linear control confirmed); safex terminates the identical "
              "workload at the watchdog budget, ~4 orders of magnitude "
              "before the stall threshold.\n");
  return 0;
}

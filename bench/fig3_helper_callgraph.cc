// FIG3 — reproduces Figure 3: "Call-graph complexity of each eBPF helper".
// Static reachability from every registered helper's entry function over the
// simulated kernel call graph (function pointers excluded — lower bounds,
// like the paper). The claims under test: helpers span four orders of
// magnitude of complexity; a majority call 30+ kernel functions; roughly a
// third call 500+; bpf_sys_bpf is the extreme outlier (paper: 4845 nodes).
#include "bench/benchutil.h"
#include "src/analysis/callgraph.h"

int main() {
  benchutil::Rig rig;
  benchutil::Title("Figure 3: call-graph complexity of each eBPF helper");

  const analysis::ComplexitySummary summary =
      analysis::AnalyzeHelperComplexity(rig.bpf.helpers(), rig.kernel);

  std::printf("helpers analyzed: %zu (paper: 249 in Linux 5.18; this "
              "kernel is a ~1:3 scale model)\n\n",
              summary.total_helpers);

  std::printf("Top 10 by unique call-graph nodes:\n");
  std::printf("  %-28s %10s\n", "helper", "nodes");
  benchutil::Rule(42);
  for (size_t i = 0; i < summary.helpers.size() && i < 10; ++i) {
    std::printf("  %-28s %10zu\n", summary.helpers[i].name.c_str(),
                summary.helpers[i].reachable_nodes);
  }

  std::printf("\nBottom 5 (trivial helpers):\n");
  for (size_t i = summary.helpers.size() >= 5 ? summary.helpers.size() - 5
                                              : 0;
       i < summary.helpers.size(); ++i) {
    std::printf("  %-28s %10zu\n", summary.helpers[i].name.c_str(),
                summary.helpers[i].reachable_nodes);
  }

  std::printf("\nDistribution (log-scale spread, as in the figure):\n");
  std::printf("  min=%zu  median=%zu  max=%zu\n", summary.min_nodes,
              summary.median_nodes, summary.max_nodes);
  std::printf("  >=30 nodes : %5.1f %%   (paper: 52.2 %%)\n",
              summary.fraction_ge_30 * 100.0);
  std::printf("  >=500 nodes: %5.1f %%   (paper: 34.5 %%)\n",
              summary.fraction_ge_500 * 100.0);
  std::printf("  heaviest helper: %s (paper: bpf_sys_bpf, 4845 nodes)\n",
              summary.helpers.empty() ? "-"
                                      : summary.helpers[0].name.c_str());
  return 0;
}

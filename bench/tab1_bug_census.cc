// TAB1 — reproduces Table 1: "Bug statistics in eBPF helper functions and
// verifier in years of 2021 and 2022" (40 bugs: 18 helper, 22 verifier),
// then goes beyond the census: for one representative bug per implemented
// class, it *runs* the exploit twice — defect absent (the check/fix holds)
// and defect injected (the verified program violates safety) — so every
// row of the table is backed by an executable demonstration.
#include <functional>

#include "bench/benchutil.h"
#include "src/analysis/bugdb.h"
#include "src/analysis/workloads.h"
#include "src/ebpf/verifier.h"
#include "src/xbase/strfmt.h"

namespace {

using benchutil::Rig;

struct ExploitRow {
  std::string fault_id;
  std::string without_defect;
  std::string with_defect;
};

std::string LoadAndRunVerdict(Rig& rig, const ebpf::Program& prog,
                              bool privileged = true) {
  ebpf::LoadOptions opts;
  opts.privileged = privileged;
  auto id = rig.loader.Load(prog, opts);
  if (!id.ok()) {
    if (id.status().code() == xbase::Code::kInternal) {
      return "VERIFIER CRASHED: " + id.status().message().substr(0, 48);
    }
    return "verifier rejected";
  }
  auto loaded = rig.loader.Find(id.value());
  auto ctx = rig.kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                  simkern::RegionKind::kKernelData, "ctx");
  auto result =
      ebpf::Execute(rig.bpf, *loaded.value(), ctx.value(), {}, &rig.loader);
  if (rig.kernel.crashed()) {
    return "LOADED; kernel OOPSED at runtime";
  }
  if (!result.ok()) {
    return "LOADED; runtime error: " + result.status().ToString().substr(0, 40);
  }
  return xbase::StrFormat("LOADED; ran, r0=0x%llx",
                          static_cast<unsigned long long>(result.value().r0));
}

// Runs `build` under a fresh rig with/without `fault` and annotates side
// effects via `post` (refcount audits etc).
ExploitRow RunExploit(
    std::string_view fault, const std::function<xbase::Result<ebpf::Program>(
                                Rig&)>& build,
    const std::function<std::string(Rig&, const std::string&)>& post,
    bool privileged = true) {
  ExploitRow row;
  row.fault_id = std::string(fault);
  for (const bool inject : {false, true}) {
    simkern::KernelConfig config;
    config.unprivileged_bpf_disabled = false;  // let the exploit try
    Rig rig(config);
    if (inject) {
      rig.bpf.faults().Inject(fault);
      // Map-level defects are toggled on the map object.
    }
    auto prog = build(rig);
    std::string verdict = prog.ok()
                              ? LoadAndRunVerdict(rig, prog.value(),
                                                  privileged)
                              : "build failed";
    verdict = post(rig, verdict);
    (inject ? row.with_defect : row.without_defect) = verdict;
  }
  return row;
}

std::string AuditRefs(Rig& rig, const std::string& verdict,
                      const simkern::RefcountSnapshot& before) {
  const auto leaks = rig.kernel.objects().DiffSince(before);
  if (!leaks.empty()) {
    return verdict + xbase::StrFormat(" + %zu REFCOUNT LEAK(S)",
                                      leaks.size());
  }
  return verdict + ", refcounts balanced";
}

}  // namespace

int main() {
  benchutil::Title("Table 1: bug statistics (2021-2022), census");
  std::printf("%-28s %6s %7s %9s\n", "Vulnerabilities/Bugs", "Total",
              "Helper", "Verifier");
  benchutil::Rule(54);
  const auto census = analysis::BugCensus();
  // Print in the paper's row order.
  const char* kOrder[] = {"Arbitrary read/write",
                          "Deadlock/Hang",
                          "Integer overflow/underflow",
                          "Kernel pointer leak",
                          "Memory leak",
                          "Null-pointer dereference",
                          "Out-of-bound access",
                          "Reference count leak",
                          "Use-after-free",
                          "Misc",
                          "Total"};
  for (const char* category : kOrder) {
    const auto it = census.find(category);
    if (it != census.end()) {
      std::printf("%-28s %6d %7d %9d\n", category, it->second.total,
                  it->second.helper, it->second.verifier);
    }
  }
  benchutil::Rule(54);
  benchutil::Note("paper: 40 total, 18 helper, 22 verifier — matched from "
                  "the same commit-log taxonomy");

  benchutil::Title("Executable evidence: one injected defect per bug class");
  std::printf("%-38s | %-28s | %s\n", "injected defect", "defect absent",
              "defect present");
  benchutil::Rule(118);

  std::vector<ExploitRow> rows;

  // Arbitrary R/W via verifier bounds bug (CVE-2022-23222 class).
  rows.push_back(RunExploit(
      ebpf::kFaultVerifierScalarBounds,
      [](Rig& rig) {
        const int fd = benchutil::MustCreateArrayMap(rig, "vic", 8, 4);
        return analysis::BuildArbitraryReadExploit(fd, 4096);
      },
      [](Rig&, const std::string& verdict) { return verdict; }));

  // Kernel pointer leak (unprivileged return of a map-value address).
  rows.push_back(RunExploit(
      ebpf::kFaultVerifierPtrLeak,
      [](Rig& rig) {
        const int fd = benchutil::MustCreateArrayMap(rig, "vic", 8, 4);
        return analysis::BuildPtrLeakExploit(fd);
      },
      [](Rig& rig, const std::string& verdict) {
        if (verdict.find("r0=0xffff") != std::string::npos) {
          (void)rig;
          return verdict + "  <-- KERNEL ADDRESS LEAKED";
        }
        return verdict;
      },
      /*privileged=*/false));

  // OOB via jmp32 bounds-propagation bug (commit 3844d153 class).
  rows.push_back(RunExploit(
      ebpf::kFaultVerifierJmp32Bounds,
      [](Rig& rig) {
        const int fd = benchutil::MustCreateArrayMap(rig, "vic", 64, 4);
        return analysis::BuildJmp32BoundsExploit(fd);
      },
      [](Rig&, const std::string& verdict) { return verdict; }));

  // Deadlock via missing spin-lock tracking.
  rows.push_back(RunExploit(
      ebpf::kFaultVerifierSpinLock,
      [](Rig& rig) {
        const int fd = benchutil::MustCreateArrayMap(rig, "locked", 16, 1);
        return analysis::BuildDoubleSpinLock(fd);
      },
      [](Rig&, const std::string& verdict) { return verdict; }));

  // Verifier's own use-after-free (loop inlining).
  rows.push_back(RunExploit(
      ebpf::kFaultVerifierLoopInlineUaf,
      [](Rig& rig) {
        const int fd = benchutil::MustCreateArrayMap(rig, "m", 8, 4);
        return analysis::BuildNestedLoopStall(fd, 1, 4);
      },
      [](Rig&, const std::string& verdict) { return verdict; }));

  // Reference leak via disabled reference tracking.
  {
    simkern::RefcountSnapshot before;
    rows.push_back(RunExploit(
        ebpf::kFaultVerifierRefTracking,
        [&before](Rig& rig) {
          before = rig.kernel.objects().Snapshot();
          return analysis::BuildSkLookupNoRelease();
        },
        [&before](Rig& rig, const std::string& verdict) {
          return AuditRefs(rig, verdict, before);
        }));
  }

  // Helper bug: bpf_get_task_stack refcount leak on the error path.
  {
    simkern::RefcountSnapshot before;
    rows.push_back(RunExploit(
        ebpf::kFaultHelperTaskStackLeak,
        [&before](Rig& rig) {
          before = rig.kernel.objects().Snapshot();
          return analysis::BuildGetTaskStackErrorPath();
        },
        [&before](Rig& rig, const std::string& verdict) {
          return AuditRefs(rig, verdict, before);
        }));
  }

  // Helper bug: sk_lookup leaks a request_sock even in a CORRECT program.
  {
    simkern::RefcountSnapshot before;
    rows.push_back(RunExploit(
        ebpf::kFaultHelperSkLookupLeak,
        [&before](Rig& rig) {
          before = rig.kernel.objects().Snapshot();
          return analysis::BuildSkLookupWithRelease();
        },
        [&before](Rig& rig, const std::string& verdict) {
          return AuditRefs(rig, verdict, before);
        }));
  }

  // Helper bug: task_storage NULL owner dereference.
  rows.push_back(RunExploit(
      ebpf::kFaultHelperTaskStorageNull,
      [](Rig& rig) {
        ebpf::MapSpec spec;
        spec.type = ebpf::MapType::kTaskStorage;
        spec.key_size = 4;
        spec.value_size = 16;
        spec.max_entries = 16;
        spec.name = "tstor";
        auto fd = rig.bpf.maps().Create(spec);
        return analysis::BuildTaskStorageNullOwner(fd.value());
      },
      [](Rig&, const std::string& verdict) { return verdict; }));

  // Helper bug: array map index overflow (corruption witness 0x41414141).
  rows.push_back(RunExploit(
      ebpf::kFaultHelperArrayOverflow,
      [](Rig& rig) {
        const int fd =
            benchutil::MustCreateArrayMap(rig, "big", 8, 8200);
        auto map = rig.bpf.maps().Find(fd);
        auto* array = dynamic_cast<ebpf::ArrayMap*>(map.value());
        array->InjectIndexOverflow(
            rig.bpf.faults().IsActive(ebpf::kFaultHelperArrayOverflow));
        return analysis::BuildArrayOverflowExploit(fd, 8192);
      },
      [](Rig&, const std::string& verdict) {
        if (verdict.find("0x41414141") != std::string::npos) {
          return verdict + "  <-- ELEMENT 0 CORRUPTED";
        }
        return verdict;
      }));

  // JIT bug: branch displacement off by one (CVE-2021-29154 class).
  rows.push_back(RunExploit(
      ebpf::kFaultJitBranchOffByOne,
      [](Rig&) { return analysis::BuildJitHijackVictim(); },
      [](Rig&, const std::string& verdict) { return verdict; }));

  // Verifier memory leak: measured on the verifier's own bookkeeping.
  {
    ExploitRow row;
    row.fault_id = std::string(ebpf::kFaultVerifierStateLeak);
    for (const bool inject : {false, true}) {
      Rig rig;
      if (inject) {
        rig.bpf.faults().Inject(ebpf::kFaultVerifierStateLeak);
      }
      auto prog = analysis::BuildBranchDiamonds(8);
      ebpf::VerifyOptions vopts;
      vopts.version = rig.kernel.version();
      vopts.faults = &rig.bpf.faults();
      auto verify =
          ebpf::Verify(prog.value(), rig.bpf.maps(), rig.bpf.helpers(),
                       vopts);
      std::string verdict =
          verify.ok()
              ? xbase::StrFormat(
                    "verified; %llu state object(s) leaked",
                    static_cast<unsigned long long>(
                        verify.value().stats.states_leaked))
              : "verify failed";
      (inject ? row.with_defect : row.without_defect) = verdict;
    }
    rows.push_back(row);
  }

  for (const ExploitRow& row : rows) {
    std::printf("%-38s | %-28s | %s\n", row.fault_id.c_str(),
                row.without_defect.c_str(), row.with_defect.c_str());
  }
  benchutil::Rule(118);
  benchutil::Note("every class: defect absent -> contained/rejected; "
                  "defect present -> a *verified* program violates the "
                  "property the verifier promised");
  return 0;
}

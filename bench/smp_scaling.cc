// SMP SCALING — the tentpole's throughput curve. The same seeded
// mixed-tenant event stream (trafficgen: ~70% packet fires, ~10% sched
// ticks, ~10% LSM opens, ~10% map churn) runs against kernels with 1, 2,
// 4, 8 and 16 simulated CPUs, each CPU a real thread with its own clock,
// runqueue, RCU reader slot and per-CPU map slots. Aggregate throughput is
// measured in *simulated* time — events divided by the slowest CPU's clock
// advance (the makespan) — so the curve is a property of the simulated
// machine, not of how many host cores the CI runner happens to have. Wall
// time and wall-clock fire-latency tails (p50/p99/p999) are reported per
// point alongside it.
//
// Default: human-readable table. With `--json PATH` it also writes the
// BENCH_smp.json CI artifact and exits nonzero if a gate fails:
//   - aggregate throughput at 4 CPUs must be >= 3.0x the 1-CPU run;
//   - the p999 fire-latency tail at the 1- and 4-CPU points must stay
//     under 5 ms (the 8/16-CPU tails are reported, not gated — on a
//     small CI host 16 worker threads legitimately preempt each other);
//   - every point's per-CPU counter sum must match its packet fire count
//     exactly (RunTraffic already fails the run otherwise).
#include <cstring>
#include <vector>

#include "bench/benchutil.h"
#include "src/analysis/trafficgen.h"
#include "src/xbase/strfmt.h"

namespace {

constexpr xbase::u64 kSeed = 42;
constexpr xbase::u64 kEvents = 20000;
constexpr xbase::u32 kCpuPoints[] = {1, 2, 4, 8, 16};
constexpr double kMinSpeedupAt4 = 3.0;
constexpr xbase::u64 kP999CeilingNs = 5'000'000;

struct Point {
  xbase::u32 cpus = 0;
  analysis::TrafficReport report;
  double speedup = 0;  // vs the 1-CPU point, in simulated time
};

double SpeedupAt(const std::vector<Point>& points, xbase::u32 cpus) {
  for (const Point& point : points) {
    if (point.cpus == cpus) {
      return point.speedup;
    }
  }
  return 0;
}

bool TailGated(const Point& point) { return point.cpus <= 4; }

bool GatePassed(const std::vector<Point>& points, std::string* why) {
  for (const Point& point : points) {
    if (!point.report.ok) {
      *why = xbase::StrFormat("%u-cpu run failed: %s", point.cpus,
                              point.report.failure.c_str());
      return false;
    }
    if (TailGated(point) && point.report.fire_latency.p999 > kP999CeilingNs) {
      *why = xbase::StrFormat(
          "%u-cpu p999 fire latency %llu ns exceeds the %llu ns ceiling",
          point.cpus,
          static_cast<unsigned long long>(point.report.fire_latency.p999),
          static_cast<unsigned long long>(kP999CeilingNs));
      return false;
    }
  }
  const double speedup4 = SpeedupAt(points, 4);
  if (speedup4 < kMinSpeedupAt4) {
    *why = xbase::StrFormat(
        "aggregate throughput at 4 CPUs is %.2fx the 1-CPU run (gate %.1fx)",
        speedup4, kMinSpeedupAt4);
    return false;
  }
  return true;
}

int WriteJson(const char* path, const std::vector<Point>& points) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "smp_scaling: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"smp_scaling\",\n  \"seed\": %llu,\n"
               "  \"events\": %llu,\n  \"points\": [\n",
               static_cast<unsigned long long>(kSeed),
               static_cast<unsigned long long>(kEvents));
  for (xbase::usize i = 0; i < points.size(); ++i) {
    const Point& point = points[i];
    const analysis::TrafficReport& report = point.report;
    xbase::u64 stolen = 0;
    for (const analysis::TrafficCpuStats& cpu : report.per_cpu) {
      stolen += cpu.stolen;
    }
    std::fprintf(
        out,
        "    {\"cpus\": %u, \"ok\": %s, \"events_per_sim_ms\": %.1f, "
        "\"speedup_vs_1cpu\": %.2f, \"sim_makespan_ms\": %.3f, "
        "\"wall_ms\": %.1f, \"fire_p50_ns\": %llu, \"fire_p99_ns\": %llu, "
        "\"fire_p999_ns\": %llu, \"fires\": %zu, \"stolen\": %llu, "
        "\"tail_gated\": %s}%s\n",
        point.cpus, report.ok ? "true" : "false", report.events_per_sim_ms,
        point.speedup, static_cast<double>(report.sim_elapsed_ns) / 1e6,
        static_cast<double>(report.wall_elapsed_ns) / 1e6,
        static_cast<unsigned long long>(report.fire_latency.p50),
        static_cast<unsigned long long>(report.fire_latency.p99),
        static_cast<unsigned long long>(report.fire_latency.p999),
        report.fire_latency.samples, static_cast<unsigned long long>(stolen),
        TailGated(point) ? "true" : "false",
        i + 1 < points.size() ? "," : "");
  }
  std::string why;
  const bool passed = GatePassed(points, &why);
  std::fprintf(out,
               "  ],\n  \"gates\": {\"speedup_4cpu\": %.2f, "
               "\"speedup_4cpu_min\": %.1f, \"p999_ceiling_ns\": %llu},\n"
               "  \"gate_passed\": %s\n}\n",
               SpeedupAt(points, 4), kMinSpeedupAt4,
               static_cast<unsigned long long>(kP999CeilingNs),
               passed ? "true" : "false");
  std::fclose(out);
  std::printf("smp_scaling: wrote %s (gate %s)\n", path,
              passed ? "passed" : "FAILED");
  if (!passed) {
    std::printf("smp_scaling: %s\n", why.c_str());
  }
  return passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  benchutil::Title("SMP scaling: one seeded stream, 1 -> 16 simulated CPUs");
  std::printf("  %llu mixed-tenant events per point (seed %llu); aggregate "
              "throughput in simulated time\n",
              static_cast<unsigned long long>(kEvents),
              static_cast<unsigned long long>(kSeed));
  benchutil::Rule();
  std::printf("  %-5s %-12s %-9s %-13s %-25s %s\n", "cpus", "events/simms",
              "speedup", "wall ms", "fire p50/p99/p999 ns", "verdict");
  benchutil::Rule();

  std::vector<Point> points;
  double base_throughput = 0;
  for (xbase::u32 cpus : kCpuPoints) {
    analysis::TrafficConfig config;
    config.seed = kSeed;
    config.events = kEvents;
    config.cpus = cpus;
    Point point;
    point.cpus = cpus;
    point.report = analysis::RunTraffic(config);
    if (cpus == 1) {
      base_throughput = point.report.events_per_sim_ms;
    }
    point.speedup = base_throughput > 0
                        ? point.report.events_per_sim_ms / base_throughput
                        : 0;
    std::printf("  %-5u %-12.1f %-9.2f %-13.1f %-25s %s\n", cpus,
                point.report.events_per_sim_ms, point.speedup,
                static_cast<double>(point.report.wall_elapsed_ns) / 1e6,
                xbase::StrFormat(
                    "%llu / %llu / %llu",
                    static_cast<unsigned long long>(
                        point.report.fire_latency.p50),
                    static_cast<unsigned long long>(
                        point.report.fire_latency.p99),
                    static_cast<unsigned long long>(
                        point.report.fire_latency.p999))
                    .c_str(),
                point.report.ok ? "ok" : point.report.failure.c_str());
    points.push_back(std::move(point));
  }
  benchutil::Rule();
  std::string why;
  const bool passed = GatePassed(points, &why);
  std::printf("  gate: 4-CPU aggregate throughput %.2fx the 1-CPU run "
              "(must be >= %.1fx) — %s\n",
              SpeedupAt(points, 4), kMinSpeedupAt4,
              passed ? "PASS" : "FAIL");
  if (!passed) {
    std::printf("  %s\n", why.c_str());
  }
  benchutil::Note("throughput uses each run's slowest simulated clock as "
                  "the makespan; wall time is informational");

  if (json_path != nullptr) {
    return WriteJson(json_path, points);
  }
  return passed ? 0 : 1;
}

// RESIL — availability under a persistent crasher. One hook carries a
// healthy policy extension and a repeat offender; the bench fires the hook
// 1000 times and measures what fraction of fires the healthy policy
// actually served *on a live kernel*, supervised vs unsupervised.
//
// Two offender flavors close the loop on the paper's argument:
//  - a signed safex extension that panics every time (the runtime contains
//    each panic; the supervisor additionally stops paying for it), and
//  - a *verifier-approved* eBPF program (the §2.2 sys_bpf union-NULL crash)
//    whose very first run oopses the kernel. Verification said yes; only
//    supervision keeps the machine up, by containing the oops, attributing
//    it to the attachment on CPU, and quarantining it.
#include "bench/benchutil.h"
#include "src/analysis/workloads.h"
#include "src/core/hooks.h"
#include "src/xbase/strfmt.h"

namespace {

constexpr int kFires = 1000;

class ConstExt : public safex::Extension {
 public:
  xbase::Result<xbase::u64> Run(safex::Ctx&) override { return xbase::u64{0}; }
};

class PanickerExt : public safex::Extension {
 public:
  xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
    ctx.Panic("persistent crasher");
    return xbase::u64{0};
  }
};

struct Outcome {
  int healthy_served_alive = 0;  // healthy policy ran OK, kernel still up
  int crasher_invocations = 0;   // how often the offender actually ran
  int crasher_skipped = 0;       // refused by quarantine/eviction
  bool kernel_survived = false;
  std::string crasher_health = "unsupervised";
};

Outcome RunScenario(bool supervised, bool bpf_crasher) {
  simkern::KernelConfig kernel_config;
  kernel_config.unprivileged_bpf_disabled = false;
  benchutil::Rig rig(kernel_config);
  rig.safex_runtime->keyring().Seal();
  safex::Supervisor supervisor;
  safex::HookRegistryConfig hook_config;
  if (supervised) {
    rig.kernel.set_oops_recovery(true);
    hook_config.supervisor = &supervisor;
  }
  safex::HookRegistry hooks(rig.bpf, rig.loader, *rig.ext_loader,
                            hook_config);

  safex::Toolchain toolchain(*rig.signing_key);
  auto build_ext = [&toolchain](const char* name,
                                safex::ExtensionFactory factory) {
    safex::ExtensionManifest manifest;
    manifest.name = name;
    manifest.version = "1";
    return toolchain.Build(manifest, std::move(factory),
                           std::span<const xbase::u8>());
  };

  // The offender attaches first, so every fire meets it before the healthy
  // policy — the worst case for availability.
  xbase::u32 crasher_attachment = 0;
  if (bpf_crasher) {
    auto prog = analysis::BuildSysBpfNullCrash();
    const auto prog_id = rig.loader.Load(prog.value()).value();
    crasher_attachment =
        hooks.AttachProgram(safex::HookPoint::kSyscallEnter, prog_id)
            .value();
  } else {
    auto artifact = build_ext("crasher", []() {
      return std::make_unique<PanickerExt>();
    });
    const auto ext_id = rig.ext_loader->Load(artifact.value()).value();
    crasher_attachment =
        hooks.AttachExtension(safex::HookPoint::kSyscallEnter, ext_id)
            .value();
  }
  auto healthy_artifact =
      build_ext("healthy", []() { return std::make_unique<ConstExt>(); });
  const auto healthy_id =
      rig.ext_loader->Load(healthy_artifact.value()).value();
  const auto healthy_attachment =
      hooks.AttachExtension(safex::HookPoint::kSyscallEnter, healthy_id)
          .value();

  const simkern::Addr ctx = rig.kernel.mem()
                                .Map(64, simkern::MemPerm::kReadWrite,
                                     simkern::RegionKind::kKernelData,
                                     "resil-ctx")
                                .value();
  Outcome outcome;
  for (int fire = 0; fire < kFires; ++fire) {
    auto report = hooks.Fire(safex::HookPoint::kSyscallEnter, ctx);
    if (!report.ok()) {
      continue;
    }
    for (const safex::HookVerdict& verdict : report.value().verdicts) {
      if (verdict.attachment_id == healthy_attachment && verdict.status.ok() &&
          !rig.kernel.crashed()) {
        // Service only counts while the machine it runs on is alive.
        ++outcome.healthy_served_alive;
      }
      if (verdict.attachment_id == crasher_attachment) {
        verdict.skipped ? ++outcome.crasher_skipped
                        : ++outcome.crasher_invocations;
      }
    }
  }
  outcome.kernel_survived = !rig.kernel.crashed();
  if (supervised) {
    outcome.crasher_health =
        std::string(ExtHealthName(supervisor.HealthOf(crasher_attachment)));
  }
  return outcome;
}

void PrintRow(const char* scenario, const Outcome& outcome) {
  std::printf("%-34s | %-8s | %6.1f%% | %6d | %7d | %s\n", scenario,
              outcome.kernel_survived ? "intact" : "CRASHED",
              100.0 * outcome.healthy_served_alive / kFires,
              outcome.crasher_invocations, outcome.crasher_skipped,
              outcome.crasher_health.c_str());
}

}  // namespace

int main() {
  benchutil::Title(xbase::StrFormat(
      "Availability under a persistent crasher (%d hook fires)", kFires));
  std::printf("%-34s | %-8s | %7s | %6s | %7s | %s\n", "scenario", "kernel",
              "avail", "ran", "skipped", "crasher health");
  benchutil::Rule(100);
  PrintRow("safex panicker, unsupervised", RunScenario(false, false));
  PrintRow("safex panicker, supervised", RunScenario(true, false));
  PrintRow("verified eBPF oops, unsupervised", RunScenario(false, true));
  PrintRow("verified eBPF oops, supervised", RunScenario(true, true));
  benchutil::Rule(100);
  benchutil::Note("avail = fires where the healthy policy served on a live "
                  "kernel; ran/skipped count the offender");
  benchutil::Note("the eBPF offender is verifier-APPROVED (the sys_bpf "
                  "union-NULL crash needs no injected defect): verification "
                  "cannot keep the kernel up, supervision can");
  return 0;
}

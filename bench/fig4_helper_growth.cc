// FIG4 — reproduces Figure 4: "The number of helper functions by kernel
// versions and by year". The series is the helper registry's census by
// introduction version. The claim under test: steady growth (paper: ~50
// helpers per two years in Linux; this registry is a ~1:3 scale model whose
// *rate* should scale accordingly) with no sign of flattening.
#include "bench/benchutil.h"
#include "src/analysis/growth.h"

int main() {
  benchutil::Rig rig;
  benchutil::Title("Figure 4: number of helper functions by version/year");

  const auto series = analysis::HelperCountSeries(rig.bpf.helpers());
  std::printf("%-8s %-6s %10s\n", "version", "year", "#helpers");
  benchutil::Rule(28);
  for (const analysis::GrowthPoint& point : series) {
    std::printf("%-8s %-6d %10llu\n", point.version.ToString().c_str(),
                point.year, static_cast<unsigned long long>(point.value));
  }
  benchutil::Rule(28);

  const double rate = analysis::HelpersPerTwoYears(series);
  std::printf("\ngrowth rate: %.1f helpers per two years "
              "(paper: ~50/2yr at 1:1 scale; expected here: ~%0.0f/2yr at "
              "our ~1:3 scale)\n",
              rate, 50.0 / 3.0);
  std::printf("shape check: monotone growth, no flattening toward %s\n",
              series.back().version.ToString().c_str());

  // §2.2's closing warning: beyond helpers, internal kernel functions are
  // now exposed directly (kfuncs, [16]) — the interface keeps widening.
  std::printf("\nkfuncs (internal functions exposed to BPF, no helper "
              "review):\n");
  for (const auto version :
       {simkern::kV5_10, simkern::kV5_13, simkern::kV5_17, simkern::kV6_1}) {
    std::printf("  %-7s %zu kfunc(s)\n", version.ToString().c_str(),
                rig.bpf.kfuncs().CountAtVersion(version));
  }
  std::printf("  trajectory: 0 before v5.13, growing on top of the helper "
              "curve — 'the helper function interface will be as wide as "
              "(or wider than) the system call interface'\n");
  return 0;
}

// E-SAFE — reproduces the §2.2 "Safety" demonstration: a fully *verified*
// eBPF program crashes the kernel through bpf_sys_bpf by placing a NULL
// pointer inside the attr union (the verifier checks that attr points to
// attr_size readable bytes; it cannot see the pointer stored inside —
// CVE-2022-2785). The second half runs the safex counterpart: the hardened
// typed wrapper (§3.2) makes the crash unrepresentable.
#include "bench/benchutil.h"
#include "src/analysis/workloads.h"

namespace {

class SysBpfProbe : public safex::Extension {
 public:
  xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
    // Attempt 1: a dead Slice — the closest expressible thing to the NULL
    // insns pointer. The wrapper refuses it before any dereference.
    safex::Slice dead;
    if (ctx.SysBpfProgLoad(dead).ok()) {
      return xbase::u64{1};
    }
    // Attempt 2: the legitimate path with a live buffer works.
    auto insns = ctx.Alloc(16);
    XB_RETURN_IF_ERROR(insns.status());
    auto ret = ctx.SysBpfProgLoad(insns.value());
    XB_RETURN_IF_ERROR(ret.status());
    return xbase::u64{0};
  }
};

}  // namespace

int main() {
  benchutil::Title("§2.2 Safety: kernel crash through bpf_sys_bpf");

  // ---- eBPF path -------------------------------------------------------
  {
    benchutil::Rig rig;
    auto prog = analysis::BuildSysBpfNullCrash();
    auto id = rig.loader.Load(prog.value());
    std::printf("[eBPF ] verifier verdict: %s\n",
                id.ok() ? "ACCEPTED (the union pointer is invisible to it)"
                        : id.status().ToString().c_str());
    if (id.ok()) {
      auto loaded = rig.loader.Find(id.value());
      auto ctx = rig.kernel.mem().Map(64, simkern::MemPerm::kReadWrite,
                                      simkern::RegionKind::kKernelData,
                                      "ctx");
      auto result = ebpf::Execute(rig.bpf, *loaded.value(), ctx.value(), {},
                                  &rig.loader);
      std::printf("[eBPF ] runtime: %s\n",
                  rig.kernel.crashed() ? "KERNEL OOPSED"
                                       : "no crash (unexpected)");
      (void)result;
      std::printf("[eBPF ] dmesg tail:\n");
      int shown = 0;
      for (auto it = rig.kernel.dmesg().rbegin();
           it != rig.kernel.dmesg().rend() && shown < 4; ++it, ++shown) {
        std::printf("         %s\n", it->c_str());
      }
    }
  }

  // ---- safex path ------------------------------------------------------
  {
    benchutil::Rig rig;
    safex::Toolchain toolchain(*rig.signing_key);
    safex::ExtensionManifest manifest;
    manifest.name = "sys-bpf-probe";
    manifest.version = "1.0";
    manifest.caps = {safex::Capability::kSysBpf,
                     safex::Capability::kDynAlloc};
    auto artifact = toolchain.Build(
        manifest, []() { return std::make_unique<SysBpfProbe>(); },
        std::span<const xbase::u8>());
    auto id = rig.ext_loader->Load(artifact.value());
    auto outcome = rig.ext_loader->Invoke(id.value());
    std::printf("\n[safex] load: signature validated, no verifier run\n");
    std::printf("[safex] probe result: %s (ret=%llu)\n",
                outcome.value().status.ok() ? "completed"
                                            : outcome.value().status
                                                  .ToString()
                                                  .c_str(),
                static_cast<unsigned long long>(outcome.value().ret));
    std::printf("[safex] kernel state: %s\n",
                rig.kernel.crashed() ? "CRASHED (unexpected!)" : "intact");
  }

  std::printf("\nPaper parity: eBPF path = verified program -> kernel "
              "crash; safex path = typed interface, crash "
              "unrepresentable, legitimate use still works.\n");
  return 0;
}

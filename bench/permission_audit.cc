// PERM — the access-control census as a measurement. Counts the admission
// cells (helper x program type x privilege x kernel version) the declared
// contract defines, times the full three-layer model-check of those cells
// (verifier gate, runtime dispatch gate, loader privilege gate), and runs
// the fault matrix: each injectable missing-permission-check defect must
// surface as census gaps in exactly its own layer, and clean censuses
// must stay gap-free. The census cost is the paper-relevant number: this
// is what "audit every helper permission check" costs when the contract
// is stated once and machine-checked, versus the manual audit the kernel
// relies on.
//
// Default: human-readable table. With `--json PATH` it also writes the
// BENCH_perm.json CI artifact and exits nonzero if the census gate fails.
#include <chrono>
#include <cstring>
#include <vector>

#include "bench/benchutil.h"
#include "src/analysis/permaudit.h"
#include "src/ebpf/fault.h"
#include "src/xbase/strfmt.h"

namespace {

struct CensusRun {
  analysis::PermCensusReport report;
  double wall_ms = 0;
};

CensusRun TimeCensus(ebpf::Bpf& bpf) {
  CensusRun run;
  const auto start = std::chrono::steady_clock::now();
  run.report = analysis::RunPermCensus(bpf);
  const auto end = std::chrono::steady_clock::now();
  run.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return run;
}

bool GatePassed(const CensusRun& clean,
                const std::vector<analysis::PermFaultCheck>& checks) {
  if (!clean.report.clean() || clean.report.stats.cells == 0) {
    return false;
  }
  for (const analysis::PermFaultCheck& check : checks) {
    if (!check.passed) {
      return false;
    }
  }
  return true;
}

int WriteJson(const char* path, const CensusRun& clean,
              const std::vector<analysis::PermFaultCheck>& checks) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "permission_audit: cannot write %s\n", path);
    return 1;
  }
  const analysis::PermCensusStats& stats = clean.report.stats;
  std::fprintf(out,
               "{\n  \"census\": {\"helpers\": %zu, \"prog_types\": %zu, "
               "\"cells\": %zu,\n    \"verifier_probes\": %zu, "
               "\"runtime_probes\": %zu, \"loader_probes\": %zu,\n    "
               "\"expected_allows\": %zu, \"expected_version_denials\": "
               "%zu,\n    \"expected_family_denials\": %zu, "
               "\"expected_privilege_denials\": %zu,\n    \"gaps\": %zu, "
               "\"overblocks\": %zu, \"wall_ms\": %.2f},\n",
               stats.helpers, stats.prog_types, stats.cells,
               stats.verifier_probes, stats.runtime_probes,
               stats.loader_probes, stats.expected_allows,
               stats.expected_version_denials,
               stats.expected_family_denials,
               stats.expected_privilege_denials, clean.report.gaps.size(),
               clean.report.overblocks.size(), clean.wall_ms);
  std::fprintf(out, "  \"fault_matrix\": [\n");
  for (xbase::usize i = 0; i < checks.size(); ++i) {
    std::fprintf(out, "    {\"name\": \"%s\", \"passed\": %s}%s\n",
                 checks[i].name.c_str(),
                 checks[i].passed ? "true" : "false",
                 i + 1 < checks.size() ? "," : "");
  }
  const bool passed = GatePassed(clean, checks);
  std::fprintf(out, "  ],\n  \"gate_passed\": %s\n}\n",
               passed ? "true" : "false");
  std::fclose(out);
  std::printf("permission_audit: wrote %s (gate %s)\n", path,
              passed ? "passed" : "FAILED");
  return passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = argv[i + 1];
    }
  }

  simkern::KernelConfig config;
  config.version = simkern::kV6_12;
  // Expose the per-type privilege gate to the loader probes instead of
  // the blanket unprivileged-bpf sysctl that sits in front of it.
  config.unprivileged_bpf_disabled = false;
  benchutil::Rig rig(config);

  benchutil::Title(
      "Access-control census: contract vs verifier / dispatch / loader");
  const CensusRun clean = TimeCensus(rig.bpf);
  const analysis::PermCensusStats& stats = clean.report.stats;
  std::printf("  helpers x prog types      %zu x %zu\n", stats.helpers,
              stats.prog_types);
  std::printf("  admission cells           %zu\n", stats.cells);
  std::printf("  probes                    %zu verifier, %zu dispatch, "
              "%zu loader\n",
              stats.verifier_probes, stats.runtime_probes,
              stats.loader_probes);
  std::printf("  contract verdicts         %zu allow / %zu version-deny / "
              "%zu family-deny / %zu privilege-deny\n",
              stats.expected_allows, stats.expected_version_denials,
              stats.expected_family_denials,
              stats.expected_privilege_denials);
  std::printf("  clean census              %zu gaps, %zu overblocks in "
              "%.1f ms\n",
              clean.report.gaps.size(), clean.report.overblocks.size(),
              clean.wall_ms);

  benchutil::Title("Missing-permission-check fault matrix");
  const std::vector<analysis::PermFaultCheck> checks =
      analysis::RunPermFaultChecks();
  for (const analysis::PermFaultCheck& check : checks) {
    std::printf("  %-38s %-9s %s\n", check.name.c_str(),
                check.passed ? "detected" : "FAIL", check.detail.c_str());
  }
  benchutil::Rule();
  benchutil::Note("a gap = an enforcement layer more permissive than the "
                  "declared helper contract; the census must find zero on "
                  "clean builds and attribute every injected defect to "
                  "its layer");

  if (json_path != nullptr) {
    return WriteJson(json_path, clean, checks);
  }
  if (!GatePassed(clean, checks)) {
    std::fprintf(stderr,
                 "permission_audit: FAIL — census gate did not hold\n");
    return 1;
  }
  return 0;
}

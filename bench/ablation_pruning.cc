// Ablation: what does states_equal pruning buy the verifier? (DESIGN.md §5
// calls this out.) With pruning disabled, every join point re-explores —
// the cost curve is the upper bound the kernel would pay without the
// pruning machinery the paper counts inside the verifier's growing LoC.
#include "bench/benchutil.h"
#include "src/analysis/workloads.h"
#include "src/ebpf/verifier.h"

namespace {

struct Measurement {
  bool accepted = false;
  xbase::u64 insns = 0;
  xbase::u64 pruned = 0;
};

Measurement Measure(benchutil::Rig& rig, const ebpf::Program& prog,
                    bool disable_pruning) {
  ebpf::VerifyOptions opts;
  opts.version = rig.kernel.version();
  opts.faults = &rig.bpf.faults();
  opts.kfuncs = &rig.bpf.kfuncs();
  opts.disable_pruning = disable_pruning;
  auto result = ebpf::Verify(prog, rig.bpf.maps(), rig.bpf.helpers(), opts);
  Measurement m;
  m.accepted = result.ok();
  if (result.ok()) {
    m.insns = result.value().stats.insns_processed;
    m.pruned = result.value().stats.states_pruned;
  }
  return m;
}

}  // namespace

int main() {
  benchutil::Rig rig;
  benchutil::Title("Ablation: states_equal pruning");
  std::printf("%-28s | %14s %10s | %14s %10s\n", "program",
              "insns (pruned)", "hits", "insns (no prune)", "verdict");
  benchutil::Rule(92);

  struct Case {
    std::string name;
    xbase::Result<ebpf::Program> prog;
  };
  std::vector<Case> cases;
  // Rejoining straight-line diamonds where both arms leave identical state:
  // pruning collapses them; without it the verifier re-walks the tail per
  // path.
  for (const xbase::u32 n : {6u, 10u, 14u, 18u}) {
    // Arms that write the same value so states converge at the join.
    ebpf::ProgramBuilder b("converging", ebpf::ProgType::kXdp);
    b.Ins(ebpf::LdxMem(ebpf::BPF_W, ebpf::R6, ebpf::R1, 0))
        .Ins(ebpf::Mov64Imm(ebpf::R0, 0));
    for (xbase::u32 i = 0; i < n; ++i) {
      const std::string set = "s" + std::to_string(i);
      const std::string join = "j" + std::to_string(i);
      // Both arms overwrite the tested register too, so the verifier
      // states are bit-identical at the join — the prunable shape.
      b.JmpTo(ebpf::BPF_JSET, ebpf::R6,
              static_cast<xbase::s32>(1u << (i % 16)), set)
          .Ins(ebpf::Mov64Imm(ebpf::R7, 1))
          .Ins(ebpf::LdxMem(ebpf::BPF_W, ebpf::R6, ebpf::R1, 0))
          .JaTo(join)
          .Bind(set)
          .Ins(ebpf::Mov64Imm(ebpf::R7, 1))
          .Ins(ebpf::LdxMem(ebpf::BPF_W, ebpf::R6, ebpf::R1, 0))
          .Bind(join);
    }
    b.Ins(ebpf::Exit());
    cases.push_back({"converging diamonds x" + std::to_string(n),
                     b.Build()});
  }
  cases.push_back(
      {"bounded loop, 2k iterations", analysis::BuildCountedLoop(2000)});

  for (Case& test_case : cases) {
    const Measurement with = Measure(rig, test_case.prog.value(), false);
    const Measurement without = Measure(rig, test_case.prog.value(), true);
    std::printf("%-28s | %14llu %10llu | %14llu %10s\n",
                test_case.name.c_str(),
                static_cast<unsigned long long>(with.insns),
                static_cast<unsigned long long>(with.pruned),
                static_cast<unsigned long long>(without.insns),
                without.accepted ? "accept" : "REJECT(budget)");
  }
  benchutil::Rule(92);
  benchutil::Note("pruning turns exponential re-exploration into linear "
                  "work; it is also ~where the kernel verifier's memory "
                  "and bug surface live (Table 1's verifier memory leaks "
                  "are in exactly this bookkeeping)");
  return 0;
}

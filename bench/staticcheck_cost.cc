// STATICCHECK-COST — what a second, independent analysis costs: verifier
// time vs staticcheck time per program, over the same corpus the other
// benches use. The point of comparison: staticcheck is path-INsensitive
// (merges at joins), so its cost stays flat where the verifier's path
// enumeration grows with branch count.
//
// Default: google-benchmark timing. With `--json PATH` it instead runs a
// fixed-iteration measurement pass and writes a machine-readable summary
// (the BENCH_staticcheck.json CI artifact).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

#include "bench/benchutil.h"
#include "src/analysis/workloads.h"
#include "src/ebpf/verifier.h"
#include "src/staticcheck/check.h"

namespace {

using benchutil::Rig;

struct Corpus {
  std::string name;
  ebpf::Program prog;
};

// Builds one rig + corpus pair per benchmark process; the rig owns the
// maps the programs reference.
Rig& SharedRig() {
  static Rig rig;
  return rig;
}

std::vector<Corpus>& SharedCorpus() {
  static std::vector<Corpus> corpus = [] {
    Rig& rig = SharedRig();
    std::vector<Corpus> built;
    const int counter_fd =
        benchutil::MustCreateArrayMap(rig, "cnt", 8, 4);
    const auto add = [&](const char* name,
                         xbase::Result<ebpf::Program> prog) {
      if (prog.ok()) {
        built.push_back({name, std::move(prog).value()});
      }
    };
    add("straight-256", analysis::BuildStraightLine(256));
    add("diamonds-16", analysis::BuildBranchDiamonds(16));
    add("counted-loop-64", analysis::BuildCountedLoop(64));
    add("packet-counter", analysis::BuildPacketCounter(counter_fd));
    add("sk-lookup-ok", analysis::BuildSkLookupWithRelease());
    return built;
  }();
  return corpus;
}

void BM_Verify(benchmark::State& state) {
  Rig& rig = SharedRig();
  const Corpus& entry = SharedCorpus()[state.range(0)];
  ebpf::VerifyOptions opts;
  opts.version = rig.kernel.version();
  opts.faults = &rig.bpf.faults();
  opts.kfuncs = &rig.bpf.kfuncs();
  for (auto _ : state) {
    auto result =
        ebpf::Verify(entry.prog, rig.bpf.maps(), rig.bpf.helpers(), opts);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(entry.name);
}

void BM_StaticCheck(benchmark::State& state) {
  Rig& rig = SharedRig();
  const Corpus& entry = SharedCorpus()[state.range(0)];
  staticcheck::CheckOptions opts;
  opts.maps = &rig.bpf.maps();
  opts.helpers = &rig.bpf.helpers();
  opts.callgraph = &rig.kernel.callgraph();
  for (auto _ : state) {
    auto report = staticcheck::RunChecks(entry.prog, opts);
    benchmark::DoNotOptimize(report);
  }
  state.SetLabel(entry.name);
}

void RegisterAll() {
  const auto count = static_cast<int>(SharedCorpus().size());
  for (int i = 0; i < count; ++i) {
    benchmark::RegisterBenchmark("BM_Verify", BM_Verify)->Arg(i);
    benchmark::RegisterBenchmark("BM_StaticCheck", BM_StaticCheck)->Arg(i);
  }
}

// Fixed-iteration pass writing one JSON object per corpus program: mean
// verifier and staticcheck wall time, instruction count, finding totals.
int RunJson(const char* path) {
  constexpr int kIters = 30;
  Rig& rig = SharedRig();
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "staticcheck_cost: cannot write %s\n", path);
    return 2;
  }
  const auto mean_ns = [](auto&& fn) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      fn();
    }
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
               .count() /
           kIters;
  };

  std::fprintf(out, "{\n  \"bench\": \"staticcheck_cost\",\n");
  std::fprintf(out, "  \"iterations\": %d,\n  \"programs\": [\n", kIters);
  xbase::u64 total_findings = 0;
  const std::vector<Corpus>& corpus = SharedCorpus();
  for (xbase::usize i = 0; i < corpus.size(); ++i) {
    const Corpus& entry = corpus[i];
    ebpf::VerifyOptions vopts;
    vopts.version = rig.kernel.version();
    vopts.faults = &rig.bpf.faults();
    vopts.kfuncs = &rig.bpf.kfuncs();
    const long long verify_ns = mean_ns([&] {
      auto result =
          ebpf::Verify(entry.prog, rig.bpf.maps(), rig.bpf.helpers(), vopts);
      benchmark::DoNotOptimize(result);
    });

    staticcheck::CheckOptions copts;
    copts.maps = &rig.bpf.maps();
    copts.helpers = &rig.bpf.helpers();
    copts.callgraph = &rig.kernel.callgraph();
    xbase::usize findings = 0;
    const long long static_ns = mean_ns([&] {
      auto report = staticcheck::RunChecks(entry.prog, copts);
      if (report.ok()) {
        findings = report.value().findings.size();
      }
      benchmark::DoNotOptimize(report);
    });
    total_findings += findings;

    std::fprintf(out,
                 "    {\"name\": \"%s\", \"insns\": %u, "
                 "\"verify_ns\": %lld, \"staticcheck_ns\": %lld, "
                 "\"findings\": %zu}%s\n",
                 entry.name.c_str(), entry.prog.len(), verify_ns, static_ns,
                 findings, i + 1 < corpus.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"programs_analyzed\": %zu,\n",
               corpus.size());
  std::fprintf(out, "  \"total_findings\": %llu\n}\n",
               static_cast<unsigned long long>(total_findings));
  std::fclose(out);
  std::printf("staticcheck_cost: wrote %s (%zu programs)\n", path,
              corpus.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return RunJson(argv[i + 1]);
    }
  }
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// STATICCHECK-COST — what a second, independent analysis costs: verifier
// time vs staticcheck time per program, over the same corpus the other
// benches use. The point of comparison: staticcheck is path-INsensitive
// (merges at joins), so its cost stays flat where the verifier's path
// enumeration grows with branch count.
#include <benchmark/benchmark.h>

#include "bench/benchutil.h"
#include "src/analysis/workloads.h"
#include "src/ebpf/verifier.h"
#include "src/staticcheck/check.h"

namespace {

using benchutil::Rig;

struct Corpus {
  std::string name;
  ebpf::Program prog;
};

// Builds one rig + corpus pair per benchmark process; the rig owns the
// maps the programs reference.
Rig& SharedRig() {
  static Rig rig;
  return rig;
}

std::vector<Corpus>& SharedCorpus() {
  static std::vector<Corpus> corpus = [] {
    Rig& rig = SharedRig();
    std::vector<Corpus> built;
    const int counter_fd =
        benchutil::MustCreateArrayMap(rig, "cnt", 8, 4);
    const auto add = [&](const char* name,
                         xbase::Result<ebpf::Program> prog) {
      if (prog.ok()) {
        built.push_back({name, std::move(prog).value()});
      }
    };
    add("straight-256", analysis::BuildStraightLine(256));
    add("diamonds-16", analysis::BuildBranchDiamonds(16));
    add("counted-loop-64", analysis::BuildCountedLoop(64));
    add("packet-counter", analysis::BuildPacketCounter(counter_fd));
    add("sk-lookup-ok", analysis::BuildSkLookupWithRelease());
    return built;
  }();
  return corpus;
}

void BM_Verify(benchmark::State& state) {
  Rig& rig = SharedRig();
  const Corpus& entry = SharedCorpus()[state.range(0)];
  ebpf::VerifyOptions opts;
  opts.version = rig.kernel.version();
  opts.faults = &rig.bpf.faults();
  opts.kfuncs = &rig.bpf.kfuncs();
  for (auto _ : state) {
    auto result =
        ebpf::Verify(entry.prog, rig.bpf.maps(), rig.bpf.helpers(), opts);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(entry.name);
}

void BM_StaticCheck(benchmark::State& state) {
  Rig& rig = SharedRig();
  const Corpus& entry = SharedCorpus()[state.range(0)];
  staticcheck::CheckOptions opts;
  opts.maps = &rig.bpf.maps();
  opts.helpers = &rig.bpf.helpers();
  opts.callgraph = &rig.kernel.callgraph();
  for (auto _ : state) {
    auto report = staticcheck::RunChecks(entry.prog, opts);
    benchmark::DoNotOptimize(report);
  }
  state.SetLabel(entry.name);
}

void RegisterAll() {
  const auto count = static_cast<int>(SharedCorpus().size());
  for (int i = 0; i < count; ++i) {
    benchmark::RegisterBenchmark("BM_Verify", BM_Verify)->Arg(i);
    benchmark::RegisterBenchmark("BM_StaticCheck", BM_StaticCheck)->Arg(i);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// FIG2 — reproduces Figure 2: "Lines of code of the eBPF verifier by kernel
// over time". The series is computed from the verifier's version-gated
// feature table; each feature is a pass this repository actually implements
// (or documents as accounting-only), tagged with the Linux-attributed LoC
// of the era that introduced it. The claim under test is the *shape*:
// monotone, roughly 6x growth from v3.18 (~2.4 kLoC) to v6.1 (~12 kLoC).
#include "bench/benchutil.h"
#include "src/analysis/growth.h"

int main() {
  benchutil::Title("Figure 2: eBPF verifier growth by kernel version");
  std::printf("%-8s %-6s %14s %16s\n", "version", "year",
              "verifier LoC", "active passes");
  benchutil::Rule(50);

  const auto loc_series = analysis::VerifierLocSeries();
  const auto feature_series = analysis::VerifierFeatureSeries();
  for (size_t i = 0; i < loc_series.size(); ++i) {
    std::printf("%-8s %-6d %14llu %16llu\n",
                loc_series[i].version.ToString().c_str(),
                loc_series[i].year,
                static_cast<unsigned long long>(loc_series[i].value),
                static_cast<unsigned long long>(feature_series[i].value));
  }
  benchutil::Rule(50);

  std::printf("\nPer-feature attribution (what each pass added):\n");
  std::printf("%-8s %-16s %8s  %s\n", "since", "pass", "LoC",
              "behavioural in this repo?");
  benchutil::Rule();
  for (const ebpf::VFeatureInfo& info : ebpf::VerifierFeatureTable()) {
    std::printf("%-8s %-16s %8u  %s\n", info.introduced.ToString().c_str(),
                info.name.c_str(), info.linux_loc,
                info.behavioural ? "yes" : "accounting only");
  }
  benchutil::Rule();

  const auto first = loc_series.front();
  const auto last = loc_series.back();
  std::printf("\nShape check vs paper: v3.18 ~2 kLoC -> v6.1 ~12 kLoC, "
              "monotone.\n");
  std::printf("Measured: %s = %llu LoC -> %s = %llu LoC (%.1fx growth)\n",
              first.version.ToString().c_str(),
              static_cast<unsigned long long>(first.value),
              last.version.ToString().c_str(),
              static_cast<unsigned long long>(last.value),
              static_cast<double>(last.value) /
                  static_cast<double>(first.value));
  return 0;
}

// B-EXP — the expressiveness comparison (§2.1 costs, §3.2 retired helpers):
// a corpus of programs a developer might reasonably write, with the
// verifier's verdict at several kernel versions next to the safex verdict.
// The paper's claims under test: (a) the verifier rejects correct programs
// for shape/size reasons and its limits moved over the years, (b) entire
// helper classes (bpf_loop, bpf_strtol, bpf_strncmp) exist only to paper
// over missing expressiveness and disappear under a real language.
#include "bench/benchutil.h"
#include "src/analysis/workloads.h"
#include "src/ebpf/verifier.h"

namespace {

std::string VerdictAt(benchutil::Rig& rig, const ebpf::Program& prog,
                      simkern::KernelVersion version,
                      bool privileged = true) {
  ebpf::VerifyOptions opts;
  opts.version = version;
  opts.privileged = privileged;
  opts.faults = &rig.bpf.faults();
  auto result = ebpf::Verify(prog, rig.bpf.maps(), rig.bpf.helpers(), opts);
  if (result.ok()) {
    return "accept";
  }
  std::string reason = result.status().message();
  if (reason.size() > 34) {
    reason = reason.substr(reason.size() - 34);
  }
  return "REJECT(.." + reason + ")";
}

}  // namespace

int main() {
  benchutil::Rig rig;
  const int fd = benchutil::MustCreateArrayMap(rig, "m", 8, 4);

  benchutil::Title("Expressiveness: verifier verdicts across versions vs "
                   "safex");
  std::printf("%-34s %-10s %-10s %-10s %s\n", "program", "v4.20", "v5.4",
              "v5.18", "safex");
  benchutil::Rule(110);

  struct Row {
    std::string name;
    xbase::Result<ebpf::Program> prog;
    std::string safex_verdict;
  };

  std::vector<Row> rows;
  rows.push_back({"bounded loop (10 iterations)",
                  analysis::BuildCountedLoop(10),
                  "accept (native for-loop)"});
  rows.push_back({"loop, 300k iterations",
                  analysis::BuildCountedLoop(300000),
                  "accept (watchdog bounds it)"});
  {
    // Unbounded loop: back-edge with no exit condition.
    ebpf::ProgramBuilder b("unbounded", ebpf::ProgType::kKprobe);
    b.Ins(ebpf::Mov64Imm(ebpf::R0, 0))
        .Bind("top")
        .Ins(ebpf::Alu64Imm(ebpf::BPF_ADD, ebpf::R0, 1))
        .JaTo("top");
    rows.push_back({"unbounded loop", b.Build(),
                    "accept (watchdog terminates)"});
  }
  rows.push_back({"straight-line, 8k insns",
                  analysis::BuildStraightLine(8192),
                  "accept (no size limit)"});
  rows.push_back({"16 independent branches",
                  analysis::BuildBranchDiamonds(16),
                  "accept (no path explosion)"});
  rows.push_back({"20 independent branches",
                  analysis::BuildBranchDiamonds(20),
                  "accept (no path explosion)"});

  for (Row& row : rows) {
    if (!row.prog.ok()) {
      std::printf("%-34s build failed\n", row.name.c_str());
      continue;
    }
    std::printf("%-34s %-10s %-10s %-10s %s\n", row.name.c_str(),
                VerdictAt(rig, row.prog.value(), simkern::kV4_20).c_str(),
                VerdictAt(rig, row.prog.value(), simkern::kV5_4).c_str(),
                VerdictAt(rig, row.prog.value(), simkern::kV5_18).c_str(),
                row.safex_verdict.c_str());
  }
  benchutil::Rule(110);

  benchutil::Title("§3.2: helpers retired by language expressiveness");
  std::printf("%-18s %-30s %s\n", "helper", "eBPF", "safex replacement");
  benchutil::Rule(96);
  std::printf("%-18s %-30s %s\n", "bpf_loop",
              "helper call + verified callback",
              "native `for` loop (helper deleted outright)");
  std::printf("%-18s %-30s %s\n", "bpf_strtol",
              "unsafe C in the kernel",
              "Ctx::ParseInt — core::str::parse semantics, pure safe code");
  std::printf("%-18s %-30s %s\n", "bpf_strncmp",
              "unsafe C in the kernel",
              "Ctx::StrCmp — implemented entirely in the safe language");
  std::printf("%-18s %-30s %s\n", "bpf_task_storage_get",
              "NULL-able raw task pointer",
              "reference-typed TaskRef: NULL unrepresentable");
  std::printf("%-18s %-30s %s\n", "bpf_sys_bpf",
              "opaque attr union (crash, §2.2)",
              "typed wrapper over the same unsafe kernel code");
  benchutil::Rule(96);
  std::printf("\npreliminary study cited by the paper [33]: 16 of 249 "
              "helpers retire outright; this repo retires 3 of its 78 and "
              "hardens 2 more (same ~1:3 scale).\n");
  std::printf("\n(unprivileged note: with kernel default "
              "unprivileged_bpf_disabled=1 every row above is "
              "REJECT(permission) for unprivileged users [22].)\n");
  return 0;
}

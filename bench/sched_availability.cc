// SCHED — task progress under a faulty pick policy, supervised (watchdog
// deadline + pick validation + starvation detector + round-robin fail-over)
// vs unsupervised (the extension's verdict is law). For each injectable
// scheduler fault class the bench runs the matched witness policy for a
// fixed number of ticks and measures whether every runnable task kept
// progressing in the second half of the run. The supervised scheduler must
// keep 100% of tasks progressing under every fault; the unsupervised one
// stalls the CPU, starves the hidden task, or loses the kernel outright.
//
// Default: human-readable table. With `--json PATH` it also writes the
// BENCH_sched.json CI artifact and exits nonzero if the availability gate
// fails.
#include <cstring>
#include <map>
#include <string_view>
#include <vector>

#include "bench/benchutil.h"
#include "src/analysis/workloads.h"
#include "src/core/sched.h"
#include "src/core/supervisor.h"
#include "src/ebpf/fault.h"
#include "src/xbase/strfmt.h"

namespace {

constexpr int kTicks = 400;
constexpr xbase::u64 kBoundNs = 10 * simkern::kNsPerMs;

struct Scenario {
  const char* name;         // JSON-stable scenario key
  std::string_view fault;   // injected defect ("" = clean)
  xbase::Result<ebpf::Program> (*policy)();
};

const Scenario kScenarios[] = {
    {"clean", {}, analysis::BuildSchedPickLongestWaiting},
    {"stall_loop", ebpf::kFaultSchedStallLoop,
     analysis::BuildSchedPickViaDefault},
    {"pick_invalid_pid", ebpf::kFaultSchedPickInvalidPid,
     analysis::BuildSchedPickFirst},
    {"runnable_filter", ebpf::kFaultSchedRunnableFilter,
     analysis::BuildSchedPickLongestWaiting},
    {"crash_on_pick", ebpf::kFaultSchedCrashOnPick,
     analysis::BuildSchedPickLongestWaiting},
};

struct Outcome {
  bool kernel_survived = false;
  double dispatch_rate = 0;    // fraction of ticks that ran a task
  double progressed_pct = 0;   // % of tasks that ran in the second half
  double max_wait_ms = 0;      // longest wait ever observed
  xbase::u64 contained = 0;    // failures detected & charged (supervised)
};

Outcome RunScenario(const Scenario& scenario, bool supervised) {
  simkern::KernelConfig kernel_config;
  kernel_config.version = simkern::kV6_12;
  kernel_config.unprivileged_bpf_disabled = false;
  benchutil::Rig rig(kernel_config);
  if (supervised) {
    rig.kernel.set_oops_recovery(true);
  }
  safex::Supervisor supervisor;
  safex::HookRegistryConfig hook_config;
  if (supervised) {
    hook_config.supervisor = &supervisor;
  }
  safex::HookRegistry hooks(rig.bpf, rig.loader, *rig.ext_loader,
                            hook_config);
  safex::SchedConfig sched_config;
  sched_config.supervised = supervised;
  sched_config.starvation_bound_ns = kBoundNs;
  safex::SchedCore sched(rig.kernel, hooks, sched_config);
  if (!sched.Init().ok()) {
    return Outcome{};
  }

  if (!scenario.fault.empty()) {
    rig.bpf.faults().Inject(scenario.fault);
  }
  const auto prog_id = rig.loader.Load(scenario.policy().value()).value();
  (void)hooks.AttachProgram(safex::HookPoint::kSchedPickNext, prog_id)
      .value();

  // The unsupervised loop has no reclaim pass; seed the queue honestly.
  const std::vector<xbase::u32> pids = rig.kernel.tasks().Pids();
  for (xbase::u32 pid : pids) {
    (void)rig.kernel.runqueue().Enqueue(pid, rig.kernel.clock().now_ns());
  }

  Outcome outcome;
  std::map<xbase::u32, xbase::u64> runs_at_half;
  for (int tick = 0; tick < kTicks; ++tick) {
    (void)sched.Tick();
    const double wait_ms =
        static_cast<double>(rig.kernel.runqueue().MaxWaitNs(
            rig.kernel.clock().now_ns())) /
        1e6;
    if (wait_ms > outcome.max_wait_ms) {
      outcome.max_wait_ms = wait_ms;
    }
    if (tick == kTicks / 2 - 1) {
      for (xbase::u32 pid : pids) {
        runs_at_half[pid] = rig.kernel.runqueue().StatsOf(pid).runs;
      }
    }
  }

  outcome.kernel_survived = !rig.kernel.crashed();
  outcome.dispatch_rate =
      static_cast<double>(sched.stats().dispatches) / kTicks;
  // A task "progresses" only if it ran during the second half of the run,
  // on a kernel that is still alive — a dead kernel schedules nobody.
  int progressed = 0;
  if (outcome.kernel_survived) {
    for (xbase::u32 pid : pids) {
      if (rig.kernel.runqueue().StatsOf(pid).runs > runs_at_half[pid]) {
        ++progressed;
      }
    }
  }
  outcome.progressed_pct =
      100.0 * progressed / static_cast<double>(pids.size());
  outcome.contained = supervisor.failures();
  return outcome;
}

void PrintRow(const char* name, const char* mode, const Outcome& outcome) {
  std::printf("%-18s | %-12s | %-8s | %7.1f%% | %9.1f%% | %8.2f | %9llu\n",
              name, mode, outcome.kernel_survived ? "intact" : "CRASHED",
              100.0 * outcome.dispatch_rate, outcome.progressed_pct,
              outcome.max_wait_ms,
              static_cast<unsigned long long>(outcome.contained));
}

struct Row {
  const Scenario* scenario;
  Outcome supervised;
  Outcome unsupervised;
};

bool GatePassed(const std::vector<Row>& rows) {
  for (const Row& row : rows) {
    // The supervised scheduler must keep every task progressing on a live
    // kernel, clean or faulted.
    if (!row.supervised.kernel_survived ||
        row.supervised.progressed_pct < 100.0) {
      return false;
    }
    // Every fault must visibly hurt the unsupervised scheduler — stall,
    // starvation or a dead kernel. (The clean leg must hurt nobody.)
    const bool faulted = !row.scenario->fault.empty();
    if (faulted && row.unsupervised.progressed_pct >= 100.0) {
      return false;
    }
    if (!faulted && row.unsupervised.progressed_pct < 100.0) {
      return false;
    }
  }
  return true;
}

int WriteJson(const char* path, const std::vector<Row>& rows) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "sched_availability: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out, "{\n  \"ticks\": %d,\n  \"scenarios\": [\n", kTicks);
  for (xbase::usize i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    auto emit = [out](const char* mode, const Outcome& outcome,
                      bool trailing_comma) {
      std::fprintf(out,
                   "      \"%s\": {\"kernel_survived\": %s, "
                   "\"dispatch_rate\": %.3f, \"tasks_progressed_pct\": "
                   "%.1f, \"max_wait_ms\": %.2f, \"failures_contained\": "
                   "%llu}%s\n",
                   mode, outcome.kernel_survived ? "true" : "false",
                   outcome.dispatch_rate, outcome.progressed_pct,
                   outcome.max_wait_ms,
                   static_cast<unsigned long long>(outcome.contained),
                   trailing_comma ? "," : "");
    };
    std::fprintf(out, "    {\n      \"name\": \"%s\",\n",
                 row.scenario->name);
    emit("supervised", row.supervised, true);
    emit("unsupervised", row.unsupervised, false);
    std::fprintf(out, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  const bool passed = GatePassed(rows);
  std::fprintf(out, "  ],\n  \"gate_passed\": %s\n}\n",
               passed ? "true" : "false");
  std::fclose(out);
  std::printf("sched_availability: wrote %s (gate %s)\n", path,
              passed ? "passed" : "FAILED");
  return passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = argv[i + 1];
    }
  }

  benchutil::Title(xbase::StrFormat(
      "Task progress under faulty pick policies (%d scheduler ticks)",
      kTicks));
  std::printf("%-18s | %-12s | %-8s | %8s | %10s | %8s | %9s\n", "fault",
              "mode", "kernel", "dispatch", "progressed", "max wait",
              "contained");
  benchutil::Rule(100);
  std::vector<Row> rows;
  for (const Scenario& scenario : kScenarios) {
    Row row;
    row.scenario = &scenario;
    row.supervised = RunScenario(scenario, true);
    row.unsupervised = RunScenario(scenario, false);
    PrintRow(scenario.name, "supervised", row.supervised);
    PrintRow(scenario.name, "unsupervised", row.unsupervised);
    rows.push_back(row);
  }
  benchutil::Rule(100);
  benchutil::Note("progressed = % of tasks that ran during the second half "
                  "of the run on a live kernel; max wait in ms");
  benchutil::Note("every witness policy is verifier-APPROVED sched_ext "
                  "bytecode: the defects live in the helpers, below the "
                  "verifier's horizon, or in the policy's intent");

  if (json_path != nullptr) {
    return WriteJson(json_path, rows);
  }
  if (!GatePassed(rows)) {
    std::fprintf(stderr,
                 "sched_availability: FAIL — the supervised scheduler lost "
                 "task progress (or a fault did not hurt the unsupervised "
                 "one)\n");
    return 1;
  }
  return 0;
}

// ADMIT — admission pipeline throughput: programs/sec through the
// concurrent admission service at 1/2/4/8 workers, on two corpora:
//
//   mixed      distinct verifier-heavy programs (every load pays the full
//              verification tax; the win is parallelism);
//   duplicate  one verifier-heavy program submitted N times (the win is
//              the content-addressed verdict cache: verify once, then
//              every duplicate is a hash lookup).
//
// The duplicate baseline is 1 worker with the cache disabled — exactly the
// cost profile of the old synchronous Loader::Load path, where every
// duplicate re-paid verification (the paper's B-VER tax, N times over).
//
// Default: human-readable table. `--json PATH` writes the
// BENCH_admission.json CI artifact instead.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/benchutil.h"
#include "src/analysis/workloads.h"
#include "src/service/admission.h"

namespace {

using xbase::u64;
using xbase::usize;

constexpr usize kMixedPrograms = 96;
constexpr usize kDuplicatePrograms = 192;
constexpr int kReps = 3;  // fresh rig + service per rep; best-of wall time

struct Cell {
  std::string corpus;
  usize workers = 0;
  bool cache = true;
  double wall_ms = 0.0;
  double programs_per_sec = 0.0;
  u64 admitted = 0;
  u64 cache_hits = 0;
  u64 coalesced_waits = 0;
  u64 verify_runs = 0;
  u64 queue_depth_peak = 0;
};

// Distinct verifier-heavy programs: counted loops with distinct trip
// counts, so verification cost is real (the verifier walks every
// iteration) and no two programs share a content hash.
std::vector<ebpf::Program> BuildMixedCorpus() {
  std::vector<ebpf::Program> corpus;
  corpus.reserve(kMixedPrograms);
  for (usize i = 0; i < kMixedPrograms; ++i) {
    auto prog =
        analysis::BuildCountedLoop(static_cast<xbase::u32>(3000 + 61 * i));
    if (prog.ok()) {
      corpus.push_back(std::move(prog).value());
    }
  }
  return corpus;
}

// One heavy program, many times: 100% content-duplicate.
std::vector<ebpf::Program> BuildDuplicateCorpus() {
  std::vector<ebpf::Program> corpus;
  auto prog = analysis::BuildCountedLoop(6000);
  if (!prog.ok()) {
    return corpus;
  }
  corpus.reserve(kDuplicatePrograms);
  for (usize i = 0; i < kDuplicatePrograms; ++i) {
    corpus.push_back(prog.value());
  }
  return corpus;
}

Cell Measure(const std::string& corpus_name,
             const std::vector<ebpf::Program>& corpus, usize workers,
             bool cache) {
  Cell cell;
  cell.corpus = corpus_name;
  cell.workers = workers;
  cell.cache = cache;
  cell.wall_ms = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    benchutil::Rig rig;
    service::AdmissionConfig config;
    config.workers = workers;
    config.cache_enabled = cache;
    service::AdmissionService svc(config, rig.bpf, rig.loader);

    const auto start = std::chrono::steady_clock::now();
    const auto results = svc.LoadBatch(corpus);
    const auto end = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();

    u64 admitted = 0;
    for (const auto& result : results) {
      admitted += result.ok() ? 1 : 0;
    }
    if (admitted != corpus.size()) {
      std::fprintf(stderr,
                   "admission_throughput: %s/%zuw: only %llu of %zu "
                   "admitted\n",
                   corpus_name.c_str(), workers,
                   static_cast<unsigned long long>(admitted), corpus.size());
      std::exit(1);
    }
    if (wall_ms < cell.wall_ms) {
      cell.wall_ms = wall_ms;
      const service::AdmissionMetrics m = svc.Metrics();
      cell.admitted = admitted;
      cell.cache_hits = m.cache.hits;
      cell.coalesced_waits = m.cache.coalesced_waits;
      cell.verify_runs = m.verify_runs;
      cell.queue_depth_peak = m.queue_depth_peak;
    }
    svc.Shutdown();
  }
  cell.programs_per_sec =
      static_cast<double>(corpus.size()) / (cell.wall_ms / 1000.0);
  return cell;
}

void PrintTable(const std::vector<Cell>& cells) {
  benchutil::Title("ADMIT — admission pipeline throughput");
  std::printf("  host CPUs: %u (worker scaling is bounded by this)\n",
              std::thread::hardware_concurrency());
  std::printf("  %-10s %7s %6s %10s %12s %8s %8s %9s\n", "corpus",
              "workers", "cache", "wall ms", "progs/sec", "hits",
              "verify", "peak q");
  benchutil::Rule();
  for (const Cell& cell : cells) {
    std::printf("  %-10s %7zu %6s %10.2f %12.0f %8llu %8llu %9llu\n",
                cell.corpus.c_str(), cell.workers,
                cell.cache ? "on" : "off", cell.wall_ms,
                cell.programs_per_sec,
                static_cast<unsigned long long>(cell.cache_hits),
                static_cast<unsigned long long>(cell.verify_runs),
                static_cast<unsigned long long>(cell.queue_depth_peak));
  }
}

const Cell& FindCell(const std::vector<Cell>& cells, const char* corpus,
                     usize workers, bool cache) {
  for (const Cell& cell : cells) {
    if (cell.corpus == corpus && cell.workers == workers &&
        cell.cache == cache) {
      return cell;
    }
  }
  std::fprintf(stderr, "admission_throughput: missing cell %s/%zu\n", corpus,
               workers);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: admission_throughput [--json PATH]\n");
      return 2;
    }
  }

  const std::vector<ebpf::Program> mixed = BuildMixedCorpus();
  const std::vector<ebpf::Program> duplicate = BuildDuplicateCorpus();
  if (mixed.size() != kMixedPrograms ||
      duplicate.size() != kDuplicatePrograms) {
    std::fprintf(stderr, "admission_throughput: corpus setup failed\n");
    return 1;
  }

  std::vector<Cell> cells;
  for (const usize workers : {1, 2, 4, 8}) {
    cells.push_back(Measure("mixed", mixed, workers, /*cache=*/true));
  }
  for (const usize workers : {1, 2, 4, 8}) {
    cells.push_back(Measure("duplicate", duplicate, workers, /*cache=*/true));
  }
  // The pre-pipeline cost profile: sequential, every duplicate re-verified.
  cells.push_back(Measure("duplicate", duplicate, 1, /*cache=*/false));

  const double speedup_mixed =
      FindCell(cells, "mixed", 4, true).programs_per_sec /
      FindCell(cells, "mixed", 1, true).programs_per_sec;
  const double speedup_duplicate =
      FindCell(cells, "duplicate", 4, true).programs_per_sec /
      FindCell(cells, "duplicate", 1, false).programs_per_sec;

  if (json_path != nullptr) {
    FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "admission_throughput: cannot write %s\n",
                   json_path);
      return 2;
    }
    std::fprintf(out, "{\n  \"bench\": \"admission_throughput\",\n");
    // Worker scaling is bounded by the host: on a 1-CPU runner the mixed
    // corpus cannot speed up no matter how many workers exist.
    std::fprintf(out, "  \"host_cpus\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out,
                 "  \"corpus\": {\"mixed\": {\"programs\": %zu, "
                 "\"distinct\": %zu}, \"duplicate\": {\"programs\": %zu, "
                 "\"distinct\": 1}},\n",
                 mixed.size(), mixed.size(), duplicate.size());
    std::fprintf(out, "  \"grid\": [\n");
    for (usize i = 0; i < cells.size(); ++i) {
      const Cell& cell = cells[i];
      std::fprintf(
          out,
          "    {\"corpus\": \"%s\", \"workers\": %zu, \"cache\": %s, "
          "\"wall_ms\": %.3f, \"programs_per_sec\": %.0f, "
          "\"cache_hits\": %llu, \"coalesced_waits\": %llu, "
          "\"verify_runs\": %llu, \"queue_depth_peak\": %llu}%s\n",
          cell.corpus.c_str(), cell.workers, cell.cache ? "true" : "false",
          cell.wall_ms, cell.programs_per_sec,
          static_cast<unsigned long long>(cell.cache_hits),
          static_cast<unsigned long long>(cell.coalesced_waits),
          static_cast<unsigned long long>(cell.verify_runs),
          static_cast<unsigned long long>(cell.queue_depth_peak),
          i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"speedup\": {\n");
    std::fprintf(out, "    \"mixed_4w_over_1w\": %.2f,\n", speedup_mixed);
    std::fprintf(out,
                 "    \"duplicate_cached_4w_over_uncached_1w\": %.2f\n",
                 speedup_duplicate);
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("admission_throughput: wrote %s\n", json_path);
  } else {
    PrintTable(cells);
    benchutil::Rule();
    std::printf("  mixed corpus, 4 workers over 1:            %.2fx\n",
                speedup_mixed);
    std::printf("  duplicate corpus, cached 4w over uncached: %.2fx\n",
                speedup_duplicate);
    benchutil::Note(
        "duplicate baseline (1 worker, cache off) is the old synchronous "
        "load path: every duplicate re-pays the B-VER verification tax");
  }
  return 0;
}

// RANGE-PRECISION — how close the path-insensitive staticcheck range
// dataflow gets to the verifier's path-sensitive intervals, and what the
// three-oracle fuzz campaign costs. Two measurement sources:
//
//   corpus  the fixed workload programs: both range traces, compared per
//           (pc, reg) with the width-ratio metric (1.0 = staticcheck
//           matched the verifier's interval exactly; >1 = wider);
//   fuzz    one seeded rangefuzz campaign: claim checks against concrete
//           execution, compared points, disjoint count, wall time.
//
// Default: human-readable table. `--json PATH` writes the BENCH_range.json
// CI artifact instead.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/benchutil.h"
#include "src/analysis/diffcheck.h"
#include "src/analysis/rangefuzz.h"
#include "src/analysis/workloads.h"
#include "src/ebpf/rangetrace.h"
#include "src/ebpf/verifier.h"
#include "src/staticcheck/check.h"

namespace {

using benchutil::Rig;

struct CorpusRow {
  std::string name;
  xbase::u32 insns = 0;
  bool verifier_accepts = false;
  analysis::RangeCompareResult cmp;
};

std::vector<CorpusRow> RunCorpus(Rig& rig) {
  std::vector<std::pair<std::string, ebpf::Program>> corpus;
  const int counter_fd = benchutil::MustCreateArrayMap(rig, "cnt", 8, 4);
  const auto add = [&](const char* name,
                       xbase::Result<ebpf::Program> prog) {
    if (prog.ok()) {
      corpus.emplace_back(name, std::move(prog).value());
    }
  };
  add("straight-256", analysis::BuildStraightLine(256));
  add("diamonds-16", analysis::BuildBranchDiamonds(16));
  add("counted-loop-64", analysis::BuildCountedLoop(64));
  add("packet-counter", analysis::BuildPacketCounter(counter_fd));
  add("sk-lookup-ok", analysis::BuildSkLookupWithRelease());

  std::vector<CorpusRow> rows;
  for (const auto& [name, prog] : corpus) {
    CorpusRow row;
    row.name = name;
    row.insns = prog.len();

    ebpf::RangeTrace verifier_trace;
    ebpf::VerifyOptions vopts;
    vopts.version = rig.kernel.version();
    vopts.faults = &rig.bpf.faults();
    vopts.kfuncs = &rig.bpf.kfuncs();
    vopts.range_trace = &verifier_trace;
    row.verifier_accepts =
        ebpf::Verify(prog, rig.bpf.maps(), rig.bpf.helpers(), vopts).ok();

    ebpf::RangeTrace static_trace;
    staticcheck::CheckOptions copts;
    copts.maps = &rig.bpf.maps();
    copts.helpers = &rig.bpf.helpers();
    copts.callgraph = &rig.kernel.callgraph();
    copts.range_trace = &static_trace;
    (void)staticcheck::RunChecks(prog, copts);

    row.cmp = analysis::CompareRangeTraces(static_trace, verifier_trace);
    rows.push_back(std::move(row));
  }
  return rows;
}

int Run(const char* json_path) {
  Rig rig;
  const std::vector<CorpusRow> corpus = RunCorpus(rig);

  analysis::RangeFuzzOptions fopts;
  fopts.seed = 1;
  fopts.programs = 200;
  fopts.execs = 32;
  const auto start = std::chrono::steady_clock::now();
  auto fuzz = analysis::RunRangeFuzz(fopts);
  const auto end = std::chrono::steady_clock::now();
  const double fuzz_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  if (!fuzz.ok()) {
    std::fprintf(stderr, "range_precision: fuzz failed: %s\n",
                 fuzz.status().ToString().c_str());
    return 2;
  }
  const analysis::RangeFuzzStats& fs = fuzz.value().stats;

  if (json_path != nullptr) {
    FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "range_precision: cannot write %s\n", json_path);
      return 2;
    }
    std::fprintf(out, "{\n  \"bench\": \"range_precision\",\n");
    std::fprintf(out, "  \"corpus\": [\n");
    for (xbase::usize i = 0; i < corpus.size(); ++i) {
      const CorpusRow& row = corpus[i];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"insns\": %u, "
                   "\"verifier_accepts\": %s, \"points\": %llu, "
                   "\"disjoint\": %llu, \"mean_width_ratio\": %.6f}%s\n",
                   row.name.c_str(), row.insns,
                   row.verifier_accepts ? "true" : "false",
                   static_cast<unsigned long long>(row.cmp.points),
                   static_cast<unsigned long long>(row.cmp.disjoint),
                   row.cmp.MeanWidthRatio(),
                   i + 1 < corpus.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"fuzz\": {\n");
    std::fprintf(out, "    \"seed\": %llu,\n    \"programs\": %u,\n",
                 static_cast<unsigned long long>(fopts.seed), fs.programs);
    std::fprintf(out, "    \"executions\": %llu,\n",
                 static_cast<unsigned long long>(fs.executions));
    std::fprintf(out, "    \"claim_checks\": %llu,\n",
                 static_cast<unsigned long long>(fs.points_checked));
    std::fprintf(out, "    \"points_compared\": %llu,\n",
                 static_cast<unsigned long long>(fs.points_compared));
    std::fprintf(out, "    \"disjoint_points\": %llu,\n",
                 static_cast<unsigned long long>(fs.disjoint_points));
    std::fprintf(out, "    \"findings\": %zu,\n",
                 fuzz.value().findings.size());
    std::fprintf(out, "    \"mean_width_ratio\": %.6f,\n",
                 fs.MeanWidthRatio());
    std::fprintf(out, "    \"wall_ms\": %.1f\n  }\n}\n", fuzz_ms);
    std::fclose(out);
    std::printf("range_precision: wrote %s\n", json_path);
    return 0;
  }

  benchutil::Title("RANGE-PRECISION: staticcheck vs verifier intervals");
  std::printf("%-18s %6s %8s %8s %9s %12s\n", "program", "insns", "accept",
              "points", "disjoint", "width-ratio");
  benchutil::Rule();
  for (const CorpusRow& row : corpus) {
    std::printf("%-18s %6u %8s %8llu %9llu %12.3f\n", row.name.c_str(),
                row.insns, row.verifier_accepts ? "yes" : "no",
                static_cast<unsigned long long>(row.cmp.points),
                static_cast<unsigned long long>(row.cmp.disjoint),
                row.cmp.MeanWidthRatio());
  }
  benchutil::Rule();
  std::printf(
      "fuzz seed %llu: %u programs, %llu executions, %llu claim checks,\n"
      "  %llu points compared, %llu disjoint, %zu findings, mean width "
      "ratio %.3f, %.1f ms\n",
      static_cast<unsigned long long>(fopts.seed), fs.programs,
      static_cast<unsigned long long>(fs.executions),
      static_cast<unsigned long long>(fs.points_checked),
      static_cast<unsigned long long>(fs.points_compared),
      static_cast<unsigned long long>(fs.disjoint_points),
      fuzz.value().findings.size(), fs.MeanWidthRatio(), fuzz_ms);
  benchutil::Note(
      "width-ratio 1.0 = path-insensitive intervals as tight as the "
      "verifier's; disjoint > 0 would mean one analysis is provably wrong");
  return fuzz.value().findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = argv[i + 1];
    }
  }
  return Run(json_path);
}

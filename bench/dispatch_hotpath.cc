// DISPATCH — what the pre-decoded threaded engine buys over the legacy
// decode-per-step interpreter, measured two ways:
//   1. per-instruction execution cost over an ALU/branch-heavy corpus
//      (straight-line, branch diamonds, a counted loop) plus the
//      helper/map-backed packet counter, per engine;
//   2. per-fire hook dispatch cost through HookRegistry::FireInto with a
//      supervisor attached — the zero-allocation steady state.
//
// Default: google-benchmark timing. With `--json PATH` it runs a
// fixed-iteration measurement pass, writes the BENCH_dispatch.json CI
// artifact, and FAILS (exit 1) if the threaded engine does not clear the
// 2x per-insn speedup bar on the ALU/branch corpus.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/benchutil.h"
#include "src/analysis/workloads.h"
#include "src/core/hooks.h"
#include "src/ebpf/interp.h"

namespace {

using benchutil::Rig;
using ebpf::ExecEngine;
using xbase::u64;

struct Corpus {
  std::string name;
  xbase::u32 prog_id = 0;
  bool alu_branch = false;  // counts toward the speedup gate
};

struct ExecRig {
  ExecRig() {
    const int counter_fd = benchutil::MustCreateArrayMap(rig, "cnt", 8, 4);
    const auto add = [&](const char* name, bool alu_branch,
                         xbase::Result<ebpf::Program> prog) {
      if (!prog.ok()) {
        std::fprintf(stderr, "dispatch_hotpath: build %s: %s\n", name,
                     prog.status().ToString().c_str());
        return;
      }
      auto id = rig.loader.Load(prog.value());
      if (!id.ok()) {
        std::fprintf(stderr, "dispatch_hotpath: load %s: %s\n", name,
                     id.status().ToString().c_str());
        return;
      }
      corpus.push_back({name, id.value(), alu_branch});
    };
    add("straight-4096", true, analysis::BuildStraightLine(4096));
    // 16 diamonds is the largest size that fits the verifier's 1M
    // processed-insn path-enumeration budget (2^N paths).
    add("diamonds-16", true, analysis::BuildBranchDiamonds(16));
    add("counted-loop-1024", true, analysis::BuildCountedLoop(1024));
    add("packet-counter", false, analysis::BuildPacketCounter(counter_fd));
    ctx = rig.kernel.mem()
              .Map(64, simkern::MemPerm::kReadWrite,
                   simkern::RegionKind::kKernelData, "ctx")
              .value();
    // A parseable 64-byte frame behind the ctx so packet-counter takes its
    // full lookup-and-count path.
    const simkern::Addr pkt =
        rig.kernel.mem()
            .Map(64, simkern::MemPerm::kReadWrite,
                 simkern::RegionKind::kKernelData, "pkt")
            .value();
    (void)rig.kernel.mem().WriteU64(ctx + 8, pkt);
    (void)rig.kernel.mem().WriteU64(ctx + 16, pkt + 64);
  }

  u64 RunOnce(const Corpus& entry, ExecEngine engine, u64* insns_out) {
    auto loaded = rig.loader.Find(entry.prog_id);
    ebpf::ExecOptions opts;
    opts.engine = engine;
    auto result =
        ebpf::Execute(rig.bpf, *loaded.value(), ctx, opts, &rig.loader);
    if (!result.ok()) {
      std::fprintf(stderr, "dispatch_hotpath: exec %s: %s\n",
                   entry.name.c_str(), result.status().ToString().c_str());
      return 0;
    }
    if (insns_out != nullptr) {
      *insns_out = result.value().stats.insns;
    }
    return result.value().r0;
  }

  Rig rig;
  std::vector<Corpus> corpus;
  simkern::Addr ctx = 0;
};

ExecRig& SharedRig() {
  static ExecRig rig;
  return rig;
}

void BM_Exec(benchmark::State& state, ExecEngine engine) {
  ExecRig& rig = SharedRig();
  const Corpus& entry = rig.corpus[state.range(0)];
  u64 insns = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.RunOnce(entry, engine, &insns));
  }
  state.SetLabel(entry.name);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * insns));
}

// Per-fire cost through the full dispatch stack: supervised hook registry,
// packet-counter attachment, reused report.
struct HookRig {
  HookRig() {
    const int fd = benchutil::MustCreateArrayMap(rig, "cnt", 8, 4);
    prog_id = rig.loader.Load(analysis::BuildPacketCounter(fd).value()).value();
    ctx = rig.kernel.mem()
              .Map(64, simkern::MemPerm::kReadWrite,
                   simkern::RegionKind::kKernelData, "ctx")
              .value();
    const simkern::Addr pkt =
        rig.kernel.mem()
            .Map(64, simkern::MemPerm::kReadWrite,
                 simkern::RegionKind::kKernelData, "pkt")
            .value();
    (void)rig.kernel.mem().WriteU64(ctx + 8, pkt);
    (void)rig.kernel.mem().WriteU64(ctx + 16, pkt + 64);
  }

  // One registry per engine so per-engine numbers share nothing.
  safex::HookRegistryConfig ConfigFor(ExecEngine engine) {
    safex::HookRegistryConfig config;
    config.supervisor = &supervisor;
    config.exec_options.engine = engine;
    return config;
  }

  Rig rig;
  safex::Supervisor supervisor;
  xbase::u32 prog_id = 0;
  simkern::Addr ctx = 0;
};

void BM_HookFire(benchmark::State& state, ExecEngine engine) {
  static HookRig hook_rig;
  safex::HookRegistry hooks(hook_rig.rig.bpf, hook_rig.rig.loader,
                            *hook_rig.rig.ext_loader,
                            hook_rig.ConfigFor(engine));
  if (!hooks.AttachProgram(safex::HookPoint::kXdpIngress, hook_rig.prog_id)
           .ok()) {
    state.SkipWithError("attach failed");
    return;
  }
  safex::HookFireReport report;
  for (auto _ : state) {
    hooks.FireInto(safex::HookPoint::kXdpIngress, hook_rig.ctx, report);
    benchmark::DoNotOptimize(report.verdict);
  }
}

void RegisterAll() {
  const auto count = static_cast<int>(SharedRig().corpus.size());
  for (int i = 0; i < count; ++i) {
    benchmark::RegisterBenchmark("BM_Exec/threaded",
                                 [](benchmark::State& s) {
                                   BM_Exec(s, ExecEngine::kThreaded);
                                 })
        ->Arg(i);
    benchmark::RegisterBenchmark("BM_Exec/legacy",
                                 [](benchmark::State& s) {
                                   BM_Exec(s, ExecEngine::kLegacy);
                                 })
        ->Arg(i);
  }
  benchmark::RegisterBenchmark("BM_HookFire/threaded",
                               [](benchmark::State& s) {
                                 BM_HookFire(s, ExecEngine::kThreaded);
                               });
  benchmark::RegisterBenchmark("BM_HookFire/legacy",
                               [](benchmark::State& s) {
                                 BM_HookFire(s, ExecEngine::kLegacy);
                               });
}

// Fixed-iteration JSON pass + the acceptance gates: the ALU/branch corpus
// must clear a 4x per-insn speedup over the legacy engine (raised from 2x
// once analysis-driven elision, fusion and superblock folding landed), and
// the packet-counter fire must come in at or under 214 ns — the safex
// native-module number the paper's Table 2 row cites.
int RunJson(const char* path) {
  constexpr int kIters = 50;
  constexpr int kBatches = 8;
  ExecRig& rig = SharedRig();
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "dispatch_hotpath: cannot write %s\n", path);
    return 2;
  }
  // Best-of-kBatches batch mean: the minimum over repeated batches is the
  // standard noise-rejection estimator for a deterministic workload —
  // scheduler preemption and frequency ramps only ever inflate a batch.
  const auto mean_ns = [](auto&& fn) {
    // One untimed warm-up (decode caches, exec-stack lease, map state).
    fn();
    double best = 0;
    for (int b = 0; b < kBatches; ++b) {
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) {
        fn();
      }
      const auto end = std::chrono::steady_clock::now();
      const double batch =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                   start)
                  .count()) /
          kIters;
      if (b == 0 || batch < best) {
        best = batch;
      }
    }
    return best;
  };

  std::fprintf(out, "{\n  \"bench\": \"dispatch_hotpath\",\n");
#ifdef UNTENABLE_SWITCH_DISPATCH
  std::fprintf(out, "  \"dispatch\": \"switch\",\n");
#else
  std::fprintf(out, "  \"dispatch\": \"computed-goto\",\n");
#endif
  std::fprintf(out, "  \"iterations\": %d,\n  \"programs\": [\n", kIters);

  double gate_threaded_ns = 0;
  double gate_legacy_ns = 0;
  double packet_counter_ns = 0;
  u64 gate_insns = 0;
  for (xbase::usize i = 0; i < rig.corpus.size(); ++i) {
    const Corpus& entry = rig.corpus[i];
    u64 insns = 0;
    const double threaded_ns = mean_ns(
        [&] { rig.RunOnce(entry, ExecEngine::kThreaded, &insns); });
    const double legacy_ns =
        mean_ns([&] { rig.RunOnce(entry, ExecEngine::kLegacy, nullptr); });
    if (entry.alu_branch) {
      gate_threaded_ns += threaded_ns;
      gate_legacy_ns += legacy_ns;
      gate_insns += insns;
    }
    if (entry.name == "packet-counter") {
      packet_counter_ns = threaded_ns;
    }
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"insns_per_run\": %llu, "
                 "\"threaded_ns\": %.0f, \"legacy_ns\": %.0f, "
                 "\"threaded_ns_per_insn\": %.3f, "
                 "\"legacy_ns_per_insn\": %.3f, \"speedup\": %.2f}%s\n",
                 entry.name.c_str(), static_cast<unsigned long long>(insns),
                 threaded_ns, legacy_ns,
                 insns != 0 ? threaded_ns / static_cast<double>(insns) : 0.0,
                 insns != 0 ? legacy_ns / static_cast<double>(insns) : 0.0,
                 threaded_ns > 0 ? legacy_ns / threaded_ns : 0.0,
                 i + 1 < rig.corpus.size() ? "," : "");
  }

  // Per-fire hook dispatch cost (supervised, reused report).
  static HookRig hook_rig;
  double fire_ns[2] = {0, 0};
  const ExecEngine engines[2] = {ExecEngine::kThreaded, ExecEngine::kLegacy};
  for (int e = 0; e < 2; ++e) {
    safex::HookRegistry hooks(hook_rig.rig.bpf, hook_rig.rig.loader,
                              *hook_rig.rig.ext_loader,
                              hook_rig.ConfigFor(engines[e]));
    if (!hooks.AttachProgram(safex::HookPoint::kXdpIngress, hook_rig.prog_id)
             .ok()) {
      std::fprintf(stderr, "dispatch_hotpath: attach failed\n");
      std::fclose(out);
      return 2;
    }
    safex::HookFireReport report;
    fire_ns[e] = mean_ns([&] {
      hooks.FireInto(safex::HookPoint::kXdpIngress, hook_rig.ctx, report);
    });
    (void)hooks;  // detach via destruction; each engine used its own
  }

  const double speedup =
      gate_threaded_ns > 0 ? gate_legacy_ns / gate_threaded_ns : 0.0;
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"hook_fire_threaded_ns\": %.0f,\n", fire_ns[0]);
  std::fprintf(out, "  \"hook_fire_legacy_ns\": %.0f,\n", fire_ns[1]);
  const bool speedup_ok = speedup >= 4.0;
  const bool packet_ok = packet_counter_ns <= 214.0;
  std::fprintf(out, "  \"alu_branch_speedup\": %.2f,\n", speedup);
  std::fprintf(out, "  \"speedup_gate\": 4.0,\n");
  std::fprintf(out, "  \"packet_counter_threaded_ns\": %.0f,\n",
               packet_counter_ns);
  std::fprintf(out, "  \"packet_counter_gate_ns\": 214.0,\n");
  std::fprintf(out, "  \"gate_passed\": %s\n}\n",
               speedup_ok && packet_ok ? "true" : "false");
  std::fclose(out);
  std::printf(
      "dispatch_hotpath: wrote %s (alu/branch speedup %.2fx, "
      "packet-counter %.0f ns, hook fire %.0f ns threaded / %.0f ns "
      "legacy)\n",
      path, speedup, packet_counter_ns, fire_ns[0], fire_ns[1]);
  if (!speedup_ok) {
    std::fprintf(stderr,
                 "dispatch_hotpath: FAIL — threaded engine speedup %.2fx "
                 "is below the 4x acceptance bar\n",
                 speedup);
    return 1;
  }
  if (!packet_ok) {
    std::fprintf(stderr,
                 "dispatch_hotpath: FAIL — packet-counter fire %.0f ns "
                 "misses the 214 ns safex-native bar\n",
                 packet_counter_ns);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return RunJson(argv[i + 1]);
    }
  }
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

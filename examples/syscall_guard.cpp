// Syscall guard: the programmable syscall-security scenario the paper's
// intro cites ([26], eBPF-based syscall policies). A policy engine attaches
// to the syscall-enter hook and decides allow/deny per (task, syscall).
// Both frameworks are attached to the same hook; the safex variant then
// implements the part that defeats verified eBPF: a *string-typed* policy
// ("deny any comm matching a prefix list") that needs loops over text.
//
// Run: ./build/examples/syscall_guard
#include <cstdio>

#include "src/core/hooks.h"
#include "src/core/toolchain.h"
#include "src/ebpf/asm.h"
#include "src/xbase/bytes.h"

namespace {

// Event ctx block layout for kSyscallEnter (64 bytes, written per event):
// offset 0: u32 syscall nr; offset 4: u32 pid.
constexpr xbase::u32 kCtxSyscallNr = 0;
constexpr xbase::u32 kCtxPid = 4;
constexpr xbase::u64 kEPermVerdict = 1;

// The eBPF policy: deny syscall 59 (execve) for every task. Anything
// fancier (per-comm policies) needs string handling the bytecode can't
// express without more helpers.
ebpf::Program BuildEbpfGuard() {
  using namespace ebpf;  // NOLINT
  ProgramBuilder b("execve_guard", ProgType::kSyscall);
  b.Ins(LdxMem(BPF_W, R6, R1, kCtxSyscallNr))
      .JmpTo(BPF_JEQ, R6, 59, "deny")
      .Ins(Mov64Imm(R0, 0))
      .Ins(Exit())
      .Bind("deny")
      .Ins(Mov64Imm(R0, static_cast<s32>(kEPermVerdict)))
      .Ins(Exit());
  return b.Build().value();
}

// The safex policy: deny execve for tasks whose comm starts with any
// denylisted prefix — plain string code over the crate API.
class CommPolicyGuard : public safex::Extension {
 public:
  xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
    auto task = ctx.CurrentTask();
    XB_RETURN_IF_ERROR(task.status());
    static const char* kDenyPrefixes[] = {"nginx", "cryptominer"};
    for (const char* prefix : kDenyPrefixes) {
      XB_RETURN_IF_ERROR(ctx.Tick());
      const std::string_view comm = task.value().comm();
      const std::string_view want(prefix);
      if (comm.size() >= want.size() &&
          safex::Ctx::StrCmp(comm.substr(0, want.size()), want,
                             static_cast<xbase::u32>(want.size())) == 0) {
        XB_RETURN_IF_ERROR(ctx.Trace("denied syscall for " +
                                     std::string(comm)));
        return kEPermVerdict;
      }
    }
    return xbase::u64{0};
  }
};

}  // namespace

int main() {
  simkern::Kernel kernel;
  ebpf::Bpf bpf(kernel);
  (void)kernel.BootstrapWorkload();
  auto runtime = safex::Runtime::Create(kernel, bpf).value();
  const auto key = crypto::SigningKey::FromPassphrase("sec", "pw");
  (void)runtime->keyring().Enroll(key);
  runtime->keyring().Seal();

  ebpf::Loader bpf_loader(bpf);
  safex::ExtLoader ext_loader(*runtime);
  safex::HookRegistry hooks(bpf, bpf_loader, ext_loader);

  // Attach the eBPF nr-based guard.
  const auto prog_id = bpf_loader.Load(BuildEbpfGuard()).value();
  (void)hooks.AttachProgram(safex::HookPoint::kSyscallEnter, prog_id);

  // Attach the safex comm-based guard.
  safex::Toolchain toolchain(key);
  safex::ExtensionManifest manifest;
  manifest.name = "comm-policy";
  manifest.version = "1.0";
  manifest.caps = {safex::Capability::kTaskInspect,
                   safex::Capability::kTracing};
  auto artifact =
      toolchain
          .Build(manifest,
                 []() { return std::make_unique<CommPolicyGuard>(); },
                 crypto::Sha256::HashString("comm-policy-1.0"))
          .value();
  const auto ext_id = ext_loader.Load(artifact).value();
  (void)hooks.AttachExtension(safex::HookPoint::kSyscallEnter, ext_id);

  // One reusable ctx block for syscall events.
  const simkern::Addr ctx =
      kernel.mem()
          .Map(64, simkern::MemPerm::kReadWrite,
               simkern::RegionKind::kKernelData, "sys-ctx")
          .value();

  struct Event {
    xbase::u32 pid;
    xbase::u32 nr;
    const char* what;
  };
  const Event events[] = {
      {1234, 1, "memcached write()"},   // allowed by both
      {1234, 59, "memcached execve()"}, // denied by the eBPF nr guard
      {4321, 1, "nginx write()"},       // denied by the safex comm guard
      {4321, 59, "nginx execve()"},     // denied by both
      {1, 1, "init write()"},           // allowed
  };

  std::printf("%-24s %-8s %s\n", "event", "verdict", "who decided");
  for (const Event& event : events) {
    (void)kernel.tasks().SetCurrent(event.pid);
    xbase::u8 block[8];
    xbase::StoreLe32(block + kCtxSyscallNr, event.nr);
    xbase::StoreLe32(block + kCtxPid, event.pid);
    (void)kernel.mem().Write(ctx, block);

    auto report = hooks.Fire(safex::HookPoint::kSyscallEnter, ctx).value();
    std::string who = "-";
    for (const auto& verdict : report.verdicts) {
      if (verdict.status.ok() && verdict.value != 0) {
        who = verdict.from_safex ? "safex comm policy" : "eBPF nr policy";
        break;
      }
    }
    std::printf("%-24s %-8s %s\n", event.what,
                report.denied ? "DENY" : "allow", who.c_str());
  }

  std::printf("\nnote: the per-comm policy needs string loops; in eBPF that "
              "means either bpf_strncmp (an escape-hatch helper) or manual "
              "unrolling under the verifier's limits. In safex it is five "
              "lines of the language.\n");
  return 0;
}

// Packet filter: the XDP-style networking scenario the paper's intro
// motivates ([23] "the eXpress Data Path"). A stream of synthetic packets
// runs through (a) a verified eBPF filter and (b) a safex extension with
// identical policy: drop malformed packets, drop a denylisted "protocol",
// count everything per class. The safex variant then goes beyond what eBPF
// can express: it keeps a dynamic flow table sized at runtime from the pool
// allocator (§4 of the paper).
//
// Run: ./build/examples/packet_filter
#include <cstdio>

#include "src/analysis/workloads.h"
#include "src/core/loader.h"
#include "src/core/toolchain.h"
#include "src/ebpf/interp.h"
#include "src/xbase/bytes.h"
#include "src/xbase/rand.h"

namespace {

constexpr xbase::u64 kXdpDrop = 1;
constexpr xbase::u64 kXdpPass = 2;

class SafexFilter : public safex::Extension {
 public:
  explicit SafexFilter(int counter_fd) : counter_fd_(counter_fd) {}

  xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
    auto packet = ctx.Packet();
    XB_RETURN_IF_ERROR(packet.status());
    if (packet.value().size() < 14) {
      return kXdpDrop;  // runt frame
    }
    auto proto = packet.value().ReadU8(12);
    XB_RETURN_IF_ERROR(proto.status());
    const xbase::u32 klass = proto.value() & 3;

    // Count the class.
    auto map = ctx.Map(counter_fd_);
    XB_RETURN_IF_ERROR(map.status());
    auto slot = map.value().LookupIndex(klass);
    XB_RETURN_IF_ERROR(slot.status());
    auto count = slot.value().ReadU64(0);
    XB_RETURN_IF_ERROR(count.status());
    XB_RETURN_IF_ERROR(slot.value().WriteU64(0, count.value() + 1));

    // Denylist class 3.
    if (klass == 3) {
      return kXdpDrop;
    }

    // Flow bookkeeping in pool memory — dynamic allocation inside a kernel
    // extension, which eBPF flatly cannot do.
    auto flow = ctx.Alloc(32);
    XB_RETURN_IF_ERROR(flow.status());
    XB_RETURN_IF_ERROR(flow.value().WriteU64(0, ctx.KtimeNs()));
    XB_RETURN_IF_ERROR(flow.value().WriteU32(8, klass));
    XB_RETURN_IF_ERROR(ctx.Free(flow.value()));

    return kXdpPass;
  }

 private:
  int counter_fd_;
};

void PrintCounters(simkern::Kernel& kernel, ebpf::Bpf& bpf, int fd,
                   const char* tag) {
  auto map = bpf.maps().Find(fd);
  std::printf("%s per-class counters: ", tag);
  for (xbase::u32 klass = 0; klass < 4; ++klass) {
    xbase::u8 key[4];
    xbase::StoreLe32(key, klass);
    auto addr = map.value()->LookupAddr(kernel, key);
    auto value = kernel.mem().ReadU64(addr.value());
    std::printf("[%u]=%llu ", klass,
                static_cast<unsigned long long>(value.value()));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  simkern::Kernel kernel;
  ebpf::Bpf bpf(kernel);
  (void)kernel.BootstrapWorkload();
  auto runtime = safex::Runtime::Create(kernel, bpf).value();
  const auto key = crypto::SigningKey::FromPassphrase("netvendor", "pw");
  (void)runtime->keyring().Enroll(key);
  runtime->keyring().Seal();

  ebpf::MapSpec spec;
  spec.type = ebpf::MapType::kArray;
  spec.key_size = 4;
  spec.value_size = 8;
  spec.max_entries = 4;
  spec.name = "ebpf-counters";
  const int ebpf_fd = bpf.maps().Create(spec).value();
  spec.name = "safex-counters";
  const int safex_fd = bpf.maps().Create(spec).value();

  // Load the eBPF filter.
  ebpf::Loader loader(bpf);
  auto prog = analysis::BuildPacketCounter(ebpf_fd);
  auto prog_id = loader.Load(prog.value()).value();
  auto loaded = loader.Find(prog_id).value();

  // Sign + load the safex filter.
  safex::Toolchain toolchain(key);
  safex::ExtensionManifest manifest;
  manifest.name = "packet-filter";
  manifest.version = "2.1";
  manifest.caps = {safex::Capability::kPacketAccess,
                   safex::Capability::kMapAccess,
                   safex::Capability::kDynAlloc};
  auto artifact =
      toolchain.Build(manifest,
                      [safex_fd]() {
                        return std::make_unique<SafexFilter>(safex_fd);
                      },
                      crypto::Sha256::HashString("packet-filter-2.1"))
          .value();
  safex::ExtLoader ext_loader(*runtime);
  const xbase::u32 ext_id = ext_loader.Load(artifact).value();

  // Drive 64 synthetic packets through both.
  xbase::Rng rng(42);
  xbase::u64 ebpf_drops = 0, ebpf_passes = 0;
  xbase::u64 safex_drops = 0, safex_passes = 0;
  for (int i = 0; i < 64; ++i) {
    xbase::u8 payload[32] = {};
    const xbase::usize len = (i % 8 == 7) ? 8 : sizeof(payload);  // runts
    payload[12] = static_cast<xbase::u8>(rng.NextBelow(8));
    auto skb = kernel.net().CreateSkBuff(
        kernel.mem(), std::span<const xbase::u8>(payload, len));

    auto ebpf_result =
        ebpf::Execute(bpf, *loaded, skb.value().meta_addr, {}, &loader);
    (ebpf_result.value().r0 == kXdpPass ? ebpf_passes : ebpf_drops)++;

    safex::InvokeOptions opts;
    opts.skb_meta = skb.value().meta_addr;
    auto outcome = ext_loader.Invoke(ext_id, opts).value();
    (outcome.ret == kXdpPass ? safex_passes : safex_drops)++;
  }

  std::printf("eBPF  filter: %llu pass / %llu drop\n",
              static_cast<unsigned long long>(ebpf_passes),
              static_cast<unsigned long long>(ebpf_drops));
  PrintCounters(kernel, bpf, ebpf_fd, "eBPF ");
  std::printf("safex filter: %llu pass / %llu drop (plus a dynamic flow "
              "record per packet from the pool)\n",
              static_cast<unsigned long long>(safex_passes),
              static_cast<unsigned long long>(safex_drops));
  PrintCounters(kernel, bpf, safex_fd, "safex");
  std::printf("pool stats: %llu allocations, %u chunks still in use\n",
              static_cast<unsigned long long>(
                  runtime->pool_for_cpu(0).stats().alloc_calls),
              runtime->pool_for_cpu(0).stats().chunks_in_use);
  return 0;
}

// Syscall tracer: the observability scenario ([21] "tracing and
// observability" in the paper's intro). A safex extension attached to a
// simulated syscall hook keeps per-task state in a task-storage map,
// pushes structured events into a ring buffer, and parses a text policy
// with the crate's ParseInt (the retired bpf_strtol). Userspace (this
// main) drains the ring buffer — the full producer/consumer loop of a real
// tracing tool.
//
// Run: ./build/examples/syscall_tracer
#include <cstdio>

#include "src/core/loader.h"
#include "src/core/toolchain.h"
#include "src/xbase/bytes.h"

namespace {

struct TraceEvent {
  xbase::u32 pid;
  xbase::u32 syscall_nr;
  xbase::u64 count_for_task;
};

class SyscallTracer : public safex::Extension {
 public:
  SyscallTracer(int storage_fd, int ringbuf_fd, xbase::u32 syscall_nr)
      : storage_fd_(storage_fd), ringbuf_fd_(ringbuf_fd),
        syscall_nr_(syscall_nr) {}

  xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
    // Policy knob parsed from "configuration" text — language feature, not
    // a helper (§3.2).
    auto threshold = ctx.ParseInt("2");
    XB_RETURN_IF_ERROR(threshold.status());

    auto task = ctx.CurrentTask();
    XB_RETURN_IF_ERROR(task.status());

    // Per-task counter in task storage; TaskRef cannot be NULL.
    auto storage = ctx.TaskStorage(storage_fd_, task.value(),
                                   /*create=*/true);
    XB_RETURN_IF_ERROR(storage.status());
    auto count = storage.value().ReadU64(0);
    XB_RETURN_IF_ERROR(count.status());
    const xbase::u64 new_count = count.value() + 1;
    XB_RETURN_IF_ERROR(storage.value().WriteU64(0, new_count));

    // Emit an event once the task crosses the threshold.
    if (new_count >= static_cast<xbase::u64>(threshold.value())) {
      xbase::u8 event[16];
      xbase::StoreLe32(event, task.value().pid());
      xbase::StoreLe32(event + 4, syscall_nr_);
      xbase::StoreLe64(event + 8, new_count);
      XB_RETURN_IF_ERROR(ctx.RingbufOutput(ringbuf_fd_, event));
    }
    return new_count;
  }

 private:
  int storage_fd_;
  int ringbuf_fd_;
  xbase::u32 syscall_nr_;
};

}  // namespace

int main() {
  simkern::Kernel kernel;
  ebpf::Bpf bpf(kernel);
  (void)kernel.BootstrapWorkload();
  auto runtime = safex::Runtime::Create(kernel, bpf).value();
  const auto key = crypto::SigningKey::FromPassphrase("tracer", "pw");
  (void)runtime->keyring().Enroll(key);
  runtime->keyring().Seal();

  ebpf::MapSpec storage_spec;
  storage_spec.type = ebpf::MapType::kTaskStorage;
  storage_spec.key_size = 4;
  storage_spec.value_size = 16;
  storage_spec.max_entries = 64;
  storage_spec.name = "task-counters";
  const int storage_fd = bpf.maps().Create(storage_spec).value();

  ebpf::MapSpec ring_spec;
  ring_spec.type = ebpf::MapType::kRingBuf;
  ring_spec.key_size = 0;
  ring_spec.value_size = 0;
  ring_spec.max_entries = 4096;
  ring_spec.name = "trace-events";
  const int ring_fd = bpf.maps().Create(ring_spec).value();

  safex::Toolchain toolchain(key);
  safex::ExtensionManifest manifest;
  manifest.name = "syscall-tracer";
  manifest.version = "0.9";
  manifest.caps = {safex::Capability::kTaskInspect,
                   safex::Capability::kMapAccess,
                   safex::Capability::kRingBuf};
  auto artifact =
      toolchain
          .Build(manifest,
                 [storage_fd, ring_fd]() {
                   return std::make_unique<SyscallTracer>(storage_fd,
                                                          ring_fd, 1 /*write*/);
                 },
                 crypto::Sha256::HashString("syscall-tracer-0.9"))
          .value();
  safex::ExtLoader loader(*runtime);
  const xbase::u32 ext_id = loader.Load(artifact).value();

  // Simulate syscalls from two tasks.
  for (const xbase::u32 pid : {1234u, 4321u, 1234u, 1234u, 4321u, 4321u}) {
    (void)kernel.tasks().SetCurrent(pid);
    auto outcome = loader.Invoke(ext_id).value();
    std::printf("hook fired for pid %u: per-task count now %llu%s\n", pid,
                static_cast<unsigned long long>(outcome.ret),
                outcome.panicked ? "  (PANICKED?)" : "");
  }

  // Userspace drains the ring buffer.
  auto map = bpf.maps().Find(ring_fd);
  auto* ringbuf = dynamic_cast<ebpf::RingBufMap*>(map.value());
  std::printf("\nevents above threshold:\n");
  while (true) {
    auto record = ringbuf->Consume(kernel);
    if (!record.ok()) {
      break;
    }
    TraceEvent event;
    event.pid = xbase::LoadLe32(record.value().data());
    event.syscall_nr = xbase::LoadLe32(record.value().data() + 4);
    event.count_for_task = xbase::LoadLe64(record.value().data() + 8);
    std::printf("  pid=%u syscall=%u count=%llu\n", event.pid,
                event.syscall_nr,
                static_cast<unsigned long long>(event.count_for_task));
  }
  return 0;
}

// Quickstart: the end-to-end life of a safe kernel extension in this
// library, next to the same logic as verified eBPF bytecode.
//
//   1. boot a simulated kernel,
//   2. write an extension against the kernel-crate API,
//   3. have the trusted toolchain audit + sign it,
//   4. load it (signature check, no verifier) and invoke it,
//   5. for contrast, run the equivalent eBPF program through the verifier.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "src/analysis/workloads.h"
#include "src/core/loader.h"
#include "src/core/toolchain.h"
#include "src/ebpf/interp.h"

namespace {

// A tiny observability extension: counts invocations per current pid into a
// map, and tags each call with a timestamp.
class InvocationCounter : public safex::Extension {
 public:
  explicit InvocationCounter(int map_fd) : map_fd_(map_fd) {}

  xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
    const xbase::u64 pid = ctx.PidTgid() & 0xffffffff;
    auto map = ctx.Map(map_fd_);
    XB_RETURN_IF_ERROR(map.status());
    auto slot = map.value().LookupIndex(static_cast<xbase::u32>(pid % 4));
    XB_RETURN_IF_ERROR(slot.status());
    auto count = slot.value().ReadU64(0);
    XB_RETURN_IF_ERROR(count.status());
    XB_RETURN_IF_ERROR(slot.value().WriteU64(0, count.value() + 1));
    XB_RETURN_IF_ERROR(ctx.Trace("invocation counted"));
    return count.value() + 1;
  }

 private:
  int map_fd_;
};

}  // namespace

int main() {
  // --- 1. boot -----------------------------------------------------------
  simkern::Kernel kernel;
  ebpf::Bpf bpf(kernel);
  if (!kernel.BootstrapWorkload().ok()) {
    return 1;
  }
  auto runtime = safex::Runtime::Create(kernel, bpf);
  if (!runtime.ok()) {
    std::printf("runtime init failed: %s\n",
                runtime.status().ToString().c_str());
    return 1;
  }

  // Shared state: one BPF array map used by both frameworks.
  ebpf::MapSpec spec;
  spec.type = ebpf::MapType::kArray;
  spec.key_size = 4;
  spec.value_size = 8;
  spec.max_entries = 4;
  spec.name = "per-pid-counters";
  const int map_fd = bpf.maps().Create(spec).value();

  // --- 2-3. toolchain: audit + sign ---------------------------------------
  const auto key =
      crypto::SigningKey::FromPassphrase("acme-vendor", "s3cret");
  (void)runtime.value()->keyring().Enroll(key);
  runtime.value()->keyring().Seal();

  safex::Toolchain toolchain(key);
  safex::ExtensionManifest manifest;
  manifest.name = "invocation-counter";
  manifest.version = "1.0.0";
  manifest.caps = {safex::Capability::kMapAccess,
                   safex::Capability::kTracing};
  manifest.imports = {"kcrate.map_lookup", "kcrate.map_update",
                      "kcrate.trace"};
  auto artifact = toolchain.Build(
      manifest,
      [map_fd]() { return std::make_unique<InvocationCounter>(map_fd); },
      crypto::Sha256::HashString("invocation-counter-1.0.0-source"));
  if (!artifact.ok()) {
    std::printf("toolchain refused: %s\n",
                artifact.status().ToString().c_str());
    return 1;
  }
  std::printf("[toolchain] audit passed, artifact signed by '%s'\n",
              artifact.value().signature.key_id.c_str());

  // --- 4. load + invoke ----------------------------------------------------
  safex::ExtLoader ext_loader(*runtime.value());
  auto ext_id = ext_loader.Load(artifact.value());
  if (!ext_id.ok()) {
    std::printf("load refused: %s\n", ext_id.status().ToString().c_str());
    return 1;
  }
  for (int i = 0; i < 3; ++i) {
    auto outcome = ext_loader.Invoke(ext_id.value());
    std::printf("[safex] invocation %d: ret=%llu, %llu crate calls, "
                "%.1f us simulated\n",
                i + 1,
                static_cast<unsigned long long>(outcome.value().ret),
                static_cast<unsigned long long>(outcome.value().crate_calls),
                static_cast<double>(outcome.value().sim_time_ns) / 1e3);
  }

  // --- 5. the eBPF contrast -------------------------------------------------
  ebpf::Loader bpf_loader(bpf);
  auto prog = analysis::BuildPacketCounter(map_fd);
  auto prog_id = bpf_loader.Load(prog.value());
  if (prog_id.ok()) {
    auto loaded = bpf_loader.Find(prog_id.value());
    std::printf("\n[eBPF ] equivalent bytecode program: %u insns; verifier "
                "walked %llu insns across %llu states before allowing it\n",
                loaded.value()->source.len(),
                static_cast<unsigned long long>(
                    loaded.value()->verify.stats.insns_processed),
                static_cast<unsigned long long>(
                    loaded.value()->verify.stats.states_explored));
  }

  std::printf("\ndmesg:\n");
  for (const auto& line : kernel.dmesg()) {
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}

// In-kernel key-value cache: the storage acceleration scenario the paper's
// intro cites (BMC [20] — "Accelerating Memcached using Safe In-kernel
// Caching"). GET requests are served from a hash-map cache inside the
// extension; misses fall through to "userspace" (this main), which installs
// the answer. BMC famously had to be split into many small eBPF programs to
// fit the verifier; here the whole cache — loop over the request buffer
// included — is one extension.
//
// Run: ./build/examples/kvcache
#include <cstdio>
#include <functional>
#include <map>

#include "src/core/loader.h"
#include "src/core/toolchain.h"
#include "src/xbase/bytes.h"

namespace {

constexpr xbase::u32 kKeySize = 16;
constexpr xbase::u32 kValueSize = 32;

// Request layout in the packet: 'G'|'S', key[16], value[32] (for SET).
class KvCache : public safex::Extension {
 public:
  explicit KvCache(int cache_fd) : cache_fd_(cache_fd) {}

  xbase::Result<xbase::u64> Run(safex::Ctx& ctx) override {
    auto packet = ctx.Packet();
    XB_RETURN_IF_ERROR(packet.status());
    if (packet.value().size() < 1 + kKeySize) {
      return 0;  // malformed -> userspace
    }
    auto op = packet.value().ReadU8(0);
    XB_RETURN_IF_ERROR(op.status());
    auto key = packet.value().ReadBytes(1, kKeySize);
    XB_RETURN_IF_ERROR(key.status());

    auto cache = ctx.Map(cache_fd_);
    XB_RETURN_IF_ERROR(cache.status());

    if (op.value() == 'S') {
      if (packet.value().size() < 1 + kKeySize + kValueSize) {
        return 0;
      }
      auto value = packet.value().ReadBytes(1 + kKeySize, kValueSize);
      XB_RETURN_IF_ERROR(value.status());
      XB_RETURN_IF_ERROR(cache.value().Update(key.value(), value.value(),
                                              0));
      return 'S';  // stored in-kernel
    }

    // GET: serve from cache if hot.
    auto hit = cache.value().Lookup(key.value());
    if (!hit.ok()) {
      return 0;  // miss -> userspace
    }
    // "Respond" by writing the value back into the packet in place —
    // the BMC pre-stack-processing trick.
    auto bytes = hit.value().ReadBytes(0, kValueSize);
    XB_RETURN_IF_ERROR(bytes.status());
    XB_RETURN_IF_ERROR(
        packet.value().WriteBytes(1 + kKeySize, bytes.value()));
    return 'H';  // hit, served in-kernel
  }

 private:
  int cache_fd_;
};

std::vector<xbase::u8> MakeRequest(char op, const std::string& key,
                                   const std::string& value = "") {
  std::vector<xbase::u8> packet(1 + kKeySize + kValueSize, 0);
  packet[0] = static_cast<xbase::u8>(op);
  std::copy(key.begin(), key.end(), packet.begin() + 1);
  std::copy(value.begin(), value.end(), packet.begin() + 1 + kKeySize);
  return packet;
}

}  // namespace

int main() {
  simkern::Kernel kernel;
  ebpf::Bpf bpf(kernel);
  (void)kernel.BootstrapWorkload();
  auto runtime = safex::Runtime::Create(kernel, bpf).value();
  const auto key = crypto::SigningKey::FromPassphrase("kv", "pw");
  (void)runtime->keyring().Enroll(key);
  runtime->keyring().Seal();

  ebpf::MapSpec spec;
  spec.type = ebpf::MapType::kHash;
  spec.key_size = kKeySize;
  spec.value_size = kValueSize;
  spec.max_entries = 64;
  spec.name = "kv-cache";
  const int cache_fd = bpf.maps().Create(spec).value();

  safex::Toolchain toolchain(key);
  safex::ExtensionManifest manifest;
  manifest.name = "kv-cache";
  manifest.version = "1.0";
  manifest.caps = {safex::Capability::kPacketAccess,
                   safex::Capability::kMapAccess};
  auto artifact =
      toolchain
          .Build(manifest,
                 [cache_fd]() { return std::make_unique<KvCache>(cache_fd); },
                 crypto::Sha256::HashString("kv-cache-1.0"))
          .value();
  safex::ExtLoader loader(*runtime);
  const xbase::u32 ext_id = loader.Load(artifact).value();

  std::map<std::string, std::string> userspace_store = {
      {"alpha", "value-of-alpha"}, {"beta", "value-of-beta"}};

  std::function<void(char, const std::string&, const std::string&)> drive =
      [&](char op, const std::string& k, const std::string& v) {
    auto packet = MakeRequest(op, k, v);
    auto skb = kernel.net().CreateSkBuff(kernel.mem(), packet).value();
    safex::InvokeOptions opts;
    opts.skb_meta = skb.meta_addr;
    auto outcome = loader.Invoke(ext_id, opts).value();
    if (outcome.ret == 'H') {
      std::printf("GET %-6s -> in-kernel cache HIT\n", k.c_str());
    } else if (outcome.ret == 'S') {
      std::printf("SET %-6s -> cached in-kernel\n", k.c_str());
    } else {
      // Miss: userspace answers and warms the cache via a SET request.
      const auto it = userspace_store.find(k);
      std::printf("GET %-6s -> miss, userspace answers '%s', warming "
                  "cache\n",
                  k.c_str(), it == userspace_store.end() ? "(none)"
                                                         : it->second.c_str());
      if (it != userspace_store.end()) {
        drive('S', k, it->second);
      }
    }
  };

  drive('G', "alpha", "");  // miss -> warm
  drive('G', "alpha", "");  // hit
  drive('G', "beta", "");   // miss -> warm
  drive('G', "beta", "");   // hit
  drive('G', "alpha", "");  // still hit
  drive('G', "gamma", "");  // miss, nothing to warm

  std::printf("\nBMC note: upstream BMC split its cache into many eBPF "
              "programs to satisfy verifier limits; this extension is one "
              "plain function.\n");
  return 0;
}

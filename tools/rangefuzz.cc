// rangefuzz: the three-oracle range-soundness fuzzer from the command line.
//
//   rangefuzz --seed N --progs N --execs N   seeded fuzz campaign
//   rangefuzz ... --fault ID                 inject a verifier range fault
//                                            (repeatable; expect findings)
//   rangefuzz --replay SEED [--execs N]      re-fuzz one program by the
//                                            per-program seed a finding
//                                            printed
//   rangefuzz --check-faults                 deterministic Table-1 witness
//                                            tables (all four range faults
//                                            AND all three relational
//                                            faults must be detected)
//   rangefuzz --list-faults                  injectable range fault ids
//
// Exit status: 0 clean / all faults detected, 1 unsoundness or divergence
// found (or a fault missed), 2 usage or internal failure.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/analysis/rangefuzz.h"
#include "src/ebpf/fault.h"

namespace {

const char* const kRangeFaults[] = {
    "verifier.alu32_bounds_trunc",
    "verifier.sign_ext_confusion",
    "verifier.jgt_refine_off_by_one",
    "verifier.tnum_mul_precision",
    "verifier.reg_reg_refine_off_by_one",
    "verifier.spill_width_confusion",
    "verifier.pkt_range_stale_helper",
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: rangefuzz [--seed N] [--progs N] [--execs N] [--body N]\n"
      "                 [--fault ID]... [--replay SEED] [--quiet]\n"
      "       rangefuzz --check-faults\n"
      "       rangefuzz --list-faults\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  analysis::RangeFuzzOptions opts;
  bool check_faults = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--check-faults") == 0) {
      check_faults = true;
    } else if (std::strcmp(arg, "--list-faults") == 0) {
      for (const char* id : kRangeFaults) {
        std::printf("%s\n", id);
      }
      return 0;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--seed") == 0 && has_value) {
      opts.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(arg, "--progs") == 0 && has_value) {
      opts.programs = static_cast<xbase::u32>(
          std::strtoul(argv[++i], nullptr, 0));
    } else if (std::strcmp(arg, "--execs") == 0 && has_value) {
      opts.execs = static_cast<xbase::u32>(
          std::strtoul(argv[++i], nullptr, 0));
    } else if (std::strcmp(arg, "--body") == 0 && has_value) {
      opts.body_len = static_cast<xbase::u32>(
          std::strtoul(argv[++i], nullptr, 0));
    } else if (std::strcmp(arg, "--replay") == 0 && has_value) {
      opts.replay_program_seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(arg, "--fault") == 0 && has_value) {
      opts.verifier_faults.emplace_back(argv[++i]);
    } else {
      return Usage();
    }
  }

  if (check_faults) {
    auto rows = analysis::CheckRangeFaults();
    if (!rows.ok()) {
      std::fprintf(stderr, "rangefuzz: %s\n",
                   rows.status().ToString().c_str());
      return 2;
    }
    std::fputs(analysis::FormatRangeFaultTable(rows.value()).c_str(),
               stdout);
    auto rel_rows = analysis::CheckRelationalFaults();
    if (!rel_rows.ok()) {
      std::fprintf(stderr, "rangefuzz: %s\n",
                   rel_rows.status().ToString().c_str());
      return 2;
    }
    std::fputs("\n", stdout);
    std::fputs(
        analysis::FormatRelationalFaultTable(rel_rows.value()).c_str(),
        stdout);
    for (const auto& row : rows.value()) {
      if (!row.detected()) {
        return 1;
      }
    }
    for (const auto& row : rel_rows.value()) {
      if (!row.detected()) {
        return 1;
      }
    }
    return 0;
  }

  auto report = analysis::RunRangeFuzz(opts);
  if (!report.ok()) {
    std::fprintf(stderr, "rangefuzz: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  if (!quiet || !report.value().findings.empty()) {
    std::fputs(analysis::FormatRangeFuzzReport(report.value()).c_str(),
               stdout);
  }
  // With an injected fault, divergence alone is a successful detection;
  // without one, any finding is a bug in one of the analyses.
  if (opts.verifier_faults.empty()) {
    return report.value().findings.empty() ? 0 : 1;
  }
  return 0;
}

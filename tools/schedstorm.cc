// schedstorm: deterministic chaos harness for the scheduler hook family.
//
//   schedstorm                 one storm with the default seed/op count
//   schedstorm --seed N        replay a specific seed
//   schedstorm --ops M         number of randomized operations (default 10000)
//   schedstorm --cpus N        cross-CPU storm: one scheduler core per
//                              simulated CPU, tick bursts run concurrently
//                              on real CPU-bound threads, fault toggles
//                              race the in-flight picks, invariants are
//                              asserted machine-wide at the burst barrier
//   schedstorm --no-faults     leave the sched fault registry alone
//   schedstorm --check-faults  per-fault-class detection/containment matrix
//                              instead of a storm (plus clean baselines)
//   schedstorm --quiet         print only the verdict line
//
// Every storm is a pure function of --seed/--ops/--faults, so any failure
// printed by a test or CI leg replays bit-identically from its seed.
// Exit status: 0 all invariants/checks held, 1 something broke, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/analysis/schedstorm.h"

namespace {

void PrintStats(const analysis::SchedStormStats& stats) {
  std::printf("  ops executed          %llu (%llu ticks)\n",
              static_cast<unsigned long long>(stats.ops_executed),
              static_cast<unsigned long long>(stats.ticks));
  std::printf("  dispatches            %llu (ext %llu, default %llu, "
              "fallback %llu, yields %llu)\n",
              static_cast<unsigned long long>(stats.dispatches),
              static_cast<unsigned long long>(stats.ext_picks),
              static_cast<unsigned long long>(stats.default_picks),
              static_cast<unsigned long long>(stats.fallback_picks),
              static_cast<unsigned long long>(stats.yields));
  std::printf("  contained faults      %llu deadline misses, %llu invalid "
              "picks, %llu starvation events, %llu oopses\n",
              static_cast<unsigned long long>(stats.deadline_misses),
              static_cast<unsigned long long>(stats.invalid_picks),
              static_cast<unsigned long long>(stats.starvation_events),
              static_cast<unsigned long long>(stats.oopses_contained));
  std::printf("  attach/detach         %llu / %llu; %llu fault toggles "
              "(%zu of 4 sched defects enabled at some point)\n",
              static_cast<unsigned long long>(stats.attaches),
              static_cast<unsigned long long>(stats.detaches),
              static_cast<unsigned long long>(stats.fault_toggles),
              stats.faults_ever_injected);
  std::printf("  tasks                 %llu created, %llu exited\n",
              static_cast<unsigned long long>(stats.task_creates),
              static_cast<unsigned long long>(stats.task_exits));
  std::printf("  supervisor            %llu failures, %llu trips, "
              "%llu evictions, %llu readmissions\n",
              static_cast<unsigned long long>(stats.supervisor_failures),
              static_cast<unsigned long long>(stats.supervisor_trips),
              static_cast<unsigned long long>(stats.supervisor_evictions),
              static_cast<unsigned long long>(
                  stats.supervisor_readmissions));
  std::printf("  max runnable wait     %.3f ms\n",
              static_cast<double>(stats.max_wait_seen_ns) / 1e6);
  std::printf("  simulated time        %.3f ms\n",
              static_cast<double>(stats.final_sim_time_ns) / 1e6);
}

int RunFaultChecks() {
  const std::vector<analysis::SchedFaultCheck> checks =
      analysis::RunSchedFaultChecks();
  bool all_passed = true;
  for (const analysis::SchedFaultCheck& check : checks) {
    std::printf("  %-32s %s\n", check.name.c_str(),
                check.passed ? "contained" : "FAIL");
    if (!check.passed) {
      std::printf("    %s\n", check.detail.c_str());
      all_passed = false;
    }
  }
  if (!all_passed) {
    std::printf("schedstorm: FAIL — a fault class escaped detection or "
                "containment\n");
    return 1;
  }
  std::printf("schedstorm: OK — every sched fault class detected, "
              "attributed and contained; clean policies charge-free\n");
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: schedstorm [--seed N] [--ops M] [--cpus N] "
               "[--no-faults] [--check-faults] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  analysis::SchedStormConfig config;
  bool quiet = false;
  bool check_faults = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      config.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--ops" && i + 1 < argc) {
      config.ops = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--cpus" && i + 1 < argc) {
      config.cpus =
          static_cast<xbase::u32>(std::strtoul(argv[++i], nullptr, 0));
      if (config.cpus < 1) {
        return Usage();
      }
    } else if (arg == "--no-faults") {
      config.toggle_faults = false;
    } else if (arg == "--faults") {
      config.toggle_faults = true;
    } else if (arg == "--check-faults") {
      check_faults = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage();
    }
  }

  if (check_faults) {
    std::printf("schedstorm: fault detection/containment matrix\n");
    return RunFaultChecks();
  }

  std::printf("schedstorm: seed=%llu ops=%llu cpus=%u faults=%s\n",
              static_cast<unsigned long long>(config.seed),
              static_cast<unsigned long long>(config.ops), config.cpus,
              config.toggle_faults ? "on" : "off");
  const analysis::SchedStormReport report = analysis::RunSchedStorm(config);
  if (!quiet) {
    PrintStats(report.stats);
  }
  if (!report.ok) {
    std::printf("schedstorm: FAIL — %s\n", report.failure.c_str());
    std::printf("schedstorm: replay with: schedstorm --seed %llu --ops "
                "%llu%s\n",
                static_cast<unsigned long long>(report.seed),
                static_cast<unsigned long long>(config.ops),
                config.toggle_faults ? "" : " --no-faults");
    return 1;
  }
  std::printf("schedstorm: OK — every invariant held after each of %llu "
              "ops (kernel alive, runqueue sane, every runnable task kept "
              "progressing)\n",
              static_cast<unsigned long long>(report.stats.ops_executed));
  return 0;
}

// xcheck: run the verifier-independent staticcheck analysis from the
// command line.
//
//   xcheck --list              list built-in demo programs
//   xcheck --demo NAME         analyze a built-in demo (disasm + findings)
//   xcheck --diff              run the differential oracle table
//   xcheck --helpers           helper census: id, name, family, version
//                              (cross-checked against the static name table)
//   xcheck --ranges NAME       per-instruction staticcheck vs verifier
//                              range table for a demo ('!' = disjoint)
//   xcheck --zones NAME        per-instruction staticcheck vs verifier
//                              difference-bound table ('!' = contradicts)
//   xcheck FILE.bin            analyze raw bytecode (8-byte LE insns)
//
// Exit status: 0 clean, 1 error-severity findings (--ranges: disjoint
// claims; --zones: contradictory bounds; --helpers: name-table drift),
// 2 usage/load problems.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "src/analysis/diffcheck.h"
#include "src/analysis/workloads.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/disasm.h"
#include "src/ebpf/rangetrace.h"
#include "src/ebpf/verifier.h"
#include "src/staticcheck/check.h"

namespace {

struct Demo {
  const char* name;
  const char* blurb;
  std::function<xbase::Result<ebpf::Program>(ebpf::Bpf&)> build;
};

xbase::Result<int> MakeArrayMap(ebpf::Bpf& bpf, const char* name,
                                xbase::u32 value_size, xbase::u32 entries) {
  ebpf::MapSpec spec;
  spec.type = ebpf::MapType::kArray;
  spec.key_size = 4;
  spec.value_size = value_size;
  spec.max_entries = entries;
  spec.name = name;
  return bpf.maps().Create(spec);
}

std::vector<Demo> Demos() {
  return {
      {"packet-counter", "clean XDP-style filter (expected: no findings)",
       [](ebpf::Bpf& bpf) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, MakeArrayMap(bpf, "cnt", 8, 4));
         return analysis::BuildPacketCounter(fd);
       }},
      {"sk-lookup-ok", "correct socket lookup + release (expected: clean)",
       [](ebpf::Bpf&) { return analysis::BuildSkLookupWithRelease(); }},
      {"arbitrary-read", "map-value pointer walked 4096 bytes out",
       [](ebpf::Bpf& bpf) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, MakeArrayMap(bpf, "vic", 8, 4));
         return analysis::BuildArbitraryReadExploit(fd, 4096);
       }},
      {"jmp32-oob", "64-bit index hidden behind a 32-bit bounds check",
       [](ebpf::Bpf& bpf) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, MakeArrayMap(bpf, "vic", 64, 4));
         return analysis::BuildJmp32BoundsExploit(fd);
       }},
      {"ptr-leak", "returns a map-value kernel address in R0",
       [](ebpf::Bpf& bpf) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, MakeArrayMap(bpf, "vic", 8, 4));
         return analysis::BuildPtrLeakExploit(fd);
       }},
      {"double-spin-lock", "acquires the same bpf_spin_lock twice",
       [](ebpf::Bpf& bpf) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, MakeArrayMap(bpf, "locked", 16, 1));
         return analysis::BuildDoubleSpinLock(fd);
       }},
      {"sk-leak", "socket lookup without release",
       [](ebpf::Bpf&) { return analysis::BuildSkLookupNoRelease(); }},
      {"jit-victim", "reads an uninitialized register on a cold path",
       [](ebpf::Bpf&) { return analysis::BuildJitHijackVictim(); }},
      {"rel-guard", "bound carried through a reg-reg compare (zones prove "
                    "it, intervals cannot)",
       [](ebpf::Bpf& bpf) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, MakeArrayMap(bpf, "rel", 64, 4));
         return analysis::BuildRelGuard(fd);
       }},
      {"spill-heavy", "index round-tripped through stack spills 8 times",
       [](ebpf::Bpf& bpf) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, MakeArrayMap(bpf, "spl", 64, 4));
         return analysis::BuildSpillHeavy(8, fd);
       }},
      {"pkt-stale", "packet pointer reused after a mutating helper",
       [](ebpf::Bpf&) { return analysis::BuildPktRangeStaleExploit(); }},
  };
}

int Analyze(const ebpf::Program& prog, ebpf::Bpf* bpf) {
  staticcheck::CheckOptions opts;
  if (bpf != nullptr) {
    opts.maps = &bpf->maps();
    opts.helpers = &bpf->helpers();
  }
  auto report = staticcheck::RunChecks(prog, opts);
  if (!report.ok()) {
    std::fprintf(stderr, "xcheck: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::fputs(ebpf::DisasmProgram(prog).c_str(), stdout);
  std::fputs(staticcheck::FormatReport(prog, report.value()).c_str(),
             stdout);
  return report.value().errors() > 0 ? 1 : 0;
}

int RunDemo(const char* name) {
  for (const Demo& demo : Demos()) {
    if (std::strcmp(demo.name, name) != 0) {
      continue;
    }
    simkern::Kernel kernel{simkern::KernelConfig{}};
    ebpf::Bpf bpf(kernel);
    auto prog = demo.build(bpf);
    if (!prog.ok()) {
      std::fprintf(stderr, "xcheck: build failed: %s\n",
                   prog.status().ToString().c_str());
      return 2;
    }
    std::printf("demo %s: %s\n", demo.name, demo.blurb);
    return Analyze(prog.value(), &bpf);
  }
  std::fprintf(stderr, "xcheck: unknown demo '%s' (try --list)\n", name);
  return 2;
}

// Side-by-side range table: both analyses' per-(pc, reg) scalar claims for
// a demo program, disagreement rows marked. The human-readable face of the
// differential pair rangefuzz checks mechanically.
int RunRanges(const char* name) {
  for (const Demo& demo : Demos()) {
    if (std::strcmp(demo.name, name) != 0) {
      continue;
    }
    simkern::Kernel kernel{simkern::KernelConfig{}};
    ebpf::Bpf bpf(kernel);
    auto prog = demo.build(bpf);
    if (!prog.ok()) {
      std::fprintf(stderr, "xcheck: build failed: %s\n",
                   prog.status().ToString().c_str());
      return 2;
    }

    ebpf::RangeTrace verifier_trace;
    ebpf::VerifyOptions vopts;
    vopts.version = kernel.version();
    vopts.faults = &bpf.faults();
    vopts.kfuncs = &bpf.kfuncs();
    vopts.range_trace = &verifier_trace;
    auto verdict =
        ebpf::Verify(prog.value(), bpf.maps(), bpf.helpers(), vopts);

    ebpf::RangeTrace static_trace;
    staticcheck::CheckOptions copts;
    copts.maps = &bpf.maps();
    copts.helpers = &bpf.helpers();
    copts.callgraph = &kernel.callgraph();
    copts.range_trace = &static_trace;
    auto report = staticcheck::RunChecks(prog.value(), copts);
    if (!report.ok()) {
      std::fprintf(stderr, "xcheck: %s\n",
                   report.status().ToString().c_str());
      return 2;
    }

    std::printf("demo %s: %s\n", demo.name, demo.blurb);
    std::printf("verifier: %s\n\n",
                verdict.ok() ? "accepts" : verdict.status().message().c_str());
    std::printf("%-4s %-28s %-3s  %-44s %s\n", "pc", "insn", "reg",
                "staticcheck", "verifier");
    xbase::u64 disjoint_rows = 0;
    const xbase::usize len =
        std::min(static_trace.per_pc.size(), verifier_trace.per_pc.size());
    for (xbase::usize pc = 0; pc < len; ++pc) {
      bool first = true;
      for (xbase::u32 reg = 0; reg < ebpf::kNumRegs; ++reg) {
        const ebpf::RegClaim& sc = static_trace.per_pc[pc][reg];
        const ebpf::RegClaim& ver = verifier_trace.per_pc[pc][reg];
        if (sc.kind != ebpf::RegClaim::Kind::kScalar &&
            ver.kind != ebpf::RegClaim::Kind::kScalar) {
          continue;
        }
        const bool disjoint = ebpf::ClaimsDisjoint(sc, ver);
        disjoint_rows += disjoint ? 1 : 0;
        const auto render = [](const ebpf::RegClaim& c) -> std::string {
          if (c.kind == ebpf::RegClaim::Kind::kScalar && c.umin == 0 &&
              c.umax == ~xbase::u64{0} && c.bits_mask == ~xbase::u64{0}) {
            return "unknown";
          }
          return c.ToString();
        };
        std::printf("%-4zu %-28s r%-2u  %-44s %s%s\n", pc,
                    first
                        ? ebpf::DisasmInsn(prog.value().insns[pc]).c_str()
                        : "",
                    reg, render(sc).c_str(), render(ver).c_str(),
                    disjoint ? "   !DISJOINT" : "");
        first = false;
      }
    }
    const analysis::RangeCompareResult cmp =
        analysis::CompareRangeTraces(static_trace, verifier_trace);
    std::printf(
        "\n%llu points compared, %llu disjoint, mean width ratio %.3f\n",
        static_cast<unsigned long long>(cmp.points),
        static_cast<unsigned long long>(cmp.disjoint), cmp.MeanWidthRatio());
    return disjoint_rows > 0 ? 1 : 0;
  }
  std::fprintf(stderr, "xcheck: unknown demo '%s' (try --list)\n", name);
  return 2;
}

// Side-by-side relational table: both analyses' per-pc difference-bound
// claims, contradictions marked. The zones counterpart of --ranges.
int RunZones(const char* name) {
  for (const Demo& demo : Demos()) {
    if (std::strcmp(demo.name, name) != 0) {
      continue;
    }
    simkern::Kernel kernel{simkern::KernelConfig{}};
    ebpf::Bpf bpf(kernel);
    auto prog = demo.build(bpf);
    if (!prog.ok()) {
      std::fprintf(stderr, "xcheck: build failed: %s\n",
                   prog.status().ToString().c_str());
      return 2;
    }

    ebpf::RangeTrace verifier_trace;
    ebpf::VerifyOptions vopts;
    vopts.version = kernel.version();
    vopts.faults = &bpf.faults();
    vopts.kfuncs = &bpf.kfuncs();
    vopts.range_trace = &verifier_trace;
    auto verdict =
        ebpf::Verify(prog.value(), bpf.maps(), bpf.helpers(), vopts);

    ebpf::RangeTrace static_trace;
    staticcheck::CheckOptions copts;
    copts.maps = &bpf.maps();
    copts.helpers = &bpf.helpers();
    copts.callgraph = &kernel.callgraph();
    copts.range_trace = &static_trace;
    auto report = staticcheck::RunChecks(prog.value(), copts);
    if (!report.ok()) {
      std::fprintf(stderr, "xcheck: %s\n",
                   report.status().ToString().c_str());
      return 2;
    }

    std::printf("demo %s: %s\n", demo.name, demo.blurb);
    std::printf("verifier: %s\n\n",
                verdict.ok() ? "accepts" : verdict.status().message().c_str());
    std::printf("%-4s %-28s %-40s %s\n", "pc", "insn", "staticcheck zones",
                "verifier relations");
    const xbase::usize len = std::min(static_trace.rel_per_pc.size(),
                                      verifier_trace.rel_per_pc.size());
    for (xbase::usize pc = 0; pc < len; ++pc) {
      const ebpf::RelClaims& sc = static_trace.rel_per_pc[pc];
      const ebpf::RelClaims& ver = verifier_trace.rel_per_pc[pc];
      if (!sc.seen && !ver.seen) {
        continue;
      }
      bool contradicts = false;
      for (int i = 0; i < ebpf::kRelRegs && !contradicts; ++i) {
        for (int j = 0; j < ebpf::kRelRegs; ++j) {
          if (i != j && sc.seen && ver.seen &&
              ebpf::RelBoundsContradict(sc.At(i, j), ver.At(j, i))) {
            contradicts = true;
            break;
          }
        }
      }
      std::printf("%-4zu %-28s %-40s %s%s\n", pc,
                  ebpf::DisasmInsn(prog.value().insns[pc]).c_str(),
                  ebpf::FormatRelClaims(sc).c_str(),
                  ebpf::FormatRelClaims(ver).c_str(),
                  contradicts ? "   !CONTRADICTS" : "");
    }
    const analysis::RelCompareResult cmp =
        analysis::CompareRelTraces(static_trace, verifier_trace);
    std::printf("\n%llu bound pairs compared, %llu contradictory\n",
                static_cast<unsigned long long>(cmp.points),
                static_cast<unsigned long long>(cmp.contradictions));
    return cmp.contradictions > 0 ? 1 : 0;
  }
  std::fprintf(stderr, "xcheck: unknown demo '%s' (try --list)\n", name);
  return 2;
}

// Helper census: every registered helper with its declared contract, the
// human face of what permcheck model-checks. Also cross-checks the static
// disasm name table against the live registry so the two cannot drift.
int RunHelpers() {
  simkern::Kernel kernel{simkern::KernelConfig{}};
  ebpf::Bpf bpf(kernel);
  std::printf("%-5s %-32s %-8s %-6s %-6s %s\n", "id", "name", "family",
              "since", "writes", "static-name");
  int drift = 0;
  for (const ebpf::HelperSpec* spec : bpf.helpers().AllSpecs()) {
    const std::string_view static_name = ebpf::HelperName(spec->id);
    const bool match = static_name == spec->name;
    drift += match ? 0 : 1;
    std::printf("%-5u %-32s %-8s %-6s %-6s %s\n", spec->id,
                spec->name.c_str(),
                ebpf::HelperFamilyName(spec->family).data(),
                spec->introduced.ToString().c_str(),
                spec->writes_state ? "yes" : "no",
                match ? "ok" : "DRIFT");
  }
  if (drift > 0) {
    std::fprintf(stderr,
                 "xcheck: %d helper(s) missing from the static name table "
                 "(src/ebpf/disasm.cc HelperName)\n",
                 drift);
  }
  return drift > 0 ? 1 : 0;
}

int RunFile(const char* path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "xcheck: cannot open %s\n", path);
    return 2;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(file)),
                          std::istreambuf_iterator<char>());
  // Files carry the kernel's packed 8-byte wire format, which is NOT the
  // in-memory ebpf::Insn layout (that struct widens dst/src to bytes and
  // pads to 12): decode each record field by field, little-endian.
  constexpr xbase::usize kWireInsnSize = 8;
  if (bytes.empty() || bytes.size() % kWireInsnSize != 0) {
    std::fprintf(stderr,
                 "xcheck: %s is not a whole number of 8-byte "
                 "instructions\n",
                 path);
    return 2;
  }
  ebpf::Program prog;
  prog.name = path;
  prog.insns.resize(bytes.size() / kWireInsnSize);
  for (xbase::usize i = 0; i < prog.insns.size(); ++i) {
    const auto* p = reinterpret_cast<const unsigned char*>(bytes.data()) +
                    i * kWireInsnSize;
    ebpf::Insn& in = prog.insns[i];
    in.opcode = p[0];
    in.dst = p[1] & 0x0f;
    in.src = p[1] >> 4;
    in.off = static_cast<xbase::s16>(
        static_cast<xbase::u16>(p[2]) | static_cast<xbase::u16>(p[3]) << 8);
    in.imm = static_cast<xbase::s32>(
        static_cast<xbase::u32>(p[4]) | static_cast<xbase::u32>(p[5]) << 8 |
        static_cast<xbase::u32>(p[6]) << 16 |
        static_cast<xbase::u32>(p[7]) << 24);
  }
  // Analyze against the standard helper registry so helper-arg checking
  // works on raw files too; the map table is empty (a raw file has no fds
  // to resolve anyway).
  simkern::Kernel kernel{simkern::KernelConfig{}};
  ebpf::Bpf bpf(kernel);
  return Analyze(prog, &bpf);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--list") == 0) {
    for (const Demo& demo : Demos()) {
      std::printf("%-18s %s\n", demo.name, demo.blurb);
    }
    return 0;
  }
  if (argc == 3 && std::strcmp(argv[1], "--demo") == 0) {
    return RunDemo(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "--ranges") == 0) {
    return RunRanges(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "--zones") == 0) {
    return RunZones(argv[2]);
  }
  if (argc == 2 && std::strcmp(argv[1], "--helpers") == 0) {
    return RunHelpers();
  }
  if (argc == 2 && std::strcmp(argv[1], "--diff") == 0) {
    auto report = analysis::RunDiffCheck();
    if (!report.ok()) {
      std::fprintf(stderr, "xcheck: %s\n",
                   report.status().ToString().c_str());
      return 2;
    }
    std::fputs(
        analysis::FormatDiffTable(report.value(), /*machine_readable=*/
                                  true)
            .c_str(),
        stdout);
    return 0;
  }
  if (argc == 2 && argv[1][0] != '-') {
    return RunFile(argv[1]);
  }
  std::fprintf(stderr,
               "usage: xcheck --list | --demo NAME | --diff | --helpers | "
               "--ranges NAME | --zones NAME | FILE.bin\n");
  return 2;
}

// chaos: deterministic chaos harness for the supervised extension stack.
//
//   chaos                      one run with the default seed/op count
//   chaos --seed N             replay a specific seed
//   chaos --ops M              number of randomized operations (default 10000)
//   chaos --no-faults          leave the fault registry alone (calm mode)
//   chaos --cpus N             cross-CPU storm: every fire op bursts one
//                              fire per CPU on real CPU-bound threads,
//                              fault toggles race the in-flight fires, and
//                              invariants are asserted machine-wide at the
//                              post-burst barrier
//   chaos --engine E           execution engine for hook fires:
//                              threaded (default) or legacy
//   chaos --quiet              print only the verdict line
//
// Every run is a pure function of --seed/--ops/--faults, so any failure
// printed by a test or CI leg replays bit-identically from its seed.
// Exit status: 0 all invariants held every step, 1 an invariant broke,
// 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/analysis/chaos.h"

namespace {

void PrintStats(const analysis::ChaosStats& stats) {
  std::printf("  ops executed          %llu\n",
              static_cast<unsigned long long>(stats.ops_executed));
  std::printf("  hook fires            %llu (served %llu, failed %llu, "
              "skipped %llu)\n",
              static_cast<unsigned long long>(stats.fires),
              static_cast<unsigned long long>(stats.attachments_served),
              static_cast<unsigned long long>(stats.attachments_failed),
              static_cast<unsigned long long>(stats.attachments_skipped));
  std::printf("  loads                 %llu ok, %llu rejected; %llu unloads\n",
              static_cast<unsigned long long>(stats.loads_ok),
              static_cast<unsigned long long>(stats.loads_rejected),
              static_cast<unsigned long long>(stats.unloads));
  std::printf("  attach/detach         %llu / %llu\n",
              static_cast<unsigned long long>(stats.attaches),
              static_cast<unsigned long long>(stats.detaches));
  std::printf("  fault toggles         %llu (%zu of %zu defects enabled at "
              "some point)\n",
              static_cast<unsigned long long>(stats.fault_toggles),
              stats.faults_ever_injected, stats.fault_catalog_size);
  std::printf("  oopses contained      %llu\n",
              static_cast<unsigned long long>(stats.oopses_contained));
  std::printf("  supervisor            %llu failures, %llu trips, "
              "%llu evictions, %llu readmissions\n",
              static_cast<unsigned long long>(stats.supervisor_failures),
              static_cast<unsigned long long>(stats.supervisor_trips),
              static_cast<unsigned long long>(stats.supervisor_evictions),
              static_cast<unsigned long long>(stats.supervisor_readmissions));
  std::printf("  simulated time        %.3f ms\n",
              static_cast<double>(stats.final_sim_time_ns) / 1e6);
}

int Usage() {
  std::fprintf(stderr,
               "usage: chaos [--seed N] [--ops M] [--cpus N] [--no-faults] "
               "[--engine threaded|legacy] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  analysis::ChaosConfig config;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      config.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--ops" && i + 1 < argc) {
      config.ops = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--cpus" && i + 1 < argc) {
      config.cpus =
          static_cast<xbase::u32>(std::strtoul(argv[++i], nullptr, 0));
      if (config.cpus < 1) {
        return Usage();
      }
    } else if (arg == "--no-faults") {
      config.toggle_faults = false;
    } else if (arg == "--faults") {
      config.toggle_faults = true;
    } else if (arg == "--engine" && i + 1 < argc) {
      const std::string engine = argv[++i];
      if (engine == "threaded") {
        config.engine = ebpf::ExecEngine::kThreaded;
      } else if (engine == "legacy") {
        config.engine = ebpf::ExecEngine::kLegacy;
      } else {
        return Usage();
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage();
    }
  }

  std::printf("chaos: seed=%llu ops=%llu cpus=%u faults=%s engine=%s\n",
              static_cast<unsigned long long>(config.seed),
              static_cast<unsigned long long>(config.ops), config.cpus,
              config.toggle_faults ? "on" : "off",
              config.engine == ebpf::ExecEngine::kLegacy ? "legacy"
                                                         : "threaded");
  const analysis::ChaosReport report = analysis::RunChaos(config);
  if (!quiet) {
    PrintStats(report.stats);
  }
  if (!report.ok) {
    std::printf("chaos: FAIL — %s\n", report.failure.c_str());
    std::printf("chaos: replay with: chaos --seed %llu --ops %llu%s\n",
                static_cast<unsigned long long>(report.seed),
                static_cast<unsigned long long>(config.ops),
                config.toggle_faults ? "" : " --no-faults");
    return 1;
  }
  std::printf("chaos: OK — every invariant held after each of %llu ops "
              "(kernel alive, refcounts/locks/RCU balanced, supervisor "
              "consistent)\n",
              static_cast<unsigned long long>(report.stats.ops_executed));
  return 0;
}

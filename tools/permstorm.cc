// permstorm: seeded randomized triage for the helper access-control census.
//
//   permstorm                 one storm with the default seed/op count
//   permstorm --seed N        replay a specific seed
//   permstorm --ops M         number of sampled admission cells (default
//                             10000)
//   permstorm --no-faults     never inject perm defects: any divergence
//                             from the contract is a false positive
//   permstorm --check-faults  per-fault-class census detection matrix
//                             instead of a storm (plus clean baselines)
//   permstorm --quiet         print only the verdict line
//
// Every storm is a pure function of --seed/--ops/--faults, so any failure
// printed by a test or CI leg replays bit-identically from its seed.
// Exit status: 0 all probes matched the model, 1 something diverged, 2
// usage.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/analysis/permaudit.h"
#include "src/analysis/permstorm.h"

namespace {

void PrintStats(const analysis::PermStormStats& stats) {
  std::printf("  cells probed          %llu over %llu ops\n",
              static_cast<unsigned long long>(stats.cells_probed),
              static_cast<unsigned long long>(stats.ops_executed));
  std::printf("  verifier gate         %llu admits, %llu denials\n",
              static_cast<unsigned long long>(stats.verifier_admits),
              static_cast<unsigned long long>(stats.verifier_denials));
  std::printf("  dispatch gate         %llu denials\n",
              static_cast<unsigned long long>(stats.runtime_denials));
  std::printf("  loader gate           %llu probes, %llu denials\n",
              static_cast<unsigned long long>(stats.loader_probes),
              static_cast<unsigned long long>(stats.loader_denials));
  std::printf("  injected gaps found   %llu (%llu in front of writing "
              "helpers); %llu fault toggles (%zu of 3 perm defects "
              "enabled at some point)\n",
              static_cast<unsigned long long>(stats.gaps_confirmed),
              static_cast<unsigned long long>(
                  stats.gaps_confirmed_writing),
              static_cast<unsigned long long>(stats.fault_toggles),
              stats.faults_ever_injected);
}

int RunFaultChecks() {
  const std::vector<analysis::PermFaultCheck> checks =
      analysis::RunPermFaultChecks();
  bool all_passed = true;
  for (const analysis::PermFaultCheck& check : checks) {
    std::printf("  %-36s %s\n", check.name.c_str(),
                check.passed ? "detected" : "FAIL");
    std::printf("    %s\n", check.detail.c_str());
    if (!check.passed) {
      all_passed = false;
    }
  }
  if (!all_passed) {
    std::printf("permstorm: FAIL — a missing-permission-check class "
                "escaped the census or was misattributed\n");
    return 1;
  }
  std::printf("permstorm: OK — every perm fault class detected and "
              "attributed to its layer; clean censuses gap-free\n");
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: permstorm [--seed N] [--ops M] [--no-faults] "
               "[--check-faults] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  analysis::PermStormConfig config;
  bool quiet = false;
  bool check_faults = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      config.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--ops" && i + 1 < argc) {
      config.ops = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--no-faults") {
      config.toggle_faults = false;
    } else if (arg == "--faults") {
      config.toggle_faults = true;
    } else if (arg == "--check-faults") {
      check_faults = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage();
    }
  }

  if (check_faults) {
    std::printf("permstorm: missing-permission-check detection matrix\n");
    return RunFaultChecks();
  }

  std::printf("permstorm: seed=%llu ops=%llu faults=%s\n",
              static_cast<unsigned long long>(config.seed),
              static_cast<unsigned long long>(config.ops),
              config.toggle_faults ? "on" : "off");
  const analysis::PermStormReport report = analysis::RunPermStorm(config);
  if (!quiet) {
    PrintStats(report.stats);
  }
  if (!report.ok) {
    std::printf("permstorm: FAIL — %s\n", report.failure.c_str());
    std::printf("permstorm: replay with: permstorm --seed %llu --ops "
                "%llu%s\n",
                static_cast<unsigned long long>(report.seed),
                static_cast<unsigned long long>(config.ops),
                config.toggle_faults ? "" : " --no-faults");
    return 1;
  }
  std::printf("permstorm: OK — every probed admission cell matched the "
              "fault-adjusted contract after each of %llu ops (zero false "
              "positives)\n",
              static_cast<unsigned long long>(report.stats.ops_executed));
  return 0;
}

// admitstorm: deterministic concurrency storm for the admission pipeline.
//
//   admitstorm                     one storm with the default seed
//   admitstorm --seed N            replay a specific submission schedule
//   admitstorm --rounds R          drain rounds (default 16)
//   admitstorm --ops M             submissions per round (default 96)
//   admitstorm --workers W         admission worker threads (default 4)
//   admitstorm --queue Q           bounded queue capacity (default 32)
//   admitstorm --no-cache          run with the verdict cache disabled
//   admitstorm --no-faults         leave the fault registry alone
//   admitstorm --engine E          engine for post-drain exec probes:
//                                  threaded (default, cross-checked against
//                                  legacy) or legacy
//   admitstorm --quiet             print only the verdict line
//
// The submission schedule is a pure function of the flags; the pipeline
// invariants (see src/analysis/admitstorm.h) are checked after every
// round's drain and hold under any worker interleaving. CI runs seeds
// 1/42/1337 under ThreadSanitizer. Exit status: 0 every invariant held,
// 1 an invariant broke, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/analysis/admitstorm.h"

namespace {

void PrintStats(const analysis::AdmitStormStats& stats) {
  std::printf("  rounds                %llu\n",
              static_cast<unsigned long long>(stats.rounds_executed));
  std::printf("  submissions           %llu (%llu bpf, %llu ext, "
              "%llu settled-epoch probes)\n",
              static_cast<unsigned long long>(stats.submissions),
              static_cast<unsigned long long>(stats.bpf_submissions),
              static_cast<unsigned long long>(stats.ext_submissions),
              static_cast<unsigned long long>(stats.consistency_probes));
  std::printf("  verdicts              %llu admitted, %llu rejected; "
              "%llu unloads\n",
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.unloads));
  std::printf("  fault toggles         %llu (racing the workers)\n",
              static_cast<unsigned long long>(stats.fault_toggles));
  std::printf("  exec probes           %llu\n",
              static_cast<unsigned long long>(stats.exec_probes));
  std::printf("  verdict cache         %llu hits (%llu coalesced), "
              "%llu misses, %llu uncacheable\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.coalesced_waits),
              static_cast<unsigned long long>(stats.cache_misses),
              static_cast<unsigned long long>(stats.uncacheable));
  std::printf("  verifier runs         %llu (vs %llu program submissions)\n",
              static_cast<unsigned long long>(stats.verify_runs),
              static_cast<unsigned long long>(stats.bpf_submissions));
  std::printf("  peak queue depth      %llu\n",
              static_cast<unsigned long long>(stats.queue_depth_peak));
}

int Usage() {
  std::fprintf(stderr,
               "usage: admitstorm [--seed N] [--rounds R] [--ops M] "
               "[--workers W] [--queue Q] [--no-cache] [--no-faults] "
               "[--engine threaded|legacy] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  analysis::AdmitStormConfig config;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      config.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--rounds" && i + 1 < argc) {
      config.rounds = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--ops" && i + 1 < argc) {
      config.ops_per_round = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--workers" && i + 1 < argc) {
      config.workers = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--queue" && i + 1 < argc) {
      config.queue_capacity = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--no-cache") {
      config.cache_enabled = false;
    } else if (arg == "--no-faults") {
      config.toggle_faults = false;
    } else if (arg == "--engine" && i + 1 < argc) {
      const std::string engine = argv[++i];
      if (engine == "threaded") {
        config.engine = ebpf::ExecEngine::kThreaded;
      } else if (engine == "legacy") {
        config.engine = ebpf::ExecEngine::kLegacy;
      } else {
        return Usage();
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage();
    }
  }

  std::printf("admitstorm: seed=%llu rounds=%llu ops=%llu workers=%zu "
              "queue=%zu cache=%s faults=%s engine=%s\n",
              static_cast<unsigned long long>(config.seed),
              static_cast<unsigned long long>(config.rounds),
              static_cast<unsigned long long>(config.ops_per_round),
              config.workers, config.queue_capacity,
              config.cache_enabled ? "on" : "off",
              config.toggle_faults ? "on" : "off",
              config.engine == ebpf::ExecEngine::kLegacy ? "legacy"
                                                         : "threaded");
  const analysis::AdmitStormReport report = analysis::RunAdmitStorm(config);
  if (!quiet) {
    PrintStats(report.stats);
  }
  if (!report.ok) {
    std::printf("admitstorm: FAIL — %s (after round %llu)\n",
                report.failure.c_str(),
                static_cast<unsigned long long>(report.failed_at_round));
    std::printf(
        "admitstorm: replay with: admitstorm --seed %llu --rounds %llu "
        "--ops %llu --workers %zu --queue %zu%s%s\n",
        static_cast<unsigned long long>(report.seed),
        static_cast<unsigned long long>(config.rounds),
        static_cast<unsigned long long>(config.ops_per_round),
        config.workers, config.queue_capacity,
        config.cache_enabled ? "" : " --no-cache",
        config.toggle_faults ? "" : " --no-faults");
    return 1;
  }
  std::printf("admitstorm: OK — every pipeline invariant held after each "
              "of %llu drains (tickets resolved, ids unique, metrics "
              "conserved, verdicts consistent)\n",
              static_cast<unsigned long long>(report.stats.rounds_executed));
  return 0;
}

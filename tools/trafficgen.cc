// trafficgen: seeded SMP load generator for the supervised extension stack.
//
//   trafficgen                 one run with the defaults (4 CPUs, 20k events)
//   trafficgen --seed N        replay a specific seed
//   trafficgen --events M      number of mixed-tenant events
//   trafficgen --cpus N        simulated CPUs (1 = inline single-threaded)
//   trafficgen --quiet         print only the verdict line
//
// The stream is a mixed-tenant mix — ~70% packet-counter fires, ~10%
// scheduler ticks, ~10% LSM file-open decisions, ~10% map churn — submitted
// round-robin across the CPUs and executed concurrently on the kernel's
// CpuPool (idle CPUs steal). The event sequence is a pure function of
// --seed/--events, so runs replay; only intra-batch interleaving varies.
// Exit status: 0 all end-of-run invariants held (including the per-CPU
// counter sum matching the packet fire count exactly), 1 one broke,
// 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/analysis/trafficgen.h"

namespace {

void PrintStats(const analysis::TrafficReport& report) {
  std::printf("  event mix             %llu packet, %llu sched, %llu lsm, "
              "%llu churn\n",
              static_cast<unsigned long long>(report.packet_events),
              static_cast<unsigned long long>(report.sched_events),
              static_cast<unsigned long long>(report.lsm_events),
              static_cast<unsigned long long>(report.churn_events));
  std::printf("  throughput            %.1f events per simulated ms "
              "(makespan %.3f sim ms, %.1f wall ms)\n",
              report.events_per_sim_ms,
              static_cast<double>(report.sim_elapsed_ns) / 1e6,
              static_cast<double>(report.wall_elapsed_ns) / 1e6);
  std::printf("  fire latency (wall)   p50 %llu ns, p99 %llu ns, p999 %llu "
              "ns, max %llu ns (%zu fires)\n",
              static_cast<unsigned long long>(report.fire_latency.p50),
              static_cast<unsigned long long>(report.fire_latency.p99),
              static_cast<unsigned long long>(report.fire_latency.p999),
              static_cast<unsigned long long>(report.fire_latency.max),
              report.fire_latency.samples);
  std::printf("  lock contention       %llu acquires, %llu contended, "
              "%.3f ms spent spinning\n",
              static_cast<unsigned long long>(report.lock_totals.acquires),
              static_cast<unsigned long long>(
                  report.lock_totals.contended_acquires),
              static_cast<double>(report.lock_totals.spin_wall_ns) / 1e6);
  for (xbase::usize cpu = 0; cpu < report.per_cpu.size(); ++cpu) {
    const analysis::TrafficCpuStats& stats = report.per_cpu[cpu];
    std::printf("  cpu%-2zu                 %llu tasks (%llu stolen), "
                "%llu fires, %llu pkts, %.3f sim ms\n",
                cpu, static_cast<unsigned long long>(stats.executed),
                static_cast<unsigned long long>(stats.stolen),
                static_cast<unsigned long long>(stats.fires),
                static_cast<unsigned long long>(stats.packet_count),
                static_cast<double>(stats.sim_advanced_ns) / 1e6);
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: trafficgen [--seed N] [--events M] [--cpus N] "
               "[--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  analysis::TrafficConfig config;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      config.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--events" && i + 1 < argc) {
      config.events = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--cpus" && i + 1 < argc) {
      config.cpus =
          static_cast<xbase::u32>(std::strtoul(argv[++i], nullptr, 0));
      if (config.cpus < 1) {
        return Usage();
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage();
    }
  }

  std::printf("trafficgen: seed=%llu events=%llu cpus=%u\n",
              static_cast<unsigned long long>(config.seed),
              static_cast<unsigned long long>(config.events), config.cpus);
  const analysis::TrafficReport report = analysis::RunTraffic(config);
  if (!quiet) {
    PrintStats(report);
  }
  if (!report.ok) {
    std::printf("trafficgen: FAIL — %s\n", report.failure.c_str());
    std::printf("trafficgen: replay with: trafficgen --seed %llu --events "
                "%llu --cpus %u\n",
                static_cast<unsigned long long>(config.seed),
                static_cast<unsigned long long>(config.events), config.cpus);
    return 1;
  }
  std::printf("trafficgen: OK — %llu events across %u CPUs, per-CPU "
              "counter sum matches %llu packet fires exactly\n",
              static_cast<unsigned long long>(config.events), config.cpus,
              static_cast<unsigned long long>(report.packet_count_sum));
  return 0;
}
